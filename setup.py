"""Package metadata.

Kept as a plain setup.py (no pyproject.toml) because the offline build
environment lacks the `wheel` package, so `pip install -e .` falls back to
`setup.py develop` via --no-use-pep517.
"""
from setuptools import find_packages, setup

setup(
    name="repro-faq-topology",
    version="1.0.0",
    description=(
        "Reproduction of 'Topology Dependent Bounds For FAQs' (PODS 2019): "
        "a distributed FAQ/semiring query engine with round-exact network "
        "simulation and executable lower bounds"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    # NumPy backs the columnar factor backend (repro.semiring.columnar).
    install_requires=["numpy>=1.22", "networkx>=2.6"],
    extras_require={
        # The optional JIT kernel tier (repro.kernels); without it the
        # "jit" tier transparently resolves to the NumPy implementations.
        "jit": ["numba>=0.57"],
    },
)
