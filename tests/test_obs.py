"""Coverage for the observability plane (:mod:`repro.obs`).

Four contracts:

* **Zero-cost when off** — a ``None`` tracer and a disabled
  :class:`~repro.obs.trace.Tracer` normalize to the *same* ``None`` fast
  path, a traced run returns byte-identical answers/accounting to an
  untraced one, and the disabled-mode wall-clock overhead on a scaling
  scenario stays under 2% (interleaved min-of-N).
* **Self-verification** — replaying a trace's ``Send`` /
  ``CycleFastForward`` events reproduces the measured
  ``SimulationResult`` exactly on all four cost metrics, on both
  engines, including fast-forwarded compiled runs; tampered traces are
  caught with a named metric.
* **Counters** — deterministic counters ride the scenario record (and
  survive the cache byte-identically); volatile ones (plan-cache
  hit/miss) never enter the deterministic view.
* **Export** — JSONL round-trips, the Chrome trace-event payload has
  the Perfetto-loadable shape, and the terminal timeline (pinned as a
  golden file) annotates fast-forwarded stretches.
"""

import json
import logging
import os
import time
import warnings

import pytest

from repro.core.planner import Planner
from repro.lab import SuiteSpec, run_suite
from repro.lab.__main__ import main as lab_main
from repro.lab.runner import (
    _execute_with_context,
    build_assignment,
    build_query,
    build_topology,
    execute_scenario,
    record_scenario_trace,
)
from repro.lab.suites import register_suite
from repro.obs import (
    COUNTERS,
    DETERMINISTIC_COUNTERS,
    CounterRegistry,
    RecordingTracer,
    Tracer,
    counter_delta,
    verify_trace,
)
from repro.obs.counters import deterministic_view
from repro.obs.export import (
    events_to_chrome_trace,
    events_to_jsonl,
    format_timeline,
)
from repro.obs.logging import CaptureHandler, configure, get_logger
from repro.obs.trace import (
    CycleFastForwardEvent,
    PhaseTimerEvent,
    RunStartEvent,
    SendEvent,
    activate,
    active_tracer,
    normalize,
)
from test_lab_report import golden_spec, golden_suite

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _traced_run(spec):
    built = build_query(spec)
    topology = build_topology(spec)
    assignment = build_assignment(spec, built, topology)
    tracer = RecordingTracer()
    planner = Planner(
        built.query, topology, assignment=assignment, backend=spec.backend,
        engine=spec.engine, solver=spec.solver, tracer=tracer,
    )
    report = planner.execute(max_rounds=spec.max_rounds)
    return report, tracer.events


# ---------------------------------------------------------------------------
# Tracer core: normalization and the disabled fast path
# ---------------------------------------------------------------------------


def test_normalize_strips_disabled_tracers():
    # The structural basis of the <2% overhead claim: a disabled tracer
    # IS the no-tracer path — engines hold None either way, so the hot
    # loop pays exactly one ``is not None`` per guard.
    assert normalize(None) is None
    assert normalize(Tracer()) is None
    live = RecordingTracer()
    assert normalize(live) is live


def test_noop_tracer_records_nothing():
    tracer = Tracer()
    tracer.run_start("generator", 10, ["a", "b"])
    tracer.round_start(1)
    tracer.send(1, "a", "b", 10)
    tracer.round_end(1, 10, 1)
    tracer.compute_step(1, "a", "x")
    tracer.cycle_fast_forward(
        start_round=1, period=1, repeats=3, end_round=4, cycle=()
    )
    tracer.phase_timer("solve", 0.1)
    assert not tracer.enabled
    assert not hasattr(tracer, "events") or not tracer.events


def test_activate_scopes_the_module_level_tracer():
    assert active_tracer() is None
    live = RecordingTracer()
    with activate(live):
        assert active_tracer() is live
        with activate(None):
            assert active_tracer() is None
        assert active_tracer() is live
    assert active_tracer() is None
    # Disabled tracers never become active either.
    with activate(Tracer()):
        assert active_tracer() is None


def test_planner_accepts_and_normalizes_disabled_tracer():
    spec = golden_spec()
    built = build_query(spec)
    topology = build_topology(spec)
    planner = Planner(
        built.query, topology,
        assignment=build_assignment(spec, built, topology),
        tracer=Tracer(),
    )
    assert planner.tracer is None


# ---------------------------------------------------------------------------
# Byte-identical traced vs untraced runs
# ---------------------------------------------------------------------------


def test_traced_run_is_byte_identical_to_untraced():
    for engine in ("generator", "compiled"):
        spec = golden_spec(engine=engine)
        plain = execute_scenario(spec)
        traced = execute_scenario(spec, trace=True)
        assert traced.trace is not None and traced.trace["verified"]
        assert plain.trace is None
        # The deterministic record — answers, rounds, bits, counters —
        # must not depend on whether the run was observed.
        assert (
            plain.deterministic_record() == traced.deterministic_record()
        )


def test_disabled_tracer_overhead_under_two_percent():
    # Interleaved min-of-N on a scaling scenario: the disabled path is
    # structurally the no-tracer path (see normalize test), so the only
    # residual is the per-guard None check.  min() filters scheduler
    # noise; interleaving filters thermal drift.
    from repro.protocols.faq_protocol import run_distributed_faq

    spec = golden_spec(engine="compiled", n=96)
    built = build_query(spec)
    topology = build_topology(spec)
    assignment = build_assignment(spec, built, topology)
    plain, disabled = [], []
    for _ in range(5):
        t0 = time.perf_counter()
        run_distributed_faq(
            built.query, topology, assignment, engine=spec.engine
        )
        plain.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_distributed_faq(
            built.query, topology, assignment, engine=spec.engine,
            tracer=Tracer(),
        )
        disabled.append(time.perf_counter() - t0)
    assert min(disabled) <= min(plain) * 1.02


# ---------------------------------------------------------------------------
# Self-verification: replay == measured, both engines, fast-forward
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["generator", "compiled"])
def test_replay_reproduces_measured_run(engine):
    report, events = _traced_run(golden_spec(engine=engine))
    simulation = report.protocol.simulation
    verdict = verify_trace(events, simulation)
    assert verdict.ok, verdict.mismatches
    assert verdict.replayed.rounds == simulation.rounds
    assert verdict.replayed.total_bits == simulation.total_bits
    assert verdict.replayed.bits_per_edge == dict(simulation.bits_per_edge)
    assert (
        verdict.replayed.max_edge_bits_per_round
        == simulation.max_edge_bits_per_round
    )


def test_replay_covers_fast_forwarded_rounds():
    # The compiled engine skips steady-state cycles arithmetically; the
    # trace must carry the jump so the replay covers the skipped rounds.
    report, events = _traced_run(golden_spec(engine="compiled"))
    jumps = [e for e in events if isinstance(e, CycleFastForwardEvent)]
    assert jumps, "expected the compiled run to fast-forward"
    assert all(
        j.rounds_skipped == j.repeats * j.period and j.cycle for j in jumps
    )
    verdict = verify_trace(events, report.protocol.simulation)
    assert verdict.ok, verdict.mismatches


def test_tampered_trace_is_caught_with_named_metric():
    report, events = _traced_run(golden_spec())
    idx, send = next(
        (i, e) for i, e in enumerate(events) if isinstance(e, SendEvent)
    )
    tampered = list(events)
    tampered[idx] = SendEvent(
        round=send.round, src=send.src, dst=send.dst, bits=send.bits + 1,
        tag=send.tag, kind=send.kind, count=send.count,
        messages=send.messages,
    )
    verdict = verify_trace(tampered, report.protocol.simulation)
    assert not verdict.ok
    assert any("total_bits" in m for m in verdict.mismatches)
    dropped = [e for e in events if not isinstance(e, SendEvent)]
    verdict = verify_trace(dropped, report.protocol.simulation)
    assert not verdict.ok


def test_phase_timers_cover_the_pipeline():
    # ``intern`` needs a columnar execution (dictionary pooling only
    # happens when every factor is columnar over a supported semiring).
    _report, events = _traced_run(
        golden_spec(solver="compiled", backend="columnar")
    )
    phases = {e.phase for e in events if isinstance(e, PhaseTimerEvent)}
    assert {"plan_compile", "protocol", "solve", "intern"} <= phases


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------


def test_counter_registry_and_delta():
    reg = CounterRegistry()
    reg.increment("a")
    reg.increment("a", 2)
    reg.increment("b")
    assert reg.get("a") == 3 and reg.get("missing") == 0
    before = reg.snapshot()
    reg.increment("a", 4)
    reg.increment("c")
    assert counter_delta(before, reg.snapshot()) == {"a": 4, "c": 1}
    reg.reset()
    assert reg.snapshot() == {}


def test_deterministic_view_excludes_volatile_counters():
    # plan_cache.hit/miss depend on process warmth — a cached-vs-fresh
    # or serial-vs-parallel run would diverge if they entered records.
    delta = {"plan_cache.hit": 5, "plan_cache.miss": 2,
             "kernel.columnar": 7, "unknown.counter": 1}
    view = deterministic_view(delta)
    assert view == {"kernel.columnar": 7}
    assert "plan_cache.hit" not in DETERMINISTIC_COUNTERS
    assert "plan_cache.miss" not in DETERMINISTIC_COUNTERS
    assert "plan_cache.lookups" in DETERMINISTIC_COUNTERS


def test_scenario_records_carry_deterministic_counters():
    spec = golden_spec(engine="compiled", backend="columnar",
                       solver="compiled")
    result = execute_scenario(spec)
    obs = result.observability
    assert obs is not None
    assert set(obs) <= set(DETERMINISTIC_COUNTERS)
    assert obs.get("engine.fast_forward", 0) >= 1
    assert obs.get("solver.fused_vectorized", 0) >= 1
    # And they survive the artifact/cache round trip bit-for-bit.
    rec = result.deterministic_record()
    assert rec["observability"] == obs
    from repro.lab.results import ScenarioResult

    assert ScenarioResult.from_record(rec).observability == obs


def test_plan_cache_counters_fire():
    from repro.faq.plan import PlanCache

    cache = PlanCache()
    before = COUNTERS.snapshot()
    cache.get(None)
    cache.get("k")
    cache.put("k", object())
    cache.get("k")
    delta = counter_delta(before, COUNTERS.snapshot())
    assert delta["plan_cache.uncacheable"] == 1
    assert delta["plan_cache.lookups"] == 2
    assert delta["plan_cache.miss"] == 1
    assert delta["plan_cache.hit"] == 1


# ---------------------------------------------------------------------------
# Export surfaces
# ---------------------------------------------------------------------------


def test_jsonl_export_round_trips():
    _report, events = _traced_run(golden_spec(engine="compiled"))
    lines = events_to_jsonl(events).splitlines()
    assert len(lines) == len(events)
    parsed = [json.loads(line) for line in lines]
    types = {p["type"] for p in parsed}
    assert {"RunStart", "RoundStart", "RoundEnd", "Send",
            "CycleFastForward", "PhaseTimer"} <= types
    sends = [p for p in parsed if p["type"] == "Send"]
    originals = [e for e in events if isinstance(e, SendEvent)]
    assert [s["bits"] for s in sends] == [e.bits for e in originals]


def test_chrome_trace_has_perfetto_shape():
    _report, events = _traced_run(golden_spec(engine="compiled"))
    payload = events_to_chrome_trace(events)
    assert payload["displayTimeUnit"] == "ms"
    trace = payload["traceEvents"]
    assert trace
    assert all({"ph", "pid", "tid", "name"} <= set(e) for e in trace)
    assert all(e["ph"] in ("M", "X") for e in trace)
    # One process for nodes, one for links, named via metadata events.
    names = {
        e["args"]["name"]
        for e in trace
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names == {"nodes", "links"}
    run = next(e for e in events if isinstance(e, RunStartEvent))
    slices = [e for e in trace if e["ph"] == "X" and e["pid"] == 2]
    assert slices and all(
        e["dur"] <= 1000 and e["dur"] >= 1 for e in slices
    )
    json.dumps(payload)  # strictly serializable


def test_timeline_matches_golden():
    _report, events = _traced_run(golden_spec(engine="compiled"))
    rendered = format_timeline(events)
    with open(os.path.join(GOLDEN_DIR, "TIMELINE_golden.txt")) as fh:
        expected = fh.read()
    assert rendered + "\n" == expected, (
        "terminal timeline drifted from tests/golden/TIMELINE_golden.txt; "
        "regenerate it if the change is intentional (see golden README)"
    )
    assert ">> fast-forward" in rendered


def test_timeline_elides_explicitly():
    events = [RunStartEvent("generator", 4, ["a", "b"])]
    for r in range(1, 41):
        events.append(SendEvent(round=r, src="a", dst="b", bits=4))
    text = format_timeline(events, max_rounds=10)
    assert "round(s) elided" in text
    assert "totals: 160 bits" in text
    assert format_timeline([events[0]]).endswith("no traffic traced")


# ---------------------------------------------------------------------------
# Logging + worker capture
# ---------------------------------------------------------------------------


def test_configure_is_idempotent_and_validates():
    logger = configure("info")
    cli_handlers = [
        h for h in logger.handlers if getattr(h, "_repro_cli", False)
    ]
    assert len(cli_handlers) == 1
    configure("debug")
    cli_handlers = [
        h for h in logger.handlers if getattr(h, "_repro_cli", False)
    ]
    assert len(cli_handlers) == 1
    assert logger.level == logging.DEBUG
    with pytest.raises(ValueError):
        configure("loud")
    configure("info")


def test_worker_capture_preserves_logs_and_warnings(monkeypatch):
    # A scenario that logs and warns mid-execution: both must survive
    # onto the (picklable) result instead of dying with the worker's
    # stderr.
    import repro.lab.runner as runner_mod
    from repro.core.memo import clear_all_memos

    real_build = runner_mod.build_query

    def noisy_build(spec):
        get_logger("test").info("building %s", spec.query)
        warnings.warn("synthetic scenario warning")
        return real_build(spec)

    monkeypatch.setattr(runner_mod, "build_query", noisy_build)
    # Materialization is memoized across a process; start cold so the
    # noisy build actually runs.
    clear_all_memos()
    result = _execute_with_context(golden_spec())
    assert any(
        "building hard-star" in line for line in result.captured_logs
    )
    assert any(
        "synthetic scenario warning" in line
        for line in result.captured_logs
    )
    # And the coordinator re-emits them through the progress sink.
    emitted = []
    run = run_suite(
        SuiteSpec("one", (golden_spec(),)), log=emitted.append
    )
    assert any("synthetic scenario warning" in line for line in emitted)
    assert run.results[0].captured_logs


# ---------------------------------------------------------------------------
# CLI: trace subcommand + run --trace gate
# ---------------------------------------------------------------------------


def test_cli_trace_subcommand_writes_and_verifies(tmp_path, capsys):
    register_suite("golden", golden_suite, overwrite=True)
    code = lab_main(
        ["trace", "golden", "--scenario", "compiled",
         "--out", str(tmp_path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "trace verified" in out
    assert ">> fast-forward" in out
    written = sorted(os.listdir(tmp_path))
    assert any(name.endswith(".jsonl") for name in written)
    (chrome,) = [n for n in written if n.endswith(".chrome.json")]
    payload = json.load(open(os.path.join(tmp_path, chrome)))
    assert payload["traceEvents"]
    assert all(
        {"ph", "pid", "tid", "name"} <= set(e)
        for e in payload["traceEvents"]
    )


def test_cli_trace_unknown_scenario_lists_labels(tmp_path, capsys):
    register_suite("golden", golden_suite, overwrite=True)
    code = lab_main(
        ["trace", "golden", "--scenario", "no-such-label",
         "--out", str(tmp_path)]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "no scenario" in out and "golden-star" in out


def test_cli_run_trace_gates_on_replay(tmp_path, capsys, monkeypatch):
    register_suite("golden", golden_suite, overwrite=True)
    code = lab_main(
        ["run", "golden", "--out", str(tmp_path), "--no-cache",
         "--quiet", "--trace"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "trace: 3 run(s) traced, 3 replay-verified, 0 mismatch(es)" in out

    # Sabotage the replay: every verdict comes back mismatched.
    from repro.obs.verify import ReplayedTotals, TraceVerdict

    monkeypatch.setattr(
        "repro.lab.runner.verify_trace",
        lambda events, sim: TraceVerdict(
            ok=False,
            mismatches=["total_bits replayed=0 measured=1"],
            replayed=ReplayedTotals(0, 0, {}, 0),
        ),
    )
    code = lab_main(
        ["run", "golden", "--out", str(tmp_path), "--no-cache",
         "--quiet", "--trace"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "TRACE MISMATCHES (3)" in out
    assert "total_bits replayed=0" in out


def test_cli_log_level_filters_progress(tmp_path, capsys):
    register_suite("golden", golden_suite, overwrite=True)
    code = lab_main(
        ["run", "golden", "--out", str(tmp_path), "--no-cache",
         "--log-level", "error"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "[run  ]" not in out and "[done ]" not in out
    code = lab_main(
        ["run", "golden", "--out", str(tmp_path), "--no-cache"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "[cache]" in out or "[run  ]" in out
