"""Tests for the factor algebra (join, semijoin, project, marginalize)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faq import (
    aggregate_absent_variable,
    join,
    marginalize,
    multi_join,
    project,
    scalar,
    scalar_value,
    semijoin,
)
from repro.semiring import BOOLEAN, COUNTING, MIN_PLUS, REAL, Factor


def R(tuples, schema=("A", "B")):
    return Factor.from_tuples(schema, tuples, BOOLEAN)


def test_join_boolean_natural_join():
    r = R([(1, 10), (2, 20)])
    s = Factor.from_tuples(("B", "C"), [(10, "x"), (10, "y"), (30, "z")])
    j = join(r, s)
    assert j.schema == ("A", "B", "C")
    assert set(j.tuples()) == {(1, 10, "x"), (1, 10, "y")}


def test_join_disjoint_schemas_is_cross_product():
    r = Factor.from_tuples(("A",), [(1,), (2,)])
    s = Factor.from_tuples(("B",), [(7,), (8,)])
    j = join(r, s)
    assert len(j) == 4


def test_join_counting_multiplies():
    r = Factor(("A",), {(1,): 2, (2,): 3}, COUNTING)
    s = Factor(("A",), {(1,): 5, (2,): 7}, COUNTING)
    j = join(r, s)
    assert j((1,)) == 10
    assert j((2,)) == 21


def test_join_semiring_mismatch_raises():
    r = Factor(("A",), {(1,): 2}, COUNTING)
    s = Factor(("A",), {(1,): True}, BOOLEAN)
    with pytest.raises(ValueError):
        join(r, s)


def test_join_schema_order_stable():
    r = Factor.from_tuples(("B", "A"), [(1, 2)])
    s = Factor.from_tuples(("A", "C"), [(2, 3)])
    j = join(r, s)
    assert j.schema == ("B", "A", "C")
    assert (1, 2, 3) in j


def test_multi_join_empty_raises():
    with pytest.raises(ValueError):
        multi_join([])


def test_semijoin_filters_left():
    r = R([(1, 10), (2, 20), (3, 30)])
    s = Factor.from_tuples(("B",), [(10,), (30,)])
    out = semijoin(r, s)
    assert set(out.tuples()) == {(1, 10), (3, 30)}
    assert out.schema == r.schema


def test_semijoin_no_shared_vars():
    r = R([(1, 10)])
    s_nonempty = Factor.from_tuples(("C",), [(5,)])
    s_empty = Factor.from_tuples(("C",), [])
    assert len(semijoin(r, s_nonempty)) == 1
    assert len(semijoin(r, s_empty)) == 0


def test_semijoin_keeps_annotations():
    r = Factor(("A",), {(1,): 5, (2,): 7}, COUNTING)
    s = Factor(("A", "B"), {(1, 9): 3}, COUNTING)
    out = semijoin(r, s)
    assert out((1,)) == 5
    assert (2,) not in out


def test_project_boolean_dedups():
    r = R([(1, 10), (1, 20), (2, 10)])
    p = project(r, ("A",))
    assert set(p.tuples()) == {(1,), (2,)}


def test_project_counting_adds():
    r = Factor(("A", "B"), {(1, 10): 2, (1, 20): 3, (2, 10): 4}, COUNTING)
    p = project(r, ("A",))
    assert p((1,)) == 5
    assert p((2,)) == 4


def test_project_reorders():
    r = R([(1, 10)])
    p = project(r, ("B", "A"))
    assert p.schema == ("B", "A")
    assert (10, 1) in p


def test_marginalize_sum():
    f = Factor(("A", "B"), {(1, 10): 2.0, (1, 20): 3.0, (2, 10): 4.0}, REAL)
    m = marginalize(f, "B")
    assert m.schema == ("A",)
    assert m((1,)) == 5.0
    assert m((2,)) == 4.0


def test_marginalize_min_plus_takes_min():
    f = Factor(("A", "B"), {(1, 10): 2.0, (1, 20): 3.0}, MIN_PLUS)
    m = marginalize(f, "B")
    assert m((1,)) == 2.0


def test_marginalize_full_domain_product():
    # Product over Dom(B) = {10, 20}: group A=1 covers both, A=2 misses 20.
    f = Factor(("A", "B"), {(1, 10): 2.0, (1, 20): 3.0, (2, 10): 4.0}, REAL)
    m = marginalize(f, "B", combine=REAL.mul, full_domain=(10, 20))
    assert m((1,)) == 6.0
    assert (2,) not in m  # 4.0 * 0 = 0, dropped from the listing


def test_marginalize_missing_var_raises():
    f = Factor(("A",), {(1,): 1.0}, REAL)
    with pytest.raises(KeyError):
        marginalize(f, "Z")


def test_aggregate_absent_variable_scales():
    f = Factor(("A",), {(1,): 2.0}, REAL)
    out = aggregate_absent_variable(f, REAL.add, 5, is_product=False)
    assert out((1,)) == 10.0
    out2 = aggregate_absent_variable(f, REAL.mul, 3, is_product=True)
    assert out2((1,)) == 8.0


def test_aggregate_absent_variable_bad_domain():
    f = Factor(("A",), {(1,): 2.0}, REAL)
    with pytest.raises(ValueError):
        aggregate_absent_variable(f, REAL.add, 0, is_product=False)


def test_scalar_roundtrip():
    s = scalar(COUNTING, 42)
    assert scalar_value(s) == 42
    z = scalar(COUNTING, 0)
    assert scalar_value(z) == 0
    with pytest.raises(ValueError):
        scalar_value(Factor(("A",), {(1,): 1}, COUNTING))


# ---------------------------------------------------------------------------
# Algebraic property tests
# ---------------------------------------------------------------------------

small_relation = st.sets(
    st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=12
)


@settings(max_examples=50)
@given(small_relation, small_relation)
def test_join_commutative_boolean(t1, t2):
    r = Factor.from_tuples(("A", "B"), t1)
    s = Factor.from_tuples(("B", "C"), [(b, a) for a, b in t2])
    lhs = join(r, s)
    rhs = join(s, r)
    # Same tuples up to column order.
    lhs_set = {lhs.project_tuple(t, ("A", "B", "C")) for t in lhs.tuples()}
    rhs_set = {rhs.project_tuple(t, ("A", "B", "C")) for t in rhs.tuples()}
    assert lhs_set == rhs_set


@settings(max_examples=50)
@given(small_relation, small_relation)
def test_semijoin_equals_filtered_join_projection(t1, t2):
    """R ⋉ S == pi_{ar(R)}(R ⋈ S) for Boolean relations (Definition 3.5)."""
    r = Factor.from_tuples(("A", "B"), t1)
    s = Factor.from_tuples(("B", "C"), [(b, a) for a, b in t2])
    via_def = project(join(r, s), ("A", "B"))
    direct = semijoin(r, s)
    assert set(via_def.tuples()) == set(direct.tuples())


@settings(max_examples=50)
@given(small_relation)
def test_join_with_projection_is_identity_boolean(t1):
    r = Factor.from_tuples(("A", "B"), t1)
    p = project(r, ("A",))
    assert set(semijoin(r, p).tuples()) == set(r.tuples())


@settings(max_examples=30)
@given(
    st.dictionaries(
        st.tuples(st.integers(0, 3), st.integers(0, 3)),
        st.integers(1, 5),
        max_size=12,
    )
)
def test_marginalize_then_total_equals_grand_total(rows):
    """Summing out B then A equals the grand total (associativity)."""
    f = Factor(("A", "B"), rows, COUNTING)
    total_direct = sum(rows.values())
    m = marginalize(marginalize(f, "B"), "A")
    assert scalar_value(m) == total_direct
