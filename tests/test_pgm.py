"""Tests for PGM models and inference (the paper's second FAQ-SS
application: factor marginals)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pgm import (
    GraphicalModel,
    brute_force_marginal,
    chain_model,
    grid_model,
    map_value,
    marginal,
    partition_function,
    tree_model,
)
from repro.semiring import BOOLEAN, REAL, Factor


def test_model_validation():
    bad = Factor(("A",), {(0,): True}, BOOLEAN)
    with pytest.raises(ValueError):
        GraphicalModel({"f": bad}, {"A": (0,)})
    ok = Factor(("A",), {(0,): 1.0}, REAL)
    with pytest.raises(ValueError):
        GraphicalModel({"f": ok}, {})  # missing domain


def test_chain_model_structure():
    m = chain_model(5, 3, seed=0)
    assert len(m.factors) == 5
    assert m.hypergraph.num_vertices == 6
    assert m.variables == {f"X{i}" for i in range(6)}


def test_tree_model_structure():
    m = tree_model(2, 2, 2, seed=0)
    assert len(m.factors) == 6  # 2 + 4 edges
    assert m.hypergraph.is_simple_graph()


def test_grid_model_is_cyclic():
    from repro.hypergraph import is_acyclic

    m = grid_model(2, 2, 2, seed=0)
    assert not is_acyclic(m.hypergraph)


def test_chain_marginal_matches_brute_force():
    m = chain_model(4, 3, seed=3)
    got = marginal(m, ("X2",))
    expected = brute_force_marginal(m, ("X2",))
    for t, v in got:
        assert math.isclose(v, expected[t], rel_tol=1e-9)


def test_tree_marginal_matches_brute_force():
    m = tree_model(2, 2, 2, seed=5)
    got = marginal(m, ("X0",))
    expected = brute_force_marginal(m, ("X0",))
    for t, v in got:
        assert math.isclose(v, expected[t], rel_tol=1e-9)


def test_grid_marginal_matches_brute_force():
    m = grid_model(2, 3, 2, seed=7)
    got = marginal(m, ("X0_0",))
    expected = brute_force_marginal(m, ("X0_0",))
    for t, v in got:
        assert math.isclose(v, expected[t], rel_tol=1e-9)


def test_normalized_marginal_sums_to_one():
    m = chain_model(3, 4, seed=1)
    got = marginal(m, ("X1",), normalize=True)
    assert math.isclose(math.fsum(v for _t, v in got), 1.0, rel_tol=1e-9)


def test_pairwise_marginal():
    """A factor marginal F = e (the paper's PGM special case)."""
    m = chain_model(3, 2, seed=9)
    got = marginal(m, ("X1", "X2"))
    expected = brute_force_marginal(m, ("X1", "X2"))
    for t, v in got:
        assert math.isclose(v, expected[t], rel_tol=1e-9)


def test_partition_function_equals_total_mass():
    m = chain_model(3, 3, seed=2)
    z = partition_function(m)
    bf = brute_force_marginal(m, ())
    assert math.isclose(z, bf[()], rel_tol=1e-9)


def test_map_value_is_max_assignment_weight():
    m = chain_model(3, 2, seed=4)
    best = 0.0
    import itertools

    variables = sorted(m.variables, key=str)
    for assignment in itertools.product(*(m.domains[v] for v in variables)):
        env = dict(zip(variables, assignment))
        weight = 1.0
        for factor in m.factors.values():
            weight *= factor(tuple(env[v] for v in factor.schema))
        best = max(best, weight)
    assert math.isclose(map_value(m), best, rel_tol=1e-9)


def test_map_leq_partition_function():
    m = chain_model(4, 2, seed=8)
    assert map_value(m) <= partition_function(m) + 1e-12


def test_normalize_zero_mass_raises():
    f = Factor(("A", "B"), {}, REAL, "f")
    m = GraphicalModel({"f": f}, {"A": (0,), "B": (0,)})
    with pytest.raises(ValueError):
        marginal(m, ("A",), normalize=True)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 1000), st.integers(2, 4), st.integers(2, 3))
def test_chain_marginals_property(seed, length, dsize):
    m = chain_model(length, dsize, seed=seed)
    got = marginal(m, ("X0",))
    expected = brute_force_marginal(m, ("X0",))
    assert set(got.tuples()) == set(expected)
    for t, v in got:
        assert math.isclose(v, expected[t], rel_tol=1e-8)
