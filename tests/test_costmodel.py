"""Tests for the symbolic cost plane (:mod:`repro.costmodel`).

Three layers:

* the expression mini-language (exact integer algebra + optional sympy
  bridge);
* the kernel closed forms, validated against the timing recurrence on
  synthetic skeletons (the two-party routing kernel in particular);
* the end-to-end oracle: predictions must equal executed measurements
  bit-for-bit on covered cells — including the hypothesis-driven
  property sweep over the fuzz generator and the regression pin of the
  known-loose Ω̃ hard-forest case.
"""

import pytest

from repro.costmodel import (
    COVERED_CELLS,
    CostModelError,
    CostSkeleton,
    RouteSkeleton,
    StarSkeleton,
    add,
    ceildiv,
    cell_of,
    const,
    coverage_report,
    edge_digest,
    evaluate,
    evaluate_timing,
    floordiv,
    format_cell,
    format_kernel_table,
    have_sympy,
    is_covered,
    max_,
    mul,
    predict_costs,
    structural_costs,
    sym,
    to_sympy,
)
from repro.costmodel.formulas import two_party_route_rounds
from repro.lab.runner import execute_scenario
from repro.lab.spec import ScenarioSpec


# ---------------------------------------------------------------------------
# Expression layer
# ---------------------------------------------------------------------------


def test_expr_constant_folding():
    assert str(add(1, 2)) == "3"
    assert str(mul(2, 3)) == "6"
    assert str(max_(1, 5, 3)) == "5"
    assert str(ceildiv(7, 2)) == "4"
    assert str(floordiv(7, 2)) == "3"
    # Identity elements fold away.
    assert str(add(sym("x"), 0)) == "x"
    assert str(mul(sym("x"), 1)) == "x"
    assert str(mul(sym("x"), 0)) == "0"


def test_expr_evaluation_is_exact_integer_arithmetic():
    x, y = sym("x"), sym("y")
    env = {"x": 7, "y": 3}
    assert evaluate(add(x, mul(2, y)), env) == 13
    assert evaluate(ceildiv(x, y), env) == 3
    assert evaluate(floordiv(x, y), env) == 2
    assert evaluate(max_(x, y, 10), env) == 10
    # Operator sugar builds the same nodes.
    assert evaluate(x + y * 2, env) == 13


def test_expr_free_symbols_and_equality():
    e = add(sym("a"), mul(sym("b"), sym("a")))
    assert e.free_symbols() == ("a", "b")
    assert add(sym("a"), 1) == add(sym("a"), 1)
    assert add(sym("a"), 1) != add(sym("a"), 2)


def test_expr_missing_symbol_and_bad_divisor_raise():
    with pytest.raises(KeyError):
        evaluate(sym("nope"), {})
    with pytest.raises(ZeroDivisionError):
        evaluate(ceildiv(sym("x"), sym("d")), {"x": 1, "d": 0})
    with pytest.raises(ZeroDivisionError):
        evaluate(floordiv(sym("x"), sym("d")), {"x": 1, "d": 0})


def test_division_rendering_parenthesizes_compound_operands():
    rendered = str(floordiv(add(sym("a"), sym("b")), sym("c")))
    assert rendered == "floor((a + b) / c)"
    assert str(ceildiv(mul(2, sym("a")), sym("c"))) == "ceil((2*a) / c)"


@pytest.mark.skipif(not have_sympy(), reason="sympy not installed")
def test_sympy_bridge_agrees_with_pure_evaluator():
    import sympy

    x, y = sym("x"), sym("y")
    exprs = [
        add(x, mul(3, y)),
        ceildiv(add(x, y), const(4)),
        floordiv(mul(x, y), const(3)),
        max_(x, y, const(5)),
    ]
    for expr in exprs:
        converted = to_sympy(expr)
        for env in ({"x": 7, "y": 2}, {"x": 1, "y": 9}):
            subbed = converted.subs(
                {sympy.Symbol(k, integer=True, nonnegative=True): v
                 for k, v in env.items()}
            )
            assert int(subbed) == evaluate(expr, env)


# ---------------------------------------------------------------------------
# Coverage surface
# ---------------------------------------------------------------------------


def test_covered_cells_enumeration():
    # 3 hard families x 3 placements + 4 random families x 2 placements,
    # x 11 topologies x 2 engines.
    assert len(COVERED_CELLS) == (3 * 3 + 4 * 2) * 11 * 2
    assert ("hard-forest", "tree", "worst-case", "generator") in COVERED_CELLS
    assert ("acyclic", "ring", "round-robin", "compiled") in COVERED_CELLS
    # Random families never run under worst-case placement.
    assert ("acyclic", "ring", "worst-case", "generator") not in COVERED_CELLS


def test_cell_of_and_coverage_report():
    spec = ScenarioSpec(
        family="f", query="hard-star", query_params={"arms": 3},
        topology="line", topology_params={"n": 3}, n=12,
        assignment="worst-case", seed=1,
    )
    assert cell_of(spec) == ("hard-star", "line", "worst-case", "generator")
    assert is_covered(spec)
    fake_uncovered = ("mystery", "line", "round-robin", "generator")
    report = coverage_report([cell_of(spec), cell_of(spec), fake_uncovered])
    assert report["runs"] == 3
    assert report["covered_runs"] == 2
    assert report["covered_cells"] == [format_cell(cell_of(spec))]
    assert report["uncovered_cells"] == ["mystery@line/round-robin/generator"]


def test_edge_digest_is_canonical():
    a = {("p", "q"): 7, ("q", "p"): 3}
    b = {("q", "p"): 3, ("p", "q"): 7, ("p", "r"): 0}
    assert edge_digest(a) == edge_digest(b)  # order + zero links ignored
    assert edge_digest(a) != edge_digest({("p", "q"): 8, ("q", "p"): 3})


def test_kernel_table_renders_every_kernel():
    table = format_kernel_table()
    for name in (
        "scatter_tree_bits", "combine_tree_bits", "route_link_bits",
        "two_party_route_rounds", "single_placement_rounds",
    ):
        assert name in table


# ---------------------------------------------------------------------------
# Kernel closed forms vs the timing recurrence
# ---------------------------------------------------------------------------


def _route_only_skeleton(payload, tuple_bits, value_bits):
    """Two nodes, a -> b routing link, ``payload`` items at a."""
    return CostSkeleton(
        nodes=("a", "b"),
        output_player="b",
        capacity=max(tuple_bits, value_bits),
        tuple_bits=tuple_bits,
        value_bits=value_bits,
        stars=(),
        route=RouteSkeleton(
            parents={"a": "b", "b": None},
            payload_counts={"a": payload},
        ),
    )


@pytest.mark.parametrize("tuple_bits,value_bits", [(12, 1), (8, 8), (5, 32)])
@pytest.mark.parametrize("payload", [1, 2, 3, 7])
def test_two_party_route_rounds_kernel_matches_recurrence(
    payload, tuple_bits, value_bits
):
    skeleton = _route_only_skeleton(payload, tuple_bits, value_bits)
    timing = evaluate_timing(skeleton)
    env = {
        "B": skeleton.capacity, "b_t": tuple_bits, "b_v": value_bits,
        "P": payload,
    }
    assert timing.rounds == evaluate(two_party_route_rounds(), env)
    # The structural route_link_bits kernel: P*(b_t+b_v) + EOS.
    assert timing.total_bits == payload * (tuple_bits + value_bits) + 1
    assert timing.bits_per_edge == {
        ("a", "b"): payload * (tuple_bits + value_bits) + 1
    }


def test_structural_forms_match_recurrence_with_a_star():
    # One star: center root "a" broadcasting 5 slots down one tree edge
    # to "b", then 2 payload items route b -> a.
    skeleton = CostSkeleton(
        nodes=("a", "b"),
        output_player="a",
        capacity=8,
        tuple_bits=8,
        value_bits=1,
        stars=(
            StarSkeleton(
                star_id=0, center_edge="R",
                trees=({"a": None, "b": "a"},), counts=(5,),
            ),
        ),
        route=RouteSkeleton(
            parents={"b": "a", "a": None}, payload_counts={"b": 2}
        ),
    )
    total, per_edge, env = structural_costs(skeleton)
    timing = evaluate_timing(skeleton)
    assert evaluate(total, env) == timing.total_bits
    # scatter 32 + 5*8, combine 5*1, route 2*9 + 1.
    assert timing.total_bits == (32 + 40) + 5 + (18 + 1)
    assert {
        link: evaluate(expr, env) for link, expr in per_edge.items()
    } == timing.bits_per_edge
    assert timing.max_edge_bits_per_round <= skeleton.capacity


def test_colocated_skeleton_is_free():
    skeleton = CostSkeleton(
        nodes=("a",), output_player="a", capacity=8, tuple_bits=8,
        value_bits=1, stars=(),
        route=RouteSkeleton(parents={}, payload_counts={}),
    )
    timing = evaluate_timing(skeleton)
    assert timing.rounds == 0
    assert timing.total_bits == 0
    assert timing.max_edge_bits_per_round == 0


def test_round_overrun_raises_cost_model_error():
    skeleton = _route_only_skeleton(10, 12, 1)
    with pytest.raises(CostModelError, match="max_rounds"):
        evaluate_timing(skeleton, max_rounds=1)


# ---------------------------------------------------------------------------
# End-to-end oracle: prediction == execution
# ---------------------------------------------------------------------------


def _assert_exact(spec):
    result = execute_scenario(spec)
    block = result.cost_model
    assert block is not None and block["covered"], block
    assert block["exact_match"] is True, (
        f"cost model mispredicted {spec.label}: {block}"
    )
    # And a fresh prediction (no plan reuse) agrees with the recorded one.
    prediction = predict_costs(spec)
    assert prediction.metrics() == block["measured"]
    return result, prediction


def test_predict_matches_execution_on_random_cell():
    spec = ScenarioSpec(
        family="f", query="acyclic", query_params={"edges": 3, "arity": 2},
        topology="hypercube", topology_params={"dim": 2}, n=8,
        domain_size=4, semiring="counting", seed=11,
    )
    _assert_exact(spec)
    _assert_exact(spec.with_(engine="compiled"))
    _assert_exact(spec.with_(backend="columnar", solver="compiled"))


def test_predict_matches_execution_on_single_placement():
    spec = ScenarioSpec(
        family="f", query="tree", query_params={"vertices": 5},
        topology="star", topology_params={"leaves": 3}, n=8,
        domain_size=4, assignment="single", seed=5,
    )
    result, prediction = _assert_exact(spec)
    assert prediction.rounds == 0
    assert prediction.total_bits == 0
    assert result.measured_rounds == 0


def test_uncovered_cell_is_reported_not_gated():
    # 'degenerate' under worst-case placement is rejected by the lab
    # builder itself, so fabricate uncoveredness at the cell layer.
    assert ("degenerate", "clique", "worst-case", "generator") \
        not in COVERED_CELLS


def test_prediction_block_shape_in_result_record():
    spec = ScenarioSpec(
        family="f", query="hard-star", query_params={"arms": 3},
        topology="line", topology_params={"n": 3}, n=12,
        assignment="worst-case", seed=7,
    )
    record = execute_scenario(spec).deterministic_record()
    block = record["cost_model"]
    assert block["cell"] == ["hard-star", "line", "worst-case", "generator"]
    assert block["covered"] is True
    assert block["exact_match"] is True
    assert set(block["predicted"]) == {
        "rounds", "total_bits", "max_edge_bits_per_round",
        "bits_per_edge_digest",
    }
    assert block["predicted"] == block["measured"]


def test_predicted_edge_map_reproduces_cut_transcript():
    """The model prices the Lemma 4.4 cut transcript too: restricting
    the predicted per-link map to the min-cut edges reproduces the
    executed run's crossing bits exactly."""
    from repro.core.planner import Planner
    from repro.lab.runner import build_assignment, build_query, build_topology
    from repro.lowerbounds import cut_transcript, predicted_crossing_bits

    spec = ScenarioSpec(
        family="f", query="hard-path", query_params={"edges": 4},
        topology="ring", topology_params={"n": 5}, n=16,
        assignment="worst-case", seed=3,
    )
    built = build_query(spec)
    topology = build_topology(spec)
    planner = Planner(
        built.query, topology,
        assignment=build_assignment(spec, built, topology),
    )
    report = planner.execute(max_rounds=spec.max_rounds)
    transcript = cut_transcript(
        topology, planner.players, report.protocol.simulation
    )
    prediction = predict_costs(
        spec, plan=report.protocol.plan, nodes=topology.nodes
    )
    assert predicted_crossing_bits(
        transcript.crossing_edges, prediction.bits_per_edge
    ) == transcript.bits_crossing > 0


# ---------------------------------------------------------------------------
# Regression pin: the known-loose Ω̃ hard-forest case (PR 5's gap-0.79
# diagnostic) — the rounds-form formula under-shoots by a constant, but
# the symbolic model pins the run exactly.
# ---------------------------------------------------------------------------


def test_hard_forest_loose_gap_case_is_predicted_exactly():
    spec = ScenarioSpec(
        family="fuzz-hard-forest",
        query="hard-forest",
        query_params={"edges": 3, "trees": 3},
        topology="tree",
        topology_params={"branching": 2, "depth": 2},
        n=64,
        assignment="worst-case",
        seed=957508337,
    )
    result = execute_scenario(spec)
    # The diagnostic that motivated un-gating the rounds-form formula:
    # measured rounds undercut the Ω̃ formula (gap < 1) while the bits
    # floor holds comfortably.
    assert result.gap is not None and result.gap < 1.0
    assert result.tribes_bits_floor == 192
    assert result.cut_bits >= result.tribes_bits_floor
    # The symbolic model has no suppressed constant: it pins this exact
    # run — 151 rounds, 3659 bits, busiest link-round 12 = B.
    prediction = predict_costs(spec)
    assert prediction.rounds == result.measured_rounds == 151
    assert prediction.total_bits == result.total_bits == 3659
    assert prediction.max_edge_bits_per_round == 12 == prediction.environment["B"]
    assert result.cost_model["exact_match"] is True
    # The closed form is fully symbolic: every symbol is a structural
    # parameter, so the "constant" is not fitted anywhere.
    assert set(prediction.total_bits_expr.free_symbols()) <= set(
        prediction.environment
    )


def test_parallel_subphase_completion_blocks_fast_forward_replay():
    """Regression pin: the Hypothesis sweep's first real catch.

    On this two-tree star (both star trees run inside one node's
    ``ParallelOps`` group), the compiled engine's cycle fast-forward
    used to replay a steady cycle whose recorded signature contained a
    *finished* member's final slot send — the group's completion never
    moves the program index, so the ``moved_any`` jump guard could not
    see it — over-charging one convergecast slot per tree (here +64
    bits vs the generator engine).  ``ParallelOps.cycle_horizon`` now
    declines the jump while any member finished inside the cycle
    window; prediction, compiled measurement and generator measurement
    must all agree exactly.
    """
    spec = ScenarioSpec(
        family="fuzz-tree",
        query="tree",
        query_params={"edges": 4},
        topology="regular",
        topology_params={"degree": 3, "n": 8, "seed": 46},
        n=48,
        domain_size=8,
        semiring="min-plus",
        assignment="round-robin",
        max_rounds=2_000_000,
        engine="compiled",
        seed=394694135,
    )
    compiled = execute_scenario(spec)
    assert compiled.cost_model["exact_match"] is True, compiled.cost_model
    generator = execute_scenario(spec.with_(engine="generator"))
    assert compiled.total_bits == generator.total_bits == 8496
    assert compiled.measured_rounds == generator.measured_rounds == 36
    assert (
        compiled.cost_model["measured"] == generator.cost_model["measured"]
    )
