"""The batched suite runner — stacking, grouping, and the byte-identity
contract.

The tentpole claim of :mod:`repro.lab.batch` is that batching is purely
a throughput move: a batched run's deterministic records (answers,
rounds, per-edge bit accounting, observability counters — everything
:meth:`ScenarioResult.deterministic_record` serializes) are byte-for-
byte what a serial :func:`run_suite` produces.  The hypothesis property
here drives random fuzz-suite slices — every scenario swept across the
full engine x solver x backend x kernels grid — through both runners
and asserts exactly that.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import kernels
from repro.faq import FAQQuery, solve_variable_elimination
from repro.hypergraph import Hypergraph
from repro.lab import answer_digest, get_suite, run_suite
from repro.lab.batch import (
    SCENARIO_VAR,
    BatchParityError,
    plan_groups,
    run_suite_batched,
    stack_queries,
    structural_signature,
    unstack_answers,
    verify_group,
)
from repro.lab.generate import fuzz_suite
from repro.lab.runner import _execute_with_context
from repro.lab.spec import SuiteSpec
from repro.lab.suites import DEFAULT_SEED
from repro.semiring import BOOLEAN, Factor, get_semiring


# ---------------------------------------------------------------------------
# Stacking primitives
# ---------------------------------------------------------------------------


def _path_query(rows_r, rows_s, name="q"):
    """R(a,b) |x| S(b,c) over the counting semiring, free var ``a``."""
    counting = get_semiring("counting")
    h = Hypergraph({"R": ("a", "b"), "S": ("b", "c")})
    domains = {"a": (0, 1, 2), "b": (0, 1, 2), "c": (0, 1, 2)}
    factors = {
        "R": Factor(("a", "b"), {k: 1 for k in rows_r}, counting, name="R"),
        "S": Factor(("b", "c"), {k: 1 for k in rows_s}, counting, name="S"),
    }
    return FAQQuery(
        hypergraph=h,
        factors=factors,
        domains=domains,
        free_vars=("a",),
        semiring=counting,
        name=name,
    )


def test_stack_queries_shape_and_rows():
    q0 = _path_query([(0, 1)], [(1, 2)])
    q1 = _path_query([(2, 0), (1, 0)], [(0, 0)])
    stacked = stack_queries([q0, q1])
    assert stacked.free_vars == (SCENARIO_VAR, "a")
    assert stacked.backend == "columnar"
    assert stacked.domains[SCENARIO_VAR] == (0, 1)
    r = stacked.factors["R"]
    assert tuple(r.schema) == (SCENARIO_VAR, "a", "b")
    assert set(r.rows) == {(0, 0, 1), (1, 2, 0), (1, 1, 0)}


def test_stack_solve_unstack_matches_individual_solves():
    q0 = _path_query([(0, 1), (1, 1)], [(1, 0), (1, 2)])
    q1 = _path_query([(2, 2)], [(2, 0)])
    stacked = stack_queries([q0, q1])
    answer = solve_variable_elimination(stacked)
    per = unstack_answers(answer, ("a",), 2)
    for query, rows in zip((q0, q1), per):
        expected = solve_variable_elimination(query)
        assert answer_digest(("a",), rows) == answer_digest(
            tuple(expected.schema), expected.rows
        )


def test_structural_signature_ignores_data_not_shape():
    q0 = _path_query([(0, 1)], [(1, 2)])
    q1 = _path_query([(2, 2), (0, 0)], [(0, 1)])
    assert structural_signature(q0) == structural_signature(q1)
    different = FAQQuery(
        hypergraph=q0.hypergraph,
        factors=q0.factors,
        domains=q0.domains,
        free_vars=("a", "b"),
        semiring=q0.semiring,
    )
    assert structural_signature(q0) != structural_signature(different)


# ---------------------------------------------------------------------------
# Grouping and the stacked-solve oracle
# ---------------------------------------------------------------------------


def _small_axes_suite(count=1, master=DEFAULT_SEED, name="batch-test"):
    """``count`` fuzz identities swept across all 16 axis planes."""
    return fuzz_suite(master_seed=master, count=count, name=name)


def test_plan_groups_partitions_and_stacks_axis_planes():
    suite = _small_axes_suite(count=2)
    groups = plan_groups(list(suite.scenarios))
    total = sum(len(members) for _sig, members in groups)
    assert total == len(suite.scenarios)
    multi = [m for sig, m in groups if sig is not None and len(m) >= 2]
    # The 16 axis planes of one identity always share a signature.
    assert multi and max(len(m) for m in multi) >= 16


def test_verify_group_raises_on_corrupted_digest():
    suite = _small_axes_suite(count=1)
    groups = plan_groups(list(suite.scenarios))
    sig, members = next(
        (g for g in groups if g[0] is not None and len(g[1]) >= 2)
    )
    members = members[:2]
    results = [_execute_with_context(spec) for spec in members]
    verify_group(members, results)  # sane results pass
    results[1].answer_digest = "corrupted"
    with pytest.raises(BatchParityError, match="stacked solve disagreed"):
        verify_group(members, results)


# ---------------------------------------------------------------------------
# The byte-identity property
# ---------------------------------------------------------------------------


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    master=st.sampled_from((DEFAULT_SEED, 7, 20260807)),
    count=st.integers(min_value=1, max_value=2),
)
def test_batched_records_byte_identical_to_serial(master, count):
    """Random fuzz slices, all 16 planes each (both engines, both
    solvers, both backends, both kernel tiers): batched == serial."""
    suite = fuzz_suite(
        master_seed=master, count=count, name=f"prop-{master}-{count}"
    )
    batched = run_suite_batched(suite, baseline_sample=0)
    serial = run_suite(suite)
    assert [r.deterministic_record() for r in batched.results] == [
        r.deterministic_record() for r in serial.results
    ]


def test_batch_stats_and_twin_dedup():
    suite = _small_axes_suite(count=1)
    run = run_suite_batched(suite, baseline_sample=0)
    stats = run.batch
    assert stats["scenarios"] == 16
    assert stats["stacked_checks"] >= 1
    assert stats["scenarios_per_sec"] > 0
    if not kernels.HAVE_NUMBA:
        # Without numba the jit planes resolve to numpy: half the grid
        # is a bit-identical twin of the other half and is deduped.
        assert stats["plane_twins"] == 8
    else:
        assert stats["plane_twins"] == 0
