"""Unit and property tests for repro.semiring.semirings."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.semiring import (
    BOOLEAN,
    BUILTIN_SEMIRINGS,
    COUNTING,
    GF2,
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    REAL,
    check_semiring_axioms,
    get_semiring,
)

SAMPLES = {
    "boolean": [False, True],
    "counting": [0, 1, 2, 3, 7],
    "real": [0.0, 1.0, 0.5, 2.25],
    "min-plus": [math.inf, 0.0, 1.0, 2.5],
    "max-plus": [-math.inf, 0.0, 1.0, 2.5],
    "max-times": [0.0, 1.0, 0.25, 0.75],
    "gf2": [0, 1],
}


@pytest.mark.parametrize("name", sorted(BUILTIN_SEMIRINGS))
def test_builtin_semirings_satisfy_axioms(name):
    check_semiring_axioms(BUILTIN_SEMIRINGS[name], SAMPLES[name])


def test_get_semiring_roundtrip():
    for name in BUILTIN_SEMIRINGS:
        assert get_semiring(name).name == name


def test_get_semiring_unknown_raises():
    with pytest.raises(KeyError):
        get_semiring("no-such-semiring")


def test_sum_and_product_folds():
    assert COUNTING.sum([1, 2, 3]) == 6
    assert COUNTING.product([2, 3, 4]) == 24
    assert BOOLEAN.sum([]) is False
    assert BOOLEAN.product([]) is True
    assert MIN_PLUS.sum([3.0, 1.0, 2.0]) == 1.0
    assert MIN_PLUS.product([3.0, 1.0]) == 4.0


def test_sum_repeat_counting():
    assert COUNTING.sum_repeat(5, 0) == 0
    assert COUNTING.sum_repeat(5, 1) == 5
    assert COUNTING.sum_repeat(5, 7) == 35
    assert COUNTING.sum_repeat(3, 1000) == 3000


def test_sum_repeat_idempotent():
    assert BOOLEAN.sum_repeat(True, 100) is True
    assert BOOLEAN.sum_repeat(True, 0) is False
    assert MIN_PLUS.sum_repeat(2.0, 9) == 2.0


def test_sum_repeat_negative_raises():
    with pytest.raises(ValueError):
        COUNTING.sum_repeat(1, -1)


def test_gf2_is_a_field_fragment():
    assert GF2.add(1, 1) == 0
    assert GF2.add(1, 0) == 1
    assert GF2.mul(1, 1) == 1
    assert GF2.mul(1, 0) == 0
    assert GF2.sum_repeat(1, 2) == 0
    assert GF2.sum_repeat(1, 3) == 1


def test_real_eq_tolerates_float_noise():
    assert REAL.eq(0.1 + 0.2, 0.3)
    assert not REAL.eq(0.1, 0.2)


def test_is_zero():
    assert BOOLEAN.is_zero(False)
    assert not BOOLEAN.is_zero(True)
    assert MIN_PLUS.is_zero(math.inf)
    assert MAX_PLUS.is_zero(-math.inf)
    assert MAX_TIMES.is_zero(0.0)


@given(st.integers(0, 10_000), st.integers(0, 50))
def test_sum_repeat_matches_naive_counting(value, times):
    assert COUNTING.sum_repeat(value, times) == value * times


@given(st.booleans(), st.booleans(), st.booleans())
def test_boolean_distributivity_property(a, b, c):
    lhs = BOOLEAN.mul(a, BOOLEAN.add(b, c))
    rhs = BOOLEAN.add(BOOLEAN.mul(a, b), BOOLEAN.mul(a, c))
    assert lhs == rhs


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=20)
)
def test_real_sum_matches_math_fsum(values):
    assert math.isclose(REAL.sum(values), math.fsum(values), rel_tol=1e-9, abs_tol=1e-6)
