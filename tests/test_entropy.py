"""Tests for the min-entropy toolkit (Section 6.2, Appendices H/I)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy import (
    conditional_smooth_min_entropy,
    guessing_probability,
    inner_product_distance,
    lemma_6_1_bound,
    lemma_6_3_bound,
    matvec_min_entropy,
    min_entropy,
    planted_deficiency_matrices,
    shannon_counterexample,
    shannon_entropy,
    smooth_min_entropy,
    statistical_distance,
    theorem_h9_bound,
    uniform,
    uniform_matrices,
)


def test_min_entropy_uniform():
    assert min_entropy(uniform(16)) == pytest.approx(4.0)


def test_min_entropy_peaked():
    assert min_entropy({0: 0.5, 1: 0.25, 2: 0.25}) == pytest.approx(1.0)


def test_shannon_vs_min_entropy():
    d = {0: 0.5, 1: 0.25, 2: 0.25}
    assert min_entropy(d) <= shannon_entropy(d)
    u = uniform(8)
    assert min_entropy(u) == pytest.approx(shannon_entropy(u))


def test_validation():
    with pytest.raises(ValueError):
        min_entropy({0: 0.5, 1: 0.6})
    with pytest.raises(ValueError):
        min_entropy({0: -0.1, 1: 1.1})
    with pytest.raises(ValueError):
        smooth_min_entropy(uniform(4), 1.5)
    with pytest.raises(ValueError):
        uniform(0)


def test_smooth_min_entropy_zero_eps_is_plain():
    d = {0: 0.5, 1: 0.5}
    assert smooth_min_entropy(d, 0.0) == pytest.approx(min_entropy(d))


def test_smooth_min_entropy_clips_peak():
    # Clipping eps=0.25 off {0.5, 0.25, 0.25} flattens to max 0.25.
    assert smooth_min_entropy({0: 0.5, 1: 0.25, 2: 0.25}, 0.25) == pytest.approx(2.0)


def test_smooth_min_entropy_monotone_in_eps():
    d = {0: 0.4, 1: 0.3, 2: 0.2, 3: 0.1}
    values = [smooth_min_entropy(d, e) for e in (0.0, 0.1, 0.2, 0.3)]
    assert values == sorted(values)


def test_smooth_min_entropy_uniform_unchanged_small_eps():
    # For uniform, clipping eps still raises entropy slightly (atoms drop
    # below 1/n), so it must be >= the plain value.
    u = uniform(8)
    assert smooth_min_entropy(u, 0.1) >= min_entropy(u)


def test_conditional_smooth_min_entropy_independent():
    joint = {(x, y): 1 / 8 for x in range(4) for y in range(2)}
    assert conditional_smooth_min_entropy(joint, 0.0) == pytest.approx(2.0)


def test_conditional_smooth_min_entropy_determined():
    joint = {(y, y): 1 / 4 for y in range(4)}
    assert conditional_smooth_min_entropy(joint, 0.0) == pytest.approx(0.0)


def test_guessing_probability_and_lemma_6_3():
    # X determined by Y -> guess with probability 1.
    joint = {(y, y): 1 / 4 for y in range(4)}
    assert guessing_probability(joint) == pytest.approx(1.0)
    # Independent uniform X given Y.
    joint2 = {(x, y): 1 / 8 for x in range(4) for y in range(2)}
    p = guessing_probability(joint2)
    assert p == pytest.approx(0.25)
    h = conditional_smooth_min_entropy(joint2, 0.0)
    assert p <= lemma_6_3_bound(h, 0.0) + 1e-9


def test_lemma_6_1_bound_shape():
    # Conditioning on an l-bit variable costs at most l + log(1/eps').
    rhs = lemma_6_1_bound(10.0, 3.0, 0.25)
    assert rhs == pytest.approx(10.0 - 3.0 - 2.0)
    with pytest.raises(ValueError):
        lemma_6_1_bound(10.0, 3.0, 0.0)


def test_statistical_distance():
    assert statistical_distance(uniform(2), uniform(2)) == 0.0
    assert statistical_distance({0: 1.0}, {1: 1.0}) == 1.0


# ---------------------------------------------------------------------------
# Theorem H.9 (inner-product extractor), numerically exact for small n
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n", [3, 4, 5])
def test_inner_product_extractor_within_bound_uniform(n):
    d = inner_product_distance(uniform(2**n), uniform(2**n), n)
    assert d <= theorem_h9_bound(n, n, n) + 1e-12


def test_inner_product_extractor_flat_sources():
    # y uniform on half the space, z uniform: H∞ = n-1 + n = 2n-1 -> Δ = (n-1)/n.
    n = 4
    half = {v: 1 / 8 for v in range(8)}
    d = inner_product_distance(half, uniform(16), n)
    assert d <= theorem_h9_bound(n, n - 1, n) + 1e-12


def test_inner_product_extractor_fails_without_entropy():
    # Point mass on y=0 gives <y, z> = 0 always: distance 1/2.
    n = 3
    d = inner_product_distance({0: 1.0}, uniform(8), n)
    assert d == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Theorem 6.3 shape (matrix-vector amplification), exact for n = 3
# ---------------------------------------------------------------------------


def test_matvec_amplifies_min_entropy_uniform_a():
    n = 3
    da = uniform_matrices(n)
    dx = {1: 0.5, 2: 0.5}  # H∞(x) = 1
    h_out = matvec_min_entropy(da, dx, n)
    assert h_out >= n - 0.2  # nearly full: uniform A randomizes any x != 0


def test_matvec_amplification_degrades_with_planted_a():
    n = 3
    dx = {1: 0.5, 2: 0.5}
    full = matvec_min_entropy(uniform_matrices(n), dx, n)
    planted = matvec_min_entropy(planted_deficiency_matrices(n, 2), dx, n)
    assert planted < full  # low-entropy A amplifies less


def test_matvec_zero_vector_not_amplified():
    n = 3
    da = uniform_matrices(n)
    dx = {0: 1.0}  # x = 0 deterministically: Ax = 0 always
    assert matvec_min_entropy(da, dx, n) == pytest.approx(0.0)


# ---------------------------------------------------------------------------
# Appendix I.3: the Shannon-entropy counterexample
# ---------------------------------------------------------------------------


def test_shannon_counterexample_shape():
    out = shannon_counterexample(8, 2)
    # H(x) ~ 2 alpha (1 - alpha) n; conditional collapses to ~ alpha n.
    assert out["h_x"] > 1.5 * out["h_ax_given_fa_x"]
    assert out["h_ax_given_fa_x"] <= out["claimed_upper"] + 1e-9


def test_shannon_counterexample_factor_two_for_small_alpha():
    out = shannon_counterexample(16, 2)  # alpha = 1/8
    ratio = out["h_x"] / max(out["h_ax_given_fa_x"], 1e-9)
    assert 1.6 <= ratio <= 2.4  # "about a factor two" (Appendix I.3)


def test_shannon_counterexample_validation():
    with pytest.raises(ValueError):
        shannon_counterexample(4, 0)
    with pytest.raises(ValueError):
        shannon_counterexample(4, 4)


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------


@settings(max_examples=40)
@given(
    st.lists(st.floats(0.01, 1.0), min_size=2, max_size=16),
    st.floats(0.0, 0.5),
)
def test_smooth_min_entropy_at_least_plain(weights, eps):
    total = math.fsum(weights)
    dist = {i: w / total for i, w in enumerate(weights)}
    assert smooth_min_entropy(dist, eps) >= min_entropy(dist) - 1e-9


@settings(max_examples=40)
@given(st.lists(st.floats(0.01, 1.0), min_size=2, max_size=16))
def test_min_entropy_at_most_log_support(weights):
    total = math.fsum(weights)
    dist = {i: w / total for i, w in enumerate(weights)}
    assert min_entropy(dist) <= math.log2(len(dist)) + 1e-9


@settings(max_examples=25)
@given(st.lists(st.floats(0.01, 1.0), min_size=2, max_size=12))
def test_guessing_probability_matches_min_entropy(weights):
    """With trivial Y, guessing probability = 2^{-H∞(X)}."""
    total = math.fsum(weights)
    joint = {(i, 0): w / total for i, w in enumerate(weights)}
    p = guessing_probability(joint)
    assert p == pytest.approx(2.0 ** (-min_entropy({i: w / total for i, w in enumerate(weights)})))
