"""Compiled FAQ query plans: lowering, fused kernels, interning, caching.

The contract under test: ``solver="compiled"`` produces byte-identical
answers to the operator-at-a-time path on every solver entry point, the
fused join+marginalize kernel is equivalent to ``join`` then
``marginalize`` across semirings, dictionary interning round-trips
exactly, and plans are cached by query *structure* so a grid sweep that
varies only seed/N/assignment compiles once.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import Planner
from repro.faq import (
    PLAN_CACHE,
    PRODUCT,
    Aggregate,
    DictionaryPool,
    ExecutionStats,
    FAQQuery,
    bcq,
    execute_plan,
    fused_join_marginalize,
    plan_naive,
    plan_variable_elimination,
    scalar_value,
    solve_bcq_yannakakis,
    solve_message_passing,
    solve_naive,
    solve_variable_elimination,
    structural_signature,
    validate_solver,
)
from repro.faq.plan import MarginalizeOp, PlanCache, QueryPlan
from repro.faq.variable_elimination import greedy_elimination_order
from repro.hypergraph import Hypergraph
from repro.network.topology import Topology
from repro.protocols.faq_protocol import run_distributed_faq
from repro.semiring import (
    BOOLEAN,
    COUNTING,
    MIN_PLUS,
    REAL,
    ColumnarFactor,
    Factor,
)
from repro.semiring.columnar import Dictionary, _encode_column
from repro.workloads import (
    domains_for,
    random_acyclic_hypergraph,
    random_d_degenerate_query,
    random_instance,
    random_tree_query,
)

SEMIRING_VALUES = {
    "boolean": st.just(True),
    "counting": st.integers(min_value=1, max_value=9),
    # Small integers as floats: ⊕-folds of any order are exact, so the
    # fused kernel must agree *bitwise* with the unfused path even though
    # float addition is not associative in general (the fold-order edge
    # case this suite pins).
    "real": st.integers(min_value=1, max_value=9).map(float),
    "min-plus": st.integers(min_value=-6, max_value=6).map(float),
}
SEMIRINGS = {
    "boolean": BOOLEAN,
    "counting": COUNTING,
    "real": REAL,
    "min-plus": MIN_PLUS,
}


# ---------------------------------------------------------------------------
# Whole-query parity: compiled vs operator on all four solvers
# ---------------------------------------------------------------------------


def _random_query(semiring, seed, n=24, backend=None, edges=4, arity=3):
    h = random_acyclic_hypergraph(edges, arity, seed=seed)
    factors, domains = random_instance(
        h, domain_size=8, relation_size=n, seed=seed + 1, semiring=semiring,
        weighted=semiring.name in ("real", "min-plus"),
    )
    return FAQQuery(
        hypergraph=h, factors=factors, domains=domains, free_vars=(),
        semiring=semiring, backend=backend,
    )


@pytest.mark.parametrize("backend", [None, "dict", "columnar"])
@pytest.mark.parametrize(
    "semiring", [BOOLEAN, COUNTING, REAL, MIN_PLUS], ids=lambda s: s.name
)
def test_compiled_parity_variable_elimination(semiring, backend):
    for seed in (3, 7, 11):
        q = _random_query(semiring, seed, backend=backend)
        ref = solve_variable_elimination(q)
        out = solve_variable_elimination(q, solver="compiled")
        assert out == ref
        assert dict(out.rows) == dict(ref.rows)


@pytest.mark.parametrize("backend", [None, "columnar"])
def test_compiled_parity_naive_and_message_passing(backend):
    for semiring in (BOOLEAN, COUNTING):
        q = _random_query(semiring, 5, backend=backend)
        assert solve_naive(q, solver="compiled") == solve_naive(q)
        assert solve_message_passing(q, solver="compiled") == (
            solve_message_passing(q)
        )


@pytest.mark.parametrize("backend", [None, "columnar"])
def test_compiled_parity_yannakakis(backend):
    for seed in (2, 9):
        h = random_acyclic_hypergraph(4, 3, seed=seed)
        factors, domains = random_instance(
            h, domain_size=6, relation_size=20, seed=seed + 1
        )
        q = bcq(h, factors, domains, backend=backend)
        assert solve_bcq_yannakakis(q, solver="compiled") == (
            solve_bcq_yannakakis(q)
        )


def test_compiled_yannakakis_empty_relation_is_false():
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C")})
    rels = {
        "R": Factor.from_tuples(("A", "B"), [(1, 2)]),
        "S": Factor.from_tuples(("B", "C"), ()),
    }
    q = bcq(h, rels, domains_for(h, 4))
    assert solve_bcq_yannakakis(q) is False
    assert solve_bcq_yannakakis(q, solver="compiled") is False


def test_compiled_parity_mixed_aggregates_and_free_vars():
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C")})
    rels = {
        "R": Factor(("A", "B"), {(1, 1): 2.0, (1, 2): 3.0, (2, 2): 1.0}, REAL),
        "S": Factor(("B", "C"), {(1, 1): 4.0, (2, 1): 5.0, (2, 3): 2.0}, REAL),
    }
    q = FAQQuery(
        hypergraph=h,
        factors=rels,
        domains={"A": (1, 2), "B": (1, 2), "C": (1, 3)},
        free_vars=("A",),
        semiring=REAL,
        aggregates={"C": PRODUCT},
        bound_order=("B", "C"),
    )
    ref = solve_variable_elimination(q)
    assert solve_variable_elimination(q, solver="compiled") == ref
    assert solve_naive(q, solver="compiled") == solve_naive(q)


def test_compiled_rejects_unknown_solver_and_bad_orders():
    q = _random_query(BOOLEAN, 1)
    with pytest.raises(ValueError, match="unknown solver"):
        solve_variable_elimination(q, solver="jit")
    assert validate_solver(None) == "operator"
    with pytest.raises(ValueError, match="exactly the bound"):
        solve_variable_elimination(q, order=("nope",), solver="compiled")


def test_compiled_dangling_bound_variable_raises_like_operator():
    # Z is an isolated vertex of H: bound, but in no factor.  Variable
    # elimination must reject it on both paths; solve_naive handles it.
    h = Hypergraph({"R": ("A",)}, vertices=("Z",))
    q = FAQQuery(
        hypergraph=h,
        factors={"R": Factor(("A",), {(1,): 2, (2,): 3}, COUNTING)},
        domains={"A": (1, 2), "Z": (1, 2, 3)},
        free_vars=("A",),
        semiring=COUNTING,
    )
    with pytest.raises(ValueError, match="bound variables in no factor"):
        solve_variable_elimination(q)
    with pytest.raises(ValueError, match="bound variables in no factor"):
        solve_variable_elimination(q, solver="compiled")
    assert solve_naive(q, solver="compiled") == solve_naive(q)


# ---------------------------------------------------------------------------
# Plan structure
# ---------------------------------------------------------------------------


def test_ve_plan_fuses_every_plain_sum_elimination():
    q = _random_query(COUNTING, 4)
    plan = plan_variable_elimination(q)
    assert plan.strategy == "variable-elimination"
    assert plan.fused_ops == len(q.bound_vars)
    assert not any(isinstance(op, MarginalizeOp) for op in plan.ops)


def test_ve_plan_keeps_product_aggregates_unfused():
    h = Hypergraph({"R": ("A", "B")})
    q = FAQQuery(
        hypergraph=h,
        factors={"R": Factor(("A", "B"), {(1, 1): 2.0, (2, 1): 3.0}, REAL)},
        domains={"A": (1, 2), "B": (1,)},
        free_vars=("B",),
        semiring=REAL,
        aggregates={"A": PRODUCT},
    )
    plan = plan_variable_elimination(q)
    assert plan.fused_ops == 0
    assert any(isinstance(op, MarginalizeOp) for op in plan.ops)


def test_naive_plan_is_literal_join_then_aggregate():
    q = _random_query(COUNTING, 4)
    plan = plan_naive(q)
    assert plan.fused_ops == 0
    kinds = [type(op).__name__ for op in plan.ops]
    assert kinds.count("JoinOp") == len(q.factors) - 1


def test_plan_schemas_track_operator_results():
    q = _random_query(COUNTING, 6, backend="columnar")
    plan = plan_variable_elimination(q)
    stats = ExecutionStats()
    out = execute_plan(plan, q, stats)
    assert tuple(out.schema) == q.free_vars
    assert stats.ops == len(plan.ops)
    assert stats.fused_vectorized + stats.fused_fallback == plan.fused_ops


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


def test_plan_cache_reuses_across_seeds_and_sizes():
    PLAN_CACHE.clear()
    h = random_tree_query(5, seed=13)
    plans = []
    for seed, n in ((1, 8), (2, 16), (3, 32)):
        factors, domains = random_instance(
            h, domain_size=8, relation_size=n, seed=seed
        )
        q = bcq(h, factors, domains)
        plans.append(plan_variable_elimination(q))
    assert PLAN_CACHE.stats.misses == 1
    assert PLAN_CACHE.stats.hits == 2
    assert plans[0] is plans[1] is plans[2]


def test_plan_cache_second_sweep_is_all_hits():
    """The acceptance criterion: a grid sweep re-run hits 100%."""
    PLAN_CACHE.clear()
    queries = []
    for seed in (21, 22):
        h = random_d_degenerate_query(5, 2, seed=seed)
        for n in (8, 16):
            factors, domains = random_instance(
                h, domain_size=8, relation_size=n, seed=seed + n
            )
            queries.append(bcq(h, factors, domains))
    for q in queries:
        solve_variable_elimination(q, solver="compiled")
    first = PLAN_CACHE.stats
    assert first.misses == 2  # one compilation per structure
    baseline_misses = first.misses
    before_hits = first.hits
    for q in queries:
        solve_variable_elimination(q, solver="compiled")
    second = PLAN_CACHE.stats
    assert second.misses == baseline_misses
    assert second.hits == before_hits + len(queries)
    assert second.hit_rate > 0.5


def test_plan_cache_key_separates_structure_axes():
    q = _random_query(COUNTING, 8)
    base = structural_signature(q, "variable-elimination")
    assert base is not None
    assert structural_signature(q, "naive") != base
    assert structural_signature(
        q.with_backend("columnar"), "variable-elimination"
    ) != base
    q_real = _random_query(REAL, 8)
    assert structural_signature(q_real, "variable-elimination") != base


def test_custom_aggregate_combine_is_uncacheable_but_correct():
    PLAN_CACHE.clear()
    h = Hypergraph({"R": ("A", "B")})
    q = FAQQuery(
        hypergraph=h,
        factors={"R": Factor(("A", "B"), {(1, 1): 2, (2, 1): 3}, COUNTING)},
        domains={"A": (1, 2), "B": (1,)},
        free_vars=("B",),
        semiring=COUNTING,
        aggregates={"A": Aggregate("max", "semiring", combine=max)},
    )
    assert structural_signature(q, "variable-elimination") is None
    ref = solve_variable_elimination(q)
    assert solve_variable_elimination(q, solver="compiled") == ref
    assert PLAN_CACHE.stats.uncacheable >= 1


def test_plan_cache_lru_eviction():
    cache = PlanCache(maxsize=2)
    dummy = QueryPlan("naive", (), 0, 1)
    cache.put("a", dummy)
    cache.put("b", dummy)
    assert cache.get("a") is dummy  # refresh a
    cache.put("c", dummy)  # evicts b
    assert cache.get("b") is None
    assert cache.get("a") is dummy
    assert len(cache) == 2


# ---------------------------------------------------------------------------
# Dictionary interning
# ---------------------------------------------------------------------------


def _columnar(schema, rows, semiring=BOOLEAN, name=None):
    return ColumnarFactor(schema, rows, semiring, name)


def test_interning_aligns_shared_dictionaries_and_round_trips():
    f = _columnar(("A", "B"), {(3, 1): True, (5, 2): True, (9, 1): True})
    g = _columnar(("A", "C"), {(5, 7): True, (4, 7): True})
    pool = DictionaryPool()
    interned = pool.intern_factors({"F": f, "G": g})
    fi, gi = interned["F"], interned["G"]
    assert fi.dictionary("A") is gi.dictionary("A")
    assert dict(fi.rows) == dict(f.rows)
    assert dict(gi.rows) == dict(g.rows)
    # Unshared variables are left untouched.
    assert gi.dictionary("C") is g.dictionary("C")


def test_interning_superset_keeps_widest_codes_verbatim():
    wide = _columnar(("A",), {(i,): True for i in range(16)})
    narrow = _columnar(("A",), {(3,): True, (7,): True})
    pool = DictionaryPool()
    interned = pool.intern_factors({"W": wide, "N": narrow})
    assert interned["W"] is wide  # identity: no re-code for the widest
    assert interned["N"].dictionary("A") is wide.dictionary("A")
    assert dict(interned["N"].rows) == dict(narrow.rows)


def test_interning_mixed_types_falls_back_and_round_trips():
    f = _columnar(("A", "B"), {(("t", 1), 1): True, (4, 2): True})
    g = _columnar(("A",), {(4,): True, ("x",): True})
    pool = DictionaryPool()
    interned = pool.intern_factors({"F": f, "G": g})
    assert interned["F"].dictionary("A") is interned["G"].dictionary("A")
    assert dict(interned["F"].rows) == dict(f.rows)
    assert dict(interned["G"].rows) == dict(g.rows)


def test_interning_string_and_float_dictionaries():
    f = _columnar(("A",), {("aa",): True, ("bee",): True})
    g = _columnar(("A",), {("bee",): True, ("c",): True})
    interned = DictionaryPool().intern_factors({"F": f, "G": g})
    assert interned["F"].dictionary("A") is interned["G"].dictionary("A")
    assert dict(interned["G"].rows) == dict(g.rows)

    x = _columnar(("V",), {(0.5,): True, (1.25,): True})
    y = _columnar(("V",), {(1.25,): True, (2.75,): True})
    interned = DictionaryPool().intern_factors({"X": x, "Y": y})
    assert dict(interned["X"].rows) == dict(x.rows)
    assert dict(interned["Y"].rows) == dict(y.rows)


# ---------------------------------------------------------------------------
# Fused kernel ≡ join-then-marginalize (hypothesis property tests)
# ---------------------------------------------------------------------------


def _factor_rows(draw, schema, values, max_rows=8, domain=range(4)):
    rows = draw(
        st.dictionaries(
            st.tuples(*[st.sampled_from(list(domain)) for _ in schema]),
            values,
            max_size=max_rows,
        )
    )
    return rows


@st.composite
def fused_case(draw):
    name = draw(st.sampled_from(sorted(SEMIRING_VALUES)))
    semiring = SEMIRINGS[name]
    values = SEMIRING_VALUES[name]
    shapes = draw(
        st.sampled_from(
            [
                (("V", "A"),),
                (("V", "A"), ("V", "B")),
                (("V", "A"), ("V", "B"), ("V", "C")),
                (("V",), ("V",)),
                (("A", "V"), ("V", "B"), ("B", "C")),
            ]
        )
    )
    factors = {}
    for i, schema in enumerate(shapes):
        rows = _factor_rows(draw, schema, values)
        factors[f"F{i}"] = ColumnarFactor(schema, rows, semiring)
    return semiring, factors


@settings(max_examples=120, deadline=None)
@given(fused_case())
def test_fused_kernel_equals_join_then_marginalize(case):
    from repro.faq.operations import marginalize, multi_join

    semiring, factors = case
    interned = DictionaryPool().intern_factors(factors)
    parts = list(interned.values())
    merged = []
    for f in parts:
        merged += [v for v in f.schema if v not in merged]
    out_schema = tuple(v for v in merged if v != "V")

    fused = fused_join_marginalize(parts, "V", out_schema, semiring)
    reference = marginalize(
        multi_join(list(factors.values())), "V", semiring.add
    )
    assert fused is not None
    assert fused == reference
    # Exact value parity, not just semiring-eq: the chosen annotations
    # make every ⊕-fold order exact (the float fold-order edge case).
    assert dict(fused.rows) == dict(reference.rows)


@settings(max_examples=60, deadline=None)
@given(fused_case())
def test_compiled_ve_solver_matches_operator_on_generated_queries(case):
    semiring, factors = case
    schemas = {name: f.schema for name, f in factors.items()}
    h = Hypergraph(schemas)
    domains = {v: tuple(range(4)) for v in h.vertices}
    q = FAQQuery(
        hypergraph=h, factors=dict(factors), domains=domains,
        free_vars=(), semiring=semiring,
    )
    ref = solve_variable_elimination(q)
    out = solve_variable_elimination(q, solver="compiled")
    assert out == ref
    assert dict(out.rows) == dict(ref.rows)


def test_fused_kernel_declines_uninterned_dictionaries():
    f = _columnar(("V", "A"), {(1, 1): True, (2, 1): True})
    g = _columnar(("V", "B"), {(1, 3): True})
    # Dictionaries share values but not identity: the kernel must decline
    # rather than misread codes.
    assert fused_join_marginalize([f, g], "V", ("A", "B"), BOOLEAN) is None


def test_fused_kernel_int64_overflow_guard():
    big = (2 ** 62) + 1
    f = ColumnarFactor(("V",), {(1,): big}, COUNTING)
    g = ColumnarFactor(("V",), {(1,): 4}, COUNTING)
    interned = DictionaryPool().intern_factors({"F": f, "G": g})
    assert (
        fused_join_marginalize(
            list(interned.values()), "V", (), COUNTING
        )
        is None
    )


# ---------------------------------------------------------------------------
# Satellite: float fast path in _encode_column
# ---------------------------------------------------------------------------


def _loop_encode(col):
    """The generic first-appearance encoder (reference for parity)."""
    dictionary, code_map, codes = [], {}, []
    for x in col:
        c = code_map.get(x)
        if c is None:
            c = len(dictionary)
            code_map[x] = c
            dictionary.append(x)
        codes.append(c)
    return codes, dictionary


@given(
    st.lists(
        st.one_of(
            st.integers(min_value=-50, max_value=50).map(float),
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_subnormal=False,
            ),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_encode_column_float_fast_path_parity(col):
    if any(x == 0.0 and math.copysign(1.0, x) < 0 for x in col):
        col = [abs(x) if x == 0.0 else x for x in col]
    codes, dictionary = _encode_column(col, len(col))
    assert isinstance(dictionary, Dictionary)
    assert dictionary.array is not None
    decoded = [dictionary[c] for c in codes.tolist()]
    assert decoded == col
    # Same decoded column as the generic loop (different codings allowed).
    loop_codes, loop_dict = _loop_encode(col)
    assert [loop_dict[c] for c in loop_codes] == col
    assert sorted(dictionary) == sorted(loop_dict)


def test_encode_column_rejects_promoted_huge_int_columns():
    # np.asarray promotes ints >= 2**63 to float64; accepting that as the
    # kind-"f" fast path would decode lossily.  Must take the exact loop.
    big = 2 ** 63 + 1
    codes, dictionary = _encode_column([big, 5, 5], 3)
    assert getattr(dictionary, "array", None) is None  # generic loop ran
    assert [dictionary[c] for c in codes.tolist()] == [big, 5, 5]
    from repro.faq.executor import _dictionary_array

    assert _dictionary_array([big, 5]) is None


def test_encode_column_float_guards_nan_and_negative_zero():
    codes, dictionary = _encode_column([1.0, float("nan"), 2.0], 3)
    assert getattr(dictionary, "array", None) is None  # generic loop ran
    codes, dictionary = _encode_column([-0.0, 1.0], 2)
    assert getattr(dictionary, "array", None) is None
    assert math.copysign(1.0, dictionary[codes.tolist()[0]]) < 0


def test_columnar_factor_with_float_domain_round_trips():
    rows = {(0.5, 1.25): 2.0, (3.75, 1.25): 1.5, (0.5, 8.0): 0.25}
    dense = ColumnarFactor(("X", "Y"), rows, REAL)
    assert dict(dense.rows) == rows
    assert isinstance(dense.dictionary("X"), Dictionary)
    plain = Factor(("X", "Y"), rows, REAL)
    assert dense == plain


# ---------------------------------------------------------------------------
# Satellite: incremental greedy elimination order
# ---------------------------------------------------------------------------


def _reference_greedy_order(query):
    """The seed's O(V²·F) implementation, kept as the oracle."""
    schemas = [set(f.schema) for f in query.factors.values()]
    remaining = set(query.bound_vars)
    order = []
    while remaining:

        def cost(var):
            touching = [s for s in schemas if var in s]
            merged = set()
            for s in touching:
                merged |= s
            return (len(touching), len(merged), str(var))

        var = min(remaining, key=cost)
        order.append(var)
        remaining.discard(var)
        touching = [s for s in schemas if var in s]
        schemas = [s for s in schemas if var not in s]
        if touching:
            merged = set()
            for s in touching:
                merged |= s
            merged.discard(var)
            schemas.append(merged)
    return tuple(order)


@pytest.mark.parametrize("seed", [1, 5, 9, 13, 17])
def test_incremental_greedy_order_matches_reference(seed):
    for build in (
        lambda s: random_acyclic_hypergraph(6, 3, seed=s),
        lambda s: random_tree_query(6, seed=s),
        lambda s: random_d_degenerate_query(7, 2, seed=s),
    ):
        h = build(seed)
        factors, domains = random_instance(
            h, domain_size=4, relation_size=8, seed=seed
        )
        q = bcq(h, factors, domains)
        assert greedy_elimination_order(q) == _reference_greedy_order(q)


def _assert_perfect_order(h):
    """On an acyclic query, every elimination step's joined schema must fit
    inside some original hyperedge (width-1 behaviour: no intermediate
    factor ever exceeds an input relation's schema)."""
    factors = {
        name: Factor.from_tuples(tuple(sorted(h.edge(name), key=str)), ())
        for name in h.edge_names
    }
    q = bcq(h, factors, domains_for(h, 2))
    order = greedy_elimination_order(q)
    assert set(order) == q.bound_vars
    edges = [set(e) for e in h.edge_sets()]
    schemas = [set(f.schema) for f in q.factors.values()]
    for var in order:
        touching = [s for s in schemas if var in s]
        merged = set()
        for s in touching:
            merged |= s
        assert any(
            merged <= edge for edge in edges
        ), f"eliminating {var!r} merges {sorted(merged, key=str)}"
        schemas = [s for s in schemas if var not in s]
        merged.discard(var)
        schemas.append(merged)


def test_greedy_order_is_perfect_on_acyclic_table1_queries():
    _assert_perfect_order(Hypergraph.star(4))  # table1 row 1 (hard-star)
    _assert_perfect_order(Hypergraph.path(4))  # table1 row 2 (hard-path)
    for seed in (1, 2, 3):
        _assert_perfect_order(random_acyclic_hypergraph(5, 3, seed=seed))


# ---------------------------------------------------------------------------
# The solver axis through the protocol stack
# ---------------------------------------------------------------------------


def test_solver_axis_preserves_protocol_metrics():
    h = Hypergraph({"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D")})
    rels = {
        "R": Factor.from_tuples(("A", "B"), [(1, 0), (2, 0)]),
        "S": Factor.from_tuples(("A", "C"), [(2, 5), (3, 5)]),
        "T": Factor.from_tuples(("A", "D"), [(2, 9)]),
    }
    q = bcq(h, rels, domains_for(h, 10))
    topo = Topology.line(3)
    assignment = {"R": topo.nodes[0], "S": topo.nodes[1], "T": topo.nodes[2]}
    reports = {
        solver: run_distributed_faq(q, topo, assignment, solver=solver)
        for solver in ("operator", "compiled")
    }
    op, comp = reports["operator"], reports["compiled"]
    assert comp.answer == op.answer
    assert comp.rounds == op.rounds
    assert comp.total_bits == op.total_bits
    assert comp.simulation.bits_per_edge == op.simulation.bits_per_edge


def test_planner_solver_axis_matches():
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C")})
    factors, domains = random_instance(h, domain_size=6, relation_size=12, seed=3)
    q = bcq(h, factors, domains)
    topo = Topology.ring(4)
    results = {}
    for solver in ("operator", "compiled"):
        report = Planner(q, topo, solver=solver).execute()
        assert report.correct
        results[solver] = report
    assert results["operator"].answer == results["compiled"].answer
    assert (
        results["operator"].measured_rounds
        == results["compiled"].measured_rounds
    )
    assert results["compiled"].solver_wall_time >= 0.0
    with pytest.raises(ValueError, match="unknown solver"):
        Planner(q, topo, solver="nope")


def test_scalar_answer_matches_across_solvers():
    h = Hypergraph({"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D")})
    rels = {
        "R": Factor.from_tuples(("A", "B"), [(1, 0), (2, 0)]),
        "S": Factor.from_tuples(("A", "C"), [(2, 5)]),
        "T": Factor.from_tuples(("A", "D"), [(9, 9)]),
    }
    q = bcq(h, rels, domains_for(h, 10), backend="columnar")
    assert scalar_value(solve_variable_elimination(q, solver="compiled")) is (
        scalar_value(solve_variable_elimination(q))
    )
