"""Tests for the multi-hypergraph substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hypergraph import (
    Hypergraph,
    degeneracy,
    degeneracy_ordering,
    is_d_degenerate,
    simple_graph_degeneracy,
)


def fig1_h1():
    """The star H1 of Figure 1: R(A,B), S(A,C), T(A,D), U(A,E)."""
    return Hypergraph(
        {"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D"), "U": ("A", "E")}
    )


def fig1_h2():
    """H2 of Figure 1: R(A,B,C), S(B,D), T(C,F), U(A,B,E)."""
    return Hypergraph(
        {
            "R": ("A", "B", "C"),
            "S": ("B", "D"),
            "T": ("C", "F"),
            "U": ("A", "B", "E"),
        }
    )


def test_basic_accessors():
    h = fig1_h2()
    assert h.num_vertices == 6
    assert h.num_edges == 4
    assert h.arity == 3
    assert h.edge("S") == frozenset({"B", "D"})
    assert "A" in h
    assert "Z" not in h


def test_duplicate_edge_name_rejected():
    with pytest.raises(ValueError):
        Hypergraph([("R", ("A",)), ("R", ("B",))])


def test_empty_edge_rejected():
    with pytest.raises(ValueError):
        Hypergraph({"R": ()})


def test_multihypergraph_allows_parallel_edges():
    h = Hypergraph({"R1": ("A", "B"), "R2": ("A", "B")})
    assert h.num_edges == 2
    assert h.degree("A") == 2


def test_degree_and_incidence():
    h = fig1_h1()
    assert h.degree("A") == 4
    assert h.degree("B") == 1
    assert h.incident_edges("A") == {"R", "S", "T", "U"}


def test_neighbors():
    h = fig1_h2()
    assert h.neighbors("D") == {"B"}
    assert h.neighbors("B") == {"A", "C", "D", "E"}


def test_induced_subhypergraph_shrinks_and_drops():
    h = fig1_h2()
    sub = h.induced_subhypergraph({"A", "B", "C"})
    assert sub.edge("R") == frozenset({"A", "B", "C"})
    assert sub.edge("S") == frozenset({"B"})
    assert sub.num_edges == 4  # T -> {C}, U -> {A, B}


def test_remove_vertex():
    h = fig1_h1()
    sub = h.remove_vertex("A")
    assert sub.num_edges == 4
    assert all(len(e) == 1 for e in sub.edge_sets())


def test_restrict_edges():
    h = fig1_h2()
    sub = h.restrict_edges(["R", "S"])
    assert sub.num_edges == 2
    with pytest.raises(KeyError):
        h.restrict_edges(["nope"])


def test_connected_components():
    h = Hypergraph({"R": ("A", "B"), "S": ("C", "D")})
    comps = sorted(map(sorted, h.connected_components()))
    assert comps == [["A", "B"], ["C", "D"]]
    assert not h.is_connected()
    assert fig1_h2().is_connected()


def test_constructors_star_path_cycle_clique():
    star = Hypergraph.star(4)
    assert star.num_edges == 4
    assert star.degree("A") == 4
    path = Hypergraph.path(3)
    assert path.num_edges == 3
    assert path.num_vertices == 4
    cycle = Hypergraph.cycle(5)
    assert cycle.num_edges == 5
    assert all(cycle.degree(v) == 2 for v in cycle.vertices)
    clique = Hypergraph.clique(4)
    assert clique.num_edges == 6
    with pytest.raises(ValueError):
        Hypergraph.cycle(2)
    with pytest.raises(ValueError):
        Hypergraph.star(0)


def test_is_simple_graph():
    assert fig1_h1().is_simple_graph()
    assert not fig1_h2().is_simple_graph()


# ---------------------------------------------------------------------------
# Degeneracy (Definition 3.3)
# ---------------------------------------------------------------------------


def test_degeneracy_of_star_is_one_as_graph():
    assert simple_graph_degeneracy(Hypergraph.star(10)) == 1


def test_degeneracy_of_cycle_is_two_as_graph():
    assert simple_graph_degeneracy(Hypergraph.cycle(7)) == 2


def test_degeneracy_of_clique():
    assert simple_graph_degeneracy(Hypergraph.clique(5)) == 4


def test_degeneracy_of_tree_is_one():
    assert simple_graph_degeneracy(Hypergraph.path(9)) == 1


def test_hypergraph_degeneracy_peel():
    # Every vertex of the Fig. 1 star has hypergraph degree equal to its
    # incident edge count; leaves have degree 1, so peeling gives d=1... but
    # the center retains degree 4 until removed; static-degree peel gives 4
    # only if the center is peeled while still holding all edges.  Leaves
    # peel first (degree 1), then the center's edges still contain it, so
    # hypergraph degeneracy (vertex-induced) is 4.
    d, order = degeneracy_ordering(Hypergraph.star(4))
    assert d == 4
    assert order[-1] == "A"


def test_is_d_degenerate():
    assert is_d_degenerate(Hypergraph.path(4), 2)
    assert not is_d_degenerate(Hypergraph.star(5), 2)


def test_degeneracy_empty():
    assert degeneracy(Hypergraph(vertices=["A", "B"])) == 0


@given(st.integers(3, 12))
def test_cycle_graph_degeneracy_property(n):
    assert simple_graph_degeneracy(Hypergraph.cycle(n)) == 2


@given(st.integers(2, 8))
def test_clique_graph_degeneracy_property(n):
    assert simple_graph_degeneracy(Hypergraph.clique(n)) == n - 1
