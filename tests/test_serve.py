"""The serving plane's infrastructure contracts.

Covers the shared-memory relation store (publish/attach byte-identity,
pickled fallback, explicit lifecycle, no ``/dev/shm`` leaks), structured
degradation (``ServeError`` on detach / crash / shutdown / overload),
the thread-safety of the plan cache and structural memos the service
shares across threads, admission control, and the lab runner's ``--shm``
pooled materialization path.  Answer-level parity lives in
``test_serving_parity.py``.
"""

import asyncio
import os
import pickle
import threading

import numpy as np
import pytest

from repro.core.memo import LRUMemo, clear_all_memos
from repro.faq.plan import PLAN_CACHE, PlanCache
from repro.lab.generate import generate_scenarios, sample_scenario
from repro.lab.runner import materialize_scenario, run_suite
from repro.lab.suites import get_suite
from repro.semiring import Factor, get_semiring
from repro.semiring.columnar import ColumnarFactor
from repro.serve import (
    AdmissionPolicy,
    QueryService,
    ServeError,
    SharedRelationStore,
    attach_query,
    live_segment_names,
    publish_query,
)
from repro.serve.server import _crash_worker, _worker_execute
from repro.serve.session import ServingSession, session_id_of


def _shm_entries():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # non-Linux: fall back to our own registry
        return set(live_segment_names())


@pytest.fixture(autouse=True)
def _fresh_memos():
    clear_all_memos()
    PLAN_CACHE.clear()
    yield


# ---------------------------------------------------------------------------
# Store: publish/attach round trip
# ---------------------------------------------------------------------------


def test_store_roundtrip_is_byte_identical_across_fuzz_scenarios():
    """Attached factors reproduce storage backend, row order, codes and
    dictionary provenance exactly, for whatever the fuzz plane builds."""
    for spec in generate_scenarios(321, 12):
        built, _topology, _assignment = materialize_scenario(spec)
        with SharedRelationStore() as store:
            payload = pickle.loads(pickle.dumps(
                publish_query(store, "q", built.query)
            ))
            attached = attach_query(payload)
            original, rebuilt = built.query, attached.query
            assert dict(original.hypergraph.edges()) == dict(
                rebuilt.hypergraph.edges()
            )
            assert original.domains == rebuilt.domains
            assert original.free_vars == rebuilt.free_vars
            assert original.bound_order == rebuilt.bound_order
            assert original.semiring is rebuilt.semiring
            assert original.backend == rebuilt.backend
            for name, factor in original.factors.items():
                twin = rebuilt.factors[name]
                assert type(factor).__name__ == type(twin).__name__
                assert list(factor.rows.items()) == list(twin.rows.items())
                if isinstance(factor, ColumnarFactor):
                    for left, right in zip(factor.codes, twin.codes):
                        assert np.array_equal(left, right)
                    assert np.array_equal(factor.values, twin.values)
                    for dl, dr in zip(
                        factor.dictionaries, twin.dictionaries
                    ):
                        al = getattr(dl, "array", None)
                        ar = getattr(dr, "array", None)
                        assert (al is None) == (ar is None)
                        if al is not None:
                            assert al.dtype == ar.dtype
            attached.close()


def test_store_pickled_fallback_for_non_columnar_semiring():
    gf2 = get_semiring("gf2")
    factor = Factor(("x",), {(0,): 1, (1,): 0}, semiring=gf2, name="R")
    from repro.faq import FAQQuery
    from repro.hypergraph import Hypergraph

    query = FAQQuery(
        hypergraph=Hypergraph({"R": ("x",)}),
        factors={"R": factor},
        domains={"x": (0, 1)},
        free_vars=("x",),
        semiring=gf2,
    )
    with SharedRelationStore() as store:
        payload = publish_query(store, "q", query)
        assert payload["relations"]["R"]["kind"] == "pickled"
        attached = attach_query(payload)
        assert dict(attached.query.factors["R"].rows) == dict(factor.rows)
        attached.close()


# ---------------------------------------------------------------------------
# Lifecycle and leaks
# ---------------------------------------------------------------------------


def test_store_close_unlinks_everything_and_is_idempotent():
    before = _shm_entries()
    spec = sample_scenario(11)
    built, _t, _a = materialize_scenario(spec)
    store = SharedRelationStore()
    publish_query(store, "q", built.query)
    assert store.segment_names
    store.close()
    store.close()  # idempotent
    store.unlink()  # alias, also idempotent
    assert live_segment_names() == ()
    assert _shm_entries() == before
    with pytest.raises(ServeError) as err:
        publish_query(store, "q2", built.query)
    assert err.value.code == "shutdown"


def test_attach_after_teardown_raises_store_detached():
    spec = sample_scenario(13)
    built, _t, _a = materialize_scenario(spec)
    store = SharedRelationStore()
    payload = publish_query(store, "q", built.query)
    store.close()
    with pytest.raises(ServeError) as err:
        attach_query(payload)
    assert err.value.code == "store-detached"
    assert "segment" in err.value.detail


def test_serve_error_survives_pickling():
    err = ServeError("rejected", "too big", {"total_bits": 9000})
    twin = pickle.loads(pickle.dumps(err))
    assert isinstance(twin, ServeError)
    assert twin.code == "rejected"
    assert twin.detail == {"total_bits": 9000}
    assert twin.to_dict()["message"] == "too big"


def test_no_segments_leak_across_a_service_lifetime():
    before = _shm_entries()

    async def main():
        async with QueryService() as service:
            spec = sample_scenario(17)
            await service.submit(spec)

    asyncio.run(main())
    assert live_segment_names() == ()
    assert _shm_entries() == before


# ---------------------------------------------------------------------------
# Thread safety (the satellite the async server depends on)
# ---------------------------------------------------------------------------


def test_lru_memo_concurrent_access_is_consistent():
    memo = LRUMemo("test.concurrent", maxsize=64)
    errors = []

    def hammer(worker):
        try:
            for i in range(500):
                key = i % 97
                value = memo.get_or_compute(key, lambda k=key: k * 3)
                assert value == key * 3
                if i % 100 == 0:
                    memo.clear()
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append((worker, exc))

    threads = [
        threading.Thread(target=hammer, args=(n,)) for n in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # The memo still behaves after the storm (clear() resets counters,
    # so only behaviour — not totals — is assertable here).
    assert memo.get_or_compute("after", lambda: 42) == 42
    assert len(memo._data) <= memo.maxsize


def test_plan_cache_concurrent_access_is_consistent():
    cache = PlanCache(maxsize=32)
    sentinel = object()
    errors = []

    def hammer(worker):
        try:
            for i in range(400):
                key = f"sig-{i % 53}"
                hit = cache.get(key)
                if hit is None:
                    cache.put(key, (key, sentinel))
                else:
                    assert hit[0] == key
                len(cache)
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append((worker, exc))

    threads = [
        threading.Thread(target=hammer, args=(n,)) for n in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= 32  # eviction bound held under the race


# ---------------------------------------------------------------------------
# Admission control and service degradation
# ---------------------------------------------------------------------------


def _covered_spec():
    """A covered spec with a positive predicted cost (priced admission)."""
    for spec in generate_scenarios(7, 40):
        store = SharedRelationStore()
        try:
            manifest = ServingSession.register(spec, store).manifest
            if manifest.covered and manifest.predicted["total_bits"] > 0:
                return spec
        finally:
            store.close()
    raise RuntimeError("no covered spec in the sample")  # pragma: no cover


def test_admission_rejects_over_budget_with_prediction_detail():
    spec = _covered_spec()

    async def main():
        policy = AdmissionPolicy(max_predicted_bits=0)
        async with QueryService(policy=policy) as service:
            with pytest.raises(ServeError) as err:
                await service.submit(spec)
            assert err.value.code == "rejected"
            detail = err.value.detail
            assert detail["priced"] is True
            assert detail["predicted"]["total_bits"] > 0
            assert detail["budget"]["max_predicted_bits"] == 0
            assert service.stats.rejected == 1

    asyncio.run(main())


def test_admission_defers_over_budget_but_still_serves():
    spec = _covered_spec()

    async def main():
        policy = AdmissionPolicy(max_predicted_bits=0, over_budget="defer")
        async with QueryService(policy=policy) as service:
            result = await service.submit(spec)
            assert result.deferred is True
            assert result.digest
            assert service.stats.deferred == 1
            assert service.stats.served == 1

    asyncio.run(main())


def test_admission_policy_decisions_on_manifest_shapes():
    """Unit-level policy matrix (every valid lab cell is covered today,
    so the unpriced branch is exercised on a synthetic manifest)."""
    import dataclasses

    spec = sample_scenario(29)
    store = SharedRelationStore()
    try:
        manifest = ServingSession.register(spec, store).manifest
    finally:
        store.close()
    unpriced = dataclasses.replace(manifest, predicted=None, covered=False)

    assert AdmissionPolicy().decide(manifest)[0] == "admit"
    assert AdmissionPolicy(allow_unpriced=False).decide(unpriced)[0] == (
        "reject"
    )
    assert AdmissionPolicy(allow_unpriced=True).decide(unpriced)[0] == (
        "admit"
    )
    if manifest.predicted is not None:
        bits = manifest.predicted["total_bits"]
        decision, detail = AdmissionPolicy(
            max_predicted_bits=bits
        ).decide(manifest)
        assert decision == "admit"  # budget is inclusive
        if bits > 0:
            decision, detail = AdmissionPolicy(
                max_predicted_bits=bits - 1, over_budget="defer"
            ).decide(manifest)
            assert decision == "defer"
            assert detail["predicted"]["total_bits"] == bits


def test_overloaded_queue_fails_fast():
    async def main():
        async with QueryService(max_pending=0) as service:
            with pytest.raises(ServeError) as err:
                await service.submit(sample_scenario(19))
            assert err.value.code == "overloaded"

    asyncio.run(main())


def test_submit_after_close_raises_shutdown():
    async def main():
        service = QueryService()
        await service.start()
        await service.close()
        with pytest.raises(ServeError) as err:
            await service.submit(sample_scenario(19))
        assert err.value.code == "shutdown"
        await service.close()  # idempotent

    asyncio.run(main())


def test_worker_crash_mid_query_returns_structured_error_and_recovers():
    spec = sample_scenario(23)

    async def main():
        async with QueryService(workers=1) as service:
            first = await service.submit(spec)
            # Kill the warm worker as a segfault would (no cleanup)...
            loop = asyncio.get_running_loop()
            with pytest.raises(Exception):
                await loop.run_in_executor(
                    service._process_pool, _crash_worker
                )
            service._restart_pool()
            # ...the service stays up and the next query is served.
            again = await service.submit(spec)
            assert again.digest == first.digest

    asyncio.run(main())


def test_pool_crash_surfaces_as_serve_error_not_a_hang():
    spec = sample_scenario(23)

    async def main():
        async with QueryService(workers=1) as service:
            service.register(spec)
            # Crash the pool *between* queries, then submit: the broken
            # pool must surface as ServeError("worker-crashed") on this
            # request, and the rebuilt pool must serve the next one.
            loop = asyncio.get_running_loop()
            with pytest.raises(Exception):
                await loop.run_in_executor(
                    service._process_pool, _crash_worker
                )
            try:
                result = await asyncio.wait_for(
                    service.submit(spec), timeout=60
                )
            except ServeError as exc:
                assert exc.code == "worker-crashed"
                result = await asyncio.wait_for(
                    service.submit(spec), timeout=60
                )
            assert result.digest
            assert service.stats.worker_crashes <= 1

    asyncio.run(main())


def test_worker_without_payload_raises_unknown_session():
    with pytest.raises(ServeError) as err:
        _worker_execute("s-nonexistent")
    assert err.value.code == "unknown-session"


# ---------------------------------------------------------------------------
# Lab runner --shm path
# ---------------------------------------------------------------------------


def test_pooled_shm_run_is_byte_identical_to_serial():
    before = _shm_entries()
    suite = get_suite("smoke")
    serial = run_suite(suite, jobs=1, cache=None)
    pooled = run_suite(suite, jobs=2, cache=None, shm=True)
    assert [r.deterministic_record() for r in serial.results] == [
        r.deterministic_record() for r in pooled.results
    ]
    assert live_segment_names() == ()
    assert _shm_entries() == before
