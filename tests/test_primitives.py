"""Unit tests for the protocol communication primitives."""

import pytest

from repro.network import Simulator, Topology
from repro.protocols import (
    Mailbox,
    broadcast_node,
    chunk_packets,
    convergecast_node,
    parallel_subphases,
    route_to_sink_node,
    strip_continuations,
)


def run_on(topology, capacity, procs, max_rounds=100_000):
    return Simulator(topology, capacity, max_rounds).run(procs)


def tree_roles(parents, node):
    children = sorted(n for n, p in parents.items() if p == node)
    return parents.get(node), children


# ---------------------------------------------------------------------------
# chunk_packets
# ---------------------------------------------------------------------------


def test_chunk_packets_passthrough():
    assert chunk_packets([(4, "a")], capacity=8) == [(4, "a")]


def test_chunk_packets_splits_and_preserves_bits():
    out = chunk_packets([(20, "big")], capacity=8)
    assert out[0] == (8, "big")
    assert sum(bits for bits, _ in out) == 20
    assert all(p == ("cont",) for _b, p in out[1:])


def test_strip_continuations():
    out = chunk_packets([(20, "big"), (3, "small")], capacity=8)
    payloads = [p for _b, p in out]
    assert strip_continuations(payloads) == ["big", "small"]


# ---------------------------------------------------------------------------
# broadcast_node
# ---------------------------------------------------------------------------


def broadcast_procs(topology, root, items, bits_per_item=4):
    parents = topology.bfs_tree(root)

    def make(node):
        def proc(ctx):
            mail = Mailbox()
            parent, children = tree_roles(parents, node)
            got = yield from broadcast_node(
                ctx, mail, parent, children,
                items if node == root else None, bits_per_item, "bc",
            )
            return got

        return proc

    return {n: make(n) for n in parents}


def test_broadcast_delivers_everywhere_in_order():
    g = Topology.line(4)
    items = list(range(10))
    res = run_on(g, 8, broadcast_procs(g, "P0", items))
    for node in g.nodes:
        assert res.output_of(node) == items


def test_broadcast_empty_list():
    g = Topology.line(3)
    res = run_on(g, 8, broadcast_procs(g, "P1", []))
    for node in g.nodes:
        assert res.output_of(node) == []


def test_broadcast_pipelines():
    """L items over depth D at 1 item/round: about L + D + header rounds,
    NOT L * D (store-and-forward pipelining)."""
    g = Topology.line(6)
    items = list(range(40))
    res = run_on(g, 4, broadcast_procs(g, "P0", items, bits_per_item=4))
    header_rounds = 32 // 4  # HEADER_BITS chunked at capacity 4
    assert res.rounds <= 40 + 5 + header_rounds + 5
    assert res.rounds >= 40


def test_broadcast_header_chunking_on_thin_edges():
    g = Topology.line(2)
    res = run_on(g, 1, broadcast_procs(g, "P0", [1, 2], bits_per_item=1))
    assert res.output_of("P1") == [1, 2]
    # 32 header bits + 2 items at 1 bit/round.
    assert res.rounds == 34


# ---------------------------------------------------------------------------
# convergecast_node
# ---------------------------------------------------------------------------


def convergecast_procs(topology, root, slots_by_node, num_slots, combine, identity):
    parents = topology.bfs_tree(root)

    def make(node):
        def proc(ctx):
            mail = Mailbox()
            parent, children = tree_roles(parents, node)
            out = yield from convergecast_node(
                ctx, mail, parent, children, num_slots,
                slots_by_node.get(node), combine, identity, 1, "cc",
            )
            return out

        return proc

    return {n: make(n) for n in parents}


def test_convergecast_sums_slots():
    g = Topology.line(3)
    slots = {"P0": [1, 2, 3], "P1": [10, 20, 30], "P2": [100, 200, 300]}
    res = run_on(
        g, 8, convergecast_procs(g, "P2", slots, 3, lambda a, b: a + b, 0)
    )
    assert res.output_of("P2") == [111, 222, 333]
    assert res.output_of("P0") is None


def test_convergecast_identity_contributors():
    g = Topology.line(3)
    slots = {"P0": [5, 7]}  # P1 relays with identity, P2 collects
    res = run_on(
        g, 8, convergecast_procs(g, "P2", slots, 2, lambda a, b: a + b, 0)
    )
    assert res.output_of("P2") == [5, 7]


def test_convergecast_zero_slots_is_free():
    g = Topology.line(3)
    res = run_on(
        g, 8, convergecast_procs(g, "P0", {}, 0, lambda a, b: a + b, 0)
    )
    assert res.rounds == 0
    assert res.output_of("P0") == []


def test_convergecast_pipelines_on_star():
    g = Topology.star(3)
    slots = {n: [1] * 30 for n in g.nodes}
    res = run_on(
        g, 1, convergecast_procs(g, "P0", slots, 30, lambda a, b: a + b, 0)
    )
    assert res.output_of("P0") == [4] * 30
    assert res.rounds <= 32  # 30 slots + O(depth)


# ---------------------------------------------------------------------------
# route_to_sink_node
# ---------------------------------------------------------------------------


def routing_procs(topology, sink, packets_by_node):
    parents = topology.bfs_tree(sink)

    def make(node):
        def proc(ctx):
            mail = Mailbox()
            parent, children = tree_roles(parents, node)
            out = yield from route_to_sink_node(
                ctx, mail, parent, children,
                packets_by_node.get(node, []), "rt",
            )
            return out

        return proc

    return {n: make(n) for n in parents}


def test_routing_collects_everything():
    g = Topology.line(4)
    packets = {
        "P0": [(4, "a"), (4, "b")],
        "P2": [(4, "c")],
        "P3": [(4, "local")],
    }
    res = run_on(g, 8, routing_procs(g, "P3", packets))
    assert sorted(res.output_of("P3")) == ["a", "b", "c", "local"]


def test_routing_empty_is_cheap():
    g = Topology.line(4)
    res = run_on(g, 8, routing_procs(g, "P3", {}))
    assert res.output_of("P3") == []
    # Only EOS coordination: at most one bit per edge per direction-ish.
    assert res.total_bits <= 2 * g.num_edges


def test_routing_respects_capacity_backpressure():
    g = Topology.line(3)
    packets = {"P0": [(8, i) for i in range(20)]}
    res = run_on(g, 8, routing_procs(g, "P2", packets))
    assert sorted(res.output_of("P2")) == list(range(20))
    assert res.rounds >= 20  # one 8-bit packet per round per edge


def test_routing_merges_streams_at_bottleneck():
    g = Topology.star(3)  # P0 hub; P1, P2, P3 leaves
    packets = {"P1": [(8, f"x{i}") for i in range(5)],
               "P2": [(8, f"y{i}") for i in range(5)]}
    res = run_on(g, 8, routing_procs(g, "P3", packets))
    assert len(res.output_of("P3")) == 10
    # All 10 packets funnel through hub->P3: >= 10 rounds on that edge.
    assert res.edge_bits[("P0", "P3")] >= 80


# ---------------------------------------------------------------------------
# parallel_subphases
# ---------------------------------------------------------------------------


def test_parallel_subphases_lockstep():
    g = Topology.line(2)

    def proc(ctx):
        def stream(tag, count):
            for i in range(count):
                ctx.send("P1", 1, (tag, i), tag)
                yield
            return count

        results = yield from parallel_subphases([stream("a", 3), stream("b", 5)])
        return results

    def sink(ctx):
        got = []
        while len(got) < 8:
            got.extend(m.payload for m in ctx.inbox)
            yield
        return got

    res = run_on(g, 8, {"P0": proc, "P1": sink})
    assert res.output_of("P0") == [3, 5]
    got = res.output_of("P1")
    # Both streams interleave round by round.
    assert ("a", 0) in got and ("b", 4) in got


def test_parallel_subphases_empty():
    g = Topology.line(2)

    def proc(ctx):
        results = yield from parallel_subphases([])
        return results

    res = run_on(g, 8, {"P0": proc})
    assert res.output_of("P0") == []


# ---------------------------------------------------------------------------
# Mailbox
# ---------------------------------------------------------------------------


def test_mailbox_idempotent_per_round():
    g = Topology.line(2)

    def sender(ctx):
        ctx.send("P1", 1, "x", "t")
        if False:
            yield

    def receiver(ctx):
        mail = Mailbox()
        while True:
            mail.ingest(ctx)
            mail.ingest(ctx)  # double ingest same round: no duplication
            got = mail.pop("t", "P0")
            if got:
                return got
            yield

    res = run_on(g, 8, {"P0": sender, "P1": receiver})
    assert res.output_of("P1") == ["x"]


def test_mailbox_separates_tags_and_sources():
    g = Topology.line(3)

    def p0(ctx):
        ctx.send("P1", 1, "a", "t1")
        ctx.send("P1", 1, "b", "t2")
        if False:
            yield

    def p2(ctx):
        ctx.send("P1", 1, "c", "t1")
        if False:
            yield

    def p1(ctx):
        mail = Mailbox()
        seen = 0
        while seen < 3:
            mail.ingest(ctx)
            seen = ctx.round  # crude: wait a couple rounds
            if ctx.round >= 3:
                break
            yield
        assert mail.pop("t1", "P0") == ["a"]
        assert mail.pop("t2", "P0") == ["b"]
        assert mail.pop("t1", "P2") == ["c"]
        assert mail.pop("t1", "P0") == []  # drained
        return True

    res = run_on(g, 8, {"P0": p0, "P1": p1, "P2": p2})
    assert res.output_of("P1") is True


# ---------------------------------------------------------------------------
# chunk_packets / strip_continuations property tests
# ---------------------------------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st


@st.composite
def payload_lists(draw):
    capacity = draw(st.integers(1, 64))
    payloads = draw(
        st.lists(
            st.tuples(st.integers(1, 200), st.integers()),
            max_size=30,
        )
    )
    return payloads, capacity


@given(payload_lists())
@settings(max_examples=150, deadline=None)
def test_chunk_packets_roundtrip_properties(case):
    """Every chunk fits the capacity, every bit is conserved, and
    stripping continuations recovers the payloads in order."""
    payloads, capacity = case
    chunks = chunk_packets(payloads, capacity)
    assert all(1 <= bits <= capacity for bits, _ in chunks)
    assert sum(bits for bits, _ in chunks) == sum(b for b, _ in payloads)
    recovered = strip_continuations([data for _, data in chunks])
    assert recovered == [data for _, data in payloads]


@given(st.integers(1, 100))
@settings(max_examples=50, deadline=None)
def test_chunk_packets_capacity_one(bits):
    """Capacity 1: one head chunk + (bits - 1) one-bit fillers."""
    chunks = chunk_packets([(bits, "payload")], 1)
    assert len(chunks) == bits
    assert all(b == 1 for b, _ in chunks)
    assert chunks[0][1] == "payload"
    assert all(data == ("cont",) for _, data in chunks[1:])


@given(st.integers(1, 64))
@settings(max_examples=50, deadline=None)
def test_chunk_packets_payload_exactly_capacity(capacity):
    """A payload of exactly the capacity travels as one chunk."""
    chunks = chunk_packets([(capacity, "exact")], capacity)
    assert chunks == [(capacity, "exact")]


@given(payload_lists())
@settings(max_examples=100, deadline=None)
def test_chunk_pattern_agrees_with_chunk_packets(case):
    """The compiled engine's per-item pattern is chunk_packets itemwise."""
    from repro.network.program import chunk_pattern

    payloads, capacity = case
    for bits, _ in payloads:
        expected = [b for b, _ in chunk_packets([(bits, None)], capacity)]
        assert list(chunk_pattern(bits, capacity)) == expected
