"""Tests for the F2 substrate and the three MCM protocols (Section 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import f2
from repro.protocols import (
    predicted_rounds,
    run_mcm_merge,
    run_mcm_sequential,
    run_mcm_trivial,
)


def rng(seed=0):
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# F2 linear algebra
# ---------------------------------------------------------------------------


def test_matvec_mod2():
    a = np.array([[1, 1], [0, 1]], dtype=np.uint8)
    x = np.array([1, 1], dtype=np.uint8)
    assert f2.matvec(a, x).tolist() == [0, 1]


def test_matmul_mod2():
    a = np.array([[1, 1], [0, 1]], dtype=np.uint8)
    assert f2.matmul(a, a).tolist() == [[1, 0], [0, 1]]


def test_shape_mismatch():
    a = np.zeros((2, 3), dtype=np.uint8)
    with pytest.raises(ValueError):
        f2.matvec(a, np.zeros(2, dtype=np.uint8))
    with pytest.raises(ValueError):
        f2.matmul(a, a)


def test_chain_product_order():
    """chain_product applies A_1 first: y = A_k ... A_1 x."""
    a1 = np.array([[0, 1], [1, 0]], dtype=np.uint8)  # swap
    a2 = np.array([[1, 0], [1, 1]], dtype=np.uint8)
    x = np.array([1, 0], dtype=np.uint8)
    manual = f2.matvec(a2, f2.matvec(a1, x))
    assert f2.chain_product([a1, a2], x).tolist() == manual.tolist()


def test_rank_and_invertibility():
    eye = np.eye(4, dtype=np.uint8)
    assert f2.rank(eye) == 4
    assert f2.is_invertible(eye)
    singular = np.ones((3, 3), dtype=np.uint8)
    assert f2.rank(singular) == 1
    assert not f2.is_invertible(singular)


def test_pack_unpack_roundtrip():
    v = f2.random_vector(10, rng(3))
    assert f2.unpack_int(f2.pack_int(v), 10).tolist() == v.tolist()


def test_bits_roundtrip():
    v = f2.random_vector(7, rng(1))
    assert f2.bits_to_vector(f2.vector_to_bits(v)).tolist() == v.tolist()


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 6))
def test_rank_bounds_property(seed, n):
    a = f2.random_matrix(n, rng(seed))
    r = f2.rank(a)
    assert 0 <= r <= n


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_matmul_associative_property(seed):
    g = rng(seed)
    a, b, c = (f2.random_matrix(4, g) for _ in range(3))
    lhs = f2.matmul(f2.matmul(a, b), c)
    rhs = f2.matmul(a, f2.matmul(b, c))
    assert lhs.tolist() == rhs.tolist()


# ---------------------------------------------------------------------------
# MCM protocols
# ---------------------------------------------------------------------------


def chain_instance(k, n, seed=0):
    g = rng(seed)
    mats = [f2.random_matrix(n, g) for _ in range(k)]
    x = f2.random_vector(n, g)
    return mats, x, f2.chain_product(mats, x)


@pytest.mark.parametrize("k,n", [(1, 4), (2, 4), (3, 5), (4, 6), (7, 4)])
def test_all_protocols_agree(k, n):
    mats, x, truth = chain_instance(k, n, seed=k * 10 + n)
    for fn in (run_mcm_sequential, run_mcm_merge, run_mcm_trivial):
        rep = fn(mats, x)
        assert rep.result.tolist() == truth.tolist(), fn.__name__


def test_sequential_round_count_matches_proposition_6_1():
    """Prop 6.1: (k+1) vector transmissions of N bits each."""
    mats, x, _ = chain_instance(4, 8, seed=1)
    rep = run_mcm_sequential(mats, x)
    assert rep.rounds == 5 * 8
    assert rep.total_bits == 5 * 8


def test_trivial_round_count_is_theta_k_n_squared():
    mats, x, _ = chain_instance(3, 6, seed=2)
    rep = run_mcm_trivial(mats, x)
    # The sink's edge carries N + k*N^2 bits at 1 bit/round.
    assert rep.rounds >= 3 * 36
    assert rep.rounds <= 3 * 36 + 6 + 10


def test_merge_beats_sequential_for_huge_k():
    """The Appendix I.1 crossover: k >> N favors the merge protocol."""
    n, k = 3, 64
    mats, x, truth = chain_instance(k, n, seed=3)
    seq = run_mcm_sequential(mats, x)
    merge = run_mcm_merge(mats, x)
    assert seq.result.tolist() == truth.tolist()
    assert merge.result.tolist() == truth.tolist()
    assert merge.rounds < seq.rounds


def test_sequential_beats_merge_for_small_k():
    """For k <= N the Θ(kN) protocol wins (Theorem 6.4 regime)."""
    n, k = 16, 3
    mats, x, _ = chain_instance(k, n, seed=4)
    seq = run_mcm_sequential(mats, x)
    merge = run_mcm_merge(mats, x)
    assert seq.rounds < merge.rounds


def test_word_bits_speedup():
    mats, x, truth = chain_instance(3, 8, seed=5)
    slow = run_mcm_sequential(mats, x, word_bits=1)
    fast = run_mcm_sequential(mats, x, word_bits=8)
    assert fast.result.tolist() == truth.tolist()
    assert fast.rounds < slow.rounds


def test_predicted_rounds_shapes():
    assert predicted_rounds(4, 8, "sequential") == 40
    assert predicted_rounds(4, 8, "trivial") == 4 * 64 + 8
    assert predicted_rounds(4, 8, "merge") == 64 * 2 + 16 + 4
    with pytest.raises(ValueError):
        predicted_rounds(4, 8, "nope")


def test_predictions_match_measurements_within_2x():
    mats, x, _ = chain_instance(5, 6, seed=6)
    for name, fn in (
        ("sequential", run_mcm_sequential),
        ("trivial", run_mcm_trivial),
        ("merge", run_mcm_merge),
    ):
        measured = fn(mats, x).rounds
        predicted = predicted_rounds(5, 6, name)
        assert predicted / 2.5 <= measured <= predicted * 2.5, (
            name,
            measured,
            predicted,
        )


def test_input_validation():
    g = rng(0)
    with pytest.raises(ValueError):
        run_mcm_sequential([f2.random_matrix(3, g)], f2.random_vector(4, g))
    with pytest.raises(ValueError):
        run_mcm_merge([], f2.random_vector(4, g))


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 500), st.integers(1, 6), st.integers(2, 5))
def test_merge_always_correct_property(seed, k, n):
    mats, x, truth = chain_instance(k, n, seed=seed)
    rep = run_mcm_merge(mats, x, word_bits=4)
    assert rep.result.tolist() == truth.tolist()
