"""Tests for GHDs, GYO-GHDs, MD-GHDs and internal-node-width."""

import pytest

from repro.decomposition import (
    CORE_ROOT_ID,
    GHD,
    InvalidGHD,
    best_gyo_ghd,
    exact_internal_node_width,
    gyo_ghd,
    internal_node_width,
    is_md_ghd,
    md_ghd,
    private_attribute_witness,
    internal_nodes_bottom_up,
    width_report,
)
from repro.hypergraph import Hypergraph


def fig1_h1():
    return Hypergraph(
        {"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D"), "U": ("A", "E")}
    )


def fig1_h2():
    return Hypergraph(
        {
            "R": ("A", "B", "C"),
            "S": ("B", "D"),
            "T": ("C", "F"),
            "U": ("A", "B", "E"),
        }
    )


# ---------------------------------------------------------------------------
# GHD structure + validation
# ---------------------------------------------------------------------------


def manual_t1():
    """T1 of Figure 2: (A,B,C) root with leaves (B,D), (C,F), (A,B,E)."""
    h = fig1_h2()
    t = GHD(h)
    t.add_node("R", ("A", "B", "C"), {"R"})
    t.add_node("S", ("B", "D"), {"S"}, parent="R")
    t.add_node("T", ("C", "F"), {"T"}, parent="R")
    t.add_node("U", ("A", "B", "E"), {"U"}, parent="R")
    return t


def manual_t2():
    """T2 of Figure 2: (A,B,C) -> (B,D), (A,B,E); (A,B,E) -> (C,F)?  No:
    T2 roots at (A,B,C) with children (B,D) and (A,B,E), and (C,F) under
    (A,B,E) — that would violate RIP for C, so T2 instead hangs (C,F)
    under (A,B,C) via (B,D)?  The figure shows two internal nodes; the
    valid variant is (A,B,C) -> (A,B,E) -> nothing, (A,B,C) -> (B,D),
    (A,B,C) -> (C,F) rooted so that (A,B,E) is internal.  We reproduce a
    two-internal-node GYO-GHD by rooting at (A,B,E)."""
    h = fig1_h2()
    t = GHD(h)
    t.add_node("U", ("A", "B", "E"), {"U"})
    t.add_node("R", ("A", "B", "C"), {"R"}, parent="U")
    t.add_node("S", ("B", "D"), {"S"}, parent="R")
    t.add_node("T", ("C", "F"), {"T"}, parent="R")
    return t


def test_t1_is_valid_reduced_and_witnesses_acyclicity():
    t1 = manual_t1()
    t1.validate()
    assert t1.is_reduced()
    assert t1.witnesses_acyclicity()
    assert t1.num_internal_nodes == 1


def test_t2_has_two_internal_nodes():
    t2 = manual_t2()
    t2.validate()
    assert t2.num_internal_nodes == 2


def test_rip_violation_detected():
    h = fig1_h2()
    t = GHD(h)
    t.add_node("R", ("A", "B", "C"), {"R"})
    t.add_node("S", ("B", "D"), {"S"}, parent="R")
    # Hang (C,F) under (B,D): path R - S - T, but C is in R and T only.
    t.add_node("T", ("C", "F"), {"T"}, parent="S")
    t.add_node("U", ("A", "B", "E"), {"U"}, parent="R")
    with pytest.raises(InvalidGHD):
        t.validate()
    assert not t.is_valid()


def test_uncovered_edge_detected():
    h = fig1_h1()
    t = GHD(h)
    t.add_node("R", ("A", "B"), {"R"})
    with pytest.raises(InvalidGHD):
        t.validate()


def test_add_node_errors():
    t = GHD(fig1_h1())
    t.add_node("x", ("A", "B"))
    with pytest.raises(ValueError):
        t.add_node("x", ("A",))
    with pytest.raises(ValueError):
        t.add_node("y", ("A",))  # second root
    with pytest.raises(ValueError):
        t.add_node("z", ("A",), parent="missing")


def test_reparent_cycle_rejected():
    t = manual_t2()
    with pytest.raises(ValueError):
        t.reparent("U", "S")  # U is the root
    with pytest.raises(ValueError):
        t.reparent("R", "S")  # S is R's descendant


def test_traversals():
    t = manual_t2()
    post = [n.node_id for n in t.postorder()]
    assert post.index("S") < post.index("R") < post.index("U")
    pre = [n.node_id for n in t.preorder()]
    assert pre[0] == "U"
    assert {n.node_id for n in t.leaves()} == {"S", "T"}
    assert t.depth() == 2
    assert t.ancestors("S") == ["R", "U"]
    assert t.descendants("U") == {"R", "S", "T"}


# ---------------------------------------------------------------------------
# Construction 2.8 (GYO-GHD)
# ---------------------------------------------------------------------------


def test_gyo_ghd_star_valid():
    t = gyo_ghd(fig1_h1())
    t.validate()
    assert t.is_reduced()


def test_gyo_ghd_h2_valid():
    t = gyo_ghd(fig1_h2())
    t.validate()
    assert t.is_reduced()


def test_gyo_ghd_cyclic_query_core_root():
    h = Hypergraph.cycle(5)
    t = gyo_ghd(h)
    t.validate()
    assert t.root.node_id == CORE_ROOT_ID
    assert t.root.chi == frozenset(h.vertices)


def test_gyo_ghd_pendant_on_core():
    h = Hypergraph(
        {"e1": ("A", "B", "X"), "e2": ("B", "C"), "e3": ("C", "A")}
    )
    t = gyo_ghd(h)
    t.validate()  # X covered via the enlarged core bag


# ---------------------------------------------------------------------------
# Construction F.6 (MD-GHD) + width
# ---------------------------------------------------------------------------


def test_md_ghd_flattens_chain_star():
    """A chain-shaped GYO-GHD of a star must flatten to one internal node."""
    h = fig1_h1()
    t = GHD(h)
    t.add_node("R", ("A", "B"), {"R"})
    t.add_node("S", ("A", "C"), {"S"}, parent="R")
    t.add_node("T", ("A", "D"), {"T"}, parent="S")
    t.add_node("U", ("A", "E"), {"U"}, parent="T")
    t.validate()
    assert t.num_internal_nodes == 3
    flat = md_ghd(t)
    assert flat.num_internal_nodes == 1
    assert is_md_ghd(flat)


def test_md_ghd_is_fixpoint():
    flat = md_ghd(manual_t2())
    again = md_ghd(flat)
    assert again.num_internal_nodes == flat.num_internal_nodes


def test_internal_node_width_star_is_one():
    assert internal_node_width(fig1_h1()) == 1
    assert internal_node_width(fig1_h1(), exact=True) == 1


def test_internal_node_width_h2_is_one():
    """Figure 2: y(H2) = 1 (T1 achieves it; T2 has 2)."""
    assert internal_node_width(fig1_h2(), exact=True) == 1


def test_internal_node_width_path():
    """A path query with k edges has y = k - 2 internal nodes (k >= 3)."""
    for k in (3, 4, 5, 6):
        h = Hypergraph.path(k)
        assert internal_node_width(h, exact=True) == k - 2


def test_exact_width_matches_greedy_on_small_acyclic():
    for h in (fig1_h1(), fig1_h2(), Hypergraph.path(4)):
        exact = exact_internal_node_width(h)
        greedy = best_gyo_ghd(h).num_internal_nodes
        assert exact is not None
        assert greedy <= exact + 1  # greedy is near-optimal on these
        assert exact <= greedy


def test_exact_width_none_for_cyclic_or_big():
    assert exact_internal_node_width(Hypergraph.cycle(4)) is None
    big = Hypergraph.path(12)
    assert exact_internal_node_width(big) is None  # over the edge cap


def test_width_report_fields():
    rep = width_report(fig1_h2())
    assert rep["acyclic"] is True
    assert rep["y"] == 1
    assert rep["y_exact"] == 1
    assert rep["n2"] >= 2
    assert rep["arity"] == 3
    assert rep["num_edges"] == 4


def test_lemma_f3_private_attribute_witness():
    """Every internal node of an MD-GHD for acyclic H has a private
    attribute incident on >= 2 relations (Lemma F.3)."""
    for h in (fig1_h1(), fig1_h2(), Hypergraph.path(5)):
        t = md_ghd(gyo_ghd(h))
        for node_id in internal_nodes_bottom_up(t):
            if node_id == t.root_id and len(t.nodes) == 1:
                continue
            witness = private_attribute_witness(t, node_id)
            assert witness is not None, (h, node_id)
            attr, e1, e2 = witness
            assert e1 != e2
            assert attr in h.edge(e1) and attr in h.edge(e2)
