"""Hypothesis property suite for the symbolic cost oracle.

For every covered cell the fuzz generator can reach, a generated
scenario executed on any engine must satisfy ``predicted == measured``
on all four metrics.  The scenario space is driven through the *same*
sampler the fuzz suite uses (:func:`repro.lab.generate.sample_scenario`
over :func:`repro.workloads.spawn_seeds` child streams), so a shrunk
counterexample is directly a lab scenario: the failure message prints
the minimal spec plus the ``--seed`` line that reproduces its whole
suite.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.costmodel import COST_METRIC_NAMES, is_covered
from repro.lab.generate import sample_scenario
from repro.lab.runner import execute_scenario
from repro.lab.suites import DEFAULT_SEED
from repro.workloads import spawn_seeds

#: Three fixed master seeds — the default fuzz stream plus two others —
#: each expanded to a prefix-stable child stream.  Drawing (master,
#: index) keeps every example reproducible as `run fuzz --seed <master>`.
MASTER_SEEDS = (DEFAULT_SEED, 7, 20260807)
STREAM_LENGTH = 50
_CHILDREN = {m: spawn_seeds(m, STREAM_LENGTH) for m in MASTER_SEEDS}


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    master=st.sampled_from(MASTER_SEEDS),
    index=st.integers(min_value=0, max_value=STREAM_LENGTH - 1),
    engine=st.sampled_from(["generator", "compiled"]),
)
def test_every_generated_covered_scenario_is_predicted_exactly(
    master, index, engine
):
    spec = sample_scenario(_CHILDREN[master][index]).with_(engine=engine)
    assert is_covered(spec), (
        f"fuzz sampler produced an uncovered cell — either extend "
        f"COVERED_CELLS or the sampler changed: {spec}"
    )
    result = execute_scenario(spec)
    block = result.cost_model
    predicted, measured = block["predicted"], block["measured"]
    mismatched = [
        metric
        for metric in COST_METRIC_NAMES
        if predicted is None or predicted[metric] != measured[metric]
    ]
    assert block["exact_match"] is True and not mismatched, (
        f"cost model mispredicted {mismatched or 'all metrics'} for the "
        f"minimal failing spec:\n  {spec!r}\n"
        f"predicted={predicted}\nmeasured ={measured}\n"
        f"reproduce its suite with: "
        f"python -m repro.lab run fuzz --seed {master}  "
        f"(scenario index {index}, engine {engine!r}, "
        f"child seed {spec.seed})"
    )
