"""Tests for the MPC(0) comparison topology (Appendix A)."""

import pytest

from repro.network import mincut
from repro.network.mpc import (
    build_mpc0_topology,
    compare_star_bounds,
    input_node,
    mpc_edge_capacity,
    mpc_star_packing,
    worker_node,
)


def test_topology_structure():
    g = build_mpc0_topology(3, 4)
    assert g.num_nodes == 7
    # 3*4 input-worker edges + C(4,2) worker-clique edges.
    assert g.num_edges == 12 + 6
    assert not g.has_edge(input_node(0), input_node(1))
    assert g.has_edge(input_node(0), worker_node(3))
    assert g.has_edge(worker_node(0), worker_node(1))


def test_topology_validation():
    with pytest.raises(ValueError):
        build_mpc0_topology(0, 4)
    with pytest.raises(ValueError):
        build_mpc0_topology(2, 0)


def test_input_mincut_is_p():
    """Each input node has exactly p edges, so MinCut over inputs is p."""
    g = build_mpc0_topology(3, 5)
    players = [input_node(i) for i in range(3)]
    assert mincut(g, players) == 5


def test_packing_is_edge_disjoint_and_complete():
    packing = mpc_star_packing(4, 6)
    assert len(packing) == 6
    seen = set()
    for tree in packing:
        assert tree.terminal_diameter() == 2
        assert set(tree.terminals) == {input_node(i) for i in range(4)}
        for edge in tree.edges:
            assert edge not in seen
            seen.add(edge)


def test_capacity_equation_13():
    assert mpc_edge_capacity(4, 100, 10) == 10
    assert mpc_edge_capacity(4, 5, 10) == 1  # floored at one bit


def test_compare_star_bounds_constant():
    for n in (128, 256, 512):
        cmp = compare_star_bounds(4, 8, n)
        assert cmp.rounds_at_mpc_capacity <= 8
    # More workers -> smaller Steiner term.
    few = compare_star_bounds(4, 2, 256)
    many = compare_star_bounds(4, 16, 256)
    assert many.steiner_rounds < few.steiner_rounds
