"""Tests for the Model 2.1 synchronous round simulator."""

import pytest

from repro.network import (
    CapacityExceeded,
    SimulationError,
    Simulator,
    Topology,
    run_protocol,
)


def test_single_message_takes_one_round():
    g = Topology.line(2)

    def sender(ctx):
        ctx.send("P1", 4, "hello")
        return None
        yield

    def receiver(ctx):
        while not ctx.inbox:
            yield
        return ctx.inbox[0].payload

    # sender must be a generator function; wrap appropriately
    def sender_gen(ctx):
        ctx.send("P1", 4, "hello")
        if False:
            yield
        return None

    res = Simulator(g, capacity_bits=8).run({"P0": sender_gen, "P1": receiver})
    assert res.rounds == 1
    assert res.total_bits == 4
    assert res.output_of("P1") == "hello"


def test_message_delivered_next_round():
    g = Topology.line(2)
    seen_rounds = {}

    def sender(ctx):
        ctx.send("P1", 1, "x")
        if False:
            yield
        return None

    def receiver(ctx):
        while not ctx.inbox:
            yield
        seen_rounds["delivery"] = ctx.round
        return None

    Simulator(g, 8).run({"P0": sender, "P1": receiver})
    assert seen_rounds["delivery"] == 2  # sent in round 1, read in round 2


def test_capacity_enforced():
    g = Topology.line(2)

    def greedy(ctx):
        ctx.send("P1", 5, "a")
        ctx.send("P1", 5, "b")  # 10 > 8
        if False:
            yield

    with pytest.raises(CapacityExceeded):
        Simulator(g, 8).run({"P0": greedy})


def test_capacity_is_per_direction():
    g = Topology.line(2)

    def talker(other):
        def proc(ctx):
            ctx.send(other, 8, "full")
            if False:
                yield

        return proc

    res = Simulator(g, 8).run({"P0": talker("P1"), "P1": talker("P0")})
    assert res.total_bits == 16
    assert res.rounds == 1


def test_capacity_resets_each_round():
    g = Topology.line(2)

    def streamer(ctx):
        for _ in range(3):
            ctx.send("P1", 8, "w")
            yield

    res = Simulator(g, 8).run({"P0": streamer})
    assert res.rounds == 3
    assert res.total_bits == 24


def test_send_to_non_neighbor_rejected():
    g = Topology.line(3)

    def bad(ctx):
        ctx.send("P2", 1, "skip")  # P0-P2 not an edge
        if False:
            yield

    with pytest.raises(ValueError):
        Simulator(g, 8).run({"P0": bad})


def test_zero_bit_message_rejected():
    g = Topology.line(2)

    def bad(ctx):
        ctx.send("P1", 0, "free lunch")
        if False:
            yield

    with pytest.raises(ValueError):
        Simulator(g, 8).run({"P0": bad})


def test_max_rounds_guard():
    g = Topology.line(2)

    def forever(ctx):
        while True:
            yield

    with pytest.raises(SimulationError):
        Simulator(g, 8, max_rounds=10).run({"P0": forever})


def test_unknown_process_node_rejected():
    g = Topology.line(2)

    def noop(ctx):
        if False:
            yield

    with pytest.raises(ValueError):
        Simulator(g, 8).run({"P9": noop})


def test_relay_chain_round_count():
    """A 1-item relay across a 4-node line takes 3 rounds."""
    g = Topology.line(4)

    def source(ctx):
        ctx.send("P1", 1, "token")
        if False:
            yield

    def relay(me, nxt):
        def proc(ctx):
            while not ctx.inbox:
                yield
            ctx.send(nxt, 1, ctx.inbox[0].payload)

        return proc

    def sink(ctx):
        while not ctx.inbox:
            yield
        return ctx.inbox[0].payload

    res = Simulator(g, 8).run(
        {
            "P0": source,
            "P1": relay("P1", "P2"),
            "P2": relay("P2", "P3"),
            "P3": sink,
        }
    )
    assert res.rounds == 3
    assert res.output_of("P3") == "token"


def test_rounds_counts_last_send_not_trailing_compute():
    g = Topology.line(2)

    def sender(ctx):
        ctx.send("P1", 1, "x")
        yield
        yield  # idle (free computation) rounds afterwards
        yield

    res = Simulator(g, 8).run({"P0": sender})
    assert res.rounds == 1


def test_message_filtering_helpers():
    g = Topology.line(3)

    def p0(ctx):
        ctx.send("P1", 1, "a", tag="t1")
        if False:
            yield

    def p2(ctx):
        ctx.send("P1", 1, "b", tag="t2")
        if False:
            yield

    def p1(ctx):
        while len(ctx.inbox) < 2:
            yield
        t1 = ctx.messages(tag="t1")
        from_p2 = ctx.messages(src="P2")
        return (len(t1), len(from_p2))

    res = Simulator(g, 8).run({"P0": p0, "P1": p1, "P2": p2})
    assert res.output_of("P1") == (1, 1)


def test_edge_bits_accounting():
    g = Topology.line(3)

    def p0(ctx):
        ctx.send("P1", 3, "x")
        if False:
            yield

    def p1(ctx):
        while not ctx.inbox:
            yield
        ctx.send("P2", 5, "y")

    res = run_protocol(g, {"P0": p0, "P1": p1}, capacity_bits=8)
    assert res.edge_bits[("P0", "P1")] == 3
    assert res.edge_bits[("P1", "P2")] == 5
    assert res.total_bits == 8
    assert res.total_messages == 2


def test_directed_edge_bits_and_busiest_link():
    g = Topology.line(3)

    def p0(ctx):
        ctx.send("P1", 6, "a")
        ctx.send("P1", 2, "b")
        yield
        ctx.send("P1", 3, "c")

    def p1(ctx):
        while not ctx.inbox:
            yield
        ctx.send("P0", 5, "back")

    res = run_protocol(g, {"P0": p0, "P1": p1}, capacity_bits=8)
    # Directed accounting splits the two directions of an edge.
    assert res.bits_per_edge[("P0", "P1")] == 11
    assert res.bits_per_edge[("P1", "P0")] == 5
    assert res.edge_bits[("P0", "P1")] == 16
    # Busiest link-round: P0->P1 carried 8 bits in round 1.
    assert res.max_edge_bits_per_round == 8
    assert res.link_utilization(8) == 1.0


def test_simulation_error_names_blocked_nodes_and_tags():
    g = Topology.line(2)

    def stuck(ctx):
        while True:
            ctx.send("P1", 1, None, tag="phase9:wait")
            yield

    def forever(ctx):
        while True:
            yield

    with pytest.raises(SimulationError) as err:
        run_protocol(
            g, {"P0": stuck, "P1": forever}, capacity_bits=4, max_rounds=10
        )
    blocked = err.value.blocked
    assert set(blocked) == {"P0", "P1"}
    # P1's pending inbox names the tag it was ignoring.
    assert blocked["P1"] == ["phase9:wait"]
    assert "phase9:wait" in str(err.value)
