"""Cross-solver consistency tests for the FAQ engine.

The naive solver is definitionally correct; every other solver must agree
with it on BCQs, counting joins, PGM-style marginals and mixed-operator
general FAQ instances.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faq import (
    PRODUCT,
    SUM,
    Aggregate,
    FAQQuery,
    bcq,
    marginal_query,
    natural_join_query,
    scalar_value,
    solve_bcq_yannakakis,
    solve_message_passing,
    solve_naive,
    solve_variable_elimination,
)
from repro.hypergraph import Hypergraph
from repro.semiring import BOOLEAN, COUNTING, MAX_TIMES, REAL, Factor
from repro.workloads import domains_for, random_instance


def triangle_query(tuples_r, tuples_s, tuples_t, domain=range(5)):
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C"), "T": ("A", "C")})
    rels = {
        "R": Factor.from_tuples(("A", "B"), tuples_r),
        "S": Factor.from_tuples(("B", "C"), tuples_s),
        "T": Factor.from_tuples(("A", "C"), tuples_t),
    }
    return bcq(h, rels, {v: tuple(domain) for v in "ABC"})


def test_bcq_triangle_true():
    q = triangle_query([(1, 2)], [(2, 3)], [(1, 3)])
    assert scalar_value(solve_naive(q)) is True
    assert scalar_value(solve_variable_elimination(q)) is True


def test_bcq_triangle_false():
    q = triangle_query([(1, 2)], [(2, 3)], [(2, 3)])
    assert scalar_value(solve_naive(q)) is False
    assert scalar_value(solve_variable_elimination(q)) is False


def test_star_bcq_matches_intersection_semantics():
    """Example 2.2: BCQ of the star H1 is 1 iff the A-projections intersect."""
    h = Hypergraph({"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D")})
    rels = {
        "R": Factor.from_tuples(("A", "B"), [(1, 0), (2, 0)]),
        "S": Factor.from_tuples(("A", "C"), [(2, 5), (3, 5)]),
        "T": Factor.from_tuples(("A", "D"), [(2, 9)]),
    }
    q = bcq(h, rels, domains_for(h, 10))
    assert scalar_value(solve_naive(q)) is True
    assert solve_bcq_yannakakis(q) is True
    # Remove the common A=2 and the answer flips.
    rels["T"] = Factor.from_tuples(("A", "D"), [(9, 9)])
    q2 = bcq(h, rels, domains_for(h, 10))
    assert scalar_value(solve_naive(q2)) is False
    assert solve_bcq_yannakakis(q2) is False


def test_counting_join_size():
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C")})
    rels = {
        "R": Factor.from_tuples(("A", "B"), [(1, 1), (2, 1)], COUNTING),
        "S": Factor.from_tuples(("B", "C"), [(1, 5), (1, 6)], COUNTING),
    }
    q = FAQQuery(h, rels, domains_for(h, 8), free_vars=(), semiring=COUNTING)
    # Join has 2 * 2 = 4 tuples.
    assert scalar_value(solve_naive(q)) == 4
    assert scalar_value(solve_variable_elimination(q)) == 4
    assert scalar_value(solve_message_passing(q)) == 4


def test_pgm_chain_marginal():
    """Sum-product on a 3-variable chain: phi(A) = sum_B sum_C f(A,B) g(B,C)."""
    h = Hypergraph({"f": ("A", "B"), "g": ("B", "C")})
    f = Factor(("A", "B"), {(0, 0): 0.5, (0, 1): 0.5, (1, 0): 0.9}, REAL)
    g = Factor(("B", "C"), {(0, 0): 0.3, (1, 0): 0.4, (1, 1): 0.6}, REAL)
    q = marginal_query(
        h, {"f": f, "g": g}, domains_for(h, 2), free_vars=("A",), semiring=REAL
    )
    expected_a0 = 0.5 * 0.3 + 0.5 * (0.4 + 0.6)
    expected_a1 = 0.9 * 0.3
    for solver in (solve_naive, solve_variable_elimination, solve_message_passing):
        out = solver(q)
        assert math.isclose(out((0,)), expected_a0)
        assert math.isclose(out((1,)), expected_a1)


def test_viterbi_max_times():
    h = Hypergraph({"f": ("A", "B"), "g": ("B", "C")})
    f = Factor(("A", "B"), {(0, 0): 0.5, (0, 1): 0.2}, MAX_TIMES)
    g = Factor(("B", "C"), {(0, 0): 0.1, (1, 0): 0.9}, MAX_TIMES)
    q = marginal_query(
        h, {"f": f, "g": g}, domains_for(h, 2), free_vars=("A",),
        semiring=MAX_TIMES,
    )
    out = solve_variable_elimination(q)
    assert math.isclose(out((0,)), max(0.5 * 0.1, 0.2 * 0.9))


def test_natural_join_query_returns_all_tuples():
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C")})
    rels = {
        "R": Factor.from_tuples(("A", "B"), [(1, 2)]),
        "S": Factor.from_tuples(("B", "C"), [(2, 3), (2, 4)]),
    }
    q = natural_join_query(h, rels, domains_for(h, 6))
    out = solve_naive(q)
    assert len(out) == 2
    assert out.schema == tuple(sorted("ABC"))


def test_product_aggregate_full_domain_semantics():
    """phi = prod_B f(B): zero unless f covers all of Dom(B)."""
    h = Hypergraph({"f": ("B",)})
    f_full = Factor(("B",), {(0,): 2.0, (1,): 3.0}, REAL)
    f_partial = Factor(("B",), {(0,): 2.0}, REAL)
    for f, expected in ((f_full, 6.0), (f_partial, 0.0)):
        q = FAQQuery(
            h,
            {"f": f},
            {"B": (0, 1)},
            free_vars=(),
            semiring=REAL,
            aggregates={"B": PRODUCT},
        )
        assert math.isclose(scalar_value(solve_naive(q)), expected)
        assert math.isclose(
            scalar_value(solve_variable_elimination(q)), expected
        )


def test_mixed_aggregates_order_respected():
    """max_B sum_C f(B,C) != sum_C max_B f(B,C) in general; solvers must
    apply the listed right-to-left order."""
    h = Hypergraph({"f": ("B", "C")})
    f = Factor(
        ("B", "C"), {(0, 0): 1.0, (0, 1): 5.0, (1, 0): 4.0, (1, 1): 0.5}, REAL
    )
    maximum = Aggregate("max", "semiring", combine=max)
    q = FAQQuery(
        h,
        {"f": f},
        {"B": (0, 1), "C": (0, 1)},
        free_vars=(),
        semiring=REAL,
        aggregates={"B": maximum, "C": SUM},
        bound_order=("B", "C"),  # phi = max_B sum_C f(B, C)
    )
    expected = max(1.0 + 5.0, 4.0 + 0.5)
    assert math.isclose(scalar_value(solve_naive(q)), expected)
    assert math.isclose(scalar_value(solve_variable_elimination(q)), expected)
    assert math.isclose(scalar_value(solve_message_passing(q)), expected)
    # The swapped order gives a different value, evidencing non-commutation.
    q_swapped = FAQQuery(
        h,
        {"f": f},
        {"B": (0, 1), "C": (0, 1)},
        free_vars=(),
        semiring=REAL,
        aggregates={"B": maximum, "C": SUM},
        bound_order=("C", "B"),  # phi = sum_C max_B f(B, C)
    )
    swapped = max(1.0, 4.0) + max(5.0, 0.5)
    assert math.isclose(scalar_value(solve_naive(q_swapped)), swapped)
    assert not math.isclose(expected, swapped)


def test_bound_var_in_no_factor_counts_domain():
    """A dangling bound variable multiplies by its domain size (counting)."""
    h = Hypergraph({"R": ("A",)}, vertices=["Z"])
    q = FAQQuery(
        h,
        {"R": Factor(("A",), {(1,): 1, (2,): 1}, COUNTING)},
        {"A": (1, 2, 3), "Z": (0, 1, 2, 3)},
        free_vars=(),
        semiring=COUNTING,
    )
    assert scalar_value(solve_naive(q)) == 2 * 4
    with pytest.raises(ValueError):
        solve_variable_elimination(q)


def test_validation_errors():
    h = Hypergraph({"R": ("A", "B")})
    good = Factor.from_tuples(("A", "B"), [(0, 0)])
    with pytest.raises(ValueError):  # missing factor
        FAQQuery(h, {}, {"A": (0,), "B": (0,)})
    with pytest.raises(ValueError):  # schema mismatch
        FAQQuery(h, {"R": Factor.from_tuples(("A", "C"), [(0, 0)])},
                 {"A": (0,), "B": (0,), "C": (0,)})
    with pytest.raises(ValueError):  # unknown free var
        FAQQuery(h, {"R": good}, {"A": (0,), "B": (0,)}, free_vars=("Z",))
    with pytest.raises(ValueError):  # value outside domain
        FAQQuery(h, {"R": Factor.from_tuples(("A", "B"), [(9, 0)])},
                 {"A": (0,), "B": (0,)})
    with pytest.raises(ValueError):  # aggregate on free var
        FAQQuery(h, {"R": good}, {"A": (0,), "B": (0,)},
                 free_vars=("A",), aggregates={"A": SUM})
    with pytest.raises(ValueError):  # wrong bound order
        FAQQuery(h, {"R": good}, {"A": (0,), "B": (0,)},
                 bound_order=("A",))
    with pytest.raises(ValueError):  # factor over wrong semiring
        FAQQuery(h, {"R": good}, {"A": (0,), "B": (0,)}, semiring=COUNTING)


def test_faq_ss_detection():
    h = Hypergraph({"R": ("A", "B")})
    good = Factor.from_tuples(("A", "B"), [(0, 0)])
    q = FAQQuery(h, {"R": good}, {"A": (0,), "B": (0,)})
    assert q.is_faq_ss()
    q2 = FAQQuery(h, {"R": good}, {"A": (0,), "B": (0,)},
                  aggregates={"A": PRODUCT})
    assert not q2.is_faq_ss()


def test_bits_per_tuple():
    h = Hypergraph({"R": ("A", "B")})
    good = Factor.from_tuples(("A", "B"), [(0, 0)])
    q = FAQQuery(h, {"R": good}, {"A": tuple(range(16)), "B": (0,)})
    assert q.bits_per_tuple() == 2 * 4  # r=2, log2(16)=4


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(2, 5), st.integers(2, 4))
def test_solvers_agree_on_random_acyclic_counting(seed, num_edges, dsize):
    """Property: all solvers agree with naive on random acyclic instances."""
    from repro.workloads import random_acyclic_hypergraph

    h = random_acyclic_hypergraph(num_edges, arity=3, seed=seed)
    factors, domains = random_instance(
        h, domain_size=dsize, relation_size=6, seed=seed, semiring=COUNTING
    )
    q = FAQQuery(h, factors, domains, free_vars=(), semiring=COUNTING)
    expected = scalar_value(solve_naive(q))
    assert scalar_value(solve_variable_elimination(q)) == expected
    assert scalar_value(solve_message_passing(q)) == expected


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_yannakakis_agrees_on_random_trees(seed):
    from repro.workloads import random_tree_query

    h = random_tree_query(5, seed=seed)
    factors, domains = random_instance(
        h, domain_size=3, relation_size=4, seed=seed
    )
    q = bcq(h, factors, domains)
    assert solve_bcq_yannakakis(q) == scalar_value(solve_naive(q))
