"""Unit and property tests for the listing-representation Factor."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.semiring import BOOLEAN, COUNTING, REAL, Factor


def test_schema_must_be_duplicate_free():
    with pytest.raises(ValueError):
        Factor(("A", "A"))


def test_arity_mismatch_rejected():
    with pytest.raises(ValueError):
        Factor(("A", "B"), {(1,): True})


def test_zero_annotations_are_dropped():
    f = Factor(("A",), {(1,): True, (2,): False}, BOOLEAN)
    assert len(f) == 1
    assert (1,) in f
    assert (2,) not in f


def test_duplicate_tuples_combine_additively():
    f = Factor(("A",), [((1,), 2), ((1,), 3)], COUNTING)
    assert f((1,)) == 5


def test_call_returns_zero_for_absent():
    f = Factor.from_tuples(("A", "B"), [(1, 2)], BOOLEAN)
    assert f((1, 2)) is True
    assert f((9, 9)) is False


def test_from_tuples_annotates_one():
    f = Factor.from_tuples(("A",), [(1,), (2,)], COUNTING)
    assert f((1,)) == 1
    assert len(f) == 2


def test_constant_one_covers_product_domain():
    f = Factor.constant_one(("A", "B"), {"A": [1, 2], "B": ["x"]}, COUNTING)
    assert len(f) == 2
    assert f((1, "x")) == 1
    assert f((2, "x")) == 1


def test_equality_semantics():
    f = Factor(("A",), {(1,): 2}, COUNTING)
    g = Factor(("A",), {(1,): 2}, COUNTING)
    h = Factor(("A",), {(1,): 3}, COUNTING)
    assert f == g
    assert f != h
    assert f != Factor(("B",), {(1,): 2}, COUNTING)


def test_factor_unhashable():
    f = Factor(("A",), {(1,): 2}, COUNTING)
    with pytest.raises(TypeError):
        hash(f)


def test_rename():
    f = Factor(("A", "B"), {(1, 2): 5}, COUNTING, name="R")
    g = f.rename({"A": "X"})
    assert g.schema == ("X", "B")
    assert g((1, 2)) == 5
    assert g.name == "R"


def test_with_semiring_default_lifts_to_one():
    f = Factor(("A",), {(1,): 7, (2,): 3}, COUNTING)
    g = f.with_semiring(BOOLEAN)
    assert g((1,)) is True
    assert g((2,)) is True
    assert g.semiring is BOOLEAN


def test_with_semiring_custom_convert():
    f = Factor(("A",), {(1,): 7}, COUNTING)
    g = f.with_semiring(REAL, convert=float)
    assert g((1,)) == 7.0


def test_project_tuple_and_column_index():
    f = Factor(("A", "B", "C"), {(1, 2, 3): True}, BOOLEAN)
    assert f.project_tuple((1, 2, 3), ("C", "A")) == (3, 1)
    assert f.column_index("B") == 1
    with pytest.raises(KeyError):
        f.column_index("Z")


def test_active_domain():
    f = Factor.from_tuples(("A", "B"), [(1, 10), (2, 10), (1, 20)])
    assert f.active_domain("A") == {1, 2}
    assert f.active_domain("B") == {10, 20}


def test_size_bits():
    f = Factor.from_tuples(("A", "B"), [(1, 2), (3, 4)])
    assert f.size_bits(bits_per_tuple=16) == 32


def test_copy_is_independent():
    f = Factor(("A",), {(1,): 2}, COUNTING)
    g = f.copy()
    g.rows[(9,)] = 1
    assert (9,) not in f


@given(
    st.dictionaries(
        st.tuples(st.integers(0, 20)), st.integers(0, 5), max_size=30
    )
)
def test_listing_representation_is_canonical(rows):
    """Property: zero annotations never appear in a Factor's listing."""
    f = Factor(("A",), rows, COUNTING)
    assert all(v != 0 for v in f.rows.values())
    for key, value in rows.items():
        assert f(key) == value


@given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=40))
def test_from_tuples_idempotent_under_duplicates(tuples):
    """Property: Boolean factors ignore tuple multiplicity."""
    f = Factor.from_tuples(("A", "B"), tuples, BOOLEAN)
    assert set(f.tuples()) == set(map(tuple, tuples))
