"""Tests for the fuzzed scenario plane — repro.lab.generate + certification.

Covers the load-bearing guarantees of the fuzz harness:

* scenario generation is deterministic per master seed, prefix-stable,
  and every sampled spec materializes into a runnable scenario;
* the fuzz suites sweep each scenario across the full
  engine x solver x backend grid in pairable blocks;
* a fuzz run certifies the paper's bounds: zero bound violations, zero
  parity failures, certification recorded in the artifact;
* the certification oracle actually fires on tampered records;
* ``--seed`` regenerates a whole suite from the CLI.
"""

import json
import os

import pytest

from repro.lab import (
    ARTIFACT_FILENAME,
    CERTIFIED_QUERY_FAMILIES,
    ScenarioSpec,
    SuiteSpec,
    all_parity_failures,
    bound_violations,
    build_query,
    build_topology,
    certification_payload,
    execute_scenario,
    format_certification_table,
    fuzz_suite,
    generate_scenarios,
    get_suite,
    run_suite,
    sample_scenario,
    with_axes,
    with_backends,
)
from repro.lab.__main__ import main as lab_main
from repro.lab.generate import FUZZ_SEMIRINGS, sample_topology
from repro.lab.suites import register_suite

MASTER = 987654


# ---------------------------------------------------------------------------
# Generation determinism and validity
# ---------------------------------------------------------------------------


def test_generate_scenarios_deterministic():
    a = generate_scenarios(MASTER, 20)
    b = generate_scenarios(MASTER, 20)
    assert a == b
    assert [s.content_hash() for s in a] == [s.content_hash() for s in b]
    assert generate_scenarios(MASTER + 1, 20) != a


def test_generate_scenarios_prefix_stable():
    """Growing the count appends scenarios, never perturbs earlier ones."""
    assert generate_scenarios(MASTER, 5) == generate_scenarios(MASTER, 12)[:5]


def test_sample_scenario_seed_is_spec_seed():
    spec = sample_scenario(4242)
    assert spec.seed == 4242
    assert sample_scenario(4242) == spec


def test_generated_scenarios_all_materialize():
    """Every sampled spec builds a live query + topology without error."""
    for spec in generate_scenarios(MASTER, 30):
        built = build_query(spec)
        topology = build_topology(spec)
        assert built.query.hypergraph.num_edges >= 1
        assert topology.num_nodes >= 2
        if spec.assignment == "worst-case":
            assert spec.query in CERTIFIED_QUERY_FAMILIES
            assert built.s_edges and built.t_edges


def test_generated_scenarios_cover_the_plane():
    """Over a healthy sample, every query kind, several topology
    families, several semirings and both assignment classes appear."""
    specs = generate_scenarios(MASTER, 80)
    queries = {s.query for s in specs}
    topologies = {s.topology for s in specs}
    semirings = {s.semiring for s in specs}
    assignments = {s.assignment for s in specs}
    assert {"tree", "forest", "degenerate", "acyclic"} <= queries
    assert queries & CERTIFIED_QUERY_FAMILIES
    assert len(topologies) >= 6
    assert len(semirings) >= 4
    assert semirings <= set(FUZZ_SEMIRINGS)
    assert "worst-case" in assignments and "round-robin" in assignments


def test_sample_topology_params_always_valid():
    import random

    for seed in range(60):
        name, params = sample_topology(random.Random(seed))
        spec = ScenarioSpec(
            family="t", query="tree", query_params={"edges": 2},
            topology=name, topology_params=params, n=8, seed=seed,
        )
        assert build_topology(spec).num_nodes >= 2


# ---------------------------------------------------------------------------
# Axis expansion
# ---------------------------------------------------------------------------


def test_with_backends_pairs_every_scenario():
    base = fuzz_suite(MASTER, count=3, axes=False)
    paired = with_backends(base, "b", "d")
    assert len(paired) == 2 * len(base)
    for dict_spec, col_spec in zip(paired.scenarios[::2], paired.scenarios[1::2]):
        assert dict_spec.backend == "dict"
        assert col_spec.backend == "columnar"
        assert dict_spec.with_(backend=None) == col_spec.with_(backend=None)


def test_with_axes_expands_to_sixteen_planes():
    base = fuzz_suite(MASTER, count=2, axes=False)
    full = with_axes(base, "f", "d")
    assert len(full) == 16 * len(base)
    # Each block of 16 shares one scenario identity modulo the axes.
    for i in range(len(base)):
        block = full.scenarios[16 * i: 16 * (i + 1)]
        identities = {
            s.with_(engine="generator", solver="operator", backend=None,
                    kernels="numpy")
            for s in block
        }
        assert len(identities) == 1
        assert len({
            (s.engine, s.solver, s.backend, s.kernels) for s in block
        }) == 16


def test_fuzz_suites_registered_and_reseedable():
    smoke = get_suite("fuzz-smoke")
    assert len(smoke) == 6 * 16
    reseeded = get_suite("fuzz-smoke", seed=MASTER)
    assert reseeded != smoke
    assert get_suite("fuzz-smoke", seed=MASTER) == reseeded
    with pytest.raises(ValueError, match="takes no seed"):
        get_suite("smoke", seed=1)


# ---------------------------------------------------------------------------
# Certification end-to-end
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fuzz_run():
    """One shared small differential fuzz run (3 scenarios x 16 planes)."""
    return run_suite(fuzz_suite(MASTER, count=3, name="fuzz-test"))


def test_fuzz_run_certifies_all_planes(fuzz_run):
    records = [r.deterministic_record() for r in fuzz_run.results]
    assert fuzz_run.all_correct
    assert bound_violations(records) == []
    assert all_parity_failures(records) == []


def test_fuzz_run_records_bounds_and_gaps(fuzz_run):
    for result in fuzz_run.results:
        record = result.deterministic_record()
        assert record["lower_formula"] >= 0
        assert record["upper_formula"] >= record["lower_formula"]
        assert record["gap_budget"] >= 1.0
        assert record["bound_ok"] is True
        assert record["cut_ok"] is True
        assert record["measured_rounds"] + 1e-9 >= record["lower_certified"]
        if record["cut_size"]:
            # The cut-accounting bound is a genuine per-run constraint.
            assert record["cut_bits"] >= 0
            assert record["lower_certified"] > 0 or record["cut_bits"] == 0


def test_fuzz_certification_payload(fuzz_run):
    records = [r.deterministic_record() for r in fuzz_run.results]
    cert = certification_payload(records)
    assert cert["scenarios_checked"] == len(records)
    assert cert["bound_violations"] == []
    assert cert["formula_certified"] == sum(
        1 for r in records if r["formula_certified"]
    )
    for family, stats in cert["formula_families"].items():
        assert family.startswith("fuzz-hard")
        # gap stats are diagnostics (the rounds-form formula is a shape
        # claim); the hard gate is the TRIBES bits floor, checked below.
        assert stats["scenarios"] >= 1
    table = format_certification_table(records)
    assert "violations" in table and "margin" in table


def test_hard_scenarios_are_formula_certified():
    spec = ScenarioSpec(
        family="fuzz-hard-star", query="hard-star",
        query_params={"arms": 3}, topology="line", topology_params={"n": 3},
        n=16, assignment="worst-case", seed=MASTER,
    )
    result = execute_scenario(spec)
    assert result.formula_certified
    assert result.tribes_bits_floor > 0
    assert result.cut_bits >= result.tribes_bits_floor
    assert result.bound_ok


def test_rounds_form_formula_is_not_gated_regression():
    """Fuzz-found (master seed 31415): a hard-forest on a tree topology
    ships only the smaller TRIBES side, beating the constant-1 *rounds*
    form of the formula (gap < 1) while satisfying the *bits* floor with
    a wide margin.  The oracle must certify the run, and the gap stays
    recorded as a diagnostic."""
    spec = ScenarioSpec(
        family="fuzz-hard-forest", query="hard-forest",
        query_params={"edges": 3, "trees": 3}, topology="tree",
        topology_params={"branching": 2, "depth": 2}, n=64,
        assignment="worst-case", seed=957508337,
    )
    result = execute_scenario(spec)
    assert result.bound_ok
    assert result.gap is not None and result.gap < 1.0
    assert result.cut_bits >= result.tribes_bits_floor == 192
    assert bound_violations([result.deterministic_record()]) == []


def test_random_scenarios_certify_cut_only():
    spec = ScenarioSpec(
        family="fuzz-tree", query="tree", query_params={"edges": 3},
        topology="clique", topology_params={"n": 3}, n=8, seed=MASTER,
    )
    result = execute_scenario(spec)
    assert not result.formula_certified
    assert result.tribes_bits_floor == 0
    assert result.cut_size > 0
    assert result.bound_ok


def test_single_player_scenario_has_empty_cut():
    spec = ScenarioSpec(
        family="fuzz-tree", query="tree", query_params={"edges": 3},
        topology="clique", topology_params={"n": 3}, n=8, seed=MASTER,
        assignment="single",
    )
    result = execute_scenario(spec)
    assert result.cut_size == 0
    assert result.cut_bits == 0
    assert result.lower_certified == 0.0
    assert result.bound_ok


def test_bound_violations_fire_on_tampered_records(fuzz_run):
    records = [r.deterministic_record() for r in fuzz_run.results]
    tampered = json.loads(json.dumps(records))
    tampered[0]["bound_ok"] = False
    violations = bound_violations(tampered)
    assert len(violations) == 1
    assert tampered[0]["label"] in violations[0]
    # A cut-accounting break names the transcript numbers.
    tampered[1]["bound_ok"] = False
    tampered[1]["cut_ok"] = False
    assert "cut accounting" in bound_violations(tampered)[1]
    # A bits-floor break (cut_ok and rounds fine) names the floor.
    tampered[2]["bound_ok"] = False
    tampered[2]["tribes_bits_floor"] = tampered[2]["cut_bits"] + 1
    assert "TRIBES floor" in bound_violations(tampered)[2]


def test_hard_forest_family_needs_plantable_trees():
    spec = ScenarioSpec(
        family="fuzz-hard-forest", query="hard-forest",
        query_params={"trees": 2, "edges": 1}, topology="line",
        topology_params={"n": 3}, n=16, assignment="worst-case", seed=1,
    )
    with pytest.raises(ValueError, match="edges >= 2"):
        execute_scenario(spec)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_fuzz_run_with_seed(tmp_path, capsys):
    register_suite(
        "fuzz-tiny",
        lambda seed=MASTER: fuzz_suite(seed, count=2, name="fuzz-tiny"),
        overwrite=True,
    )
    out = str(tmp_path)
    code = lab_main(
        ["run", "fuzz-tiny", "--seed", "31337", "--out", out,
         "--no-cache", "--quiet"]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "0 violation(s)" in captured
    assert "0 parity failure(s)" in captured
    payload = json.load(open(os.path.join(out, ARTIFACT_FILENAME)))
    assert payload["certification"]["bound_violations"] == []
    assert payload["scenario_count"] == 32
    # The seed override reached the generator: specs carry child seeds
    # of 31337, not of the default master seed.
    expected = [s.to_json_dict() for s in fuzz_suite(31337, 2, "fuzz-tiny")]
    assert [s["spec"] for s in payload["scenarios"]] == expected


def test_cli_parity_covers_backend_axis(tmp_path, capsys):
    register_suite(
        "backend-tiny",
        lambda: with_backends(
            SuiteSpec(
                "backend-tiny",
                (
                    ScenarioSpec(
                        family="b", query="tree", query_params={"edges": 2},
                        topology="line", topology_params={"n": 2}, n=8,
                        seed=5,
                    ),
                ),
            ),
            "backend-tiny", "",
        ),
        overwrite=True,
    )
    out = str(tmp_path)
    assert lab_main(
        ["run", "backend-tiny", "--out", out, "--no-cache", "--quiet"]
    ) == 0
    artifact = os.path.join(out, ARTIFACT_FILENAME)
    assert lab_main(["parity", artifact]) == 0
    assert "1 backend pair(s)" in capsys.readouterr().out
