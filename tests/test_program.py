"""Two-plane engine tests: compiled RoundPrograms vs the generator engine.

The parity contract is exact, not approximate: for every scenario, the
compiled engine must produce byte-identical answers AND identical round
counts, total bits, per-(directed-)edge bits, busiest-link loads and
message counts.  The headline test sweeps every Table 1 suite — the
acceptance gate of the two-plane refactor.
"""

import pytest

from repro.core.planner import Planner, assign_round_robin
from repro.lab.runner import build_assignment, build_query, build_topology
from repro.lab.spec import ScenarioSpec
from repro.lab.suites import get_suite
from repro.network import Topology
from repro.network.program import (
    ComputeStep,
    ConvergecastOp,
    NodeProgram,
    chunk_pattern,
    run_program,
)
from repro.network.simulator import SimulationError, Simulator
from repro.protocols import (
    compile_plan,
    compile_round_programs,
    route_all_to_sink,
    run_distributed_faq,
    run_set_intersection,
    validate_engine,
)
from repro.protocols.faq_protocol import _make_player

DEFAULT_SEED = 20190625


def _run_both(spec: ScenarioSpec):
    """Run one scenario's protocol on both engines."""
    built = build_query(spec)
    topology = build_topology(spec)
    assignment = build_assignment(spec, built, topology) or assign_round_robin(
        built.query, topology
    )
    query = (
        built.query.with_backend(spec.backend) if spec.backend else built.query
    )
    gen = run_distributed_faq(query, topology, assignment, engine="generator")
    comp = run_distributed_faq(query, topology, assignment, engine="compiled")
    return gen, comp


def _assert_parity(gen, comp, label=""):
    assert comp.answer == gen.answer, f"{label}: answers differ"
    assert comp.rounds == gen.rounds, f"{label}: rounds differ"
    assert comp.total_bits == gen.total_bits, f"{label}: total bits differ"
    sim_g, sim_c = gen.simulation, comp.simulation
    assert sim_c.total_messages == sim_g.total_messages, label
    assert sim_c.edge_bits == sim_g.edge_bits, label
    assert sim_c.bits_per_edge == sim_g.bits_per_edge, label
    assert sim_c.max_edge_bits_per_round == sim_g.max_edge_bits_per_round, label
    assert sim_c.max_inflight_round == sim_g.max_inflight_round, label


def _table1_specs():
    return [
        spec.with_(engine="generator") for spec in get_suite("table1").scenarios
    ]


@pytest.mark.parametrize(
    "spec", _table1_specs(), ids=lambda s: s.label.split("/s")[0]
)
def test_engine_parity_on_every_table1_scenario(spec):
    """The acceptance gate: byte-identical answers and accounting on the
    full Table 1 sweep."""
    gen, comp = _run_both(spec)
    _assert_parity(gen, comp, spec.label)


@pytest.mark.parametrize("backend", [None, "columnar"])
def test_engine_parity_on_columnar_streaming_scenario(backend):
    spec = ScenarioSpec(
        family="scaling-xl", query="hard-star", query_params={"arms": 4},
        topology="line", topology_params={"n": 4}, n=512,
        assignment="worst-case", backend=backend, seed=DEFAULT_SEED,
    )
    gen, comp = _run_both(spec)
    _assert_parity(gen, comp, spec.label)


@pytest.mark.parametrize(
    "semiring", ["real", "min-plus", "max-plus", "max-times", "counting"]
)
def test_engine_parity_across_semirings(semiring):
    """Float semirings too: the compiled value plane replicates the
    generator's operand order, so even IEEE results agree exactly."""
    spec = ScenarioSpec(
        family="semiring", query="tree", query_params={"edges": 5},
        topology="grid", topology_params={"rows": 2, "cols": 3},
        n=32, domain_size=12, semiring=semiring, seed=7,
    )
    gen, comp = _run_both(spec)
    _assert_parity(gen, comp, spec.label)


def test_engine_parity_with_relayed_final_phase():
    """A topology where final-phase routing crosses relays (the chunked
    head/continuation pattern exercises the RouteOp queue)."""
    spec = ScenarioSpec(
        family="relay", query="tree", query_params={"edges": 5},
        topology="barbell", topology_params={"clique_size": 3, "path_len": 1},
        n=48, domain_size=24, semiring="counting", seed=DEFAULT_SEED,
    )
    gen, comp = _run_both(spec)
    _assert_parity(gen, comp, spec.label)


def test_fast_forward_is_accounting_neutral():
    """Cycle jumps change wall-clock only: stepping every round must give
    byte-identical results."""
    spec = ScenarioSpec(
        family="ffwd", query="hard-star", query_params={"arms": 4},
        topology="line", topology_params={"n": 4}, n=256,
        assignment="worst-case", seed=DEFAULT_SEED,
    )
    built = build_query(spec)
    topology = build_topology(spec)
    assignment = build_assignment(spec, built, topology)
    plan = compile_plan(built.query, topology, assignment)
    fast = run_program(
        topology, plan.capacity_bits,
        compile_round_programs(plan, topology), fast_forward=True,
    )
    slow = run_program(
        topology, plan.capacity_bits,
        compile_round_programs(plan, topology), fast_forward=False,
    )
    assert fast.rounds == slow.rounds
    assert fast.total_bits == slow.total_bits
    assert fast.total_messages == slow.total_messages
    assert fast.edge_bits == slow.edge_bits
    assert fast.bits_per_edge == slow.bits_per_edge
    assert fast.max_edge_bits_per_round == slow.max_edge_bits_per_round
    assert (
        fast.output_of(plan.output_player) == slow.output_of(plan.output_player)
    )


def test_engine_parity_planner_reports():
    """Planner(engine=...) reports identical rounds/bits/link stats."""
    spec = ScenarioSpec(
        family="planner", query="degenerate",
        query_params={"vertices": 5, "d": 2}, topology="clique",
        topology_params={"n": 4}, n=32, domain_size=32, seed=DEFAULT_SEED,
    )
    built = build_query(spec)
    topology = build_topology(spec)
    reports = {}
    for engine in ("generator", "compiled"):
        planner = Planner(built.query, topology, engine=engine)
        reports[engine] = planner.execute()
    gen, comp = reports["generator"], reports["compiled"]
    assert comp.answer == gen.answer
    assert comp.correct and gen.correct
    assert comp.measured_rounds == gen.measured_rounds
    assert comp.total_bits == gen.total_bits
    assert comp.link_utilization == gen.link_utilization
    assert 0.0 < comp.link_utilization <= 1.0


def test_validate_engine_rejects_unknown():
    with pytest.raises(ValueError, match="unknown engine"):
        validate_engine("turbo")
    with pytest.raises(ValueError, match="unknown engine"):
        run_distributed_faq(None, None, None, engine="turbo")


# ---------------------------------------------------------------------------
# Compiled paths of the other protocols
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "topology",
    [Topology.clique(5), Topology.line(5), Topology.grid(2, 3),
     Topology.hypercube(3)],
    ids=lambda t: t.name,
)
def test_set_intersection_engine_parity(topology):
    import random

    rng = random.Random(11)
    n = 48
    players = topology.nodes[:3]
    vectors = {p: [rng.random() < 0.6 for _ in range(n)] for p in players}
    out = players[0]
    ans_g, sim_g = run_set_intersection(topology, vectors, out, engine="generator")
    ans_c, sim_c = run_set_intersection(topology, vectors, out, engine="compiled")
    assert ans_c == ans_g
    assert sim_c.rounds == sim_g.rounds
    assert sim_c.total_bits == sim_g.total_bits
    assert sim_c.total_messages == sim_g.total_messages
    assert sim_c.edge_bits == sim_g.edge_bits


def test_route_all_to_sink_engine_parity():
    import random

    rng = random.Random(5)
    topology = Topology.grid(2, 3)
    holdings = {
        node: [(rng.choice([8, 40]), (node, i)) for i in range(rng.randint(0, 9))]
        for node in topology.nodes
    }
    got_g, sim_g = route_all_to_sink(topology, holdings, topology.nodes[0], 16)
    got_c, sim_c = route_all_to_sink(
        topology, holdings, topology.nodes[0], 16, engine="compiled"
    )
    # The compiled engine collects in origin order, not arrival order —
    # the multiset and every accounting figure are identical.
    assert sorted(map(repr, got_c)) == sorted(map(repr, got_g))
    assert sim_c.rounds == sim_g.rounds
    assert sim_c.total_bits == sim_g.total_bits
    assert sim_c.total_messages == sim_g.total_messages
    assert sim_c.bits_per_edge == sim_g.bits_per_edge


# ---------------------------------------------------------------------------
# Engine internals
# ---------------------------------------------------------------------------


def test_chunk_pattern_matches_chunk_packets():
    from repro.protocols.primitives import chunk_packets

    for item_bits, capacity in [(1, 1), (5, 5), (7, 5), (33, 20), (21, 20)]:
        expected = [b for b, _ in chunk_packets([(item_bits, "x")], capacity)]
        assert list(chunk_pattern(item_bits, capacity)) == expected


def test_compiled_deadlock_names_blocked_nodes():
    """A convergecast waiting on a silent child deadlocks immediately,
    and the error names the node, its program step and pending tags."""
    topology = Topology.line(2)
    op = ConvergecastOp("stuck", None, [topology.nodes[1]], per_slot=1)
    op.configure(4)
    programs = {
        topology.nodes[0]: NodeProgram(topology.nodes[0], [op]),
    }
    with pytest.raises(SimulationError) as err:
        run_program(topology, 8, programs, max_rounds=100)
    assert topology.nodes[0] in err.value.blocked
    assert "convergecast:stuck" in str(err.value)


def test_program_output_via_compute_step():
    topology = Topology.line(2)
    programs = {
        topology.nodes[0]: NodeProgram(
            topology.nodes[0],
            [ComputeStep(lambda ctx: "done", is_output=True)],
        )
    }
    result = run_program(topology, 4, programs)
    assert result.output_of(topology.nodes[0]) == "done"
    assert result.rounds == 0
    assert result.total_bits == 0


def test_simulator_run_program_entry_point():
    spec = ScenarioSpec(
        family="entry", query="hard-star", query_params={"arms": 4},
        topology="line", topology_params={"n": 4}, n=32,
        assignment="worst-case", seed=DEFAULT_SEED,
    )
    built = build_query(spec)
    topology = build_topology(spec)
    assignment = build_assignment(spec, built, topology)
    plan = compile_plan(built.query, topology, assignment)
    sim = Simulator(topology, plan.capacity_bits)
    result = sim.run_program(compile_round_programs(plan, topology))
    gen = sim.run({n: _make_player(plan, n) for n in topology.nodes})
    assert result.rounds == gen.rounds
    assert result.total_bits == gen.total_bits


def test_align_join_columns_huge_int_domains_fall_back():
    """Domain values beyond int64 must take the generic merge path, not
    crash the vectorized scorer (review regression)."""
    import numpy as np

    from repro.protocols.compiler import _align_join_columns

    wire_dict = [2 ** 63, 2 ** 63 + 1]
    factor_dict = [2 ** 63, 2 ** 63 + 2]
    wire_codes = np.array([0, 1, 0], dtype=np.int64)
    factor_codes = np.array([1, 0], dtype=np.int64)
    wire_col, factor_col, card = _align_join_columns(
        wire_dict, wire_codes, factor_dict, factor_codes
    )
    # Codes comparing equal must mean equal domain values.
    merged = {0: 2 ** 63, 1: 2 ** 63 + 1, 2: 2 ** 63 + 2}
    assert [merged[c] for c in wire_col.tolist()] == [
        wire_dict[c] for c in wire_codes.tolist()
    ]
    assert [merged[c] for c in factor_col.tolist()] == [
        factor_dict[c] for c in factor_codes.tolist()
    ]
    assert card == 3


def test_fast_forward_with_passive_receiver_does_not_crash():
    """A steady stream toward a program-less (passive) node is dropped on
    delivery in both engines; the cycle fast-forward must tolerate it
    (review regression)."""
    from repro.network.program import BroadcastOp

    topology = Topology.line(2)
    op = BroadcastOp(
        "drop", None, [topology.nodes[1]], per_item=2,
        root_count_fn=lambda: 500,
    )
    programs = {topology.nodes[0]: NodeProgram(topology.nodes[0], [op])}
    result = run_program(topology, 8, programs, max_rounds=10_000)
    slow = run_program(
        topology, 8,
        {topology.nodes[0]: NodeProgram(
            topology.nodes[0],
            [BroadcastOp("drop", None, [topology.nodes[1]], per_item=2,
                         root_count_fn=lambda: 500)],
        )},
        max_rounds=10_000, fast_forward=False,
    )
    assert result.rounds == slow.rounds
    assert result.total_bits == slow.total_bits == 32 + 500 * 2
