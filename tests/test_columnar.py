"""Backend parity: the columnar data plane must agree with the dict one.

Property-style randomized checks that ``join`` / ``semijoin`` / ``project``
/ ``marginalize`` produce equal :class:`Factor`s on both backends for every
supported semiring, plus the edge cases (empty factors, disjoint schemas,
zero-arity scalars), the graceful fallbacks (GF(2), custom aggregates,
full-domain folds), and the ``backend=`` knob on queries, solvers and the
planner.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Planner
from repro.faq import (
    PRODUCT,
    Aggregate,
    aggregate_absent_variable,
    bcq,
    join,
    marginal_query,
    marginalize,
    multi_join,
    project,
    semijoin,
    solve_bcq_yannakakis,
    solve_message_passing,
    solve_naive,
    solve_variable_elimination,
)
from repro.hypergraph import Hypergraph
from repro.network import Topology
from repro.semiring import (
    BACKEND_COLUMNAR,
    BACKEND_DICT,
    BOOLEAN,
    COUNTING,
    GF2,
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    REAL,
    ColumnarFactor,
    Factor,
    Semiring,
    backend_of,
    supports_columnar,
    to_backend,
)
from repro.workloads import random_instance

VECTOR_SEMIRINGS = (BOOLEAN, COUNTING, REAL, MIN_PLUS, MAX_PLUS, MAX_TIMES)


def random_factor(rng, schema, semiring, size, domain=10, name=None):
    """A random factor with semiring-appropriate annotations."""
    rows = {}
    for _ in range(size):
        key = tuple(rng.randrange(domain) for _ in schema)
        if semiring is BOOLEAN:
            rows[key] = True
        elif semiring is COUNTING:
            rows[key] = rng.randint(1, 9)
        else:
            rows[key] = rng.uniform(0.1, 5.0)
    return Factor(schema, rows, semiring, name)


def both(factor):
    """(dict, columnar) views of the same factor."""
    return factor, ColumnarFactor.from_factor(factor)


# ---------------------------------------------------------------------------
# Encoding round-trip
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("semiring", VECTOR_SEMIRINGS, ids=lambda s: s.name)
def test_roundtrip_preserves_rows(semiring):
    rng = random.Random(11)
    f = random_factor(rng, ("A", "B", "C"), semiring, 120)
    col = ColumnarFactor.from_factor(f)
    assert col == f
    assert col.to_dict_factor() == f
    assert len(col) == len(f)
    assert col.backend == BACKEND_COLUMNAR and f.backend == BACKEND_DICT
    for v in f.schema:
        assert col.active_domain(v) == f.active_domain(v)
    # Decoded values are canonical Python scalars, not NumPy scalars.
    for value in col.rows.values():
        assert type(value) in (bool, int, float)


def test_roundtrip_arbitrary_hashable_domains():
    rows = {("x", (1, 2)): 2, ("y", (3,)): 3, (None, (1, 2)): 5}
    f = Factor(("A", "B"), rows, COUNTING)
    col = ColumnarFactor.from_factor(f)
    assert col == f
    assert dict(col.rows) == rows


def test_columnar_rejects_unsupported_semiring():
    f = Factor(("A",), {(1,): 1}, GF2)
    with pytest.raises(ValueError):
        ColumnarFactor.from_factor(f)


def test_to_backend_gf2_falls_back_gracefully():
    f = Factor(("A",), {(1,): 1}, GF2)
    assert to_backend(f, BACKEND_COLUMNAR) is f
    assert backend_of(to_backend(f, BACKEND_COLUMNAR)) == BACKEND_DICT


def test_custom_semiring_reusing_builtin_name_stays_dict():
    fake_real = Semiring(
        name="real", zero=0.0, one=1.0,
        add=lambda a, b: a + b, mul=lambda a, b: a * b,
    )
    assert not supports_columnar(fake_real)
    f = Factor(("A",), {(1,): 2.0}, fake_real)
    assert to_backend(f, BACKEND_COLUMNAR) is f


# ---------------------------------------------------------------------------
# Operator parity (randomized, all supported semirings)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("semiring", VECTOR_SEMIRINGS, ids=lambda s: s.name)
@pytest.mark.parametrize("seed", range(4))
def test_join_parity(semiring, seed):
    rng = random.Random(seed)
    left, cleft = both(random_factor(rng, ("A", "B"), semiring, 150, domain=8))
    right, cright = both(random_factor(rng, ("B", "C"), semiring, 150, domain=8))
    expected = join(left, right)
    got = join(cleft, cright)
    assert isinstance(got, ColumnarFactor)
    assert got == expected


@pytest.mark.parametrize("semiring", VECTOR_SEMIRINGS, ids=lambda s: s.name)
@pytest.mark.parametrize("seed", range(4))
def test_project_and_marginalize_parity(semiring, seed):
    rng = random.Random(100 + seed)
    f, cf = both(random_factor(rng, ("A", "B", "C"), semiring, 200, domain=6))
    assert project(cf, ("C", "A")) == project(f, ("C", "A"))
    assert marginalize(cf, "B") == marginalize(f, "B")
    assert project(cf, ()) == project(f, ())


@pytest.mark.parametrize("semiring", VECTOR_SEMIRINGS, ids=lambda s: s.name)
@pytest.mark.parametrize("seed", range(4))
def test_semijoin_parity(semiring, seed):
    rng = random.Random(200 + seed)
    left, cleft = both(random_factor(rng, ("A", "B"), semiring, 120, domain=7))
    right, cright = both(random_factor(rng, ("B", "C"), semiring, 40, domain=7))
    got = semijoin(cleft, cright)
    assert isinstance(got, ColumnarFactor)
    assert got == semijoin(left, right)


@pytest.mark.parametrize("semiring", VECTOR_SEMIRINGS, ids=lambda s: s.name)
def test_multi_join_chain_parity(semiring):
    rng = random.Random(42)
    dicts, cols = [], []
    for schema in (("A", "B"), ("B", "C"), ("C", "D")):
        d, c = both(random_factor(rng, schema, semiring, 60, domain=5))
        dicts.append(d)
        cols.append(c)
    assert multi_join(cols) == multi_join(dicts)


# ---------------------------------------------------------------------------
# Edge cases: empty factors, disjoint schemas, scalars
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("semiring", VECTOR_SEMIRINGS, ids=lambda s: s.name)
def test_empty_factor_edge_cases(semiring):
    rng = random.Random(7)
    full, cfull = both(random_factor(rng, ("A", "B"), semiring, 50))
    empty, cempty = both(Factor(("B", "C"), (), semiring))
    assert join(cfull, cempty) == join(full, empty)
    assert len(join(cfull, cempty)) == 0
    assert join(cempty, cfull) == join(empty, full)
    assert semijoin(cfull, cempty) == semijoin(full, empty)
    assert marginalize(cempty, "B") == marginalize(empty, "B")
    assert project(cempty, ("C",)) == project(empty, ("C",))


@pytest.mark.parametrize("semiring", VECTOR_SEMIRINGS, ids=lambda s: s.name)
def test_disjoint_schema_cross_product(semiring):
    rng = random.Random(8)
    left, cleft = both(random_factor(rng, ("A",), semiring, 15, domain=30))
    right, cright = both(random_factor(rng, ("B",), semiring, 12, domain=30))
    got = join(cleft, cright)
    assert got == join(left, right)
    assert len(got) == len(left) * len(right)
    # Disjoint-schema semijoin: empty right empties left, else left survives.
    assert semijoin(cleft, cright) == semijoin(left, right)
    empty = ColumnarFactor(("B",), (), semiring)
    assert len(semijoin(cleft, empty)) == 0


def test_scalar_factors():
    s, cs = both(Factor((), {(): 3}, COUNTING))
    a, ca = both(Factor(("A",), {(1,): 2, (2,): 5}, COUNTING))
    assert join(cs, ca) == join(s, a)
    assert marginalize(ca, "A") == marginalize(a, "A")
    zero, czero = both(Factor((), {}, COUNTING))
    assert join(czero, ca) == join(zero, a)


def test_boolean_semijoin_mixed_backends_fall_back():
    # One dict operand forces the generic path; result is still correct.
    rng = random.Random(9)
    left, cleft = both(random_factor(rng, ("A", "B"), BOOLEAN, 40, domain=5))
    right = random_factor(rng, ("B",), BOOLEAN, 10, domain=5)
    assert semijoin(cleft, right) == semijoin(left, right)
    assert join(cleft, right) == join(left, right)


# ---------------------------------------------------------------------------
# Fallbacks that must stay on the dict path
# ---------------------------------------------------------------------------


def test_custom_combine_falls_back_to_dict_path():
    rng = random.Random(10)
    f, cf = both(random_factor(rng, ("A", "B"), COUNTING, 80, domain=6))
    combine = lambda a, b: a + b + 1  # noqa: E731 - not the semiring add
    expected = marginalize(f, "B", combine=combine)
    got = marginalize(cf, "B", combine=combine)
    assert got == expected


def test_full_domain_fold_falls_back_to_dict_path():
    rng = random.Random(12)
    f, cf = both(random_factor(rng, ("A", "B"), COUNTING, 60, domain=5))
    dom = tuple(range(5))
    expected = marginalize(f, "B", combine=COUNTING.mul, full_domain=dom)
    got = marginalize(cf, "B", combine=COUNTING.mul, full_domain=dom)
    assert got == expected


def test_counting_join_overflow_falls_back_to_exact_dict_path():
    # 2**33 * 2**33 = 2**66 wraps to exactly 0 in int64 — the kernel must
    # detect the risk and fall back to the dict path's unbounded ints.
    big = 2 ** 33
    l_dict, l_col = both(Factor(("A",), {(1,): big}, COUNTING))
    r_dict, r_col = both(Factor(("A",), {(1,): big}, COUNTING))
    expected = join(l_dict, r_dict)
    got = join(l_col, r_col)
    assert got == expected
    assert got((1,)) == big * big


def test_counting_reduce_overflow_falls_back_to_exact_dict_path():
    near_max = 2 ** 62
    rows = {(1, i): near_max for i in range(4)}
    f, cf = both(Factor(("A", "B"), rows, COUNTING))
    expected = marginalize(f, "B")
    got = marginalize(cf, "B")
    assert got == expected
    assert got((1,)) == 4 * near_max
    assert project(cf, ("A",)) == project(f, ("A",))


def test_to_backend_huge_counts_stay_dict():
    f = Factor(("A",), {(1,): 2 ** 70}, COUNTING)
    assert to_backend(f, BACKEND_COLUMNAR) is f


def test_aggregate_absent_variable_folds():
    f = Factor(("A",), {(1,): 3}, COUNTING)
    # Semiring add: 3 summed |Dom| times.
    assert aggregate_absent_variable(f, COUNTING.add, 7, False)((1,)) == 21
    # Product aggregate: 3 ** |Dom| via the double-and-add fold.
    assert aggregate_absent_variable(f, COUNTING.mul, 5, True)((1,)) == 3 ** 5
    # Idempotent add collapses regardless of domain size.
    b = Factor(("A",), {(1,): True}, BOOLEAN)
    assert aggregate_absent_variable(b, BOOLEAN.add, 10 ** 9, False)((1,)) is True


def test_aggregate_absent_variable_preserves_backend():
    rng = random.Random(13)
    f, cf = both(random_factor(rng, ("A",), COUNTING, 20))
    expected = aggregate_absent_variable(f, COUNTING.add, 3, False)
    got = aggregate_absent_variable(cf, COUNTING.add, 3, False)
    assert got == expected
    assert backend_of(got) == BACKEND_COLUMNAR


# ---------------------------------------------------------------------------
# Factor surface on the columnar subclass
# ---------------------------------------------------------------------------


def test_columnar_surface_rename_copy_with_semiring():
    rng = random.Random(14)
    f, cf = both(random_factor(rng, ("A", "B"), COUNTING, 30))
    assert cf.rename({"A": "X"}) == f.rename({"A": "X"})
    assert isinstance(cf.rename({"A": "X"}), ColumnarFactor)
    assert cf.copy(name="c") == f.copy(name="c")
    lifted = cf.with_semiring(BOOLEAN)
    assert lifted == f.with_semiring(BOOLEAN)
    assert isinstance(lifted, ColumnarFactor)
    to_gf2 = cf.with_semiring(GF2, convert=lambda v: v % 2)
    assert backend_of(to_gf2) == BACKEND_DICT
    assert to_gf2 == f.with_semiring(GF2, convert=lambda v: v % 2)


def test_columnar_rejects_duplicate_schema_like_dict():
    f, cf = both(Factor(("A", "B"), {(1, 2): 4}, COUNTING))
    with pytest.raises(ValueError):
        f.rename({"B": "A"})
    with pytest.raises(ValueError):
        cf.rename({"B": "A"})
    with pytest.raises(ValueError):
        project(cf, ("A", "A"))
    with pytest.raises(ValueError):
        ColumnarFactor(("A", "A"), (), COUNTING)


def test_columnar_rows_view_is_read_only():
    # Arrays are the authoritative storage; the decoded rows view must not
    # accept mutations that would silently desync from them.
    cf = ColumnarFactor(("A",), {(1,): 2}, COUNTING)
    with pytest.raises(TypeError):
        cf.rows[(9,)] = 5
    assert dict(cf.rows) == {(1,): 2}


def test_columnar_dictionaries_shared_not_copied():
    rng = random.Random(15)
    cf = ColumnarFactor.from_factor(random_factor(rng, ("A", "B"), COUNTING, 30))
    derived = cf.copy()
    assert derived.dictionaries[0] is cf.dictionaries[0]
    renamed = cf.rename({"A": "X"})
    assert renamed.dictionaries[1] is cf.dictionaries[1]


def test_columnar_contains_call_and_size_bits():
    f, cf = both(Factor(("A", "B"), {(1, 2): 4, (3, 4): 5}, COUNTING))
    assert (1, 2) in cf and (9, 9) not in cf
    assert cf((3, 4)) == 5 and cf((9, 9)) == 0
    assert cf.size_bits(16) == f.size_bits(16)


# ---------------------------------------------------------------------------
# Hypothesis: join/marginalize parity over arbitrary listings
# ---------------------------------------------------------------------------

pair_lists = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=40
)


@settings(max_examples=60, deadline=None)
@given(left=pair_lists, right=pair_lists)
def test_hypothesis_boolean_join_marginalize_parity(left, right):
    l_dict = Factor.from_tuples(("A", "B"), left, BOOLEAN)
    r_dict = Factor.from_tuples(("B", "C"), right, BOOLEAN)
    l_col, r_col = ColumnarFactor.from_factor(l_dict), ColumnarFactor.from_factor(r_dict)
    expected = join(l_dict, r_dict)
    got = join(l_col, r_col)
    assert got == expected
    assert marginalize(got, "B") == marginalize(expected, "B")


@settings(max_examples=60, deadline=None)
@given(
    rows=st.dictionaries(
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        st.integers(1, 50),
        max_size=30,
    )
)
def test_hypothesis_counting_project_parity(rows):
    f = Factor(("A", "B"), rows, COUNTING)
    cf = ColumnarFactor.from_factor(f)
    assert project(cf, ("A",)) == project(f, ("A",))
    assert project(cf, ("B", "A")) == project(f, ("B", "A"))


# ---------------------------------------------------------------------------
# The backend knob: queries, solvers, planner
# ---------------------------------------------------------------------------


def _chain_query(semiring=COUNTING, seed=3):
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "D")})
    factors, domains = random_instance(
        h, domain_size=12, relation_size=60, seed=seed, semiring=semiring
    )
    return marginal_query(h, factors, domains, ("A",), semiring)


def test_query_backend_knob_converts_factors():
    q = _chain_query()
    qc = q.with_backend(BACKEND_COLUMNAR)
    assert all(backend_of(f) == BACKEND_COLUMNAR for f in qc.factors.values())
    qd = qc.with_backend(BACKEND_DICT)
    assert all(backend_of(f) == BACKEND_DICT for f in qd.factors.values())
    assert qc.with_backend(BACKEND_COLUMNAR) is qc


def test_query_backend_knob_rejects_unknown_name():
    q = _chain_query()
    with pytest.raises(ValueError):
        q.with_backend("arrow")


@pytest.mark.parametrize("semiring", (BOOLEAN, COUNTING, REAL, MIN_PLUS))
def test_solver_parity_across_backends(semiring):
    q = _chain_query(semiring=semiring)
    expected = solve_variable_elimination(q, backend=BACKEND_DICT)
    assert solve_variable_elimination(q, backend=BACKEND_COLUMNAR) == expected
    assert solve_naive(q, backend=BACKEND_COLUMNAR) == expected
    assert solve_message_passing(q, backend=BACKEND_COLUMNAR) == expected


def test_solver_backend_parity_with_product_aggregate():
    h = Hypergraph({"R": ("A", "B")})
    factors, domains = random_instance(
        h, domain_size=4, relation_size=10, seed=1, semiring=COUNTING
    )
    q = marginal_query(h, factors, domains, ("A",), COUNTING)
    q.aggregates = {"B": PRODUCT}
    expected = solve_naive(q, backend=BACKEND_DICT)
    assert solve_naive(q, backend=BACKEND_COLUMNAR) == expected


def test_yannakakis_backend_parity():
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C")})
    factors, domains = random_instance(h, domain_size=6, relation_size=20, seed=2)
    q = bcq(h, factors, domains)
    assert solve_bcq_yannakakis(q, backend=BACKEND_COLUMNAR) == solve_bcq_yannakakis(
        q, backend=BACKEND_DICT
    )


def test_planner_executes_with_columnar_backend():
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C")})
    factors, domains = random_instance(h, domain_size=8, relation_size=25, seed=4)
    q = bcq(h, factors, domains, backend=BACKEND_COLUMNAR)
    report = Planner(q, Topology.line(3), backend=BACKEND_COLUMNAR).execute()
    assert report.correct
