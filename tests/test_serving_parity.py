"""The serving plane's answer contract.

Three claims, each load-bearing for ``BENCH_serving.json``:

1. **Axis-complete byte-identity** — a served answer's digest equals the
   digest :meth:`Planner.execute` records for the same spec, on every
   plane of the engine × solver × backend × kernels grid (the protocol
   answer equals the reference solve on every lab run — the four-axis
   parity contract — and the online path *is* the reference solve).
2. **Coalescing parity** — answers from duplicate-coalesced and
   stacked-batch executions are digest-equal to individually served
   ones, in-process and across the warm worker pool.
3. **Priced admission is exact** — the manifest's zero-execution
   prediction equals the measured rounds/bits of an actual protocol
   execution on covered cells.
"""

import asyncio
import itertools

import pytest

from repro.core.memo import clear_all_memos
from repro.faq.plan import PLAN_CACHE
from repro.lab.batch import structural_signature
from repro.lab.generate import generate_scenarios, sample_scenario
from repro.lab.runner import execute_scenario, materialize_scenario
from repro.serve import QueryService, ServeError, session_id_of
from repro.serve.session import ServingSession
from repro.serve.store import SharedRelationStore


@pytest.fixture(autouse=True)
def _fresh_memos():
    clear_all_memos()
    PLAN_CACHE.clear()
    yield


AXIS_PLANES = list(itertools.product(
    ("generator", "compiled"),      # engine
    ("operator", "compiled"),       # solver
    (None, "columnar"),             # backend (None = the family's own)
    ("numpy", "jit"),               # kernels (jit falls back sans numba)
))


def test_served_answers_match_planner_execute_on_every_axis_plane():
    base = sample_scenario(41)
    specs = [
        base.with_(engine=engine, solver=solver, backend=backend,
                   kernels=kernels)
        for engine, solver, backend, kernels in AXIS_PLANES
    ]
    expected = {
        session_id_of(spec): execute_scenario(spec).answer_digest
        for spec in specs
    }

    async def main():
        async with QueryService() as service:
            results = await asyncio.gather(
                *(service.submit(spec) for spec in specs)
            )
            for result in results:
                assert result.digest == expected[result.session_id]
            # Registration pinned the same digest offline.
            for spec in specs:
                manifest = service.sessions[
                    session_id_of(spec)
                ].manifest
                assert manifest.answer_digest == expected[
                    session_id_of(spec)
                ]

    asyncio.run(main())


def test_served_answers_match_lab_digests_on_fuzz_sample():
    specs = generate_scenarios(77, 10)
    expected = {
        session_id_of(spec): execute_scenario(spec).answer_digest
        for spec in specs
    }

    async def main():
        async with QueryService() as service:
            results = await asyncio.gather(
                *(service.submit(spec) for spec in specs)
            )
            for result in results:
                assert result.digest == expected[result.session_id]
            assert service.stats.served == len(specs)

    asyncio.run(main())


def _twin_pair(master_seed=91, count=40):
    """Two distinct specs sharing a structural signature (stackable)."""
    for spec in generate_scenarios(master_seed, count):
        twin = spec.with_(seed=spec.seed + 1)
        try:
            sig = structural_signature(materialize_scenario(spec)[0].query)
            twin_sig = structural_signature(
                materialize_scenario(twin)[0].query
            )
        except Exception:  # family rejects the shifted seed
            continue
        if sig is not None and sig == twin_sig and (
            session_id_of(spec) != session_id_of(twin)
        ):
            return spec, twin
    raise RuntimeError("no stackable twins in the sample")  # pragma: no cover


def test_coalesced_and_stacked_answers_are_digest_equal():
    spec, twin = _twin_pair()
    expected = {
        session_id_of(s): execute_scenario(s).answer_digest
        for s in (spec, twin)
    }

    async def main():
        async with QueryService() as service:
            # duplicates of both + the distinct twins, all in flight:
            # exercises duplicate-coalescing AND stacking in one batch.
            flood = [spec, twin, spec, twin, spec]
            results = await asyncio.gather(
                *(service.submit(s) for s in flood)
            )
            for result in results:
                assert result.digest == expected[result.session_id]
            assert service.stats.coalesced_duplicates >= 3
            assert service.stats.stacked_groups >= 1
            assert service.stats.stacked_queries >= 2

    asyncio.run(main())


def test_pool_served_answers_are_digest_equal_to_in_process():
    spec, twin = _twin_pair()
    expected = {
        session_id_of(s): execute_scenario(s).answer_digest
        for s in (spec, twin)
    }

    async def main():
        service = QueryService(workers=1)
        for s in (spec, twin):
            service.register(s)
        async with service:
            results = await asyncio.gather(
                *(service.submit(s) for s in (spec, twin, spec))
            )
            for result in results:
                assert result.digest == expected[result.session_id]

    asyncio.run(main())


def test_admission_predictions_match_measured_costs_on_covered_cells():
    matched = 0
    for spec in generate_scenarios(31, 8):
        store = SharedRelationStore()
        try:
            manifest = ServingSession.register(spec, store).manifest
        finally:
            store.close()
        if not manifest.covered:
            continue
        result = execute_scenario(spec)
        measured = result.cost_model["measured"]
        assert manifest.predicted == measured, spec.label
        matched += 1
    assert matched > 0  # the sample must include covered cells