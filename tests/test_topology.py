"""Tests for topologies, cuts, Steiner packing and flow bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    Topology,
    find_steiner_tree,
    mincut,
    mincut_partition,
    pack_steiner_trees,
    sparsity_bound,
    st_value,
    tau_mcf,
    tau_mcf_bits,
)


def test_line_structure():
    g = Topology.line(5)
    assert g.num_nodes == 5
    assert g.num_edges == 4
    assert g.distance("P0", "P4") == 4
    assert g.diameter() == 4
    assert g.neighbors("P2") == ["P1", "P3"]


def test_clique_structure():
    g = Topology.clique(5)
    assert g.num_edges == 10
    assert g.diameter() == 1


def test_star_ring_grid_tree_barbell():
    assert Topology.star(4).degree("P0") == 4
    assert Topology.ring(6).diameter() == 3
    grid = Topology.grid(3, 3)
    assert grid.num_nodes == 9
    assert grid.distance("P0_0", "P2_2") == 4
    tree = Topology.balanced_tree(2, 3)
    assert tree.num_nodes == 15
    bb = Topology.barbell(3, 2)
    assert mincut(bb, ["L1", "R1"]) == 1


def test_invalid_topologies():
    with pytest.raises(ValueError):
        Topology.line(1)
    with pytest.raises(ValueError):
        Topology([("a", "a")])
    with pytest.raises(ValueError):
        Topology.grid(1, 1)


def test_bfs_tree():
    g = Topology.line(4)
    parents = g.bfs_tree("P3")
    assert parents["P3"] is None
    assert parents["P0"] == "P1"
    assert parents["P2"] == "P3"


def test_two_party():
    g = Topology.two_party()
    assert set(g.nodes) == {"a", "b"}


# ---------------------------------------------------------------------------
# MinCut (Definition 3.6)
# ---------------------------------------------------------------------------


def test_mincut_line_is_one():
    g = Topology.line(6)
    assert mincut(g, ["P0", "P5"]) == 1
    assert mincut(g, g.nodes) == 1


def test_mincut_clique():
    g = Topology.clique(5)
    assert mincut(g, g.nodes) == 4


def test_mincut_ring_is_two():
    g = Topology.ring(6)
    assert mincut(g, ["P0", "P3"]) == 2


def test_mincut_requires_two_players():
    g = Topology.line(3)
    with pytest.raises(ValueError):
        mincut(g, ["P0"])
    with pytest.raises(ValueError):
        mincut(g, ["P0", "nope"])


def test_mincut_partition_separates():
    g = Topology.line(4)
    side_a, side_b, crossing = mincut_partition(g, ["P0", "P3"])
    assert ("P0" in side_a) != ("P0" in side_b)
    assert len(crossing) == 1
    for u, v in crossing:
        assert (u in side_a) != (v in side_a)


# ---------------------------------------------------------------------------
# Steiner trees (Definitions 3.8-3.9, Theorem 3.10)
# ---------------------------------------------------------------------------


def test_find_steiner_tree_line():
    g = Topology.line(5)
    tree = find_steiner_tree(g, ["P0", "P4"])
    assert tree is not None
    assert len(tree.edges) == 4
    assert tree.terminal_diameter() == 4


def test_steiner_tree_parent_map_and_depth():
    g = Topology.line(4)
    tree = find_steiner_tree(g, g.nodes)
    parents = tree.parent_map()
    assert parents[tree.root] is None
    assert set(parents) == set(tree.nodes)
    assert tree.depth() >= 1


def test_pack_line_single_tree():
    g = Topology.line(5)
    packed = pack_steiner_trees(g, g.nodes)
    assert len(packed) == 1


def test_pack_clique_many_trees():
    """Theorem 3.10 shape: ST(G, K, |V|) = Ω(MinCut) on a clique."""
    g = Topology.clique(6)
    cut = mincut(g, g.nodes)
    packed = pack_steiner_trees(g, g.nodes)
    assert len(packed) >= cut // 2  # greedy is within a constant factor
    # Edge-disjointness:
    seen = set()
    for tree in packed:
        for edge in tree.edges:
            assert edge not in seen
            seen.add(edge)


def test_pack_respects_diameter():
    g = Topology.line(6)
    assert st_value(g, g.nodes, max_diameter=2) == 0
    assert st_value(g, g.nodes, max_diameter=5) == 1


def test_single_terminal_packing():
    g = Topology.line(3)
    packed = pack_steiner_trees(g, ["P0"])
    assert len(packed) == 1
    assert packed[0].edges == ()


# ---------------------------------------------------------------------------
# τ_MCF (Definition 3.12)
# ---------------------------------------------------------------------------


def test_tau_mcf_zero_demand():
    g = Topology.line(3)
    assert tau_mcf(g, g.nodes, 0) == 0


def test_tau_mcf_line_scales_with_n():
    g = Topology.line(4)
    assert tau_mcf(g, g.nodes, 100, sink="P0") == 100 + 3
    assert tau_mcf(g, g.nodes, 200, sink="P0") == 200 + 3


def test_tau_mcf_clique_divides_by_cut():
    g = Topology.clique(5)
    t = tau_mcf(g, g.nodes, 100, sink="P0")
    assert t == 25 + 1


def test_tau_mcf_bits():
    g = Topology.line(3)
    t = tau_mcf_bits(g, g.nodes, total_bits=64, bits_per_round=8, sink="P0")
    assert t == 8 + 2


def test_sparsity_bound():
    g = Topology.line(4)
    assert sparsity_bound(g, g.nodes, 100, 1) == 100.0
    assert sparsity_bound(g, ["P0"], 100, 1) == 0.0


@settings(max_examples=20, deadline=None)
@given(st.integers(3, 8))
def test_mincut_clique_property(n):
    g = Topology.clique(n)
    assert mincut(g, g.nodes) == n - 1


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 10))
def test_line_distance_property(n):
    g = Topology.line(n + 1)
    assert g.distance("P0", f"P{n}") == n


# ---------------------------------------------------------------------------
# New topology families: hypercube + expander (and regular determinism)
# ---------------------------------------------------------------------------


def test_hypercube_structure():
    g = Topology.hypercube(3)
    assert g.num_nodes == 8
    assert g.num_edges == 12  # dim * 2^(dim-1)
    assert all(g.degree(v) == 3 for v in g.nodes)
    assert g.diameter() == 3
    assert g.is_connected()
    # Antipodal nodes differ in every bit: P0 (000) vs P7 (111).
    assert g.distance("P0", "P7") == 3


def test_hypercube_dim_one_and_validation():
    g = Topology.hypercube(1)
    assert g.num_nodes == 2
    assert g.num_edges == 1
    with pytest.raises(ValueError):
        Topology.hypercube(0)


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 6))
def test_hypercube_regularity_property(dim):
    g = Topology.hypercube(dim)
    assert g.num_nodes == 2**dim
    assert all(g.degree(v) == dim for v in g.nodes)
    # Min cut of the hypercube over all players is its degree.
    assert mincut(g, g.nodes) == dim


def test_expander_is_seeded_regular():
    g = Topology.expander(10, 3, seed=5)
    assert g.num_nodes == 10
    assert all(g.degree(v) == 3 for v in g.nodes)
    assert g.is_connected()


def test_expander_determinism_under_fixed_seed():
    a = Topology.expander(12, 3, seed=9)
    b = Topology.expander(12, 3, seed=9)
    assert a.edges() == b.edges()
    assert a.name == b.name


def test_random_regular_determinism_under_fixed_seed():
    a = Topology.random_regular(3, 12, seed=4)
    b = Topology.random_regular(3, 12, seed=4)
    assert a.edges() == b.edges()
    # Different seeds explore different graphs (overwhelmingly likely for
    # n=12, d=3; these specific seeds are checked to differ).
    c = Topology.random_regular(3, 12, seed=5)
    assert a.edges() != c.edges()
