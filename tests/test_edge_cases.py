"""Edge cases and failure injection across the stack.

Exercises the corner conditions the paper's model glosses over: empty
relations, singleton domains, duplicate (parallel) relations, self-join
shapes, missing players, tiny capacities, and adversarially empty
intermediate results.
"""

import pytest

from repro.core import Planner, assign_round_robin
from repro.decomposition import best_gyo_ghd, gyo_ghd
from repro.faq import (
    FAQQuery,
    bcq,
    scalar_value,
    solve_message_passing,
    solve_naive,
    solve_variable_elimination,
)
from repro.hypergraph import Hypergraph
from repro.network import Topology
from repro.protocols import run_distributed_faq
from repro.semiring import BOOLEAN, COUNTING, Factor
from repro.workloads import domains_for


def test_all_relations_empty():
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C")})
    factors = {
        "R": Factor(("A", "B"), {}, BOOLEAN, "R"),
        "S": Factor(("B", "C"), {}, BOOLEAN, "S"),
    }
    q = bcq(h, factors, domains_for(h, 4))
    assert scalar_value(solve_naive(q)) is False
    rep = run_distributed_faq(
        q, Topology.line(2), {"R": "P0", "S": "P1"}
    )
    assert scalar_value(rep.answer) is False


def test_center_becomes_empty_mid_protocol():
    """A star whose semijoin empties the center relation entirely."""
    h = Hypergraph({"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D")})
    factors = {
        "R": Factor.from_tuples(("A", "B"), [(0, 0), (1, 1)], name="R"),
        "S": Factor.from_tuples(("A", "C"), [(2, 0)], name="S"),
        "T": Factor.from_tuples(("A", "D"), [(3, 0)], name="T"),
    }
    q = bcq(h, factors, domains_for(h, 5))
    rep = run_distributed_faq(
        q, Topology.line(3), {"R": "P0", "S": "P1", "T": "P2"}
    )
    assert scalar_value(rep.answer) is False


def test_singleton_domains():
    h = Hypergraph({"R": ("A", "B")})
    factors = {"R": Factor.from_tuples(("A", "B"), [(0, 0)], name="R")}
    q = bcq(h, factors, {"A": (0,), "B": (0,)})
    assert scalar_value(solve_naive(q)) is True
    rep = Planner(q, Topology.line(2), {"R": "P0"}, "P1").execute()
    assert rep.correct


def test_parallel_duplicate_relations():
    """Two relations over the same attribute pair (a multi-hypergraph)."""
    h = Hypergraph({"R1": ("A", "B"), "R2": ("A", "B")})
    factors = {
        "R1": Factor.from_tuples(("A", "B"), [(0, 0), (1, 1)], name="R1"),
        "R2": Factor.from_tuples(("A", "B"), [(1, 1), (2, 2)], name="R2"),
    }
    q = bcq(h, factors, domains_for(h, 4))
    assert scalar_value(solve_naive(q)) is True  # (1,1) survives both
    ghd = best_gyo_ghd(h)
    ghd.validate()
    rep = run_distributed_faq(
        q, Topology.line(2), {"R1": "P0", "R2": "P1"}
    )
    assert scalar_value(rep.answer) is True


def test_parallel_relations_disjoint_gives_false():
    h = Hypergraph({"R1": ("A", "B"), "R2": ("A", "B")})
    factors = {
        "R1": Factor.from_tuples(("A", "B"), [(0, 0)], name="R1"),
        "R2": Factor.from_tuples(("A", "B"), [(1, 1)], name="R2"),
    }
    q = bcq(h, factors, domains_for(h, 3))
    rep = run_distributed_faq(
        q, Topology.line(2), {"R1": "P0", "R2": "P1"}
    )
    assert scalar_value(rep.answer) is False


def test_unary_relations():
    """The H0 query of Example 2.1: all relations unary on A."""
    h = Hypergraph(
        {"R": ("A",), "S": ("A",), "T": ("A",), "U": ("A",)}
    )
    factors = {
        name: Factor.from_tuples(("A",), [(v,) for v in vals], name=name)
        for name, vals in (
            ("R", [0, 1, 2]), ("S", [1, 2, 3]), ("T", [2, 3]), ("U", [2]),
        )
    }
    q = bcq(h, factors, domains_for(h, 5))
    assert scalar_value(solve_naive(q)) is True  # A=2 in all four
    rep = run_distributed_faq(
        q, Topology.line(4),
        {"R": "P0", "S": "P1", "T": "P2", "U": "P3"},
    )
    assert scalar_value(rep.answer) is True


def test_unary_intersection_empty():
    h = Hypergraph({"R": ("A",), "S": ("A",)})
    factors = {
        "R": Factor.from_tuples(("A",), [(0,)], name="R"),
        "S": Factor.from_tuples(("A",), [(1,)], name="S"),
    }
    q = bcq(h, factors, domains_for(h, 3))
    rep = run_distributed_faq(q, Topology.line(2), {"R": "P0", "S": "P1"})
    assert scalar_value(rep.answer) is False


def test_single_relation_query():
    h = Hypergraph({"R": ("A", "B", "C")})
    factors = {"R": Factor.from_tuples(("A", "B", "C"), [(0, 1, 2)], name="R")}
    q = bcq(h, factors, domains_for(h, 4))
    rep = Planner(q, Topology.line(2), {"R": "P0"}, "P1").execute()
    assert rep.correct
    assert scalar_value(rep.answer) is True


def test_two_party_topology_runs():
    """Model 2.2: the two-party graph is just a 2-node topology."""
    topo = Topology.two_party()
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C")})
    factors = {
        "R": Factor.from_tuples(("A", "B"), [(0, 1)], name="R"),
        "S": Factor.from_tuples(("B", "C"), [(1, 2)], name="S"),
    }
    q = bcq(h, factors, domains_for(h, 4))
    rep = run_distributed_faq(q, topo, {"R": "a", "S": "b"})
    assert scalar_value(rep.answer) is True


def test_counting_overflow_free_bigints():
    """Python ints: huge counting annotations survive the protocol."""
    h = Hypergraph({"R": ("A",), "S": ("A",)})
    big = 10**30
    factors = {
        "R": Factor(("A",), {(0,): big}, COUNTING, "R"),
        "S": Factor(("A",), {(0,): big}, COUNTING, "S"),
    }
    q = FAQQuery(h, factors, {"A": (0, 1)}, semiring=COUNTING)
    assert scalar_value(solve_naive(q)) == big * big
    rep = run_distributed_faq(q, Topology.line(2), {"R": "P0", "S": "P1"})
    assert scalar_value(rep.answer) == big * big


def test_disconnected_query_on_connected_topology():
    h = Hypergraph({"R": ("A", "B"), "S": ("C", "D")})
    factors = {
        "R": Factor.from_tuples(("A", "B"), [(0, 0)], name="R"),
        "S": Factor.from_tuples(("C", "D"), [(1, 1)], name="S"),
    }
    q = bcq(h, factors, domains_for(h, 3))
    expected = scalar_value(solve_naive(q))
    rep = run_distributed_faq(q, Topology.line(2), {"R": "P0", "S": "P1"})
    assert scalar_value(rep.answer) == expected


def test_capacity_one_network_still_correct():
    """Thin pipes: capacity gets floored at the per-tuple cost but the
    protocol must still terminate and be correct."""
    h = Hypergraph({"R": ("A", "B"), "S": ("A", "C")})
    factors = {
        "R": Factor.from_tuples(("A", "B"), [(0, 0), (1, 0)], name="R"),
        "S": Factor.from_tuples(("A", "C"), [(1, 1)], name="S"),
    }
    q = bcq(h, factors, {"A": (0, 1), "B": (0,), "C": (0, 1)})
    rep = run_distributed_faq(q, Topology.line(2), {"R": "P0", "S": "P1"})
    assert scalar_value(rep.answer) is True


def test_ghd_for_single_edge():
    h = Hypergraph({"R": ("A", "B")})
    t = gyo_ghd(h)
    t.validate()
    assert t.num_internal_nodes == 0


def test_solvers_on_query_with_shared_triple():
    """A bowtie: two triangles sharing a vertex — cyclic core exercise."""
    h = Hypergraph(
        {
            "R1": ("A", "B"), "R2": ("B", "C"), "R3": ("A", "C"),
            "S1": ("C", "D"), "S2": ("D", "E"), "S3": ("C", "E"),
        }
    )
    factors = {
        name: Factor.from_tuples(
            tuple(sorted(h.edge(name), key=str)),
            [(0, 0), (1, 1)],
            name=name,
        )
        for name in h.edge_names
    }
    q = bcq(h, factors, domains_for(h, 3))
    expected = scalar_value(solve_naive(q))
    assert scalar_value(solve_variable_elimination(q)) == expected
    assert scalar_value(solve_message_passing(q)) == expected
    topo = Topology.ring(6)
    rep = run_distributed_faq(q, topo, assign_round_robin(q, topo))
    assert scalar_value(rep.answer) == expected
