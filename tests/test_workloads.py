"""Tests for the workload generators."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import gyo_reduce, is_acyclic, simple_graph_degeneracy
from repro.semiring import BOOLEAN, COUNTING, REAL
from repro.workloads import (
    domains_for,
    matching_relation,
    random_acyclic_hypergraph,
    random_d_degenerate_query,
    random_forest_query,
    random_instance,
    random_relation,
    random_tree_query,
    random_weighted_relation,
)


def test_random_tree_query_is_tree():
    h = random_tree_query(7, seed=1)
    assert h.num_edges == 7
    assert h.num_vertices == 8
    assert is_acyclic(h)
    assert h.is_connected()


def test_random_forest_query_components():
    h = random_forest_query(3, 2, seed=2)
    assert len(h.connected_components()) == 3
    assert is_acyclic(h)


def test_random_d_degenerate_query_bound():
    for d in (1, 2, 3):
        h = random_d_degenerate_query(10, d, seed=d)
        assert simple_graph_degeneracy(h) <= d


def test_random_d_degenerate_achieves_d_usually():
    h = random_d_degenerate_query(12, 3, seed=0)
    assert simple_graph_degeneracy(h) == 3


def test_random_acyclic_hypergraph_properties():
    h = random_acyclic_hypergraph(6, 4, seed=3)
    assert h.num_edges == 6
    assert h.arity <= 4
    assert is_acyclic(h)
    assert h.is_connected()


def test_generator_validation():
    with pytest.raises(ValueError):
        random_tree_query(0)
    with pytest.raises(ValueError):
        random_d_degenerate_query(1, 2)
    with pytest.raises(ValueError):
        random_acyclic_hypergraph(3, 1)


def test_random_relation_size_and_domain():
    domains = {"A": range(5), "B": range(5)}
    r = random_relation(("A", "B"), domains, 10, seed=4)
    assert len(r) == 10
    assert r.active_domain("A") <= set(range(5))


def test_random_relation_caps_at_capacity():
    domains = {"A": range(2), "B": range(2)}
    r = random_relation(("A", "B"), domains, 100, seed=5)
    assert len(r) == 4  # full product domain


def test_random_weighted_relation_annotations():
    domains = {"A": range(8)}
    r = random_weighted_relation(("A",), domains, 5, REAL, seed=6)
    assert all(0.1 <= v <= 1.0 for _t, v in r)
    assert r.semiring is REAL


def test_matching_relation_is_skew_free():
    r = matching_relation(("A", "B", "C"), 12, seed=7)
    assert len(r) == 12
    for var in r.schema:
        idx = r.column_index(var)
        values = [t[idx] for t in r.tuples()]
        assert len(set(values)) == len(values)  # each value used once


def test_domains_for():
    h = random_tree_query(3, seed=8)
    domains = domains_for(h, 6)
    assert set(domains) == h.vertices
    assert all(d == tuple(range(6)) for d in domains.values())


def test_random_instance_semiring_choice():
    h = random_tree_query(3, seed=9)
    factors, _domains = random_instance(h, 4, 5, seed=9, semiring=COUNTING)
    assert all(f.semiring is COUNTING for f in factors.values())
    weighted, _ = random_instance(
        h, 4, 5, seed=9, semiring=REAL, weighted=True
    )
    assert all(f.semiring is REAL for f in weighted.values())


def test_determinism():
    a, _ = random_instance(random_tree_query(4, seed=1), 5, 6, seed=2)
    b, _ = random_instance(random_tree_query(4, seed=1), 5, 6, seed=2)
    assert all(a[k] == b[k] for k in a)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 4))
def test_degeneracy_invariant_property(seed, d):
    h = random_d_degenerate_query(8, d, seed=seed)
    assert simple_graph_degeneracy(h) <= d


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(2, 6), st.integers(2, 4))
def test_acyclic_hypergraph_invariant_property(seed, edges, arity):
    h = random_acyclic_hypergraph(edges, arity, seed=seed)
    assert is_acyclic(h)
    assert h.arity <= arity


# ---------------------------------------------------------------------------
# Seed hygiene at the experiment boundary
# ---------------------------------------------------------------------------


def test_spawn_seeds_deterministic_and_distinct():
    from repro.workloads import SEED_SPACE, spawn_seeds

    a = spawn_seeds(42, 8)
    b = spawn_seeds(42, 8)
    assert a == b
    assert len(a) == 8
    assert len(set(a)) == 8  # overwhelmingly likely; pinned by determinism
    assert all(0 <= s < SEED_SPACE for s in a)
    assert spawn_seeds(43, 8) != a


def test_spawn_seeds_prefix_stability():
    """Adding call sites (asking for more seeds) never perturbs the
    earlier streams."""
    from repro.workloads import spawn_seeds

    assert spawn_seeds(7, 3) == spawn_seeds(7, 5)[:3]


def test_spawn_seeds_rejects_none_and_negative():
    from repro.workloads import spawn_seeds

    with pytest.raises(ValueError):
        spawn_seeds(None, 2)
    with pytest.raises(ValueError):
        spawn_seeds(1, -1)
    assert spawn_seeds(1, 0) == ()


def test_make_rng_warns_on_seedless_use():
    from repro.workloads import make_rng

    with pytest.warns(UserWarning, match="seed"):
        rng = make_rng(None)
    # Legacy behaviour preserved: seedless still aliases to seed 0.
    import random as _random

    assert rng.random() == _random.Random(0).random()


# ---------------------------------------------------------------------------
# Fuzz-plane property suite: generated structures honour their claims
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 8))
def test_tree_query_invariant_property(seed, edges):
    """Trees are connected, acyclic (GYO-reducible) simple graphs with
    exactly edges+1 vertices."""
    h = random_tree_query(edges, seed=seed)
    assert h.num_edges == edges
    assert h.num_vertices == edges + 1
    assert h.is_connected()
    assert is_acyclic(h)
    assert gyo_reduce(h).is_acyclic


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 3), st.integers(1, 4))
def test_forest_query_invariant_property(seed, trees, edges):
    """Forests are acyclic with exactly `trees` connected components."""
    h = random_forest_query(trees, edges, seed=seed)
    assert h.num_edges == trees * edges
    assert len(h.connected_components()) == trees
    assert is_acyclic(h)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(2, 5), st.integers(2, 4))
def test_acyclic_hypergraph_gyo_property(seed, edges, arity):
    """The hypertree-growth generator is alpha-acyclic per GYO and
    every edge stays within the arity bound."""
    h = random_acyclic_hypergraph(edges, arity, seed=seed)
    assert gyo_reduce(h).is_acyclic
    assert all(len(verts) <= arity for _name, verts in h.edges())


@settings(max_examples=20, deadline=None)
@given(
    st.integers(0, 10_000),
    st.integers(2, 6),
    st.integers(1, 20),
    st.integers(1, 6),
)
def test_random_instance_respects_domains_property(seed, domain, size, edges):
    """Every generated tuple stays inside the declared domains and no
    relation exceeds min(requested size, domain capacity)."""
    h = random_tree_query(edges, seed=seed)
    factors, domains = random_instance(h, domain, size, seed=seed)
    assert set(domains) == set(h.vertices)
    for factor in factors.values():
        capacity = 1
        for v in factor.schema:
            assert set(domains[v]) == set(range(domain))
            capacity *= domain
        rows = list(factor.tuples())
        assert len(rows) == min(size, capacity)
        for row in rows:
            for v, value in zip(factor.schema, row):
                assert value in domains[v]


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_weighted_exact_annotations_property(seed):
    """exact=True draws small-integer floats — the annotations whose
    folds are order-independent in double precision."""
    h = random_tree_query(3, seed=seed)
    factors, _ = random_instance(
        h, 6, 10, seed=seed, semiring=REAL, weighted=True, exact=True
    )
    for factor in factors.values():
        for _t, value in factor.rows.items():
            assert isinstance(value, float)
            assert value == int(value)
            assert 1 <= value <= 8


def test_random_query_structure_dispatch():
    from repro.workloads import STRUCTURE_KINDS, random_query_structure

    assert set(STRUCTURE_KINDS) == {"tree", "forest", "degenerate", "acyclic"}
    tree = random_query_structure("tree", seed=3, num_edges=4)
    assert tree == random_tree_query(4, seed=3)
    forest = random_query_structure(
        "forest", seed=3, num_trees=2, edges_per_tree=2
    )
    assert forest == random_forest_query(2, 2, seed=3)
    with pytest.raises(ValueError, match="unknown structure kind"):
        random_query_structure("nope", seed=1)
    with pytest.raises(ValueError, match="takes parameters"):
        random_query_structure("tree", seed=1, edges=4)


def test_identical_seeds_reproduce_relations_across_processes():
    """The cross-process determinism contract: a child process generating
    the same seeded instance produces byte-identical relations."""
    import subprocess
    import sys

    script = (
        "import hashlib, sys;"
        "sys.path.insert(0, 'src');"
        "from repro.workloads import random_instance, random_tree_query;"
        "h = random_tree_query(5, seed=77);"
        "factors, _ = random_instance(h, 7, 12, seed=78);"
        "payload = repr(sorted("
        "  (name, f.schema, sorted(f.rows.items(), key=repr))"
        "  for name, f in factors.items()));"
        "print(hashlib.sha256(payload.encode()).hexdigest())"
    )
    child = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    import hashlib

    h = random_tree_query(5, seed=77)
    factors, _ = random_instance(h, 7, 12, seed=78)
    payload = repr(sorted(
        (name, f.schema, sorted(f.rows.items(), key=repr))
        for name, f in factors.items()
    ))
    local = hashlib.sha256(payload.encode()).hexdigest()
    assert child.stdout.strip() == local
