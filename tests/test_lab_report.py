"""Coverage for :mod:`repro.lab.report` and :mod:`repro.lab.__main__`.

Golden-file tests pin the rendered markdown/CSV surfaces (the one
volatile token — the coordinator wall time — is normalized before the
comparison; everything else in a report is deterministic by the lab's
serial-equals-parallel guarantee), and the CLI tests pin the exit-code
contract: 0 on a clean suite, 1 on bound violations, parity breaks or
cost-model mismatches, and the ``predict`` artifact cross-check.

Also here: the cache volatile-field / schema-bump tests — a cache hit
must be byte-equivalent to a fresh run regardless of wall-clock fields,
and rows written under an older result schema must be skipped cleanly,
never half-parsed into a KeyError.
"""

import json
import os
import re

import pytest

from repro.lab import ResultCache, ScenarioSpec, SuiteSpec, run_suite
from repro.lab.__main__ import main as lab_main
from repro.lab.cache import CACHE_FILENAME
from repro.lab.report import (
    artifact_bytes,
    bound_violations,
    cost_mismatches,
    cost_model_payload,
    format_cost_table,
    render_csv,
    render_markdown,
)
from repro.lab.results import RESULT_SCHEMA, ScenarioResult
from repro.lab.suites import register_suite

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def golden_spec(**overrides):
    base = dict(
        family="golden-star",
        query="hard-star",
        query_params={"arms": 3},
        topology="line",
        topology_params={"n": 3},
        n=12,
        assignment="worst-case",
        seed=23,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def golden_suite():
    return SuiteSpec(
        name="golden",
        scenarios=(
            golden_spec(),
            golden_spec(engine="compiled"),
            golden_spec(
                family="golden-tree",
                query="tree",
                query_params={"vertices": 5},
                topology="star",
                topology_params={"leaves": 3},
                n=8,
                domain_size=4,
                semiring="counting",
                assignment="round-robin",
            ),
        ),
        description="golden-file fixture suite",
    )


def _normalize(text: str) -> str:
    """Mask the only volatile token (coordinator wall time)."""
    return re.sub(r"in \d+\.\d+s", "in X.XXs", text)


def _golden_compare(name: str, rendered: str):
    path = os.path.join(GOLDEN_DIR, name)
    with open(path, "r", encoding="utf-8") as fh:
        expected = fh.read()
    assert _normalize(rendered) == expected, (
        f"{name} drifted from the golden file; if the change is "
        f"intentional, regenerate tests/golden/ (see its README)"
    )


def test_markdown_report_matches_golden():
    run = run_suite(golden_suite())
    _golden_compare("LAB_golden.md", render_markdown(run))


def test_csv_report_matches_golden():
    run = run_suite(golden_suite())
    _golden_compare("LAB_golden.csv", render_csv(run.results))


def test_markdown_lists_mismatches_and_uncovered_cells():
    run = run_suite(golden_suite())
    records = [r.deterministic_record() for r in run.results]
    records[0]["cost_model"]["exact_match"] = False
    records[0]["cost_model"]["predicted"]["rounds"] += 1
    records[1]["cost_model"]["covered"] = False
    text = render_markdown(run, records=records)
    assert "### Cost mismatches" in text
    assert "rounds predicted=" in text
    assert "### Uncovered cells" in text


# ---------------------------------------------------------------------------
# report.py violation / mismatch classifiers
# ---------------------------------------------------------------------------


def _records():
    run = run_suite(golden_suite())
    return [r.deterministic_record() for r in run.results]


def test_bound_violations_on_tampered_record():
    records = _records()
    assert bound_violations(records) == []
    records[0]["bound_ok"] = False
    records[0]["cut_ok"] = False
    (violation,) = bound_violations(records)
    assert "cut accounting broke" in violation


def test_cost_mismatches_ignore_uncovered_and_flag_covered():
    records = _records()
    assert cost_mismatches(records) == []
    # An uncovered cell never gates, even with disagreeing numbers.
    records[0]["cost_model"]["covered"] = False
    records[0]["cost_model"]["exact_match"] = None
    assert cost_mismatches(records) == []
    # A covered mismatch names the metric and both values.
    records[1]["cost_model"]["exact_match"] = False
    records[1]["cost_model"]["predicted"]["total_bits"] = 1
    (failure,) = cost_mismatches(records)
    assert "total_bits predicted=1" in failure
    # A covered prediction *failure* surfaces its error note.
    records[2]["cost_model"].update(
        {"exact_match": False, "predicted": None, "error": "model choked"}
    )
    assert any("model choked" in f for f in cost_mismatches(records))


def test_cost_model_payload_counts_and_cells():
    records = _records()
    payload = cost_model_payload(records)
    assert payload["runs"] == 3
    assert payload["covered_runs"] == 3
    assert payload["exact_matches"] == 3
    assert payload["mismatches"] == []
    assert payload["uncovered_cells"] == []
    assert "hard-star/line/worst-case/generator" in payload["covered_cells"]
    records[0]["cost_model"]["covered"] = False
    payload = cost_model_payload(records)
    assert payload["covered_runs"] == 2
    assert payload["uncovered_cells"] == [
        "hard-star/line/worst-case/generator"
    ]
    table = format_cost_table(records)
    assert "golden-star" in table and "golden-tree" in table


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------


def test_cli_run_exits_nonzero_on_cost_mismatch(tmp_path, capsys, monkeypatch):
    from repro.costmodel import CostModelError

    def broken_predict(spec, plan=None, nodes=None):
        raise CostModelError("deliberately broken for the exit-code test")

    monkeypatch.setattr("repro.costmodel.predict_costs", broken_predict)
    register_suite("golden", golden_suite, overwrite=True)
    code = lab_main(
        ["run", "golden", "--out", str(tmp_path), "--no-cache", "--quiet"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "COST MISMATCHES (3)" in out
    assert "deliberately broken" in out


def test_cli_run_clean_suite_reports_cost_plane(tmp_path, capsys):
    register_suite("golden", golden_suite, overwrite=True)
    code = lab_main(
        ["run", "golden", "--out", str(tmp_path), "--no-cache", "--quiet"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "cost model: 3/3 runs in covered cells, 3 exact" in out
    artifact = json.load(open(os.path.join(tmp_path, "BENCH_lab.json")))
    assert artifact["cost_model"]["exact_matches"] == 3
    assert artifact["cost_model"]["mismatches"] == []


def test_cli_predict_cross_checks_artifact(tmp_path, capsys):
    register_suite("golden", golden_suite, overwrite=True)
    out = str(tmp_path)
    assert lab_main(["run", "golden", "--out", out, "--no-cache",
                     "--quiet"]) == 0
    capsys.readouterr()
    artifact = os.path.join(out, "BENCH_lab.json")

    # Consistent artifact: every covered row reproduced, exit 0.
    code = lab_main(
        ["predict", "golden", "--artifact", artifact, "--symbolic"]
    )
    printed = capsys.readouterr().out
    assert code == 0
    assert "two_party_route_rounds" in printed  # --symbolic kernel table
    assert "3 covered scenario(s) matched" in printed
    assert "0 mismatch(es)" in printed

    # Tampered artifact: recorded measurement no longer reproducible.
    payload = json.load(open(artifact))
    payload["scenarios"][0]["cost_model"]["measured"]["rounds"] += 5
    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    code = lab_main(["predict", "golden", "--artifact", artifact])
    printed = capsys.readouterr().out
    assert code == 1
    assert "COST MISMATCHES (1)" in printed

    # Disjoint artifact (wrong suite): no overlap is itself a failure.
    for record in payload["scenarios"]:
        record["spec_hash"] = "0" * 64
    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    code = lab_main(["predict", "golden", "--artifact", artifact])
    printed = capsys.readouterr().out
    assert code == 1
    assert "NO OVERLAP" in printed


def test_cli_predict_without_artifact_prices_suite(capsys):
    register_suite("golden", golden_suite, overwrite=True)
    code = lab_main(["predict", "golden"])
    printed = capsys.readouterr().out
    assert code == 0
    assert "3 scenarios priced, 3 in covered cells" in printed


# ---------------------------------------------------------------------------
# Cache: volatile-field insensitivity + schema-bump invalidation
# ---------------------------------------------------------------------------


def test_cache_hit_is_insensitive_to_volatile_timing_fields(tmp_path):
    suite = SuiteSpec("one", (golden_spec(),))
    cache = ResultCache(str(tmp_path))
    fresh = run_suite(suite, cache=cache)
    (result,) = fresh.results
    # Volatile fields vary run to run; the deterministic record — and
    # therefore the cache key-value pair and the artifact — must not.
    noisy = ScenarioResult(
        **{**result.__dict__, "wall_time": 123.4,
           "protocol_wall_time": 55.5, "solver_wall_time": 66.6}
    )
    assert noisy.deterministic_record() == result.deterministic_record()

    cached = run_suite(suite, cache=ResultCache(str(tmp_path)))
    assert cached.cache_hits == 1
    assert cached.results[0].cached is True
    assert cached.results[0].wall_time == 0.0
    assert cached.results[0].solver_wall_time == 0.0
    assert artifact_bytes(fresh) == artifact_bytes(cached)


def test_schema_bump_invalidates_cache_without_keyerror(tmp_path):
    suite = SuiteSpec("one", (golden_spec(),))
    cache = ResultCache(str(tmp_path))
    run_suite(suite, cache=cache)

    # Rewrite the JSONL as if produced by an older lab: previous schema
    # tag, record missing every v4 field (e.g. cost_model).
    path = os.path.join(str(tmp_path), CACHE_FILENAME)
    with open(path, "r", encoding="utf-8") as fh:
        entry = json.loads(fh.readline())
    entry["schema"] = "repro.lab/result.v3"
    entry["record"].pop("cost_model")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(entry) + "\n")

    stale = ResultCache(str(tmp_path))
    assert len(stale) == 0
    assert stale.skipped_lines == 1
    # The stale row degrades to a miss: the suite re-executes cleanly
    # (no KeyError on the old record) and repopulates under v4.
    rerun = run_suite(suite, cache=stale)
    assert rerun.cache_hits == 0
    assert rerun.executed == 1
    assert rerun.results[0].cost_model["exact_match"] is True
    assert ResultCache(str(tmp_path)).get(
        golden_spec().content_hash()
    )["schema"] == RESULT_SCHEMA


def test_from_record_tolerates_pre_v4_rows():
    record = run_suite(
        SuiteSpec("one", (golden_spec(),))
    ).results[0].deterministic_record()
    record.pop("cost_model")
    rebuilt = ScenarioResult.from_record(record, cached=True)
    assert rebuilt.cost_model is None
    assert rebuilt.cached is True
