"""Tests for the Datalog-notation query parser."""

import pytest

from repro.faq import scalar_value, solve_naive
from repro.faq.datalog import (
    DatalogSyntaxError,
    datalog_query,
    parse_datalog,
)
from repro.semiring import BOOLEAN, COUNTING, Factor
from repro.workloads import domains_for


def test_parse_example_22_query():
    """q1() :- R(A,B), S(A,C), T(A,D), U(A,E) — Example 2.2 verbatim."""
    h, free = parse_datalog("q1() :- R(A,B), S(A,C), T(A,D), U(A,E)")
    assert free == ()
    assert set(h.edge_names) == {"R", "S", "T", "U"}
    assert h.edge("R") == frozenset({"A", "B"})
    assert h.degree("A") == 4


def test_parse_head_variables():
    h, free = parse_datalog("q(A, C) :- R(A,B), S(B,C)")
    assert free == ("A", "C")
    assert h.num_vertices == 3


def test_parse_self_join_gets_suffixes():
    h, free = parse_datalog("q() :- E(A,B), E(B,C)")
    assert set(h.edge_names) == {"E", "E#2"}
    assert h.edge("E") == frozenset({"A", "B"})
    assert h.edge("E#2") == frozenset({"B", "C"})


def test_parse_errors():
    with pytest.raises(DatalogSyntaxError):
        parse_datalog("no arrow here")
    with pytest.raises(DatalogSyntaxError):
        parse_datalog("q() :- ")
    with pytest.raises(DatalogSyntaxError):
        parse_datalog("q(Z) :- R(A,B)")  # head var not in body
    with pytest.raises(DatalogSyntaxError):
        parse_datalog("q() :- R(A,A)")  # repeated var in one atom
    with pytest.raises(DatalogSyntaxError):
        parse_datalog("q() :- R(A,")  # unbalanced
    with pytest.raises(DatalogSyntaxError):
        parse_datalog("q() :- R()")  # no variables


def test_datalog_query_end_to_end_bcq():
    rels = {
        "R": Factor.from_tuples(("A", "B"), [(1, 2)], name="R"),
        "S": Factor.from_tuples(("B", "C"), [(2, 3)], name="S"),
    }
    h, _ = parse_datalog("q() :- R(A,B), S(B,C)")
    q = datalog_query(
        "q() :- R(A,B), S(B,C)", rels, domains_for(h, 5)
    )
    assert scalar_value(solve_naive(q)) is True
    assert q.free_vars == ()


def test_datalog_query_with_free_vars():
    rels = {
        "R": Factor.from_tuples(("A", "B"), [(1, 2), (4, 2)], name="R"),
        "S": Factor.from_tuples(("B", "C"), [(2, 3)], name="S"),
    }
    h, _ = parse_datalog("q(A) :- R(A,B), S(B,C)")
    q = datalog_query("q(A) :- R(A,B), S(B,C)", rels, domains_for(h, 6))
    out = solve_naive(q)
    assert set(out.tuples()) == {(1,), (4,)}


def test_datalog_query_semiring_lift():
    rels = {
        "R": Factor.from_tuples(("A",), [(1,)], COUNTING, name="R"),
    }
    h, _ = parse_datalog("q() :- R(A)")
    q = datalog_query("q() :- R(A)", rels, {"A": (1, 2)})
    assert q.semiring is BOOLEAN  # lifted from counting


def test_datalog_query_missing_relation():
    h, _ = parse_datalog("q() :- R(A,B)")
    with pytest.raises(ValueError):
        datalog_query("q() :- R(A,B)", {}, domains_for(h, 3))


def test_datalog_distributed_end_to_end():
    """Paper notation straight into the distributed planner."""
    from repro import Planner, Topology

    rels = {
        "R": Factor.from_tuples(("A", "B"), [(0, 1), (2, 1)], name="R"),
        "S": Factor.from_tuples(("A", "C"), [(0, 5)], name="S"),
        "T": Factor.from_tuples(("A", "D"), [(0, 9), (7, 9)], name="T"),
    }
    text = "q() :- R(A,B), S(A,C), T(A,D)"
    h, _ = parse_datalog(text)
    q = datalog_query(text, rels, domains_for(h, 10))
    report = Planner(q, Topology.line(3)).execute()
    assert report.correct
    assert scalar_value(report.answer) is True
