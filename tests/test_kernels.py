"""The kernel dispatch tier — selection, counters, and tier parity.

The :mod:`repro.kernels` package routes the data plane's hot array
kernels through a process-wide tier (``numpy``/``jit``).  The contract
under test:

* tier selection is explicit, scoped and validated;
* every kernel call counts the tier that *actually ran* (a ``jit``
  request without numba honestly counts ``kernels.numpy``);
* each kernel matches a brute-force/naive NumPy oracle, including row
  order (stable-sort semantics);
* the two tiers are byte-identical on the same inputs — values, dtypes
  and order.  Without numba both tiers resolve to the NumPy
  implementation, which makes the parity loop a (cheap) tautology; with
  numba installed the same loop is the real differential gate.
"""

import numpy as np
import pytest

from repro import kernels
from repro.obs.counters import COUNTERS


@pytest.fixture(autouse=True)
def _numpy_tier():
    """Every test starts and ends on the default tier."""
    kernels.set_tier("numpy")
    yield
    kernels.set_tier("numpy")


def _rng(seed=0):
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# Tier selection
# ---------------------------------------------------------------------------


def test_default_tier_is_numpy():
    assert kernels.active_tier() == "numpy"
    assert kernels.resolved_tier() == "numpy"


def test_set_tier_rejects_unknown():
    with pytest.raises(ValueError, match="unknown kernel tier"):
        kernels.set_tier("cuda")


def test_use_tier_scopes_and_restores():
    assert kernels.active_tier() == "numpy"
    with kernels.use_tier("jit"):
        assert kernels.active_tier() == "jit"
        expected = "jit" if kernels.HAVE_NUMBA else "numpy"
        assert kernels.resolved_tier() == expected
    assert kernels.active_tier() == "numpy"


def test_use_tier_restores_on_error():
    with pytest.raises(RuntimeError):
        with kernels.use_tier("jit"):
            raise RuntimeError("boom")
    assert kernels.active_tier() == "numpy"


# ---------------------------------------------------------------------------
# Dispatch counters
# ---------------------------------------------------------------------------


def test_numpy_tier_counts_numpy():
    before = COUNTERS.get("kernels.numpy")
    kernels.sort_groups_key(np.array([3, 1, 3], dtype=np.int64))
    assert COUNTERS.get("kernels.numpy") == before + 1


def test_jit_request_counts_resolved_tier():
    with kernels.use_tier("jit"):
        before_np = COUNTERS.get("kernels.numpy")
        before_jit = COUNTERS.get("kernels.jit")
        kernels.sort_groups_key(np.array([3, 1, 3], dtype=np.int64))
        if kernels.HAVE_NUMBA:
            assert COUNTERS.get("kernels.jit") == before_jit + 1
            assert COUNTERS.get("kernels.numpy") == before_np
        else:
            # No numba: the NumPy tier served the request and the
            # counter records what executed, not what was asked for.
            assert COUNTERS.get("kernels.numpy") == before_np + 1
            assert COUNTERS.get("kernels.jit") == before_jit


def test_object_dtype_encode_counts_numpy_even_on_jit():
    concat = np.array(["b", "a", "b"], dtype=object)
    with kernels.use_tier("jit"):
        before = COUNTERS.get("kernels.numpy")
        kernels.encode_unique(concat)
        assert COUNTERS.get("kernels.numpy") == before + 1


# ---------------------------------------------------------------------------
# Kernel correctness vs naive oracles
# ---------------------------------------------------------------------------


def test_match_indices_enumerates_all_pairs_in_stable_order():
    left = np.array([5, 2, 5, 9], dtype=np.int64)
    right = np.array([5, 5, 2, 7], dtype=np.int64)
    li, ri = kernels.match_indices(left, right)
    pairs = list(zip(li.tolist(), ri.tolist()))
    expected = [
        (i, j)
        for i in range(len(left))
        for j in range(len(right))
        if left[i] == right[j]
    ]
    # Grouped by left row in left order, right ties in input order.
    assert pairs == expected
    assert li.dtype == np.int64 and ri.dtype == np.int64


def test_match_indices_empty_sides():
    empty = np.empty(0, dtype=np.int64)
    li, ri = kernels.match_indices(empty, np.array([1], dtype=np.int64))
    assert len(li) == 0 and len(ri) == 0
    li, ri = kernels.match_indices(np.array([1], dtype=np.int64), empty)
    assert len(li) == 0 and len(ri) == 0


def test_sort_groups_key_clusters_and_starts():
    key = np.array([7, 1, 7, 1, 3], dtype=np.int64)
    order, starts = kernels.sort_groups_key(key)
    clustered = key[order]
    assert clustered.tolist() == [1, 1, 3, 7, 7]
    assert starts.tolist() == [0, 2, 3]
    # Stability: equal keys keep input order.
    assert order.tolist() == [1, 3, 4, 0, 2]


def test_grouped_reduce_matches_reduceat():
    rng = _rng(1)
    key = rng.integers(0, 10, size=200).astype(np.int64)
    values = rng.random(200)
    order, starts = kernels.sort_groups_key(key)
    for ufunc in (np.add, np.minimum, np.maximum, np.multiply):
        got = kernels.grouped_reduce(values, order, starts, ufunc)
        expected = ufunc.reduceat(values[order], starts)
        np.testing.assert_array_equal(got, expected)


def test_encode_unique_matches_np_unique():
    rng = _rng(2)
    concat = rng.integers(-50, 50, size=300).astype(np.int64)
    uniq, inverse = kernels.encode_unique(concat)
    exp_uniq, exp_inverse = np.unique(concat, return_inverse=True)
    np.testing.assert_array_equal(uniq, exp_uniq)
    np.testing.assert_array_equal(inverse, exp_inverse.astype(np.int64))
    np.testing.assert_array_equal(uniq[inverse], concat)


def test_round_accumulate_matches_add_at():
    totals = np.zeros(4, dtype=np.int64)
    edge_ids = np.array([0, 2, 0, 3, 2, 2], dtype=np.int64)
    bits = np.array([5, 1, 5, 7, 1, 1], dtype=np.int64)
    kernels.round_accumulate(totals, edge_ids, bits)
    expected = np.zeros(4, dtype=np.int64)
    np.add.at(expected, edge_ids, bits)
    np.testing.assert_array_equal(totals, expected)


# ---------------------------------------------------------------------------
# Tier parity — byte-identical outputs
# ---------------------------------------------------------------------------


def _run_all_kernels():
    """Every kernel on fixed random inputs; returns comparable outputs."""
    rng = _rng(42)
    left = rng.integers(0, 40, size=500).astype(np.int64)
    right = rng.integers(0, 40, size=350).astype(np.int64)
    key = rng.integers(0, 25, size=400).astype(np.int64)
    values = rng.random(400)
    concat = rng.integers(-100, 100, size=600).astype(np.int64)
    totals = np.zeros(8, dtype=np.int64)
    edge_ids = rng.integers(0, 8, size=200).astype(np.int64)
    bits = rng.integers(1, 64, size=200).astype(np.int64)

    li, ri = kernels.match_indices(left, right)
    order, starts = kernels.sort_groups_key(key)
    reduced = kernels.grouped_reduce(values, order, starts, np.add)
    uniq, inverse = kernels.encode_unique(concat)
    kernels.round_accumulate(totals, edge_ids, bits)
    return [li, ri, order, starts, reduced, uniq, inverse, totals]


def test_tiers_byte_identical():
    with kernels.use_tier("numpy"):
        base = _run_all_kernels()
    with kernels.use_tier("jit"):
        other = _run_all_kernels()
    for a, b in zip(base, other):
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(a, b)
