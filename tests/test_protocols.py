"""Tests for the distributed protocols: set intersection, trivial routing
and the full FAQ protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Planner, assign_round_robin, assign_single_player
from repro.faq import FAQQuery, bcq, marginal_query, scalar_value, solve_naive
from repro.hypergraph import Hypergraph
from repro.network import Topology
from repro.protocols import (
    run_distributed_faq,
    run_set_intersection,
    run_trivial_protocol,
)
from repro.semiring import COUNTING, REAL, Factor
from repro.workloads import domains_for, random_instance


# ---------------------------------------------------------------------------
# Set intersection (Theorem 3.11)
# ---------------------------------------------------------------------------


def test_set_intersection_correctness_line():
    g = Topology.line(4)
    n = 16
    vectors = {
        "P0": [i % 2 == 0 for i in range(n)],
        "P1": [i % 3 == 0 for i in range(n)],
        "P2": [True] * n,
        "P3": [i < 12 for i in range(n)],
    }
    expected = [
        all(vectors[p][i] for p in vectors) for i in range(n)
    ]
    answer, res = run_set_intersection(g, vectors, "P3")
    assert answer == expected
    assert res.rounds >= n  # line: single tree, one slot per round


def test_set_intersection_clique_parallelizes():
    """Example 2.3 shape: the clique's packing beats the line's."""
    n = 60
    vectors = {f"P{i}": [True] * n for i in range(4)}
    line_rounds = run_set_intersection(Topology.line(4), vectors, "P1")[1].rounds
    clique_rounds = run_set_intersection(Topology.clique(4), vectors, "P1")[1].rounds
    assert clique_rounds < line_rounds


def test_set_intersection_empty_vectors():
    g = Topology.line(2)
    answer, res = run_set_intersection(g, {"P0": [], "P1": []}, "P1")
    assert answer == []
    assert res.rounds == 0


def test_set_intersection_length_mismatch():
    g = Topology.line(2)
    with pytest.raises(ValueError):
        run_set_intersection(g, {"P0": [True], "P1": [True, False]}, "P1")


def test_set_intersection_fixed_diameter():
    g = Topology.clique(4)
    vectors = {f"P{i}": [True] * 20 for i in range(4)}
    answer, _res = run_set_intersection(g, vectors, "P0", max_diameter=2)
    assert all(answer)


# ---------------------------------------------------------------------------
# Trivial protocol (Lemma 3.1)
# ---------------------------------------------------------------------------


def test_trivial_protocol_reassembles_relations():
    g = Topology.line(3)
    factors = {
        "R": Factor.from_tuples(("A", "B"), [(1, 2), (3, 4)], name="R"),
        "S": Factor.from_tuples(("B", "C"), [(2, 5)], name="S"),
    }
    assignment = {"R": "P0", "S": "P2"}
    received, res = run_trivial_protocol(
        g, factors, assignment, sink="P2", tuple_bits=8, capacity_bits=8
    )
    assert received["R"] == factors["R"]
    assert received["S"] == factors["S"]  # local, no shipping
    # Only R's two tuples cross the network: 16 bits + EOS markers.
    assert res.edge_bits.get(("P0", "P1"), 0) >= 16


def test_trivial_protocol_round_shape_on_line():
    """Rounds ~ total tuples + distance on a line (mincut 1)."""
    g = Topology.line(4)
    rows = [(i, i) for i in range(30)]
    factors = {
        "R": Factor.from_tuples(("A", "B"), rows, name="R"),
    }
    received, res = run_trivial_protocol(
        g, factors, {"R": "P0"}, sink="P3", tuple_bits=8, capacity_bits=8
    )
    assert received["R"] == factors["R"]
    assert 30 <= res.rounds <= 30 + 2 * 4  # N tuples + O(distance + EOS)


# ---------------------------------------------------------------------------
# Distributed FAQ protocol
# ---------------------------------------------------------------------------


def fig1_star():
    return Hypergraph(
        {"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D"), "U": ("A", "E")}
    )


def test_distributed_bcq_star_line_matches_naive():
    h = fig1_star()
    factors, domains = random_instance(h, 20, 15, seed=11)
    q = bcq(h, factors, domains)
    topo = Topology.line(4)
    assignment = {"R": "P0", "S": "P1", "T": "P2", "U": "P3"}
    rep = run_distributed_faq(q, topo, assignment, output_player="P3")
    assert scalar_value(rep.answer) == scalar_value(solve_naive(q))
    assert rep.num_star_phases == 1  # y(H1) = 1


def test_distributed_bcq_all_false_instance():
    h = fig1_star()
    domains = domains_for(h, 10)
    factors = {
        "R": Factor.from_tuples(("A", "B"), [(0, 0)], name="R"),
        "S": Factor.from_tuples(("A", "C"), [(1, 0)], name="S"),
        "T": Factor.from_tuples(("A", "D"), [(0, 0)], name="T"),
        "U": Factor.from_tuples(("A", "E"), [(0, 0)], name="U"),
    }
    q = bcq(h, factors, domains)
    rep = run_distributed_faq(
        q, Topology.line(4), {"R": "P0", "S": "P1", "T": "P2", "U": "P3"}
    )
    assert scalar_value(rep.answer) is False


def test_distributed_counting_join():
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C")})
    rels = {
        "R": Factor.from_tuples(("A", "B"), [(1, 1), (2, 1)], COUNTING, "R"),
        "S": Factor.from_tuples(("B", "C"), [(1, 5), (1, 6)], COUNTING, "S"),
    }
    q = FAQQuery(h, rels, domains_for(h, 8), free_vars=(), semiring=COUNTING)
    rep = run_distributed_faq(
        q, Topology.line(2), {"R": "P0", "S": "P1"}, output_player="P1"
    )
    assert scalar_value(rep.answer) == 4


def test_distributed_pgm_marginal_with_free_vars():
    h = Hypergraph({"f": ("A", "B"), "g": ("B", "C")})
    f = Factor(("A", "B"), {(0, 0): 0.5, (0, 1): 0.5, (1, 0): 0.9}, REAL, "f")
    g = Factor(("B", "C"), {(0, 0): 0.3, (1, 0): 0.4, (1, 1): 0.6}, REAL, "g")
    q = marginal_query(
        h, {"f": f, "g": g}, domains_for(h, 2), free_vars=("B",), semiring=REAL
    )
    rep = run_distributed_faq(
        q, Topology.line(2), {"f": "P0", "g": "P1"}
    )
    assert rep.answer == solve_naive(q)


def test_distributed_cyclic_core_uses_trivial_phase():
    h = Hypergraph(
        {"R": ("A", "B"), "S": ("B", "C"), "T": ("A", "C"), "U": ("C", "D")}
    )
    factors, domains = random_instance(h, 6, 8, seed=3)
    q = bcq(h, factors, domains)
    topo = Topology.ring(4)
    assignment = {"R": "P0", "S": "P1", "T": "P2", "U": "P3"}
    rep = run_distributed_faq(q, topo, assignment, output_player="P0")
    assert scalar_value(rep.answer) == scalar_value(solve_naive(q))
    assert rep.num_star_phases == 0  # pure core: no stars, just routing


def test_distributed_free_var_handled_by_rerooting():
    """A free variable on a forest leaf is fine: the planner re-roots the
    GYO-GHD so the root bag covers it (the Appendix G.5 restriction is on
    the rooted decomposition, which is ours to choose)."""
    h = Hypergraph({"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D")})
    factors, domains = random_instance(h, 5, 5, seed=1)
    q = FAQQuery(h, factors, domains, free_vars=("B",))
    rep = run_distributed_faq(
        q, Topology.line(3), {"R": "P0", "S": "P1", "T": "P2"}
    )
    assert rep.answer == solve_naive(q)


def test_distributed_unsupported_free_vars_rejected():
    """Free variables no single bag can host are the genuinely
    unsupported Appendix G.5 case."""
    h = Hypergraph({"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D")})
    factors, domains = random_instance(h, 5, 5, seed=1)
    q = FAQQuery(h, factors, domains, free_vars=("B", "C"))
    with pytest.raises(ValueError):
        run_distributed_faq(
            q, Topology.line(3), {"R": "P0", "S": "P1", "T": "P2"}
        )


def test_distributed_incomplete_assignment_rejected():
    h = fig1_star()
    factors, domains = random_instance(h, 5, 5, seed=1)
    q = bcq(h, factors, domains)
    with pytest.raises(ValueError):
        run_distributed_faq(q, Topology.line(4), {"R": "P0"})


def test_distributed_unknown_player_rejected():
    h = fig1_star()
    factors, domains = random_instance(h, 5, 5, seed=1)
    q = bcq(h, factors, domains)
    assignment = {"R": "P9", "S": "P1", "T": "P2", "U": "P3"}
    with pytest.raises(ValueError):
        run_distributed_faq(q, Topology.line(4), assignment)


def test_colocated_assignment_minimizes_rounds():
    h = fig1_star()
    factors, domains = random_instance(h, 16, 12, seed=5)
    q = bcq(h, factors, domains)
    topo = Topology.line(4)
    spread = Planner(
        q, topo, {"R": "P0", "S": "P1", "T": "P2", "U": "P3"}, "P0"
    ).execute()
    together = Planner(q, topo, assign_single_player(q, "P0"), "P0").execute()
    assert spread.correct and together.correct
    assert together.measured_rounds <= spread.measured_rounds


def test_planner_round_robin_default():
    h = fig1_star()
    factors, domains = random_instance(h, 12, 10, seed=9)
    q = bcq(h, factors, domains)
    topo = Topology.clique(4)
    planner = Planner(q, topo)
    assert set(planner.assignment.values()) <= set(topo.nodes)
    report = planner.execute()
    assert report.correct
    assert report.measured_rounds > 0
    assert report.predicted.upper_rounds > 0


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 1000))
def test_distributed_matches_naive_on_random_trees(seed):
    """Property: the distributed protocol agrees with the centralized
    solver on random tree BCQs over random assignments."""
    from repro.workloads import random_tree_query

    h = random_tree_query(4, seed=seed)
    factors, domains = random_instance(h, 5, 6, seed=seed)
    q = bcq(h, factors, domains)
    topo = Topology.line(4)
    assignment = assign_round_robin(q, topo)
    rep = run_distributed_faq(q, topo, assignment)
    assert scalar_value(rep.answer) == scalar_value(solve_naive(q))


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 1000))
def test_distributed_counting_on_clique(seed):
    from repro.workloads import random_tree_query

    h = random_tree_query(3, seed=seed)
    factors, domains = random_instance(
        h, 4, 5, seed=seed, semiring=COUNTING
    )
    q = FAQQuery(h, factors, domains, free_vars=(), semiring=COUNTING)
    topo = Topology.clique(4)
    rep = run_distributed_faq(q, topo, assign_round_robin(q, topo))
    assert scalar_value(rep.answer) == scalar_value(solve_naive(q))
