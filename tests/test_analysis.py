"""Tests for core/analysis.py — Table 1 rendering and gap budgeting."""

import pytest

from repro.core import (
    Planner,
    Table1Row,
    format_table,
    gap_within_budget,
    table1_row,
)
from repro.faq import bcq
from repro.hypergraph import Hypergraph
from repro.network import Topology
from repro.semiring import Factor


def _tiny_planner():
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C")})
    domains = {"A": (0, 1), "B": (0, 1), "C": (0, 1)}
    factors = {
        "R": Factor.from_tuples(("A", "B"), {(0, 0), (1, 1)}, name="R"),
        "S": Factor.from_tuples(("B", "C"), {(0, 1), (1, 0)}, name="S"),
    }
    query = bcq(h, factors, domains, name="tiny")
    return Planner(query, Topology.line(3))


def test_table1_row_fields_from_execution():
    row = table1_row("faq-line", _tiny_planner())
    assert isinstance(row, Table1Row)
    assert row.label == "faq-line"
    assert row.query == "tiny"
    assert row.topology == "line(3)"
    assert row.correct
    assert row.measured_rounds >= 0
    assert row.n == 2  # max input listing size
    assert row.gap_budget == 1.0  # the O~(1) row
    assert row.upper_formula >= row.lower_formula >= 0.0


def test_format_table_layout():
    rows = [table1_row("faq-line", _tiny_planner())]
    text = format_table(rows)
    lines = text.splitlines()
    # Header, separator, one row.
    assert len(lines) == 3
    assert lines[0].split()[:3] == ["row", "query", "G"]
    assert set(lines[1]) == {"-"}
    assert "faq-line" in lines[2]
    assert lines[2].rstrip().endswith("+")  # the correctness marker


def test_format_table_marks_incorrect_rows():
    row = Table1Row(
        label="bcq-degenerate", query="q", topology="g", d=2.0, r=2.0,
        n=10, measured_rounds=100, upper_formula=200.0, lower_formula=10.0,
        gap=10.0, gap_budget=2.0, correct=False,
    )
    assert format_table([row]).splitlines()[-1].rstrip().endswith("X")


def test_gap_within_budget_boundaries():
    def row_with(gap, budget):
        return Table1Row(
            label="x", query="q", topology="g", d=1.0, r=2.0, n=8,
            measured_rounds=1, upper_formula=1.0, lower_formula=1.0,
            gap=gap, gap_budget=budget, correct=True,
        )

    # gap <= allowance * budget, inclusive at the boundary.
    assert gap_within_budget(row_with(64.0, 1.0))
    assert not gap_within_budget(row_with(64.01, 1.0))
    # The allowance parameter scales the ceiling.
    assert gap_within_budget(row_with(2.0, 1.0), polylog_allowance=2.0)
    assert not gap_within_budget(row_with(2.1, 1.0), polylog_allowance=2.0)
    # A bigger structural budget absorbs a bigger gap.
    assert gap_within_budget(row_with(100.0, 2.0))


def test_bound_certified_checks_measured_against_lower():
    from repro.core import bound_certified

    def row(measured_rounds, lower_formula):
        return Table1Row(
            label="l", query="q", topology="t", d=1.0, r=2.0, n=8,
            measured_rounds=measured_rounds, upper_formula=100.0,
            lower_formula=lower_formula, gap=1.0, gap_budget=1.0,
            correct=True,
        )

    assert bound_certified(row(100, 64.0))
    assert bound_certified(row(64, 64.0))
    assert not bound_certified(row(63, 64.0))
    # Zero-bit rows certify vacuously.
    assert bound_certified(row(0, 0.0))
