"""Property tests for the columnar wire codec (the data-plane contract).

The codec must be a lossless round trip and must charge exactly the
Model 2.1 per-tuple costs the generator engine charges — these are the
two invariants the compiled engine's bit-accounting parity rests on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faq import bcq
from repro.hypergraph import Hypergraph
from repro.semiring import (
    BOOLEAN,
    COUNTING,
    ColumnarFactor,
    Factor,
    WireBlock,
    encode_wire_block,
)

VALUES = st.one_of(
    st.integers(-(2 ** 40), 2 ** 40),
    st.text(max_size=6),
    st.booleans(),
)


@st.composite
def row_sets(draw):
    arity = draw(st.integers(1, 4))
    schema = tuple(f"v{i}" for i in range(arity))
    rows = draw(
        st.lists(st.tuples(*[VALUES] * arity), max_size=40)
    )
    return schema, rows


@given(row_sets())
@settings(max_examples=120, deadline=None)
def test_encode_decode_identity(schema_rows):
    schema, rows = schema_rows
    block = encode_wire_block(schema, rows)
    assert len(block) == len(rows)
    assert block.decode_rows() == rows


@given(row_sets(), st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_wire_bits_charge_tuple_bits_per_row(schema_rows, tuple_bits):
    schema, rows = schema_rows
    block = encode_wire_block(schema, rows)
    assert block.wire_bits(tuple_bits) == len(rows) * tuple_bits


@given(row_sets(), st.integers(0, 50), st.integers(0, 50))
@settings(max_examples=60, deadline=None)
def test_slicing_is_consistent_with_row_slicing(schema_rows, a, b):
    schema, rows = schema_rows
    start, stop = sorted((min(a, len(rows)), min(b, len(rows))))
    block = encode_wire_block(schema, rows)
    assert block.slice(start, stop).decode_rows() == rows[start:stop]


def test_wire_bits_match_query_bits_per_tuple():
    """The codec's charge equals the paper's O(r log D) per-tuple cost
    used by both engines."""
    h = Hypergraph({"R": ("A", "B"), "S": ("B", "C")})
    domains = {v: tuple(range(16)) for v in "ABC"}
    factors = {
        "R": Factor.from_tuples(("A", "B"), {(0, 1), (2, 3), (4, 5)}, name="R"),
        "S": Factor.from_tuples(("B", "C"), {(1, 2)}, name="S"),
    }
    query = bcq(h, factors, domains)
    block = encode_wire_block(("A", "B"), factors["R"].tuples())
    assert block.wire_bits(query.bits_per_tuple()) == 3 * query.bits_per_tuple()


def test_encode_factor_roundtrips_annotations():
    factor = Factor(
        ("A", "B"), {(0, 1): 3, (2, 0): 5, (1, 1): 7}, COUNTING, "R"
    )
    block = WireBlock.encode_factor(factor)
    assert dict(block.decode_items()) == dict(factor.rows)
    # value bits are charged on top of tuple bits
    assert block.wire_bits(10, value_bits=32) == 3 * (10 + 32)


def test_encode_factor_zero_copy_for_columnar():
    factor = ColumnarFactor(
        ("A",), {(0,): True, (1,): True}, BOOLEAN, "R"
    )
    block = WireBlock.encode_factor(factor)
    assert block.codes[0] is factor.codes[0]
    assert block.dictionaries[0] is factor.dictionaries[0]
    assert block.values is factor.values


def test_ragged_block_rejected():
    import numpy as np

    with pytest.raises(ValueError, match="ragged"):
        WireBlock(
            ("A", "B"),
            [np.zeros(2, dtype=np.int64), np.zeros(3, dtype=np.int64)],
            [[0], [0]],
        )


def test_decode_items_requires_annotations():
    block = encode_wire_block(("A",), [(1,), (2,)])
    with pytest.raises(ValueError, match="no annotations"):
        block.decode_items()
