"""Tests for repro.lab — specs, cache, runner, report, CLI.

Covers the lab's load-bearing guarantees:

* spec content hashes are stable (pinned) and construction-order
  independent;
* seedless scenarios are rejected at the boundary;
* the result cache hits on identical specs, misses on changed ones, and
  survives corruption;
* serial and parallel runs produce byte-identical artifacts;
* the CLI runs a suite end-to-end and writes ``BENCH_lab.json``.
"""

import json
import os

import pytest

from repro.lab import (
    ARTIFACT_FILENAME,
    ResultCache,
    ScenarioSpec,
    SuiteSpec,
    aggregate,
    answer_digest,
    artifact_bytes,
    build_query,
    build_topology,
    execute_scenario,
    expand_grid,
    get_suite,
    percentile,
    run_suite,
    suite_names,
)
from repro.lab.__main__ import main as lab_main
from repro.lab.results import ScenarioResult
from repro.lab.suites import register_suite


def tiny_spec(**overrides):
    base = dict(
        family="bcq-degenerate",
        query="degenerate",
        query_params={"vertices": 4, "d": 1},
        topology="clique",
        topology_params={"n": 3},
        n=8,
        domain_size=8,
        seed=11,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def tiny_suite(name="tiny"):
    return SuiteSpec(
        name=name,
        scenarios=(
            tiny_spec(),
            tiny_spec(backend="columnar"),
            ScenarioSpec(
                family="faq-line",
                query="hard-star",
                query_params={"arms": 3},
                topology="line",
                topology_params={"n": 3},
                n=12,
                assignment="worst-case",
                seed=11,
            ),
            ScenarioSpec(
                family="faq-hypergraph",
                query="acyclic",
                query_params={"edges": 3, "arity": 2},
                topology="hypercube",
                topology_params={"dim": 2},
                n=8,
                domain_size=4,
                semiring="counting",
                seed=11,
            ),
        ),
    )


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


def test_spec_rejects_seed_none():
    with pytest.raises(ValueError, match="seed"):
        tiny_spec(seed=None)


def test_spec_validation_errors():
    with pytest.raises(ValueError, match="semiring"):
        tiny_spec(semiring="nope")
    with pytest.raises(ValueError, match="backend"):
        tiny_spec(backend="nope")
    with pytest.raises(ValueError, match="assignment"):
        tiny_spec(assignment="nope")
    with pytest.raises(ValueError, match="n must be positive"):
        tiny_spec(n=0)
    with pytest.raises(ValueError, match="JSON scalar"):
        tiny_spec(query_params={"bad": [1, 2]})


def test_spec_hash_is_construction_order_independent():
    a = tiny_spec(query_params={"vertices": 4, "d": 1})
    b = tiny_spec(query_params={"d": 1, "vertices": 4})
    assert a == b
    assert a.content_hash() == b.content_hash()


def test_spec_hash_pinned():
    """The content hash is a cross-session cache key — pin it."""
    spec = ScenarioSpec(
        family="pin", query="tree", topology="line", n=8, seed=1,
        query_params={"edges": 3}, topology_params={"n": 3},
    )
    # SPEC_VERSION 6: the kernel-tier axis + batch/kernel counters.
    assert spec.content_hash() == (
        "8209bbcef93c44a183f927dcd635898a72ec4bd4266b5eb6a56501fb90fece9d"
    )


def test_spec_hash_changes_with_any_field():
    base = tiny_spec()
    for changed in (
        tiny_spec(seed=12),
        tiny_spec(n=9),
        tiny_spec(backend="columnar"),
        tiny_spec(query_params={"vertices": 4, "d": 2}),
        tiny_spec(topology_params={"n": 4}),
    ):
        assert changed.content_hash() != base.content_hash()


def test_spec_json_round_trip():
    spec = tiny_spec(backend="columnar", assignment="single")
    again = ScenarioSpec.from_json_dict(
        json.loads(json.dumps(spec.to_json_dict()))
    )
    assert again == spec
    assert again.content_hash() == spec.content_hash()


def test_expand_grid_cartesian_and_deterministic():
    specs = expand_grid(
        dict(family="f", query="tree", topology="line",
             topology_params={"n": 3}, seed=1),
        n=[8, 16],
        backend=["dict", "columnar"],
    )
    assert len(specs) == 4
    # Rightmost axis varies fastest.
    assert [(s.n, s.backend) for s in specs] == [
        (8, "dict"), (8, "columnar"), (16, "dict"), (16, "columnar"),
    ]
    with pytest.raises(ValueError, match="empty"):
        expand_grid(dict(family="f", query="tree", topology="line", seed=1), n=[])


def test_suite_families_and_merge_dedup():
    suite = tiny_suite()
    assert suite.families == ("bcq-degenerate", "faq-line", "faq-hypergraph")
    merged = suite.merged_with(tiny_suite())
    assert len(merged) == len(suite)  # identical scenarios dedup


# ---------------------------------------------------------------------------
# Results helpers
# ---------------------------------------------------------------------------


def test_percentile_linear_interpolation():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == 2.5
    assert percentile([5.0], 90) == 5.0
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile(values, 101)


def test_answer_digest_canonical():
    a = answer_digest(("A",), {(1,): True, (0,): True})
    b = answer_digest(("A",), {(0,): True, (1,): True})
    assert a == b
    assert answer_digest(("A",), {(0,): True}) != a
    assert answer_digest(("B",), {(1,): True, (0,): True}) != a


# ---------------------------------------------------------------------------
# Execution + cache
# ---------------------------------------------------------------------------


def test_execute_scenario_is_deterministic():
    spec = tiny_spec()
    first = execute_scenario(spec).deterministic_record()
    second = execute_scenario(spec).deterministic_record()
    assert first == second


def test_colocated_scenario_has_undefined_gap():
    """assignment='single' co-locates everything: lower bound 0, gap None;
    the Table1Row view maps that to inf so budget checks fail loudly."""
    from repro.core import gap_within_budget

    result = execute_scenario(tiny_spec(assignment="single"))
    assert result.correct
    assert result.measured_rounds == 0
    assert result.gap is None
    row = result.to_table1_row()
    assert row.gap == float("inf")
    assert not gap_within_budget(row)
    # And the artifact stays strict JSON (null, not Infinity).
    json.dumps(result.deterministic_record(), allow_nan=False)


def test_result_record_round_trip():
    result = execute_scenario(tiny_spec())
    rebuilt = ScenarioResult.from_record(result.deterministic_record(), cached=True)
    assert rebuilt.deterministic_record() == result.deterministic_record()
    assert rebuilt.cached


def test_cache_miss_then_hit(tmp_path):
    suite = tiny_suite()
    cache = ResultCache(str(tmp_path / "cache"))
    first = run_suite(suite, cache=cache)
    assert first.cache_hits == 0
    assert first.executed == len(suite)

    # Fresh cache object (re-reads the JSONL): everything hits.
    cache2 = ResultCache(str(tmp_path / "cache"))
    second = run_suite(suite, cache=cache2)
    assert second.cache_hits == len(suite)
    assert second.executed == 0
    assert second.hit_rate >= 0.9
    assert all(r.cached for r in second.results)
    assert artifact_bytes(first) == artifact_bytes(second)


def test_cache_misses_on_changed_spec(tmp_path):
    cache = ResultCache(str(tmp_path))
    run_suite(SuiteSpec("one", (tiny_spec(),)), cache=cache)
    changed = run_suite(SuiteSpec("two", (tiny_spec(seed=12),)), cache=cache)
    assert changed.executed == 1
    assert changed.cache_hits == 0


def test_cache_force_reexecutes_but_still_writes(tmp_path):
    cache = ResultCache(str(tmp_path))
    suite = SuiteSpec("one", (tiny_spec(),))
    run_suite(suite, cache=cache)
    forced = run_suite(suite, cache=cache, force=True)
    assert forced.executed == 1 and forced.cache_hits == 0
    again = run_suite(suite, cache=ResultCache(str(tmp_path)))
    assert again.cache_hits == 1


def test_cache_skips_corrupt_lines(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put("k1", {"x": 1})
    with open(cache.path, "a", encoding="utf-8") as fh:
        fh.write("this is not json\n")
        fh.write(json.dumps({"key": "k2", "schema": "other/schema"}) + "\n")
    reloaded = ResultCache(str(tmp_path))
    assert reloaded.get("k1") == {"x": 1}
    assert "k2" not in reloaded
    assert reloaded.skipped_lines == 2


def test_duplicate_scenarios_execute_once(tmp_path):
    spec = tiny_spec()
    suite = SuiteSpec("dup", (spec, spec))
    run = run_suite(suite, cache=ResultCache(str(tmp_path)))
    assert run.executed == 1
    assert len(run.results) == 2
    assert run.results[0].deterministic_record() == run.results[1].deterministic_record()
    # Both occurrences count as cache hits on a re-run: 100%, not 50%.
    again = run_suite(suite, cache=ResultCache(str(tmp_path)))
    assert again.executed == 0
    assert again.cache_hits == 2
    assert again.hit_rate == 1.0


def test_structure_and_instance_seed_streams_differ():
    """Regression: the runner must not feed the structure seed back into
    the instance generator (spawn_seeds prefix stability makes that an
    easy mistake)."""
    from repro.workloads import (
        random_d_degenerate_query,
        random_instance,
        spawn_seeds,
    )

    spec = tiny_spec()
    structure_seed, instance_seed = spawn_seeds(spec.seed, 2)
    assert structure_seed != instance_seed
    built = build_query(spec)
    h = random_d_degenerate_query(4, 1, seed=structure_seed)
    expected, _ = random_instance(h, 8, 8, seed=instance_seed)
    collided, _ = random_instance(h, 8, 8, seed=structure_seed)
    built_rows = {name: f.rows for name, f in built.query.factors.items()}
    assert built_rows == {name: f.rows for name, f in expected.items()}
    assert built_rows != {name: f.rows for name, f in collided.items()}


def test_partial_failure_preserves_completed_cache_writes(tmp_path):
    """One failing scenario must not discard its siblings' finished work:
    completed results are persisted as they arrive, then the failure is
    re-raised."""
    good = tiny_spec()
    bad = tiny_spec(assignment="worst-case")  # degenerate has no TRIBES sides
    suite = SuiteSpec("partial", (good, bad))
    with pytest.raises(RuntimeError, match="worst-case"):
        run_suite(suite, cache=ResultCache(str(tmp_path)), jobs=2)
    again = run_suite(
        SuiteSpec("good", (good,)), cache=ResultCache(str(tmp_path))
    )
    assert again.cache_hits == 1 and again.executed == 0


def test_serial_and_parallel_runs_are_byte_identical():
    suite = tiny_suite()
    serial = run_suite(suite, jobs=1)
    parallel = run_suite(suite, jobs=2)
    assert artifact_bytes(serial) == artifact_bytes(parallel)
    assert serial.all_correct


def test_runner_rejects_bad_jobs_and_unknown_families():
    with pytest.raises(ValueError, match="jobs"):
        run_suite(tiny_suite(), jobs=0)
    with pytest.raises(ValueError, match="query family"):
        build_query(tiny_spec(query="nope", query_params={}))
    with pytest.raises(ValueError, match="topology family"):
        build_topology(tiny_spec(topology="nope", topology_params={}))
    with pytest.raises(ValueError, match="topology params"):
        build_topology(tiny_spec(topology_params={"wrong": 1}))


def test_worst_case_assignment_needs_hard_family():
    spec = tiny_spec(assignment="worst-case")
    with pytest.raises(RuntimeError, match="worst-case"):
        run_suite(SuiteSpec("bad", (spec,)))


# ---------------------------------------------------------------------------
# Registered suites + artifact + CLI
# ---------------------------------------------------------------------------


def test_registered_suites_are_buildable():
    names = suite_names()
    assert {"smoke", "table1", "backend-compare", "scaling"} <= set(names)
    for name in names:
        suite = get_suite(name)
        assert len(suite) > 0
    with pytest.raises(ValueError, match="unknown suite"):
        get_suite("nope")


def test_smoke_suite_covers_required_diversity():
    suite = get_suite("smoke")
    assert len(suite.families) >= 4
    assert len({s.query for s in suite}) >= 2
    assert len({s.topology for s in suite}) >= 2
    backends = {s.backend for s in suite}
    assert {"dict", "columnar"} <= backends


def test_artifact_payload_shape(tmp_path):
    run = run_suite(SuiteSpec("one", (tiny_spec(),)))
    payload = json.loads(artifact_bytes(run))
    assert payload["schema"] == "repro.lab/bench.v5"
    assert payload["suite"] == "one"
    assert payload["scenario_count"] == 1
    assert payload["all_correct"] is True
    (scenario,) = payload["scenarios"]
    assert scenario["spec"]["seed"] == 11
    assert scenario["measured_rounds"] >= 0
    assert scenario["bound_ok"] is True
    assert scenario["cut_ok"] is True
    (agg,) = payload["aggregates"]
    assert agg["family"] == "bcq-degenerate"
    assert agg["scenarios"] == 1
    assert agg["bound_violations"] == 0
    cert = payload["certification"]
    assert cert["scenarios_checked"] == 1
    assert cert["bound_violations"] == []


def test_aggregate_groups_by_family():
    run = run_suite(tiny_suite())
    aggs = {a.family: a for a in aggregate(run.results)}
    assert aggs["bcq-degenerate"].scenarios == 2
    assert aggs["faq-line"].scenarios == 1
    assert aggs["bcq-degenerate"].correct == 2


def test_cli_run_and_list(tmp_path, capsys):
    register_suite("test-tiny", tiny_suite, overwrite=True)
    out = str(tmp_path / "out")
    code = lab_main(
        ["run", "test-tiny", "--out", out, "--jobs", "2", "--markdown", "--csv"]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "wrote" in captured
    assert os.path.exists(os.path.join(out, ARTIFACT_FILENAME))
    assert os.path.exists(os.path.join(out, "LAB_tiny.md"))
    assert os.path.exists(os.path.join(out, "LAB_tiny.csv"))
    # Second CLI run: served from the cache written under <out>.
    code = lab_main(["run", "test-tiny", "--out", out, "--quiet"])
    assert code == 0
    assert "4 cached (100%)" in capsys.readouterr().out

    assert lab_main(["list"]) == 0
    assert "test-tiny" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Engine axis + parity tooling
# ---------------------------------------------------------------------------


def test_spec_engine_axis_validated_and_hashed():
    assert tiny_spec().engine == "generator"
    compiled = tiny_spec(engine="compiled")
    assert compiled.content_hash() != tiny_spec().content_hash()
    assert "compiled" in compiled.label
    with pytest.raises(ValueError, match="engine"):
        tiny_spec(engine="warp")


def test_with_engines_pairs_every_scenario():
    from repro.lab.suites import with_engines

    paired = with_engines(tiny_suite(), "paired", "desc")
    assert len(paired) == 2 * len(tiny_suite())
    engines = [s.engine for s in paired.scenarios]
    assert engines[:2] == ["generator", "compiled"]
    # pairs are adjacent and otherwise identical
    assert paired.scenarios[0].with_(engine="compiled") == paired.scenarios[1]


def test_engine_suites_registered():
    names = suite_names()
    assert "engine-compare" in names
    assert "engine-smoke" in names
    compare = get_suite("engine-compare")
    assert len(compare) == 2 * len(get_suite("table1"))


def test_execute_scenario_records_bits_and_engine_parity():
    gen = execute_scenario(tiny_spec())
    comp = execute_scenario(tiny_spec(engine="compiled"))
    assert gen.total_bits > 0
    assert 0.0 < gen.link_utilization <= 1.0
    assert comp.answer_digest == gen.answer_digest
    assert comp.measured_rounds == gen.measured_rounds
    assert comp.total_bits == gen.total_bits
    assert comp.link_utilization == gen.link_utilization


def test_parity_failures_detect_mismatch():
    from repro.lab.report import parity_failures

    gen = execute_scenario(tiny_spec()).deterministic_record()
    comp = execute_scenario(tiny_spec(engine="compiled")).deterministic_record()
    assert parity_failures([gen, comp]) == []
    tampered = dict(comp)
    tampered["total_bits"] = comp["total_bits"] + 1
    failures = parity_failures([gen, tampered])
    assert len(failures) == 1 and "total_bits" in failures[0]


def test_artifact_timings_key_is_opt_in(tmp_path):
    from repro.lab.report import artifact_payload
    from repro.lab.suites import with_engines

    suite = with_engines(tiny_suite("timed"), "timed", "desc")
    run = run_suite(suite)
    assert "timings" not in artifact_payload(run)
    payload = artifact_payload(run, timings=True)
    assert len(payload["timings"]["engine_pairs"]) == len(tiny_suite())
    pair = payload["timings"]["engine_pairs"][0]
    assert pair["generator_protocol_s"] > 0
    assert pair["compiled_protocol_s"] > 0
    assert payload["timings"]["headline"]["rows"] >= 1


def test_cli_parity_command(tmp_path, capsys):
    register_suite(
        "cli-parity-suite",
        lambda: SuiteSpec(
            name="cli-parity-suite",
            scenarios=(tiny_spec(), tiny_spec(engine="compiled")),
        ),
        overwrite=True,
    )
    out = str(tmp_path)
    code = lab_main(
        ["run", "cli-parity-suite", "--out", out, "--no-cache", "--quiet"]
    )
    assert code == 0
    artifact = os.path.join(out, ARTIFACT_FILENAME)
    assert lab_main(["parity", artifact]) == 0
    captured = capsys.readouterr().out
    assert "parity OK" in captured

    # Tamper with the artifact: parity must fail loudly.
    payload = json.load(open(artifact))
    payload["scenarios"][0]["measured_rounds"] += 1
    with open(artifact, "w") as fh:
        json.dump(payload, fh)
    assert lab_main(["parity", artifact]) == 1


def test_cli_engine_override(tmp_path, capsys):
    register_suite(
        "cli-engine-suite",
        lambda: SuiteSpec(name="cli-engine-suite", scenarios=(tiny_spec(),)),
        overwrite=True,
    )
    out = str(tmp_path)
    code = lab_main(
        [
            "run", "cli-engine-suite", "--engine", "both", "--timings",
            "--out", out, "--no-cache", "--quiet",
        ]
    )
    assert code == 0
    payload = json.load(open(os.path.join(out, ARTIFACT_FILENAME)))
    engines = [s["spec"]["engine"] for s in payload["scenarios"]]
    assert engines == ["generator", "compiled"]
    assert "timings" in payload


# ---------------------------------------------------------------------------
# The FAQ-solver axis
# ---------------------------------------------------------------------------


def test_spec_solver_axis_validated_and_hashed():
    assert tiny_spec().solver == "operator"
    compiled = tiny_spec(solver="compiled")
    assert compiled.content_hash() != tiny_spec().content_hash()
    assert "compiled" in compiled.label
    with pytest.raises(ValueError, match="solver"):
        tiny_spec(solver="jit")


def test_with_solvers_pairs_every_scenario():
    from repro.lab.suites import with_solvers

    paired = with_solvers(tiny_suite(), "paired", "desc")
    assert len(paired) == 2 * len(tiny_suite())
    solvers = [s.solver for s in paired.scenarios]
    assert solvers[:2] == ["operator", "compiled"]
    assert paired.scenarios[0].with_(solver="compiled") == paired.scenarios[1]


def test_solver_suites_registered():
    names = suite_names()
    assert "solver-scaling" in names
    assert "solver-compare" in names
    assert "solver-smoke" in names
    compare = get_suite("solver-compare")
    assert len(compare) == 2 * len(get_suite("solver-scaling"))
    solvers = {s.solver for s in compare.scenarios}
    assert solvers == {"operator", "compiled"}


def test_execute_scenario_solver_parity_and_wall_clock():
    op = execute_scenario(tiny_spec())
    comp = execute_scenario(tiny_spec(solver="compiled"))
    assert comp.answer_digest == op.answer_digest
    assert comp.measured_rounds == op.measured_rounds
    assert comp.total_bits == op.total_bits
    assert op.solver_wall_time > 0.0
    assert comp.solver_wall_time > 0.0


def test_solver_parity_failures_detect_mismatch():
    from repro.lab.report import parity_failures, solver_pairs

    op = execute_scenario(tiny_spec()).deterministic_record()
    comp = execute_scenario(tiny_spec(solver="compiled")).deterministic_record()
    assert len(solver_pairs([op, comp])) == 1
    assert parity_failures([op, comp], "solver") == []
    # Engine pairing must NOT pair records differing in solver.
    assert parity_failures([op, comp], "engine") == []
    tampered = dict(comp)
    tampered["answer_digest"] = "0" * 64
    failures = parity_failures([op, tampered], "solver")
    assert len(failures) == 1 and "answer_digest" in failures[0]


def test_timings_payload_has_solver_pairs(tmp_path):
    from repro.lab.report import artifact_payload
    from repro.lab.suites import with_solvers

    suite = with_solvers(tiny_suite("solver-timed"), "solver-timed", "desc")
    run = run_suite(suite)
    payload = artifact_payload(run, timings=True)
    pairs = payload["timings"]["solver_pairs"]
    assert len(pairs) == len(tiny_suite())
    assert pairs[0]["operator_solver_s"] > 0
    assert pairs[0]["compiled_solver_s"] > 0
    assert payload["timings"]["solver_headline"]["rows"] >= 1
    for scenario in payload["timings"]["scenarios"]:
        assert "solver_wall_time" in scenario


def test_cli_solver_override(tmp_path, capsys):
    register_suite(
        "cli-solver-suite",
        lambda: SuiteSpec(name="cli-solver-suite", scenarios=(tiny_spec(),)),
        overwrite=True,
    )
    out = str(tmp_path)
    code = lab_main(
        [
            "run", "cli-solver-suite", "--solver", "both", "--timings",
            "--out", out, "--no-cache", "--quiet",
        ]
    )
    assert code == 0
    artifact = os.path.join(out, ARTIFACT_FILENAME)
    payload = json.load(open(artifact))
    solvers = [s["spec"]["solver"] for s in payload["scenarios"]]
    assert solvers == ["operator", "compiled"]
    assert lab_main(["parity", artifact]) == 0
    assert "solver pair(s)" in capsys.readouterr().out


def test_plan_cache_hits_across_lab_grid_sweep():
    """A grid sweep varying only seed/N compiles each structure once, and
    a second pass over the same suite is plan-cache served entirely."""
    from repro.faq import PLAN_CACHE

    suite = SuiteSpec(
        name="plan-cache-grid",
        scenarios=expand_grid(
            dict(
                family="bcq-degenerate",
                query="degenerate",
                query_params={"vertices": 4, "d": 1},
                topology="clique",
                topology_params={"n": 3},
                domain_size=8,
                seed=11,
                solver="compiled",
            ),
            n=[8, 12, 16],
        ),
    )
    PLAN_CACHE.clear()
    run_suite(suite)  # jobs=1: everything executes in this process
    first = PLAN_CACHE.stats
    assert first.misses > 0
    baseline = first.misses
    hits_before = first.hits
    lookups = first.lookups
    run_suite(suite)
    second = PLAN_CACHE.stats
    assert second.misses == baseline  # 100% plan-cache hits on the re-run
    assert second.hits - hits_before == second.lookups - lookups


# ---------------------------------------------------------------------------
# Bound certification (the fuzzed scenario plane's oracle)
# ---------------------------------------------------------------------------


def test_result_records_carry_certification_fields():
    record = execute_scenario(tiny_spec()).deterministic_record()
    for field in (
        "lower_certified", "formula_certified", "tribes_bits_floor",
        "bound_ok", "cut_bits", "cut_size", "cut_ok",
    ):
        assert field in record
    assert record["bound_ok"] is True
    rebuilt = ScenarioResult.from_record(record)
    assert rebuilt.deterministic_record() == record


def test_from_record_defaults_for_pre_v3_records():
    """Old cache/artifact records (no certification fields) stay readable
    and read as unchecked-but-clean."""
    record = execute_scenario(tiny_spec()).deterministic_record()
    for field in (
        "lower_certified", "formula_certified", "tribes_bits_floor",
        "bound_ok", "cut_bits", "cut_size", "cut_ok",
    ):
        record.pop(field)
    rebuilt = ScenarioResult.from_record(record)
    assert rebuilt.bound_ok is True
    assert rebuilt.cut_ok is True
    assert rebuilt.lower_certified == 0.0
    assert rebuilt.formula_certified is False


def test_aggregate_counts_bound_violations_and_gap_min():
    results = run_suite(tiny_suite()).results
    aggs = {a.family: a for a in aggregate(results)}
    for agg in aggs.values():
        assert agg.bound_violations == 0
        record = agg.to_record()
        assert record["bound_violations"] == 0
        assert "gap_min" in record
    lined = aggs["faq-line"]
    assert lined.gap_min is not None
    assert lined.gap_min <= lined.gap_max


def test_worst_case_table1_scenario_is_formula_certified():
    """The table1 rows ARE the paper's hard instances: the formula lower
    bound is certified on them."""
    suite = get_suite("table1-line")
    result = execute_scenario(suite.scenarios[0])
    assert result.formula_certified
    assert result.tribes_bits_floor > 0
    assert result.cut_bits >= result.tribes_bits_floor
    assert result.bound_ok
    assert result.cut_size >= 1
