"""Tests for GYO reduction, acyclicity and the core/forest decomposition."""

import pytest

from repro.hypergraph import (
    Hypergraph,
    decompose,
    gyo_reduce,
    is_acyclic,
    n2,
)


def appendix_c2_h3():
    """H3 of Appendix C.2."""
    return Hypergraph(
        {
            "e1": ("A", "B", "C"),
            "e2": ("B", "C", "D"),
            "e3": ("A", "C", "D"),
            "e4": ("A", "B", "E"),
            "e5": ("A", "F"),
            "e6": ("B", "G"),
            "e7": ("G", "H"),
        }
    )


def test_star_is_acyclic():
    assert is_acyclic(Hypergraph.star(5))


def test_path_is_acyclic():
    assert is_acyclic(Hypergraph.path(6))


def test_fig1_h2_is_acyclic():
    h2 = Hypergraph(
        {
            "R": ("A", "B", "C"),
            "S": ("B", "D"),
            "T": ("C", "F"),
            "U": ("A", "B", "E"),
        }
    )
    assert is_acyclic(h2)


def test_cycle_is_cyclic():
    assert not is_acyclic(Hypergraph.cycle(4))


def test_triangle_hyperedge_makes_triangle_acyclic():
    # A 3-cycle of binary edges is cyclic, but adding the covering
    # 3-ary edge makes it (alpha-)acyclic.
    h = Hypergraph(
        {
            "R": ("A", "B"),
            "S": ("B", "C"),
            "T": ("A", "C"),
            "W": ("A", "B", "C"),
        }
    )
    assert is_acyclic(h)


def test_appendix_c2_reduction():
    """The GYO run of Appendix C.2: H' = {e1, e2, e3}, forest = e4..e7."""
    res = gyo_reduce(appendix_c2_h3())
    assert not res.is_acyclic
    assert set(res.reduced_edges) == {"e1", "e2", "e3"}
    removed_names = {r.name for r in res.removed}
    assert removed_names == {"e4", "e5", "e6", "e7"}
    # H, G, F, E should all have been eliminated by step (a)
    assert {"E", "F", "G", "H"} <= set(res.eliminated_vertices)


def test_appendix_c2_decomposition_core_and_forest():
    dec = decompose(appendix_c2_h3())
    # All of e1, e2, e3 sit in the core; removed-tree roots join them.
    assert {"e1", "e2", "e3"} <= set(dec.core_edge_names)
    # Every removed edge is either a tree root (core) or a forest edge.
    removed = {"e4", "e5", "e6", "e7"}
    placed = set(dec.forest_edge_names) | (set(dec.tree_roots) & removed)
    assert placed == removed
    # Core vertices contain A..D.
    assert {"A", "B", "C", "D"} <= set(dec.core_vertices)


def test_acyclic_decomposition_has_empty_reduction():
    dec = decompose(Hypergraph.star(4))
    assert dec.is_pure_forest
    assert len(dec.tree_roots) == 1
    # One edge roots the single tree; the rest are forest edges.
    assert len(dec.forest_edge_names) == 3


def test_n2_of_acyclic_is_size_of_root_edge():
    # For a star, the core is one root edge: 2 vertices.
    assert n2(Hypergraph.star(6)) == 2
    assert n2(Hypergraph.path(5)) == 2


def test_n2_of_cycle_is_whole_cycle():
    assert n2(Hypergraph.cycle(6)) == 6


def test_n2_of_clique():
    k = Hypergraph.clique(4)
    assert n2(k) == 4


def test_disconnected_forest_has_multiple_roots():
    h = Hypergraph(
        {
            "R": ("A", "B"),
            "S": ("B", "C"),
            "X": ("P", "Q"),
            "Y": ("Q", "Z"),
        }
    )
    dec = decompose(h)
    assert dec.is_pure_forest
    assert len(dec.tree_roots) == 2


def test_removed_edges_have_valid_witness_parents():
    res = gyo_reduce(appendix_c2_h3())
    by_name = res.removed_by_name()
    for rec in res.removed:
        if rec.parent is not None:
            assert rec.parent in rec.witnesses
            # Parent's edge (at some point) contained the residual.
            parent_edge = (
                by_name[rec.parent].original
                if rec.parent in by_name
                else res.hypergraph.edge(rec.parent)
            )
            assert rec.residual <= parent_edge


def test_gyo_reduction_deterministic():
    a = gyo_reduce(appendix_c2_h3())
    b = gyo_reduce(appendix_c2_h3())
    assert a.reduced_edges == b.reduced_edges
    assert [r.name for r in a.removed] == [r.name for r in b.removed]


def test_pendant_vertex_on_core_edge_still_covered():
    # Triangle with a private pendant vertex X on e1: e1 survives shrunk,
    # but X must still be accounted to the core (see gyo.Decomposition).
    h = Hypergraph(
        {"e1": ("A", "B", "X"), "e2": ("B", "C"), "e3": ("C", "A")}
    )
    dec = decompose(h)
    assert "X" in dec.core_vertices


def test_single_edge_hypergraph():
    h = Hypergraph({"R": ("A", "B", "C")})
    res = gyo_reduce(h)
    assert res.is_acyclic
    dec = decompose(h)
    assert dec.tree_roots == ("R",)
    assert dec.forest_edge_names == ()
    assert dec.n2 == 3
