"""Tests for TRIBES and the lower-bound embeddings (Lemmas 4.3/4.4,
Theorems 4.4/F.8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faq import bcq, scalar_value, solve_naive
from repro.hypergraph import Hypergraph
from repro.lowerbounds import (
    TribesInstance,
    bcq_bounds,
    core_embedding_capacity,
    embed_tribes_in_core,
    embed_tribes_in_forest,
    embed_tribes_in_hypergraph,
    embedding_capacity,
    faq_bounds,
    find_disjoint_cycles,
    greedy_independent_set,
    hard_tribes,
    random_tribes,
    strong_independent_set,
    structure_parameters,
    table1_gap_budget,
    tribes_round_lower_bound,
)
from repro.network import Topology


# ---------------------------------------------------------------------------
# TRIBES
# ---------------------------------------------------------------------------


def test_tribes_evaluation():
    inst = TribesInstance(
        4,
        (
            (frozenset({1}), frozenset({1, 2})),
            (frozenset({0}), frozenset({0})),
        ),
    )
    assert inst.disj(0) and inst.disj(1)
    assert inst.evaluate() is True
    inst2 = TribesInstance(4, ((frozenset({1}), frozenset({2})),))
    assert inst2.evaluate() is False


def test_hard_tribes_value_and_intersection_size():
    for value in (True, False):
        inst = hard_tribes(4, 10, value, seed=2)
        assert inst.evaluate() == value
        for s, t in inst.pairs:
            assert len(s & t) <= 1  # Remark G.5


def test_random_tribes_deterministic_seed():
    a = random_tribes(3, 8, seed=5)
    b = random_tribes(3, 8, seed=5)
    assert a == b


def test_lower_bound_formulas():
    inst = random_tribes(3, 100, seed=1)
    assert inst.lower_bound_rounds() == 300.0
    assert tribes_round_lower_bound(3, 100, 1) == 300.0
    assert tribes_round_lower_bound(3, 100, 4) == 300 / (4 * 2)
    with pytest.raises(ValueError):
        tribes_round_lower_bound(3, 100, 0)


# ---------------------------------------------------------------------------
# Forest embedding (Lemma 4.3)
# ---------------------------------------------------------------------------


def star_h():
    return Hypergraph(
        {"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D"), "U": ("A", "E")}
    )


def test_forest_embedding_star_structure():
    tr = hard_tribes(1, 8, True, seed=0)
    emb = embed_tribes_in_forest(star_h(), tr)
    assert emb.o_nodes == ("A",)
    assert len(emb.factors) == 4
    assert emb.s_edges[0] != emb.t_edges[0]


def test_forest_embedding_capacity_examples():
    assert embedding_capacity(star_h()) == 1
    # A path v0-v1-...-v6 has internal vertices on both sides; the larger
    # bipartition class of degree-2 vertices is chosen.
    assert embedding_capacity(Hypergraph.path(6)) == 3


def test_forest_embedding_rejects_cyclic():
    with pytest.raises(ValueError):
        embed_tribes_in_forest(Hypergraph.cycle(4), hard_tribes(1, 4, True))


def test_forest_embedding_rejects_oversized():
    with pytest.raises(ValueError):
        embed_tribes_in_forest(star_h(), hard_tribes(2, 4, True))


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.booleans())
def test_forest_embedding_equivalence_property(seed, value):
    """The machine-checked heart of Lemma 4.3: BCQ == TRIBES."""
    h = Hypergraph.path(6)
    m = embedding_capacity(h)
    tr = hard_tribes(m, 6, value, seed=seed)
    emb = embed_tribes_in_forest(h, tr)
    q = bcq(emb.hypergraph, emb.factors, emb.domains)
    assert scalar_value(solve_naive(q)) == value


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_forest_embedding_random_tribes_property(seed):
    h = Hypergraph.path(6)
    m = embedding_capacity(h)
    tr = random_tribes(m, 5, seed=seed)
    emb = embed_tribes_in_forest(h, tr)
    q = bcq(emb.hypergraph, emb.factors, emb.domains)
    assert scalar_value(solve_naive(q)) == tr.evaluate()


# ---------------------------------------------------------------------------
# Core embedding (Theorem 4.4)
# ---------------------------------------------------------------------------


def test_find_disjoint_cycles():
    h = Hypergraph.cycle(6)
    cycles = find_disjoint_cycles(h)
    assert len(cycles) == 1
    assert len(cycles[0]) == 6


def test_greedy_independent_set_on_cycle():
    h = Hypergraph.cycle(6)
    ind = greedy_independent_set(h)
    assert len(ind) >= 2
    for u in ind:
        for v in ind:
            if u != v:
                assert v not in h.neighbors(u)


def test_core_capacity_modes():
    mode, cap = core_embedding_capacity(Hypergraph.cycle(8))
    assert cap >= 1
    assert mode in ("cycles", "independent-set")


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000), st.booleans())
def test_core_embedding_equivalence_property(seed, value):
    """Theorem 4.4's reduction, machine-checked on a cycle query."""
    h = Hypergraph.cycle(5)
    _mode, cap = core_embedding_capacity(h)
    tr = hard_tribes(min(1, cap), 16, value, seed=seed)  # 16 = 4² for cycles
    emb = embed_tribes_in_core(h, tr)
    q = bcq(emb.hypergraph, emb.factors, emb.domains)
    assert scalar_value(solve_naive(q)) == value


def test_cycle_embedding_needs_square_universe():
    h = Hypergraph.cycle(5)
    # Force cycle mode by requesting it directly.
    from repro.lowerbounds.core_embedding import _embed_on_cycles

    with pytest.raises(ValueError):
        _embed_on_cycles(h, hard_tribes(1, 15, True, seed=0))


def test_cycle_mode_equivalence():
    from repro.lowerbounds.core_embedding import _embed_on_cycles

    h = Hypergraph.cycle(6)
    for seed in range(4):
        for value in (True, False):
            tr = hard_tribes(1, 9, value, seed=seed)
            emb = _embed_on_cycles(h, tr)
            q = bcq(emb.hypergraph, emb.factors, emb.domains)
            assert scalar_value(solve_naive(q)) == value


# ---------------------------------------------------------------------------
# Hypergraph embedding (Theorem F.8)
# ---------------------------------------------------------------------------


def test_strong_independent_set_no_shared_edge():
    h = Hypergraph(
        {
            "E0": ("a", "b", "c"),
            "E1": ("c", "d", "e"),
            "E2": ("e", "f", "g"),
            "E3": ("b", "h", "i"),
        }
    )
    sis = strong_independent_set(h)
    for u in sis:
        for v in sis:
            if u != v:
                shared = h.incident_edges(u) & h.incident_edges(v)
                assert not shared


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000), st.booleans())
def test_hypergraph_embedding_equivalence_property(seed, value):
    from repro.workloads import random_acyclic_hypergraph

    h = random_acyclic_hypergraph(6, 3, seed=seed % 50)
    cap = len(strong_independent_set(h))
    if cap == 0:
        return
    tr = hard_tribes(min(cap, 2), 7, value, seed=seed)
    emb = embed_tribes_in_hypergraph(h, tr)
    q = bcq(emb.hypergraph, emb.factors, emb.domains)
    assert scalar_value(solve_naive(q)) == value


# ---------------------------------------------------------------------------
# Bound formulas (Table 1 machinery)
# ---------------------------------------------------------------------------


def test_structure_parameters_star():
    params = structure_parameters(star_h())
    assert params["y"] == 1.0
    assert params["r"] == 2.0
    assert params["d"] == 1.0
    assert params["acyclic"] == 1.0


def test_bcq_bounds_line_scale_linearly_in_n():
    h = star_h()
    g = Topology.line(4)
    players = g.nodes
    b1 = bcq_bounds(h, g, players, 100)
    b2 = bcq_bounds(h, g, players, 200)
    assert b2.lower_rounds == 2 * b1.lower_rounds
    assert b2.upper_rounds > b1.upper_rounds
    assert 1 <= b1.gap < 50  # Õ(1) row: constant-ish gap


def test_bcq_bounds_clique_smaller_than_line():
    h = star_h()
    n = 200
    line = bcq_bounds(h, Topology.line(4), Topology.line(4).nodes, n)
    clique = bcq_bounds(h, Topology.clique(4), Topology.clique(4).nodes, n)
    assert clique.upper_rounds < line.upper_rounds
    assert clique.lower_rounds <= line.lower_rounds


def test_faq_bounds_divide_by_dr():
    h = star_h()
    g = Topology.line(4)
    b = bcq_bounds(h, g, g.nodes, 100)
    fb = faq_bounds(h, g, g.nodes, 100)
    assert fb.lower_rounds == pytest.approx(b.lower_rounds / 2)  # d=1, r=2


def test_table1_gap_budget():
    assert table1_gap_budget("faq-line", 3, 4) == 1.0
    assert table1_gap_budget("bcq-degenerate", 3, 2) == 3.0
    assert table1_gap_budget("faq-hypergraph", 3, 4) == 9 * 16
    assert table1_gap_budget("mcm", 1, 1) == 1.0
    with pytest.raises(ValueError):
        table1_gap_budget("unknown", 1, 1)


def test_bound_report_gap_infinite_when_lower_zero():
    from repro.lowerbounds.bounds import BoundReport

    assert BoundReport(10.0, 0.0, {}).gap == float("inf")


# ---------------------------------------------------------------------------
# Direct unit tests for internals previously only covered transitively
# ---------------------------------------------------------------------------


def test_find_disjoint_cycles_harvests_disjoint_triangles():
    two_triangles = Hypergraph({
        "A": ("a1", "a2"), "B": ("a2", "a3"), "C": ("a3", "a1"),
        "D": ("b1", "b2"), "E": ("b2", "b3"), "F": ("b3", "b1"),
    })
    cycles = find_disjoint_cycles(two_triangles)
    assert len(cycles) == 2
    assert sorted(sorted(c) for c in cycles) == [
        ["a1", "a2", "a3"], ["b1", "b2", "b3"],
    ]


def test_find_disjoint_cycles_empty_on_forest():
    assert find_disjoint_cycles(Hypergraph.path(4)) == []


def test_find_disjoint_cycles_single_long_cycle():
    c5 = Hypergraph({f"E{i}": (f"v{i}", f"v{(i + 1) % 5}") for i in range(5)})
    (cycle,) = find_disjoint_cycles(c5)
    assert sorted(cycle) == [f"v{i}" for i in range(5)]


def test_forest_embedding_capacity_hand_cases():
    """|O| on hand graphs: the larger bipartition class of internal
    (degree >= 2) vertices."""
    assert embedding_capacity(Hypergraph.star(3)) == 1   # the center
    assert embedding_capacity(Hypergraph.path(2)) == 1   # one internal node
    assert embedding_capacity(Hypergraph.path(4)) == 2
    assert embedding_capacity(Hypergraph.path(5)) == 2
    # A disjoint union sums the per-tree capacities.
    forest = Hypergraph({
        "A": ("x0", "x1"), "B": ("x1", "x2"),
        "C": ("y0", "y1"), "D": ("y1", "y2"),
    })
    assert embedding_capacity(forest) == 2


def test_verify_cut_accounting_hand_cases():
    from repro.lowerbounds import CutTranscript, verify_cut_accounting

    ok = CutTranscript(
        side_a={"u"}, side_b={"v"}, crossing_edges=(("u", "v"),),
        bits_crossing=10, rounds=10, cut_size=1,
    )
    verify_cut_accounting(ok, capacity_bits=1)  # 10 <= 10 * 1 * 1
    impossible = CutTranscript(
        side_a={"u"}, side_b={"v"}, crossing_edges=(("u", "v"),),
        bits_crossing=11, rounds=10, cut_size=1,
    )
    with pytest.raises(AssertionError):
        verify_cut_accounting(impossible, capacity_bits=1)


def test_cut_transcript_two_party_addressing():
    from repro.lowerbounds import CutTranscript

    transcript = CutTranscript(
        side_a={"u"}, side_b={"v", "w"},
        crossing_edges=(("u", "v"), ("u", "w"), ("u", "x"), ("u", "y")),
        bits_crossing=100, rounds=50, cut_size=4,
    )
    # ceil(log2 4) = 2 address bits per crossing bit.
    assert transcript.two_party_bits_with_addressing() == 200
    # R >= bits / (cut * capacity * log cut)
    assert transcript.round_lower_bound(200.0, capacity_bits=1) == 25.0


def test_implied_round_lower_bound_hand_cases():
    from repro.lowerbounds import implied_round_lower_bound

    line = Topology.line(2)
    # cut = 1, ceil(log2 2) = 1: the bound is just bits / capacity.
    assert implied_round_lower_bound(line, line.nodes, 100.0, 1) == 100.0
    clique = Topology.clique(5)
    # cut = 4, address = 2: 600 / (4 * 1 * 2).
    assert implied_round_lower_bound(clique, clique.nodes, 600.0, 1) == 75.0


def test_cut_transcript_from_real_run():
    """The extracted transcript is consistent with the run's accounting."""
    from repro.lab import ScenarioSpec, build_query, build_topology
    from repro.core import Planner
    from repro.lowerbounds import cut_transcript, verify_cut_accounting

    spec = ScenarioSpec(
        family="cut", query="tree", query_params={"edges": 3},
        topology="line", topology_params={"n": 3}, n=8, seed=9,
    )
    built = build_query(spec)
    topology = build_topology(spec)
    planner = Planner(built.query, topology)
    report = planner.execute()
    transcript = cut_transcript(
        topology, planner.players, report.protocol.simulation
    )
    capacity = report.protocol.plan.capacity_bits
    verify_cut_accounting(transcript, capacity)
    assert transcript.rounds == report.measured_rounds
    assert transcript.cut_size >= 1
    assert 0 <= transcript.bits_crossing <= report.total_bits


# ---------------------------------------------------------------------------
# Edge cases surfaced by fuzzing (regression pins)
# ---------------------------------------------------------------------------


def test_bound_report_gap_one_when_both_bounds_zero():
    """Zero-bit scenarios (co-located runs): 0/0 is vacuous agreement,
    not an infinite gap."""
    from repro.lowerbounds.bounds import BoundReport

    assert BoundReport(0.0, 0.0, {}).gap == 1.0


def test_bcq_bounds_single_player_is_zero_bit():
    """One player (however large the topology) means no communication:
    both bounds are 0 and the structure parameters survive."""
    report = bcq_bounds(Hypergraph.star(3), Topology.line(4), ["p1"], 16)
    assert report.upper_rounds == 0.0
    assert report.lower_rounds == 0.0
    assert report.gap == 1.0
    assert report.components["co_located"] == 1.0
    assert report.components["d"] >= 1.0
    # Duplicate names of one player count as one terminal.
    dup = bcq_bounds(Hypergraph.star(3), Topology.line(4), ["p1", "p1"], 16)
    assert dup.lower_rounds == 0.0


def test_faq_bounds_single_player_is_zero_bit():
    report = faq_bounds(Hypergraph.star(3), Topology.line(4), ["p0"], 16)
    assert report.upper_rounds == 0.0
    assert report.lower_rounds == 0.0
    assert report.gap == 1.0


def test_table1_gap_budget_clamps_degenerate_structure():
    """d = 0 / r = 0 reports must never yield a zero budget."""
    assert table1_gap_budget("bcq-degenerate", 0, 1) == 1.0
    assert table1_gap_budget("faq-hypergraph", 0, 0) == 1.0
    assert table1_gap_budget("faq-hypergraph", 0.5, 3) == 9.0
