"""End-to-end integration tests: the whole pipeline on realistic scenarios.

Each test runs query construction -> decomposition -> bound prediction ->
protocol compilation -> simulation -> answer verification, the way a
downstream user would chain the public API.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    COUNTING,
    REAL,
    FAQQuery,
    Planner,
    Topology,
    bcq,
    internal_node_width,
    scalar_value,
)
from repro.core import assign_round_robin, table1_row, gap_within_budget
from repro.faq import marginal_query, solve_naive
from repro.lowerbounds import (
    cut_transcript,
    embed_tribes_in_forest,
    embedding_capacity,
    hard_tribes,
    verify_cut_accounting,
)
from repro.pgm import chain_model, tree_model
from repro.workloads import (
    domains_for,
    random_acyclic_hypergraph,
    random_instance,
    random_tree_query,
)


def test_full_pipeline_pgm_on_grid_topology():
    """Tree PGM marginal computed distributed on a 2x3 grid network."""
    model = tree_model(2, 2, 2, seed=11)
    query = model.marginal_query(("X0",))
    topo = Topology.grid(2, 3)
    planner = Planner(query, topo)
    report = planner.execute()
    assert report.correct
    got = {t: v for t, v in report.answer}
    expected = {t: v for t, v in solve_naive(query)}
    assert set(got) == set(expected)
    for t in got:
        assert math.isclose(got[t], expected[t], rel_tol=1e-9)


def test_full_pipeline_chain_pgm_on_matching_line():
    """A chain PGM on a line whose shape matches the chain (the sensor
    scenario): round cost scales with chain length, answers exact."""
    rounds = []
    for length in (3, 5):
        model = chain_model(length, 2, seed=length)
        query = model.marginal_query(("X0",))
        topo = Topology.line(length)
        report = Planner(query, topo).execute()
        assert report.correct
        rounds.append(report.measured_rounds)
    assert rounds[1] > rounds[0]


def test_full_pipeline_hard_instance_table_row():
    """The complete Table-1 row flow on a fresh hard instance."""
    h = random_tree_query(4, seed=21)
    m = embedding_capacity(h)
    if m == 0:
        pytest.skip("degenerate random tree")
    tribes = hard_tribes(m, 32, True, seed=21)
    emb = embed_tribes_in_forest(h, tribes)
    query = bcq(h, emb.factors, emb.domains)
    row = table1_row("faq-arbitrary", Planner(query, Topology.ring(4)))
    assert row.correct
    assert gap_within_budget(row)


def test_full_pipeline_cut_accounting_everywhere():
    """Every protocol run satisfies the Lemma 4.4 cut budget, across a
    topology zoo."""
    h = random_tree_query(4, seed=31)
    factors, domains = random_instance(h, 8, 12, seed=31)
    query = bcq(h, factors, domains)
    for topo in (Topology.line(4), Topology.ring(5), Topology.clique(4),
                 Topology.barbell(3, 1)):
        planner = Planner(query, topo)
        report = planner.execute()
        assert report.correct, topo.name
        if len(planner.players) < 2:
            continue
        transcript = cut_transcript(
            topo, planner.players, report.protocol.simulation
        )
        verify_cut_accounting(transcript, report.protocol.plan.capacity_bits)


def test_width_report_consistent_with_protocol():
    """y(H) from the width module equals the star-phase count the
    compiled protocol actually executes (acyclic connected H)."""
    for seed in (1, 5, 9):
        h = random_tree_query(5, seed=seed)
        factors, domains = random_instance(h, 6, 8, seed=seed)
        query = bcq(h, factors, domains)
        y = internal_node_width(h)
        topo = Topology.line(5)
        report = Planner(query, topo).execute()
        assert report.correct
        assert report.protocol.num_star_phases == y


def test_counting_and_boolean_agree_on_emptiness():
    """|join| > 0 iff BCQ true — cross-semiring integration."""
    h = random_acyclic_hypergraph(4, 3, seed=13)
    bool_factors, domains = random_instance(h, 5, 6, seed=13)
    count_factors = {
        name: f.with_semiring(COUNTING) for name, f in bool_factors.items()
    }
    q_bool = bcq(h, bool_factors, domains)
    q_count = FAQQuery(h, count_factors, domains, semiring=COUNTING)
    topo = Topology.clique(4)
    b = Planner(q_bool, topo).execute()
    c = Planner(q_count, topo).execute()
    assert b.correct and c.correct
    assert (scalar_value(c.answer) > 0) == scalar_value(b.answer)


def test_weighted_marginal_distributed_matches_centralized():
    h = random_tree_query(3, seed=17)
    factors, domains = random_instance(
        h, 4, 6, seed=17, semiring=REAL, weighted=True
    )
    root_edge = sorted(h.edge_names)[0]
    # Free variables = the core bag attributes (Appendix G.5 restriction).
    from repro.hypergraph import decompose

    core_vars = tuple(sorted(decompose(h).core_vertices, key=str))
    query = marginal_query(h, factors, domains, core_vars, REAL)
    topo = Topology.line(3)
    report = Planner(query, topo).execute()
    assert report.correct
    del root_edge


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10_000))
def test_pipeline_property_random_everything(seed):
    """Random query, random topology choice, round-robin assignment:
    the distributed answer always matches the centralized one."""
    h = random_tree_query(3 + seed % 3, seed=seed)
    factors, domains = random_instance(h, 4, 5, seed=seed)
    query = bcq(h, factors, domains)
    topos = [Topology.line(4), Topology.ring(4), Topology.clique(4)]
    topo = topos[seed % 3]
    report = Planner(query, topo, assign_round_robin(query, topo)).execute()
    assert report.correct
