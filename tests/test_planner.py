"""Tests for the planner, assignment policies, Table-1 reporting and the
cut-simulation accounting (Lemma 4.4 executable)."""

import pytest

from repro.core import (
    Planner,
    answer_value,
    assign_round_robin,
    assign_single_player,
    format_table,
    gap_within_budget,
    table1_row,
    worst_case_assignment,
)
from repro.faq import bcq
from repro.hypergraph import Hypergraph
from repro.lowerbounds import (
    cut_transcript,
    embed_tribes_in_forest,
    hard_tribes,
    implied_round_lower_bound,
    verify_cut_accounting,
)
from repro.network import Topology, mincut
from repro.workloads import random_instance


def star_query(n=24, seed=0):
    h = Hypergraph(
        {"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D"), "U": ("A", "E")}
    )
    factors, domains = random_instance(h, 16, n, seed=seed)
    return bcq(h, factors, domains, name="H1")


def test_assign_round_robin_covers_all_edges():
    q = star_query()
    topo = Topology.line(3)
    assignment = assign_round_robin(q, topo)
    assert set(assignment) == set(q.hypergraph.edge_names)
    assert set(assignment.values()) <= set(topo.nodes)


def test_assign_round_robin_restricted_pool():
    q = star_query()
    topo = Topology.line(4)
    assignment = assign_round_robin(q, topo, players=["P0", "P2"])
    assert set(assignment.values()) == {"P0", "P2"}


def test_assign_single_player():
    q = star_query()
    assignment = assign_single_player(q, "P1")
    assert set(assignment.values()) == {"P1"}


def test_worst_case_assignment_splits_cut():
    topo = Topology.line(4)
    h = Hypergraph(
        {"R": ("A", "B"), "S": ("A", "C"), "T": ("A", "D"), "U": ("A", "E")}
    )
    emb = embed_tribes_in_forest(h, hard_tribes(1, 10, True, seed=0))
    assignment = worst_case_assignment(
        emb.s_edges, emb.t_edges, h.edge_names, topo, topo.nodes
    )
    from repro.network import mincut_partition

    side_a, side_b, _ = mincut_partition(topo, topo.nodes)
    s_side = assignment[emb.s_edges[0]] in side_a
    t_side = assignment[emb.t_edges[0]] in side_a
    assert s_side != t_side  # the pair straddles the cut
    assert set(assignment) == set(h.edge_names)


def test_planner_players_property():
    q = star_query()
    topo = Topology.line(4)
    planner = Planner(q, topo, assign_single_player(q, "P2"))
    assert planner.players == ["P2"]


def test_planner_colocated_prediction_trivial():
    q = star_query()
    planner = Planner(q, Topology.line(3), assign_single_player(q, "P0"), "P0")
    pred = planner.predict()
    assert pred.upper_rounds == 0.0
    report = planner.execute()
    assert report.correct
    assert report.measured_rounds == 0


def test_planner_execute_reports_consistent_fields():
    q = star_query()
    topo = Topology.clique(4)
    report = Planner(q, topo).execute()
    assert report.correct
    assert report.answer == report.reference
    assert report.measured_rounds == report.protocol.rounds
    assert report.measured_gap > 0
    assert answer_value(report) in (True, False)


def test_table1_row_and_format():
    q = star_query()
    row = table1_row("faq-line", Planner(q, Topology.line(4)))
    assert row.correct
    assert row.n == q.max_factor_size
    text = format_table([row])
    assert "faq-line" in text
    assert "line(4)" in text
    assert gap_within_budget(row, polylog_allowance=1e6)


def test_gap_within_budget_rejects_huge_gap():
    from repro.core.analysis import Table1Row

    row = Table1Row(
        label="faq-line", query="q", topology="g", d=1, r=2, n=10,
        measured_rounds=10_000, upper_formula=1.0, lower_formula=1.0,
        gap=10_000.0, gap_budget=1.0, correct=True,
    )
    assert not gap_within_budget(row, polylog_allowance=64)


# ---------------------------------------------------------------------------
# Cut simulation (Lemma 4.4, executable accounting)
# ---------------------------------------------------------------------------


def test_cut_transcript_accounting_on_real_run():
    q = star_query(n=32, seed=3)
    topo = Topology.line(4)
    planner = Planner(q, topo)
    report = planner.execute()
    transcript = cut_transcript(topo, planner.players, report.protocol.simulation)
    assert transcript.cut_size == 1  # a line's min cut
    verify_cut_accounting(transcript, report.protocol.plan.capacity_bits)
    # The induced two-party protocol carries all cut-crossing bits.
    assert transcript.bits_crossing > 0
    assert transcript.two_party_bits_with_addressing() >= transcript.bits_crossing


def test_cut_transcript_on_clique():
    q = star_query(n=32, seed=4)
    topo = Topology.clique(4)
    planner = Planner(q, topo)
    report = planner.execute()
    transcript = cut_transcript(topo, planner.players, report.protocol.simulation)
    assert transcript.cut_size == mincut(topo, planner.players)
    verify_cut_accounting(transcript, report.protocol.plan.capacity_bits)


def test_implied_round_lower_bound_inequality():
    """Inequality (1): rounds >= two-party bits / (cut * B * log cut),
    where the two-party bits are what actually crossed the cut."""
    q = star_query(n=48, seed=5)
    topo = Topology.line(4)
    planner = Planner(q, topo)
    report = planner.execute()
    transcript = cut_transcript(topo, planner.players, report.protocol.simulation)
    capacity = report.protocol.plan.capacity_bits
    implied = implied_round_lower_bound(
        topo, planner.players, transcript.bits_crossing, capacity
    )
    assert report.measured_rounds >= implied - 1e-9


def test_cut_transcript_rounds_match_simulation():
    q = star_query(n=16, seed=6)
    topo = Topology.ring(4)
    planner = Planner(q, topo)
    report = planner.execute()
    transcript = cut_transcript(topo, planner.players, report.protocol.simulation)
    assert transcript.rounds == report.measured_rounds
    assert set(transcript.side_a) | set(transcript.side_b) == set(topo.nodes)
