"""Workload generators for tests and benchmarks.

Produces the query shapes the paper evaluates (stars, paths, trees,
d-degenerate graphs, bounded-arity hypergraphs) and random input relations
in listing representation, including the skew-free "matching" databases of
the MPC comparison (Appendix A.1.2).
"""

from __future__ import annotations

import random
import warnings
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..hypergraph import Hypergraph
from ..semiring import BOOLEAN, Factor, Semiring

#: Seed space for derived child seeds.  Kept at 2**30 so seeds survive a
#: JSON round-trip on every platform and stay comfortably inside the
#: int range of ``random.Random`` seeding.
SEED_SPACE = 2**30


def make_rng(seed: Optional[int]) -> random.Random:
    """A deterministic RNG for a generator call.

    ``None`` silently aliases every seedless call site to the *same*
    stream (seed 0), which makes experiments irreproducible as soon as
    two call sites race or reorder.  The experiment lab
    (:mod:`repro.lab`) therefore always passes explicit seeds (see
    :func:`spawn_seeds`); seedless calls keep the legacy seed-0 behaviour
    for backward compatibility but now warn.
    """
    if seed is None:
        # stacklevel=3: blame the seedless caller of the generator, not
        # the generator's internal make_rng call.
        warnings.warn(
            "make_rng(None) aliases to seed 0; pass an explicit seed "
            "(e.g. from spawn_seeds) for reproducible experiments",
            stacklevel=3,
        )
        return random.Random(0)
    return random.Random(seed)


def spawn_seeds(master_seed: int, n: int) -> Tuple[int, ...]:
    """Derive ``n`` independent child seeds from one master seed.

    The experiment boundary's answer to seedless nondeterminism: a
    scenario carries one explicit ``master_seed`` and every generator
    call site (query structure, per-relation tuples, topology sampling)
    gets its own deterministic child seed, so adding or reordering call
    sites never perturbs sibling streams.

    Raises:
        ValueError: if ``master_seed`` is None (the whole point) or
            ``n`` is negative.
    """
    if master_seed is None:
        raise ValueError("master_seed must be an explicit int, not None")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = random.Random(master_seed)
    return tuple(rng.randrange(SEED_SPACE) for _ in range(n))


# ---------------------------------------------------------------------------
# Query-shape generators
# ---------------------------------------------------------------------------


def random_tree_query(num_edges: int, seed: Optional[int] = None) -> Hypergraph:
    """A random tree-shaped simple-graph query with ``num_edges`` edges."""
    rng = make_rng(seed)
    if num_edges < 1:
        raise ValueError("need at least one edge")
    edges = {}
    for i in range(num_edges):
        parent = rng.randrange(i + 1)
        edges[f"R{i}"] = (f"v{parent}", f"v{i + 1}")
    return Hypergraph(edges)


def random_forest_query(
    num_trees: int, edges_per_tree: int, seed: Optional[int] = None
) -> Hypergraph:
    """A disjoint union of random trees."""
    rng = make_rng(seed)
    edges = {}
    for t in range(num_trees):
        for i in range(edges_per_tree):
            parent = rng.randrange(i + 1)
            edges[f"T{t}R{i}"] = (f"t{t}v{parent}", f"t{t}v{i + 1}")
    return Hypergraph(edges)


def random_d_degenerate_query(
    num_vertices: int, d: int, seed: Optional[int] = None
) -> Hypergraph:
    """A d-degenerate simple graph built by the standard insertion process.

    Vertex ``i`` connects to ``min(i, d)`` uniformly random earlier
    vertices, which guarantees degeneracy at most ``d`` and typically
    exactly ``d`` for ``num_vertices >> d``.
    """
    rng = make_rng(seed)
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    edges: Dict[str, Tuple[str, str]] = {}
    idx = 0
    for i in range(1, num_vertices):
        targets = rng.sample(range(i), min(i, d))
        for j in targets:
            edges[f"R{idx}"] = (f"v{j}", f"v{i}")
            idx += 1
    return Hypergraph(edges)


def random_acyclic_hypergraph(
    num_edges: int,
    arity: int,
    seed: Optional[int] = None,
) -> Hypergraph:
    """A random connected alpha-acyclic hypergraph with bounded arity.

    Grows a hypertree: each new edge shares a random non-empty subset of an
    existing edge and adds fresh vertices up to ``arity``.
    """
    rng = make_rng(seed)
    if arity < 2:
        raise ValueError("arity must be at least 2")
    fresh = 0

    def new_vertices(n: int) -> List[str]:
        nonlocal fresh
        out = [f"x{fresh + i}" for i in range(n)]
        fresh += n
        return out

    edges: Dict[str, Tuple[str, ...]] = {"E0": tuple(new_vertices(arity))}
    for i in range(1, num_edges):
        host = rng.choice(list(edges.values()))
        share = rng.randint(1, min(arity - 1, len(host)))
        shared = tuple(rng.sample(list(host), share))
        edges[f"E{i}"] = shared + tuple(new_vertices(arity - share))
    return Hypergraph(edges)


#: Named query-structure generators, the dispatch surface the lab's
#: query-family builders (:mod:`repro.lab.runner`) go through.  Each value
#: is ``(generator, parameter names)``; every generator takes its
#: parameters positionally plus a ``seed`` keyword.
STRUCTURE_KINDS: Dict[str, Tuple[Any, Tuple[str, ...]]] = {
    "tree": (random_tree_query, ("num_edges",)),
    "forest": (random_forest_query, ("num_trees", "edges_per_tree")),
    "degenerate": (random_d_degenerate_query, ("num_vertices", "d")),
    "acyclic": (random_acyclic_hypergraph, ("num_edges", "arity")),
}


def random_query_structure(
    kind: str, seed: Optional[int] = None, **params: int
) -> Hypergraph:
    """Generate a random query hypergraph of the named structure ``kind``.

    The uniform entry point over :data:`STRUCTURE_KINDS` (what the lab
    runner's tree/forest/degenerate/acyclic/hard-forest families call):
    looks up the generator, checks the parameter names, and forwards the
    seed.  The
    structural invariant each kind claims (tree/forest acyclicity,
    d-degeneracy, alpha-acyclicity with bounded arity) is property-tested
    in ``tests/test_workloads.py``.

    Raises:
        ValueError: on an unknown kind or wrong parameter names.
    """
    try:
        generator, names = STRUCTURE_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(STRUCTURE_KINDS))
        raise ValueError(f"unknown structure kind {kind!r}; known: {known}")
    if set(params) != set(names):
        raise ValueError(
            f"structure kind {kind!r} takes parameters {names}, "
            f"got {tuple(sorted(params))}"
        )
    return generator(*(params[name] for name in names), seed=seed)


# ---------------------------------------------------------------------------
# Relation generators
# ---------------------------------------------------------------------------


def random_relation(
    schema: Sequence[str],
    domains: Mapping[str, Sequence[Any]],
    size: int,
    seed: Optional[int] = None,
    semiring: Semiring = BOOLEAN,
    name: Optional[str] = None,
) -> Factor:
    """A uniform random relation of (up to) ``size`` distinct tuples."""
    rng = make_rng(seed)
    schema = tuple(schema)
    tuples = set()
    capacity = 1
    for v in schema:
        capacity *= len(domains[v])
    target = min(size, capacity)
    while len(tuples) < target:
        tuples.add(tuple(rng.choice(list(domains[v])) for v in schema))
    return Factor.from_tuples(schema, tuples, semiring, name)


def random_weighted_relation(
    schema: Sequence[str],
    domains: Mapping[str, Sequence[Any]],
    size: int,
    semiring: Semiring,
    seed: Optional[int] = None,
    name: Optional[str] = None,
    low: float = 0.1,
    high: float = 1.0,
    exact: bool = False,
) -> Factor:
    """A random relation with uniform float annotations in [low, high].

    With ``exact=True`` annotations are instead small integers (1..8, as
    floats): every product and sum of such values stays well inside the
    53-bit double mantissa, so non-associative float folds (the real
    semiring's ⊕ over different backends/solvers) agree *byte-for-byte*
    regardless of reduction order.  The differential fuzz plane requires
    this — with uniform doubles, dict and columnar marginalization would
    legitimately differ in the last ulp and parity would be noise.
    """
    rng = make_rng(seed)
    base = random_relation(schema, domains, size, seed=rng.randrange(2**30))
    if exact:
        rows = {t: float(rng.randint(1, 8)) for t in base.tuples()}
    else:
        rows = {t: rng.uniform(low, high) for t in base.tuples()}
    return Factor(base.schema, rows, semiring, name)


def matching_relation(
    schema: Sequence[str],
    size: int,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> Factor:
    """A skew-free "matching" relation: each value occurs in one tuple.

    This is the input class of the MPC(0) comparison (Appendix A.1.2):
    tuple ``i`` is ``(pi_1(i), pi_2(i), ...)`` for per-column random
    permutations ``pi_j`` of ``[size]``.
    """
    rng = make_rng(seed)
    schema = tuple(schema)
    columns = []
    for _ in schema:
        perm = list(range(size))
        rng.shuffle(perm)
        columns.append(perm)
    tuples = [tuple(col[i] for col in columns) for i in range(size)]
    return Factor.from_tuples(schema, tuples, BOOLEAN, name)


def domains_for(
    hypergraph: Hypergraph, domain_size: int
) -> Dict[str, Tuple[int, ...]]:
    """Uniform integer domains ``[0, domain_size)`` for every variable."""
    dom = tuple(range(domain_size))
    return {v: dom for v in hypergraph.vertices}


def random_instance(
    hypergraph: Hypergraph,
    domain_size: int,
    relation_size: int,
    seed: Optional[int] = None,
    semiring: Semiring = BOOLEAN,
    weighted: bool = False,
    exact: bool = False,
) -> Tuple[Dict[str, Factor], Dict[str, Tuple[int, ...]]]:
    """Random factors + domains for every hyperedge of ``hypergraph``.

    ``exact`` is forwarded to :func:`random_weighted_relation`: integral
    annotations whose folds are order-independent in double precision
    (what the lab's byte-identical parity contract needs on the real
    semiring).

    Returns:
        ``(factors, domains)`` ready to build an
        :class:`~repro.faq.query.FAQQuery`.
    """
    rng = make_rng(seed)
    domains = domains_for(hypergraph, domain_size)
    factors = {}
    for name, verts in hypergraph.edges():
        schema = tuple(sorted(verts, key=str))
        sub_seed = rng.randrange(2**30)
        if weighted:
            factors[name] = random_weighted_relation(
                schema, domains, relation_size, semiring, sub_seed, name,
                exact=exact,
            )
        else:
            factors[name] = random_relation(
                schema, domains, relation_size, sub_seed, semiring, name
            )
    return factors, domains
