"""Workload generators for tests and benchmarks."""

from .generators import (
    SEED_SPACE,
    STRUCTURE_KINDS,
    domains_for,
    make_rng,
    spawn_seeds,
    matching_relation,
    random_query_structure,
    random_acyclic_hypergraph,
    random_d_degenerate_query,
    random_forest_query,
    random_instance,
    random_relation,
    random_tree_query,
    random_weighted_relation,
)

__all__ = [
    "SEED_SPACE",
    "STRUCTURE_KINDS",
    "random_query_structure",
    "make_rng",
    "spawn_seeds",
    "random_tree_query",
    "random_forest_query",
    "random_d_degenerate_query",
    "random_acyclic_hypergraph",
    "random_relation",
    "random_weighted_relation",
    "matching_relation",
    "domains_for",
    "random_instance",
]
