"""Declarative scenario specs — the lab's hashable experiment descriptions.

A :class:`ScenarioSpec` is a pure-data description of one end-to-end
experiment: a query family with parameters, a topology family with
parameters, a semiring, a storage backend, an assignment policy, a size,
and an **explicit** seed.  Specs are frozen, hashable, JSON-serializable
and content-addressed (:meth:`ScenarioSpec.content_hash` keys the result
cache), so a suite of specs *is* the experiment — running it twice, in
any process order, yields byte-identical aggregated results.

A :class:`SuiteSpec` is a named, ordered collection of scenarios;
:func:`expand_grid` builds the cartesian sweeps the paper's Table 1 is
made of.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..faq import SOLVERS
from ..kernels import KERNEL_TIERS
from ..protocols.faq_protocol import ENGINES
from ..semiring import BACKENDS, BUILTIN_SEMIRINGS

#: Bumped whenever the result schema or scenario semantics change; part of
#: the content hash, so stale cache entries miss instead of lying.
#: v2: structure and instance generators get distinct child seeds.
#: v3: scenarios carry a protocol engine axis; results record bit totals
#: and link utilization.
#: v4: scenarios carry an FAQ solver axis (operator vs compiled plans).
#: v5: the fuzzed scenario plane — forest/hard-forest query families,
#: bound-certification fields on every result (certified lower bound,
#: cut-accounting transcript, violation flags).
#: v6: scenarios carry a kernel-tier axis (``numpy`` vs ``jit``) and the
#: deterministic counter whitelist grows the kernel/batch dispatch tags.
SPEC_VERSION = 6

#: Assignment policies the runner implements.
ASSIGNMENTS = ("round-robin", "single", "worst-case")

Params = Tuple[Tuple[str, Any], ...]


def _freeze_params(params: Optional[Mapping[str, Any]]) -> Params:
    """Normalize a params mapping to a sorted, hashable tuple of pairs."""
    if params is None:
        return ()
    items = params if isinstance(params, tuple) else tuple(dict(params).items())
    for key, value in items:
        if not isinstance(key, str):
            raise ValueError(f"param names must be strings, got {key!r}")
        if not isinstance(value, (int, float, str, bool)):
            raise ValueError(
                f"param {key!r} must be a JSON scalar, got {type(value).__name__}"
            )
    return tuple(sorted(items))


@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment, declaratively.

    Attributes:
        family: Scenario-family label ("faq-line", "bcq-degenerate", ...).
            Groups scenarios for aggregation and selects the Table 1 gap
            budget when the label matches a paper row.
        query: Query-family name in :data:`repro.lab.runner.QUERY_FAMILIES`
            ("hard-star", "hard-path", "degenerate", "acyclic", "tree").
        query_params: Family-specific structure parameters (e.g. ``d``,
            ``arity``); stored as a sorted tuple of pairs so specs hash
            identically regardless of construction order.
        topology: Topology-family name in
            :data:`repro.lab.runner.TOPOLOGY_FAMILIES` ("line", "clique",
            "hypercube", "expander", ...).
        topology_params: Topology parameters (e.g. ``n``, ``dim``).
        n: Instance size N (TRIBES universe / relation listing size).
        domain_size: Domain size for the random-instance families.
        semiring: Semiring name from ``BUILTIN_SEMIRINGS``.
        backend: Factor storage backend (``None`` keeps the query's own,
            "dict" / "columnar" normalize it).
        assignment: Relation->player policy from :data:`ASSIGNMENTS`.
        seed: Master seed.  **Required** — the lab rejects ``seed=None``
            (seedless scenarios are irreproducible by construction).
        max_rounds: Simulator round cap.
        engine: Protocol execution engine (``"generator"`` or
            ``"compiled"``) — an explicit axis so engine-parity suites
            can pair otherwise-identical scenarios.
        solver: FAQ solver strategy (``"operator"`` or ``"compiled"``)
            used for the reference solve and all free internal
            computation — the solver-parity twin of the engine axis.
        kernels: Kernel tier (``"numpy"`` or ``"jit"``) the hot array
            kernels dispatch through (:mod:`repro.kernels`) — the fourth
            parity axis.  ``"jit"`` resolves to the NumPy tier when
            numba is not installed; the dispatch counters record which
            tier actually ran.
    """

    family: str
    query: str
    topology: str
    n: int
    seed: int
    query_params: Params = ()
    topology_params: Params = ()
    domain_size: int = 16
    semiring: str = "boolean"
    backend: Optional[str] = None
    assignment: str = "round-robin"
    max_rounds: int = 2_000_000
    engine: str = "generator"
    solver: str = "operator"
    kernels: str = "numpy"

    def __post_init__(self) -> None:
        object.__setattr__(self, "query_params", _freeze_params(self.query_params))
        object.__setattr__(
            self, "topology_params", _freeze_params(self.topology_params)
        )
        if self.seed is None or not isinstance(self.seed, int):
            raise ValueError(
                "ScenarioSpec.seed must be an explicit int; seed=None would "
                "make the scenario irreproducible"
            )
        if self.n < 1:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.domain_size < 1:
            raise ValueError(f"domain_size must be positive, got {self.domain_size}")
        if self.semiring not in BUILTIN_SEMIRINGS:
            known = ", ".join(sorted(BUILTIN_SEMIRINGS))
            raise ValueError(f"unknown semiring {self.semiring!r}; known: {known}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; known: {BACKENDS}")
        if self.assignment not in ASSIGNMENTS:
            raise ValueError(
                f"unknown assignment policy {self.assignment!r}; known: {ASSIGNMENTS}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; known: {ENGINES}"
            )
        if self.solver not in SOLVERS:
            raise ValueError(
                f"unknown solver {self.solver!r}; known: {SOLVERS}"
            )
        if self.kernels not in KERNEL_TIERS:
            raise ValueError(
                f"unknown kernel tier {self.kernels!r}; known: {KERNEL_TIERS}"
            )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """A canonical, JSON-round-trippable view of the spec."""
        return {
            "version": SPEC_VERSION,
            "family": self.family,
            "query": self.query,
            "query_params": [list(kv) for kv in self.query_params],
            "topology": self.topology,
            "topology_params": [list(kv) for kv in self.topology_params],
            "n": self.n,
            "domain_size": self.domain_size,
            "semiring": self.semiring,
            "backend": self.backend,
            "assignment": self.assignment,
            "seed": self.seed,
            "max_rounds": self.max_rounds,
            "engine": self.engine,
            "solver": self.solver,
            "kernels": self.kernels,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_json_dict` (ignores the version stamp)."""
        return cls(
            family=data["family"],
            query=data["query"],
            query_params=tuple((k, v) for k, v in data.get("query_params", ())),
            topology=data["topology"],
            topology_params=tuple(
                (k, v) for k, v in data.get("topology_params", ())
            ),
            n=data["n"],
            domain_size=data.get("domain_size", 16),
            semiring=data.get("semiring", "boolean"),
            backend=data.get("backend"),
            assignment=data.get("assignment", "round-robin"),
            seed=data["seed"],
            max_rounds=data.get("max_rounds", 2_000_000),
            engine=data.get("engine", "generator"),
            solver=data.get("solver", "operator"),
            kernels=data.get("kernels", "numpy"),
        )

    def content_hash(self) -> str:
        """A stable sha256 content address for this scenario.

        Hashes the canonical JSON form (sorted keys, version-stamped), so
        equal specs share cache entries across processes, machines and
        parameter-construction orders.
        """
        canon = json.dumps(self.to_json_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def param(self, name: str, default: Any = None) -> Any:
        """Look up a query param by name."""
        for key, value in self.query_params:
            if key == name:
                return value
        return default

    def topo_param(self, name: str, default: Any = None) -> Any:
        """Look up a topology param by name."""
        for key, value in self.topology_params:
            if key == name:
                return value
        return default

    @property
    def label(self) -> str:
        """A compact human-readable scenario id (not the cache key)."""
        qp = ",".join(f"{k}={v}" for k, v in self.query_params)
        tp = ",".join(f"{k}={v}" for k, v in self.topology_params)
        backend = self.backend or "native"
        return (
            f"{self.family}:{self.query}({qp})@{self.topology}({tp})"
            f"/N={self.n}/{self.semiring}/{backend}/{self.assignment}"
            f"/{self.engine}/{self.solver}/{self.kernels}/s{self.seed}"
        )

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """A modified copy (dataclasses.replace with param re-freezing)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class SuiteSpec:
    """A named, ordered scenario collection.

    Order matters: reports and artifacts list scenarios in suite order, so
    a suite renders identically no matter which processes ran which
    scenario.
    """

    name: str
    scenarios: Tuple[ScenarioSpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.name:
            raise ValueError("a suite needs a non-empty name")
        if not self.scenarios:
            raise ValueError(f"suite {self.name!r} has no scenarios")

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    @property
    def families(self) -> Tuple[str, ...]:
        """Distinct scenario families, in first-appearance order."""
        seen = dict.fromkeys(s.family for s in self.scenarios)
        return tuple(seen)

    def merged_with(self, other: "SuiteSpec", name: Optional[str] = None) -> "SuiteSpec":
        """Concatenate two suites (deduplicating identical scenarios)."""
        seen = dict.fromkeys(self.scenarios + other.scenarios)
        return SuiteSpec(
            name=name or f"{self.name}+{other.name}",
            scenarios=tuple(seen),
            description=self.description,
        )


def expand_grid(
    base: Mapping[str, Any], **axes: Sequence[Any]
) -> Tuple[ScenarioSpec, ...]:
    """Cartesian sweep: one :class:`ScenarioSpec` per combination.

    ``base`` supplies the fixed fields; each keyword is a spec field name
    mapped to the values it sweeps over.  Axis order follows keyword
    order, and the rightmost axis varies fastest — the order is
    deterministic, so suites built from grids are reproducible.

    Example::

        expand_grid(
            dict(family="bcq-degenerate", query="degenerate",
                 topology="clique", topology_params={"n": 4},
                 domain_size=64, seed=7),
            query_params=[{"vertices": 6, "d": d} for d in (1, 2, 3)],
            n=[64, 128],
        )
    """
    names = list(axes)
    value_lists = [list(axes[name]) for name in names]
    for name, values in zip(names, value_lists):
        if not values:
            raise ValueError(f"grid axis {name!r} is empty")
    specs = []
    for combo in itertools.product(*value_lists):
        kwargs = dict(base)
        kwargs.update(zip(names, combo))
        specs.append(ScenarioSpec(**kwargs))
    return tuple(specs)
