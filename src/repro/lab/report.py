"""Rendering and artifacts: Table-1-style tables, markdown/CSV, BENCH JSON.

The scenario table reuses :func:`repro.core.analysis.format_table`
verbatim — the lab's results *are* Table 1 rows, just persisted.  The
artifact (:data:`ARTIFACT_FILENAME`, ``BENCH_lab.json``) contains only
the deterministic payload (scenario records in suite order + family
aggregates), serialized with sorted keys — which is what makes a
parallel run byte-identical to a serial one, and lets later PRs diff two
artifacts for perf/correctness regressions.  Volatile numbers (wall
times, cache hit rates) go to stdout, never into the artifact.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Any, Dict, List, Optional, Sequence

from ..core.analysis import format_table
from ..costmodel.model import COST_METRIC_NAMES
from ..obs.counters import DETERMINISTIC_COUNTERS
from .results import FamilyAggregate, ScenarioResult, aggregate
from .runner import SuiteRun, materialization_timings

#: The bench artifact the CI job uploads.
ARTIFACT_FILENAME = "BENCH_lab.json"

#: Artifact schema id; bump on breaking payload changes.
#: v2: scenario records carry bound-certification fields and the payload
#: gains a top-level ``certification`` block.
#: v3: scenario records carry ``cost_model`` blocks and the payload
#: gains a top-level ``cost_model`` block (symbolic cost-plane oracle).
#: v4: scenario records carry ``observability`` counter blocks and the
#: payload gains a top-level ``observability`` block (deterministic
#: kernel / engine / dictionary-pool counter aggregation).
#: v5: specs carry the ``kernels`` axis (numpy/jit hot-kernel tier), the
#: counter whitelist grows the kernel/batch dispatch tags, and the
#: payload gains a top-level ``throughput`` block (scenarios/sec for the
#: per-scenario and batched execution paths).
ARTIFACT_SCHEMA = "repro.lab/bench.v5"


def format_results_table(results: Sequence[ScenarioResult]) -> str:
    """The paper's Table 1 layout over lab results."""
    return format_table([r.to_table1_row() for r in results])


def format_aggregate_table(aggregates: Sequence[FamilyAggregate]) -> str:
    """Per-family summary block (median/p90/max rounds and gap)."""
    header = (
        f"{'family':<18} {'runs':>4} {'ok':>4} {'rounds p50':>10} "
        f"{'p90':>10} {'max':>10} {'gap p50':>8} {'p90':>8} {'max':>8}"
    )
    lines = [header, "-" * len(header)]
    for agg in aggregates:
        gap_fmt = lambda g: f"{g:>8.2f}" if g is not None else f"{'-':>8}"
        lines.append(
            f"{agg.family:<18} {agg.scenarios:>4} {agg.correct:>4} "
            f"{agg.rounds_median:>10.1f} {agg.rounds_p90:>10.1f} "
            f"{agg.rounds_max:>10} {gap_fmt(agg.gap_median)} "
            f"{gap_fmt(agg.gap_p90)} {gap_fmt(agg.gap_max)}"
        )
    return "\n".join(lines)


def render_markdown(
    run: SuiteRun, records: Optional[List[Dict[str, Any]]] = None
) -> str:
    """A self-contained markdown report for a suite run.

    Pass precomputed deterministic ``records`` (suite order) to reuse
    them; otherwise they are derived here.
    """
    aggregates = aggregate(run.results)
    lines = [
        f"# repro.lab suite `{run.suite.name}`",
        "",
        f"{len(run.results)} scenarios across {len(run.suite.families)} "
        f"families; {run.cache_hits} cached, {run.executed} executed "
        f"on {run.jobs} job(s) in {run.wall_time:.2f}s.",
        "",
        "| scenario | topology | engine | solver | N | rounds | bits "
        "| upper | lower | gap | budget | ok |",
        "|---|---|---|---|---:|---:|---:|---:|---:|---:|---:|:-:|",
    ]
    for r in run.results:
        gap = f"{r.gap:.2f}" if r.gap is not None else "-"
        lines.append(
            f"| `{r.query_name}` | {r.topology_name} | {r.spec.engine} "
            f"| {r.spec.solver} "
            f"| {r.rows} | {r.measured_rounds} | {r.total_bits} "
            f"| {r.upper_formula:.1f} "
            f"| {r.lower_formula:.1f} | {gap} | {r.gap_budget:.1f} "
            f"| {'ok' if r.correct else 'FAIL'} |"
        )
    lines += [
        "",
        "| family | runs | ok | rounds p50 | rounds p90 | rounds max "
        "| gap p50 | gap p90 | gap max |",
        "|---|---:|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for agg in aggregates:
        fmt = lambda g: f"{g:.2f}" if g is not None else "-"
        lines.append(
            f"| {agg.family} | {agg.scenarios} | {agg.correct} "
            f"| {agg.rounds_median:.1f} | {agg.rounds_p90:.1f} "
            f"| {agg.rounds_max} | {fmt(agg.gap_median)} "
            f"| {fmt(agg.gap_p90)} | {fmt(agg.gap_max)} |"
        )
    if records is None:
        records = [r.deterministic_record() for r in run.results]
    cert = certification_payload(records)
    lines += [
        "",
        "## Bound certification",
        "",
        f"{cert['scenarios_checked']} scenarios checked: "
        f"{cert['formula_certified']} against the TRIBES bits floor, "
        f"{cert['cut_checked']} against the cut-accounting bound; "
        f"{len(cert['bound_violations'])} violation(s).",
        "",
        "```",
        format_certification_table(records),
        "```",
    ]
    if cert["bound_violations"]:
        lines += ["", "### Violations", ""]
        lines += [f"- {v}" for v in cert["bound_violations"]]
    cost = cost_model_payload(records)
    lines += [
        "",
        "## Symbolic cost model",
        "",
        f"{cost['covered_runs']}/{cost['runs']} runs in covered cells; "
        f"{cost['exact_matches']} exact on all four metrics; "
        f"{len(cost['mismatches'])} mismatch(es); "
        f"{len(cost['uncovered_cells'])} uncovered cell(s).",
        "",
        "```",
        format_cost_table(records),
        "```",
    ]
    if cost["mismatches"]:
        lines += ["", "### Cost mismatches", ""]
        lines += [f"- {m}" for m in cost["mismatches"]]
    if cost["uncovered_cells"]:
        lines += ["", "### Uncovered cells", ""]
        lines += [f"- `{c}`" for c in cost["uncovered_cells"]]
    obs = observability_payload(records)
    lines += [
        "",
        "## Observability",
        "",
        f"{obs['instrumented_runs']}/{obs['runs']} runs carry "
        f"deterministic counter blocks.",
        "",
        "```",
        format_observability_table(records),
        "```",
    ]
    return "\n".join(lines) + "\n"


def render_csv(results: Sequence[ScenarioResult]) -> str:
    """Flat per-scenario CSV (one row per scenario, suite order)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        [
            "family", "query", "topology", "backend", "assignment",
            "engine", "solver", "kernels", "semiring", "n", "seed",
            "players", "d",
            "r", "rows", "measured_rounds", "total_bits",
            "link_utilization", "upper_formula", "lower_formula",
            "gap", "gap_budget", "lower_certified", "formula_certified",
            "tribes_bits_floor", "bound_ok", "cut_bits", "cut_size",
            "correct", "cost_covered", "cost_exact",
            *[name.replace(".", "_") for name in DETERMINISTIC_COUNTERS],
            "spec_hash",
        ]
    )
    for r in results:
        cost = r.cost_model or {}
        covered = bool(cost.get("covered"))
        exact = cost.get("exact_match")
        obs = r.observability or {}
        writer.writerow(
            [
                r.spec.family, r.query_name, r.topology_name,
                r.spec.backend or "native", r.spec.assignment,
                r.spec.engine, r.spec.solver, r.spec.kernels,
                r.spec.semiring, r.spec.n,
                r.spec.seed, r.players, r.d, r.r, r.rows,
                r.measured_rounds, r.total_bits, r.link_utilization,
                r.upper_formula, r.lower_formula,
                "" if r.gap is None else r.gap,
                r.gap_budget, r.lower_certified,
                int(r.formula_certified), r.tribes_bits_floor,
                int(r.bound_ok), r.cut_bits, r.cut_size,
                int(r.correct), int(covered),
                "" if exact is None else int(exact),
                *[int(obs.get(name, 0)) for name in DETERMINISTIC_COUNTERS],
                r.spec_hash,
            ]
        )
    return buf.getvalue()


#: Per-axis default value for records predating the axis.  ``backend``
#: is an axis too (``None`` = the query's native storage).
_AXIS_DEFAULTS = {
    "engine": "generator",
    "solver": "operator",
    "backend": None,
    "kernels": "numpy",
}


def _pair_key(spec_record: Dict[str, Any], axis: str = "engine") -> str:
    """A scenario's identity with one comparison axis erased."""
    stripped = {k: v for k, v in spec_record.items() if k != axis}
    return json.dumps(stripped, sort_keys=True, separators=(",", ":"))


def axis_pairs(
    records: Sequence[Dict[str, Any]], axis: str
) -> List[Dict[str, Dict[str, Any]]]:
    """Group scenario records that differ only in ``spec.<axis>``.

    Returns one ``{axis_value: record}`` dict per scenario identity that
    was run on more than one value of the axis (suite order of first
    appearance).  ``axis`` is ``"engine"`` or ``"solver"``.
    """
    default = _AXIS_DEFAULTS.get(axis)
    groups: Dict[str, Dict[str, Dict[str, Any]]] = {}
    order: List[str] = []
    for record in records:
        key = _pair_key(record["spec"], axis)
        if key not in groups:
            groups[key] = {}
            order.append(key)
        groups[key][record["spec"].get(axis, default)] = record
    return [groups[key] for key in order if len(groups[key]) > 1]


def engine_pairs(
    records: Sequence[Dict[str, Any]],
) -> List[Dict[str, Dict[str, Any]]]:
    """Records paired across the protocol-engine axis."""
    return axis_pairs(records, "engine")


def solver_pairs(
    records: Sequence[Dict[str, Any]],
) -> List[Dict[str, Dict[str, Any]]]:
    """Records paired across the FAQ-solver axis."""
    return axis_pairs(records, "solver")


def backend_pairs(
    records: Sequence[Dict[str, Any]],
) -> List[Dict[str, Dict[str, Any]]]:
    """Records paired across the storage-backend axis."""
    return axis_pairs(records, "backend")


def kernels_pairs(
    records: Sequence[Dict[str, Any]],
) -> List[Dict[str, Dict[str, Any]]]:
    """Records paired across the kernel-tier axis."""
    return axis_pairs(records, "kernels")


#: The four differential axes every fuzzed scenario is swept across.
PARITY_AXES = ("engine", "solver", "backend", "kernels")


def all_parity_failures(records: Sequence[Dict[str, Any]]) -> List[str]:
    """Parity violations across every axis in :data:`PARITY_AXES`."""
    failures: List[str] = []
    for axis in PARITY_AXES:
        failures.extend(
            f"[{axis}] {message}"
            for message in parity_failures(records, axis)
        )
    return failures


def bound_violations(records: Sequence[Dict[str, Any]]) -> List[str]:
    """Lower-bound certification violations among scenario records.

    A record violates when its certification oracle failed
    (``bound_ok`` False): the Lemma 4.4 cut accounting identity broke
    (``cut_ok`` False — equivalently the run undercut its certified
    round lower bound), or a TRIBES-embedded worst-case run pushed
    fewer bits across the min cut than the embedded instance's content
    (``cut_bits < tribes_bits_floor``).  The list must be empty on
    every suite; any entry is a bug in a bound formula, an engine's
    round/bit accounting, or the simulator.
    """
    violations: List[str] = []
    for record in records:
        if record.get("bound_ok", True):
            continue
        if not record.get("cut_ok", True):
            reason = (
                f"cut accounting broke: {record.get('cut_bits')} bits "
                f"crossed a cut of {record.get('cut_size')} edges in "
                f"{record['measured_rounds']} rounds"
            )
        elif record.get("cut_bits", 0) < record.get("tribes_bits_floor", 0):
            reason = (
                f"only {record.get('cut_bits')} bits crossed the cut < "
                f"TRIBES floor {record.get('tribes_bits_floor')}"
            )
        else:
            # Fallback for tampered/inconsistent records: flagged but
            # neither conjunct reproduces from the recorded numbers.
            reason = (
                f"flagged bound_ok=False (measured "
                f"{record['measured_rounds']} rounds, certified lower "
                f"{record.get('lower_certified')})"
            )
        violations.append(f"{record['label']}: {reason}")
    return violations


def certification_payload(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The certification block of the bench artifact.

    Deterministic (pure function of the scenario records): how many
    scenarios each oracle covered, the violation list (must be empty),
    and the per-family gap envelope of the formula-certified scenarios.
    """
    violations = bound_violations(records)
    formula = [r for r in records if r.get("formula_certified", False)]
    families: Dict[str, Dict[str, Any]] = {}
    for record in formula:
        fam = families.setdefault(
            record["family"],
            {"scenarios": 0, "gap_min": None, "gap_max": None},
        )
        fam["scenarios"] += 1
        gap = record.get("gap")
        if gap is not None:
            fam["gap_min"] = gap if fam["gap_min"] is None else min(fam["gap_min"], gap)
            fam["gap_max"] = gap if fam["gap_max"] is None else max(fam["gap_max"], gap)
    return {
        "scenarios_checked": len(records),
        "formula_certified": len(formula),
        "cut_checked": sum(1 for r in records if r.get("cut_size", 0) > 0),
        "bound_violations": violations,
        "formula_families": families,
    }


def format_certification_table(records: Sequence[Dict[str, Any]]) -> str:
    """The human-readable certification summary block.

    One row per family: scenario count, how many were formula-certified
    vs cut-certified, the tightest margin (measured rounds over the
    certified lower bound), and the violation count.
    """
    by_family: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        by_family.setdefault(record["family"], []).append(record)
    header = (
        f"{'family':<18} {'runs':>4} {'formula':>7} {'cut':>5} "
        f"{'margin':>8} {'violations':>10}"
    )
    lines = [header, "-" * len(header)]
    for family, group in by_family.items():
        margins = [
            record["measured_rounds"] - record.get("lower_certified", 0.0)
            for record in group
        ]
        lines.append(
            f"{family:<18} {len(group):>4} "
            f"{sum(1 for r in group if r.get('formula_certified', False)):>7} "
            f"{sum(1 for r in group if r.get('cut_size', 0) > 0):>5} "
            f"{min(margins):>8.1f} "
            f"{sum(1 for r in group if not r.get('bound_ok', True)):>10}"
        )
    return "\n".join(lines)


#: The four metrics the cost model must predict exactly per covered run.
COST_METRICS = COST_METRIC_NAMES


def cost_mismatches(records: Sequence[Dict[str, Any]]) -> List[str]:
    """Cost-plane oracle violations among scenario records.

    A record violates when its coverage cell is claimed by
    :data:`repro.costmodel.COVERED_CELLS` but the symbolic prediction
    disagreed with the measured run on any of the four metrics
    (``exact_match`` False).  Uncovered cells never appear here — they
    are reported by :func:`cost_model_payload`, not gated.  The list
    must be empty on every suite; any entry means either a cost formula
    is wrong or an engine's accounting drifted.
    """
    failures: List[str] = []
    for record in records:
        block = record.get("cost_model")
        if not block or not block.get("covered"):
            continue
        if block.get("exact_match"):
            continue
        predicted = block.get("predicted")
        measured = block.get("measured", {})
        if predicted is None:
            detail = block.get("error", "prediction failed")
        else:
            diffs = [
                f"{metric} predicted={predicted.get(metric)!r} "
                f"measured={measured.get(metric)!r}"
                for metric in COST_METRICS
                if predicted.get(metric) != measured.get(metric)
            ]
            detail = "; ".join(diffs) or "metrics differ"
        failures.append(f"{record['label']}: {detail}")
    return failures


def cost_model_payload(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The cost-model block of the bench artifact.

    Deterministic (pure function of the scenario records): run/coverage
    counts, the exact-match tally, the mismatch list (must be empty),
    and the sorted unique covered/uncovered cell lists — uncovered
    cells are enumerated explicitly, never silently dropped.
    """
    blocks = [r.get("cost_model") for r in records]
    blocks = [b for b in blocks if b]
    covered = [b for b in blocks if b.get("covered")]
    covered_cells = sorted({"/".join(b["cell"]) for b in covered})
    uncovered_cells = sorted(
        {"/".join(b["cell"]) for b in blocks if not b.get("covered")}
    )
    return {
        "runs": len(records),
        "priced_runs": len(blocks),
        "covered_runs": len(covered),
        "exact_matches": sum(1 for b in covered if b.get("exact_match")),
        "mismatches": cost_mismatches(records),
        "covered_cells": covered_cells,
        "uncovered_cells": uncovered_cells,
    }


def format_cost_table(records: Sequence[Dict[str, Any]]) -> str:
    """The human-readable cost-model summary block.

    One row per family: run count, how many runs the model covered, how
    many matched exactly on all four metrics, and the mismatch count.
    """
    by_family: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        by_family.setdefault(record["family"], []).append(record)
    header = (
        f"{'family':<18} {'runs':>4} {'covered':>7} {'exact':>5} "
        f"{'mismatch':>8}"
    )
    lines = [header, "-" * len(header)]
    for family, group in by_family.items():
        blocks = [r.get("cost_model") or {} for r in group]
        covered = [b for b in blocks if b.get("covered")]
        lines.append(
            f"{family:<18} {len(group):>4} {len(covered):>7} "
            f"{sum(1 for b in covered if b.get('exact_match')):>5} "
            f"{sum(1 for b in covered if not b.get('exact_match')):>8}"
        )
    return "\n".join(lines)


def observability_payload(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The observability block of the bench artifact.

    Deterministic (pure function of the scenario records): for each
    whitelisted counter (:data:`~repro.obs.counters
    .DETERMINISTIC_COUNTERS`) the total across all scenarios and the
    number of scenarios where it fired at all.  Volatile counters
    (plan-cache hit/miss) never appear — they depend on process warmth,
    which would break the serial-vs-parallel byte-identity guarantee.
    """
    blocks = [r.get("observability") for r in records]
    blocks = [b for b in blocks if b is not None]
    counters: Dict[str, Dict[str, int]] = {}
    for name in DETERMINISTIC_COUNTERS:
        values = [int(b.get(name, 0)) for b in blocks]
        counters[name] = {
            "total": sum(values),
            "scenarios": sum(1 for v in values if v),
        }
    return {
        "runs": len(records),
        "instrumented_runs": len(blocks),
        "counters": counters,
    }


def format_observability_table(records: Sequence[Dict[str, Any]]) -> str:
    """The human-readable counter-catalog summary block.

    One row per deterministic counter: the total across the suite and
    how many scenarios incremented it at least once.
    """
    payload = observability_payload(records)
    header = f"{'counter':<28} {'total':>10} {'scenarios':>9}"
    lines = [header, "-" * len(header)]
    for name in DETERMINISTIC_COUNTERS:
        entry = payload["counters"][name]
        lines.append(
            f"{name:<28} {entry['total']:>10} {entry['scenarios']:>9}"
        )
    return "\n".join(lines)


def parity_failures(
    records: Sequence[Dict[str, Any]], axis: str = "engine"
) -> List[str]:
    """Parity violations among scenario records along one axis.

    For every pair differing only in ``spec.<axis>`` (protocol engine,
    FAQ solver or storage backend), the answer digest, round count and
    total bits must be exactly equal; any difference is a correctness
    bug on one side, never a tolerable deviation.
    """
    failures: List[str] = []
    for pair in axis_pairs(records, axis):
        # The backend axis includes None ("native"); sort it first.
        values = sorted(pair, key=lambda v: (v is not None, v or ""))
        baseline_value = values[0]
        baseline = pair[baseline_value]
        for value in values[1:]:
            other = pair[value]
            for field in ("answer_digest", "measured_rounds", "total_bits"):
                if baseline[field] != other[field]:
                    failures.append(
                        f"{other['label']}: {field} {other[field]!r} != "
                        f"{baseline_value}'s {baseline[field]!r}"
                    )
    return failures


def timings_payload(run: SuiteRun) -> Dict[str, Any]:
    """Wall-clock measurements for a suite run (volatile by nature).

    Never part of the deterministic artifact payload; included only on
    request (``--timings``) under a separate key.  Pairs divide the wall
    time of exactly the part their axis changes: engine pairs compare
    *protocol* wall times, solver pairs compare *reference-solve* wall
    times (instance generation and the bound formulas are harness work
    common to both sides).
    """
    scenarios = [
        {
            "label": r.spec.label,
            "engine": r.spec.engine,
            "solver": r.spec.solver,
            "wall_time": r.wall_time,
            "protocol_wall_time": r.protocol_wall_time,
            "solver_wall_time": r.solver_wall_time,
            "cached": r.cached,
        }
        for r in run.results
    ]
    engine_pairs_, engine_headline = _axis_timing_pairs(
        run.results, "engine", "generator", "protocol", "protocol_wall_time"
    )
    solver_pairs_, solver_headline = _axis_timing_pairs(
        run.results, "solver", "operator", "solver", "solver_wall_time"
    )
    return {
        "scenarios": scenarios,
        "engine_pairs": engine_pairs_,
        "headline": engine_headline,
        "solver_pairs": solver_pairs_,
        "solver_headline": solver_headline,
        # What the plane-shared materialization memo avoided rebuilding
        # (and re-pickling to workers): hits/misses plus estimated
        # seconds saved at the mean observed build time.
        "materialization": materialization_timings(),
    }


def _axis_timing_pairs(
    results: Sequence[ScenarioResult],
    axis: str,
    baseline: str,
    metric: str,
    time_attr: str,
):
    """Per-pair wall-time ratios along one axis, plus the max-rows headline.

    Pairs a ``baseline`` result with its ``"compiled"`` twin (the fast
    side of both axes), reading ``time_attr`` — the wall time of exactly
    the part the axis changes.  Keys follow the axis vocabulary:
    ``{baseline}_{metric}_s`` / ``compiled_{metric}_s`` /
    ``{metric}_speedup`` plus whole-scenario times.
    """
    by_key: Dict[str, Dict[str, ScenarioResult]] = {}
    for r in results:
        key = _pair_key(r.spec.to_json_dict(), axis)
        by_key.setdefault(key, {})[getattr(r.spec, axis)] = r
    pairs = []
    for group in by_key.values():
        base = group.get(baseline)
        comp = group.get("compiled")
        if base is None or comp is None or base.cached or comp.cached:
            continue
        base_t = getattr(base, time_attr)
        comp_t = getattr(comp, time_attr)
        pairs.append(
            {
                "label": comp.spec.with_(**{axis: baseline}).label,
                "rows": comp.rows,
                f"{baseline}_{metric}_s": base_t,
                f"compiled_{metric}_s": comp_t,
                f"{metric}_speedup": base_t / comp_t if comp_t > 0 else None,
                f"{baseline}_scenario_s": base.wall_time,
                "compiled_scenario_s": comp.wall_time,
            }
        )
    headline = None
    if pairs:
        largest = max(pairs, key=lambda p: p["rows"])
        headline = {
            "largest_scenario": largest["label"],
            "rows": largest["rows"],
            f"{metric}_speedup": largest[f"{metric}_speedup"],
        }
    return pairs, headline


def artifact_payload(run: SuiteRun, timings: bool = False) -> Dict[str, Any]:
    """The BENCH payload for a suite run.

    The default payload contains only reproducible data: identical for
    serial and parallel runs, for fresh and fully-cached runs.  With
    ``timings=True`` a volatile ``"timings"`` key is added (and the
    byte-for-byte reproducibility guarantee no longer applies to it).
    """
    aggregates = aggregate(run.results)
    records = [r.deterministic_record() for r in run.results]
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "suite": run.suite.name,
        "description": run.suite.description,
        "families": list(run.suite.families),
        "scenario_count": len(run.results),
        "all_correct": run.all_correct,
        "scenarios": records,
        "aggregates": [a.to_record() for a in aggregates],
        "certification": certification_payload(records),
        "cost_model": cost_model_payload(records),
        "observability": observability_payload(records),
    }
    if run.batch is not None:
        # Volatile like ``timings`` (wall-clock rates), but written by
        # every ``--batch`` run: the throughput-regression CI job diffs
        # ``scenarios_per_sec`` against the committed artifact.
        payload["throughput"] = dict(run.batch)
    if timings:
        payload["timings"] = timings_payload(run)
    return payload


def artifact_bytes(
    run: SuiteRun, timings: bool = False, payload: Optional[Dict[str, Any]] = None
) -> bytes:
    """Canonical serialization (sorted keys, fixed separators, UTF-8).

    Pass a precomputed ``payload`` (from :func:`artifact_payload`) to
    serialize it as-is — the CLI does this so records and certification
    are computed exactly once per run.
    """
    if payload is None:
        payload = artifact_payload(run, timings=timings)
    text = json.dumps(payload, sort_keys=True, indent=2, allow_nan=False)
    return (text + "\n").encode("utf-8")


def write_artifact(
    run: SuiteRun,
    out_dir: str,
    timings: bool = False,
    payload: Optional[Dict[str, Any]] = None,
) -> str:
    """Write ``BENCH_lab.json`` under ``out_dir``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, ARTIFACT_FILENAME)
    with open(path, "wb") as fh:
        fh.write(artifact_bytes(run, timings=timings, payload=payload))
    return path
