"""Rendering and artifacts: Table-1-style tables, markdown/CSV, BENCH JSON.

The scenario table reuses :func:`repro.core.analysis.format_table`
verbatim — the lab's results *are* Table 1 rows, just persisted.  The
artifact (:data:`ARTIFACT_FILENAME`, ``BENCH_lab.json``) contains only
the deterministic payload (scenario records in suite order + family
aggregates), serialized with sorted keys — which is what makes a
parallel run byte-identical to a serial one, and lets later PRs diff two
artifacts for perf/correctness regressions.  Volatile numbers (wall
times, cache hit rates) go to stdout, never into the artifact.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Any, Dict, List, Sequence

from ..core.analysis import format_table
from .results import FamilyAggregate, ScenarioResult, aggregate
from .runner import SuiteRun

#: The bench artifact the CI job uploads.
ARTIFACT_FILENAME = "BENCH_lab.json"

#: Artifact schema id; bump on breaking payload changes.
ARTIFACT_SCHEMA = "repro.lab/bench.v1"


def format_results_table(results: Sequence[ScenarioResult]) -> str:
    """The paper's Table 1 layout over lab results."""
    return format_table([r.to_table1_row() for r in results])


def format_aggregate_table(aggregates: Sequence[FamilyAggregate]) -> str:
    """Per-family summary block (median/p90/max rounds and gap)."""
    header = (
        f"{'family':<18} {'runs':>4} {'ok':>4} {'rounds p50':>10} "
        f"{'p90':>10} {'max':>10} {'gap p50':>8} {'p90':>8} {'max':>8}"
    )
    lines = [header, "-" * len(header)]
    for agg in aggregates:
        gap_fmt = lambda g: f"{g:>8.2f}" if g is not None else f"{'-':>8}"
        lines.append(
            f"{agg.family:<18} {agg.scenarios:>4} {agg.correct:>4} "
            f"{agg.rounds_median:>10.1f} {agg.rounds_p90:>10.1f} "
            f"{agg.rounds_max:>10} {gap_fmt(agg.gap_median)} "
            f"{gap_fmt(agg.gap_p90)} {gap_fmt(agg.gap_max)}"
        )
    return "\n".join(lines)


def render_markdown(run: SuiteRun) -> str:
    """A self-contained markdown report for a suite run."""
    aggregates = aggregate(run.results)
    lines = [
        f"# repro.lab suite `{run.suite.name}`",
        "",
        f"{len(run.results)} scenarios across {len(run.suite.families)} "
        f"families; {run.cache_hits} cached, {run.executed} executed "
        f"on {run.jobs} job(s) in {run.wall_time:.2f}s.",
        "",
        "| scenario | topology | engine | solver | N | rounds | bits "
        "| upper | lower | gap | budget | ok |",
        "|---|---|---|---|---:|---:|---:|---:|---:|---:|---:|:-:|",
    ]
    for r in run.results:
        gap = f"{r.gap:.2f}" if r.gap is not None else "-"
        lines.append(
            f"| `{r.query_name}` | {r.topology_name} | {r.spec.engine} "
            f"| {r.spec.solver} "
            f"| {r.rows} | {r.measured_rounds} | {r.total_bits} "
            f"| {r.upper_formula:.1f} "
            f"| {r.lower_formula:.1f} | {gap} | {r.gap_budget:.1f} "
            f"| {'ok' if r.correct else 'FAIL'} |"
        )
    lines += [
        "",
        "| family | runs | ok | rounds p50 | rounds p90 | rounds max "
        "| gap p50 | gap p90 | gap max |",
        "|---|---:|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for agg in aggregates:
        fmt = lambda g: f"{g:.2f}" if g is not None else "-"
        lines.append(
            f"| {agg.family} | {agg.scenarios} | {agg.correct} "
            f"| {agg.rounds_median:.1f} | {agg.rounds_p90:.1f} "
            f"| {agg.rounds_max} | {fmt(agg.gap_median)} "
            f"| {fmt(agg.gap_p90)} | {fmt(agg.gap_max)} |"
        )
    return "\n".join(lines) + "\n"


def render_csv(results: Sequence[ScenarioResult]) -> str:
    """Flat per-scenario CSV (one row per scenario, suite order)."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        [
            "family", "query", "topology", "backend", "assignment",
            "engine", "solver", "semiring", "n", "seed", "players", "d",
            "r", "rows", "measured_rounds", "total_bits",
            "link_utilization", "upper_formula", "lower_formula",
            "gap", "gap_budget", "correct", "spec_hash",
        ]
    )
    for r in results:
        writer.writerow(
            [
                r.spec.family, r.query_name, r.topology_name,
                r.spec.backend or "native", r.spec.assignment,
                r.spec.engine, r.spec.solver, r.spec.semiring, r.spec.n,
                r.spec.seed, r.players, r.d, r.r, r.rows,
                r.measured_rounds, r.total_bits, r.link_utilization,
                r.upper_formula, r.lower_formula,
                "" if r.gap is None else r.gap,
                r.gap_budget, int(r.correct), r.spec_hash,
            ]
        )
    return buf.getvalue()


#: Per-axis default value for records predating the axis.
_AXIS_DEFAULTS = {"engine": "generator", "solver": "operator"}


def _pair_key(spec_record: Dict[str, Any], axis: str = "engine") -> str:
    """A scenario's identity with one comparison axis erased."""
    stripped = {k: v for k, v in spec_record.items() if k != axis}
    return json.dumps(stripped, sort_keys=True, separators=(",", ":"))


def axis_pairs(
    records: Sequence[Dict[str, Any]], axis: str
) -> List[Dict[str, Dict[str, Any]]]:
    """Group scenario records that differ only in ``spec.<axis>``.

    Returns one ``{axis_value: record}`` dict per scenario identity that
    was run on more than one value of the axis (suite order of first
    appearance).  ``axis`` is ``"engine"`` or ``"solver"``.
    """
    default = _AXIS_DEFAULTS.get(axis)
    groups: Dict[str, Dict[str, Dict[str, Any]]] = {}
    order: List[str] = []
    for record in records:
        key = _pair_key(record["spec"], axis)
        if key not in groups:
            groups[key] = {}
            order.append(key)
        groups[key][record["spec"].get(axis, default)] = record
    return [groups[key] for key in order if len(groups[key]) > 1]


def engine_pairs(
    records: Sequence[Dict[str, Any]],
) -> List[Dict[str, Dict[str, Any]]]:
    """Records paired across the protocol-engine axis."""
    return axis_pairs(records, "engine")


def solver_pairs(
    records: Sequence[Dict[str, Any]],
) -> List[Dict[str, Dict[str, Any]]]:
    """Records paired across the FAQ-solver axis."""
    return axis_pairs(records, "solver")


def parity_failures(
    records: Sequence[Dict[str, Any]], axis: str = "engine"
) -> List[str]:
    """Parity violations among scenario records along one axis.

    For every pair differing only in ``spec.<axis>`` (protocol engine or
    FAQ solver), the answer digest, round count and total bits must be
    exactly equal; any difference is a correctness bug on one side,
    never a tolerable deviation.
    """
    failures: List[str] = []
    for pair in axis_pairs(records, axis):
        values = sorted(pair)
        baseline_value = values[0]
        baseline = pair[baseline_value]
        for value in values[1:]:
            other = pair[value]
            for field in ("answer_digest", "measured_rounds", "total_bits"):
                if baseline[field] != other[field]:
                    failures.append(
                        f"{other['label']}: {field} {other[field]!r} != "
                        f"{baseline_value}'s {baseline[field]!r}"
                    )
    return failures


def timings_payload(run: SuiteRun) -> Dict[str, Any]:
    """Wall-clock measurements for a suite run (volatile by nature).

    Never part of the deterministic artifact payload; included only on
    request (``--timings``) under a separate key.  Pairs divide the wall
    time of exactly the part their axis changes: engine pairs compare
    *protocol* wall times, solver pairs compare *reference-solve* wall
    times (instance generation and the bound formulas are harness work
    common to both sides).
    """
    scenarios = [
        {
            "label": r.spec.label,
            "engine": r.spec.engine,
            "solver": r.spec.solver,
            "wall_time": r.wall_time,
            "protocol_wall_time": r.protocol_wall_time,
            "solver_wall_time": r.solver_wall_time,
            "cached": r.cached,
        }
        for r in run.results
    ]
    engine_pairs_, engine_headline = _axis_timing_pairs(
        run.results, "engine", "generator", "protocol", "protocol_wall_time"
    )
    solver_pairs_, solver_headline = _axis_timing_pairs(
        run.results, "solver", "operator", "solver", "solver_wall_time"
    )
    return {
        "scenarios": scenarios,
        "engine_pairs": engine_pairs_,
        "headline": engine_headline,
        "solver_pairs": solver_pairs_,
        "solver_headline": solver_headline,
    }


def _axis_timing_pairs(
    results: Sequence[ScenarioResult],
    axis: str,
    baseline: str,
    metric: str,
    time_attr: str,
):
    """Per-pair wall-time ratios along one axis, plus the max-rows headline.

    Pairs a ``baseline`` result with its ``"compiled"`` twin (the fast
    side of both axes), reading ``time_attr`` — the wall time of exactly
    the part the axis changes.  Keys follow the axis vocabulary:
    ``{baseline}_{metric}_s`` / ``compiled_{metric}_s`` /
    ``{metric}_speedup`` plus whole-scenario times.
    """
    by_key: Dict[str, Dict[str, ScenarioResult]] = {}
    for r in results:
        key = _pair_key(r.spec.to_json_dict(), axis)
        by_key.setdefault(key, {})[getattr(r.spec, axis)] = r
    pairs = []
    for group in by_key.values():
        base = group.get(baseline)
        comp = group.get("compiled")
        if base is None or comp is None or base.cached or comp.cached:
            continue
        base_t = getattr(base, time_attr)
        comp_t = getattr(comp, time_attr)
        pairs.append(
            {
                "label": comp.spec.with_(**{axis: baseline}).label,
                "rows": comp.rows,
                f"{baseline}_{metric}_s": base_t,
                f"compiled_{metric}_s": comp_t,
                f"{metric}_speedup": base_t / comp_t if comp_t > 0 else None,
                f"{baseline}_scenario_s": base.wall_time,
                "compiled_scenario_s": comp.wall_time,
            }
        )
    headline = None
    if pairs:
        largest = max(pairs, key=lambda p: p["rows"])
        headline = {
            "largest_scenario": largest["label"],
            "rows": largest["rows"],
            f"{metric}_speedup": largest[f"{metric}_speedup"],
        }
    return pairs, headline


def artifact_payload(run: SuiteRun, timings: bool = False) -> Dict[str, Any]:
    """The BENCH payload for a suite run.

    The default payload contains only reproducible data: identical for
    serial and parallel runs, for fresh and fully-cached runs.  With
    ``timings=True`` a volatile ``"timings"`` key is added (and the
    byte-for-byte reproducibility guarantee no longer applies to it).
    """
    aggregates = aggregate(run.results)
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "suite": run.suite.name,
        "description": run.suite.description,
        "families": list(run.suite.families),
        "scenario_count": len(run.results),
        "all_correct": run.all_correct,
        "scenarios": [r.deterministic_record() for r in run.results],
        "aggregates": [a.to_record() for a in aggregates],
    }
    if timings:
        payload["timings"] = timings_payload(run)
    return payload


def artifact_bytes(run: SuiteRun, timings: bool = False) -> bytes:
    """Canonical serialization (sorted keys, fixed separators, UTF-8)."""
    payload = artifact_payload(run, timings=timings)
    text = json.dumps(payload, sort_keys=True, indent=2, allow_nan=False)
    return (text + "\n").encode("utf-8")


def write_artifact(run: SuiteRun, out_dir: str, timings: bool = False) -> str:
    """Write ``BENCH_lab.json`` under ``out_dir``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, ARTIFACT_FILENAME)
    with open(path, "wb") as fh:
        fh.write(artifact_bytes(run, timings=timings))
    return path
