"""Seeded random scenario generation — the fuzzed scenario plane.

Turns the ROADMAP's "as many scenarios as you can imagine" into a
generator: one master seed deterministically produces a stream of valid
:class:`~repro.lab.spec.ScenarioSpec`s by sampling a query structure
(random trees, forests, d-degenerate graphs, bounded-arity acyclic
hypergraphs, and TRIBES-embedded hard instances over random forests), a
topology family (line/ring/clique/star/grid/tree/hypercube/expander/
random-regular/barbell), a semiring (the aggregate), sizes and an
assignment policy.

Every sampled scenario is a *certifiable* experiment:

* hard (TRIBES-embedded) scenarios under worst-case placement must
  satisfy the Theorem 4.1/5.2 formula lower bound;
* every multi-player scenario must satisfy the Lemma 4.4 cut-accounting
  bound (rounds >= crossing bits / (cut * B));

and :func:`fuzz_suite` expands each scenario across the full
engine x solver x backend x kernels differential grid, so one fuzz run
exercises all sixteen planes against the paper's bounds at once.

Determinism contract: all sampling goes through child seeds from
:func:`repro.workloads.spawn_seeds` — the same ``(master_seed, count)``
yields byte-identical suites in any process, and each scenario's own
``seed`` field makes its instance reproducible in isolation
(``python -m repro.lab run fuzz --seed <master>`` re-derives everything).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from ..workloads import spawn_seeds
from .spec import ScenarioSpec, SuiteSpec
from .suites import DEFAULT_SEED as DEFAULT_FUZZ_SEED

#: Semirings the fuzz plane samples (the "aggregate" axis).  All six are
#: supported by every engine/solver/backend plane with byte-identical
#: parity; GF2 is excluded because the columnar kernels fall back for it,
#: which would make the backend axis a no-op comparison.
FUZZ_SEMIRINGS: Tuple[str, ...] = (
    "boolean", "counting", "real", "min-plus", "max-plus", "max-times",
)

#: Relation-size and domain-size pools (kept small: a fuzz scenario must
#: run in milliseconds so hundreds of them sweep all sixteen planes fast).
FUZZ_SIZES: Tuple[int, ...] = (8, 16, 32, 48)
FUZZ_DOMAIN_SIZES: Tuple[int, ...] = (4, 8, 16)
FUZZ_HARD_SIZES: Tuple[int, ...] = (16, 32, 64)


def _sample_random_query(rng: random.Random) -> Tuple[str, Dict[str, int]]:
    """A random-instance query family plus structure parameters."""
    kind = rng.choice(("tree", "forest", "degenerate", "acyclic"))
    if kind == "tree":
        return kind, {"edges": rng.randint(2, 6)}
    if kind == "forest":
        return kind, {"trees": rng.randint(2, 3), "edges": rng.randint(1, 3)}
    if kind == "degenerate":
        return kind, {"vertices": rng.randint(4, 7), "d": rng.randint(1, 3)}
    return kind, {"edges": rng.randint(3, 5), "arity": rng.randint(2, 4)}


def _sample_hard_query(rng: random.Random) -> Tuple[str, Dict[str, int]]:
    """A TRIBES-embedded hard query family plus structure parameters."""
    kind = rng.choice(("hard-star", "hard-path", "hard-forest"))
    if kind == "hard-star":
        params: Dict[str, int] = {"arms": rng.randint(2, 6)}
    elif kind == "hard-path":
        params = {"length": rng.randint(2, 6)}
    else:
        # edges >= 2 per tree: each tree needs an internal vertex to
        # plant a TRIBES pair on.
        params = {"trees": rng.randint(1, 3), "edges": rng.randint(2, 4)}
    if rng.random() < 0.25:
        # Occasionally pin the TRIBES answer to 0 — the protocol must
        # report the negative answer just as exactly.
        params["value"] = False
    return kind, params


#: Topology samplers.  Each returns valid params for its family;
#: expander/regular keep ``n * degree`` even (networkx requires it) and
#: derive their internal wiring seed from the scenario stream.
_TOPOLOGY_SAMPLERS: Tuple[Tuple[str, Callable[[random.Random], Dict[str, int]]], ...] = (
    ("line", lambda rng: {"n": rng.randint(2, 6)}),
    ("ring", lambda rng: {"n": rng.randint(3, 6)}),
    ("clique", lambda rng: {"n": rng.randint(3, 6)}),
    ("star", lambda rng: {"leaves": rng.randint(2, 5)}),
    ("grid", lambda rng: {"rows": 2, "cols": rng.randint(2, 3)}),
    ("tree", lambda rng: {"branching": 2, "depth": rng.randint(1, 2)}),
    ("hypercube", lambda rng: {"dim": rng.randint(1, 3)}),
    (
        "expander",
        lambda rng: {
            "n": 2 * rng.randint(2, 4), "degree": 3, "seed": rng.randrange(100),
        },
    ),
    (
        "regular",
        lambda rng: {
            "n": 2 * rng.randint(2, 4), "degree": 3, "seed": rng.randrange(100),
        },
    ),
    (
        "barbell",
        lambda rng: {"clique_size": 3, "path_len": rng.randint(1, 2)},
    ),
)


def sample_topology(rng: random.Random) -> Tuple[str, Dict[str, int]]:
    """A random topology family plus valid parameters."""
    name, sampler = _TOPOLOGY_SAMPLERS[rng.randrange(len(_TOPOLOGY_SAMPLERS))]
    return name, sampler(rng)


def sample_scenario(seed: int) -> ScenarioSpec:
    """One random, valid, certifiable scenario from one child seed.

    The spec's own ``seed`` field is ``seed`` itself, so the sampled
    scenario is exactly as reproducible as a hand-written one.  Roughly
    a third of scenarios are hard (TRIBES-embedded, worst-case placed,
    formula-certified); the rest are random instances over a random
    semiring, placed round-robin with an occasional co-located
    (``single``) zero-communication case.
    """
    rng = random.Random(seed)
    topology, topology_params = sample_topology(rng)
    if rng.random() < 1 / 3:
        query, query_params = _sample_hard_query(rng)
        return ScenarioSpec(
            family=f"fuzz-{query}",
            query=query,
            query_params=query_params,
            topology=topology,
            topology_params=topology_params,
            n=rng.choice(FUZZ_HARD_SIZES),
            assignment="worst-case",
            seed=seed,
        )
    query, query_params = _sample_random_query(rng)
    return ScenarioSpec(
        family=f"fuzz-{query}",
        query=query,
        query_params=query_params,
        topology=topology,
        topology_params=topology_params,
        n=rng.choice(FUZZ_SIZES),
        domain_size=rng.choice(FUZZ_DOMAIN_SIZES),
        semiring=rng.choice(FUZZ_SEMIRINGS),
        assignment="single" if rng.random() < 0.1 else "round-robin",
        seed=seed,
    )


def generate_scenarios(master_seed: int, count: int) -> Tuple[ScenarioSpec, ...]:
    """``count`` random scenarios, deterministically from ``master_seed``.

    Child seeds come from :func:`repro.workloads.spawn_seeds`, so the
    stream has the usual prefix stability: growing ``count`` appends
    scenarios without perturbing earlier ones.
    """
    return tuple(
        sample_scenario(child) for child in spawn_seeds(master_seed, count)
    )


def fuzz_suite(
    master_seed: int = DEFAULT_FUZZ_SEED,
    count: int = 50,
    name: str = "fuzz",
    axes: bool = True,
) -> SuiteSpec:
    """The fuzzed differential suite: ``count`` generated scenarios,
    each swept across engine x solver x backend x kernels (16 planes)
    when ``axes`` is set.

    Consecutive blocks of 16 differ only in the axis fields, so
    :func:`repro.lab.report.axis_pairs` pairs them for the parity gate,
    and every individual run feeds the bound-certification oracle.
    """
    from .suites import with_axes  # deferred: suites imports this module

    base = SuiteSpec(
        name=name,
        scenarios=generate_scenarios(master_seed, count),
        description=f"{count} seeded random scenarios (master seed "
        f"{master_seed}) with lower-bound certification",
    )
    if not axes:
        return base
    return with_axes(
        base,
        name,
        f"{base.description}, each on every engine x solver x backend x "
        f"kernels plane",
    )
