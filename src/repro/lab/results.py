"""Typed result records and deterministic aggregation.

A :class:`ScenarioResult` is everything one scenario execution produced:
the spec, the measured protocol rounds, the Theorem 4.1/5.2 formula
values, the Table 1 gap, a digest of the answer (so backend-parity suites
can assert byte-identical answers without shipping factors around), and
bookkeeping (wall time, cache provenance).

The record splits into a **deterministic** part — identical whether the
scenario ran serially, in a worker process, or came from the cache — and
a volatile part (``wall_time``, ``cached``) that never enters artifacts
or cache-equality checks.

:func:`aggregate` folds results into per-family summary rows
(median/p90/max of rounds and gap) with a pure-Python percentile, so
aggregates are bit-stable across NumPy versions and process counts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.analysis import Table1Row
from .spec import ScenarioSpec

#: Bump together with cache-incompatible result changes.
#: v2: records carry total_bits and link_utilization (the two-plane
#: engine's bit-accounting parity contract needs both in artifacts).
#: v3: records carry the bound-certification fields (certified lower
#: bound, cut-accounting transcript numbers, violation flags).
#: v4: records carry the ``cost_model`` block (symbolic cost-plane
#: predictions with per-run exact-match verdicts).
#: v5: records carry the ``observability`` block (deterministic kernel /
#: engine / dictionary-pool counters aggregated per scenario).
RESULT_SCHEMA = "repro.lab/result.v6"


@dataclass
class ScenarioResult:
    """One executed scenario.

    Attributes:
        spec: The scenario that produced this result.
        spec_hash: ``spec.content_hash()`` (the cache key).
        topology_name: The materialized topology's display name.
        query_name: The materialized query's display name.
        players: Number of players actually holding relations.
        d: Degeneracy component of the bound formulas.
        r: Arity component of the bound formulas.
        rows: Largest input listing size N of the materialized instance.
        measured_rounds: Simulator rounds of the protocol run.
        total_bits: Total bits the protocol carried over all edges — part
            of the engine-parity contract (generator and compiled runs
            of the same scenario must agree exactly).
        link_utilization: Peak per-round bits of the busiest directed
            edge divided by the capacity ``B`` (the Table 1 link column).
        upper_formula: Theorem 4.1/5.2 upper-bound value.
        lower_formula: Lower-bound value.
        gap: measured / lower, or None when the lower bound is 0
            (co-located runs) — kept None so artifacts stay strict JSON.
        gap_budget: The Table 1 gap-column budget for this family.
        lower_certified: The certified round lower bound for *this
            run*: the cut-accounting bound (crossing bits / (cut * B)).
            ``measured_rounds`` must never undercut it.
        formula_certified: Whether the Lemma 4.4 reduction applies to
            this run (hard-* query family under worst-case placement),
            i.e. the TRIBES bits floor is enforced.
        tribes_bits_floor: On formula-certified runs, the bits the
            embedded TRIBES instance must push across the min cut
            (``m * N``, constant 1); 0 otherwise.  ``cut_bits`` must
            never undercut it.
        bound_ok: The certification oracle: cut accounting held,
            ``measured_rounds >= lower_certified``, and ``cut_bits >=
            tribes_bits_floor``.  Any False is a bound violation — a
            bug, never a tolerable deviation.
        cut_bits: Bits the run actually sent across a minimum
            K-separating cut (the induced two-party transcript cost).
        cut_size: Number of crossing edges of that cut.
        cut_ok: The Lemma 4.4 accounting identity held
            (``cut_bits <= rounds * cut_size * B``).
        correct: Protocol answer matched the centralized solver.
        answer_digest: sha256 of the canonicalized answer factor.
        cost_model: The symbolic cost-plane verdict for this run: the
            coverage ``cell``, whether the model ``covered`` it, the
            ``predicted`` and ``measured`` metric payloads (rounds,
            total bits, busiest-link bits/round, per-edge digest), and
            ``exact_match`` — True/False on covered cells, None when
            uncovered (reported, never gated).  None on pre-v4 records.
        observability: Deterministic per-scenario counter deltas (the
            :data:`~repro.obs.counters.DETERMINISTIC_COUNTERS` whitelist
            only): columnar-kernel dispatch vs dict fallback, dictionary
            pooling paths, fused-solver dispatch, fast-forward
            engagements.  Volatile counters (e.g. plan-cache hit/miss,
            which depend on process warmth) are deliberately excluded so
            the record stays identical across serial, parallel and cached
            executions.  None on pre-v5 records.
        trace: The per-run trace-verification verdict when the run was
            executed with ``--trace`` (volatile — cached results were not
            re-traced): event count, ``verified``, any ``mismatches``,
            the replayed totals and the cost-model cross-check.
        captured_logs: Log lines and warnings raised while executing the
            scenario (volatile) — captured in ProcessPool workers so
            parallel runs don't swallow them, re-emitted by the
            coordinator.
        wall_time: Seconds spent executing (volatile; excluded from the
            deterministic record).
        protocol_wall_time: Seconds spent in the protocol run alone
            (volatile) — what the engine axis actually changes.
        solver_wall_time: Seconds spent in the centralized reference
            solve alone (volatile) — what the solver axis actually
            changes.
        cached: True when served from the result cache (volatile).
    """

    spec: ScenarioSpec
    spec_hash: str
    topology_name: str
    query_name: str
    players: int
    d: float
    r: float
    rows: int
    measured_rounds: int
    total_bits: int
    link_utilization: float
    upper_formula: float
    lower_formula: float
    gap: Optional[float]
    gap_budget: float
    lower_certified: float
    formula_certified: bool
    tribes_bits_floor: int
    bound_ok: bool
    cut_bits: int
    cut_size: int
    cut_ok: bool
    correct: bool
    answer_digest: str
    cost_model: Optional[Dict[str, Any]] = None
    observability: Optional[Dict[str, int]] = None
    trace: Optional[Dict[str, Any]] = None
    captured_logs: Optional[List[str]] = None
    wall_time: float = 0.0
    protocol_wall_time: float = 0.0
    solver_wall_time: float = 0.0
    cached: bool = False

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def deterministic_record(self) -> Dict[str, Any]:
        """The reproducible part — what artifacts and the cache store."""
        return {
            "schema": RESULT_SCHEMA,
            "spec": self.spec.to_json_dict(),
            "spec_hash": self.spec_hash,
            "label": self.spec.label,
            "family": self.spec.family,
            "topology_name": self.topology_name,
            "query_name": self.query_name,
            "players": self.players,
            "d": self.d,
            "r": self.r,
            "rows": self.rows,
            "measured_rounds": self.measured_rounds,
            "total_bits": self.total_bits,
            "link_utilization": self.link_utilization,
            "upper_formula": self.upper_formula,
            "lower_formula": self.lower_formula,
            "gap": self.gap,
            "gap_budget": self.gap_budget,
            "lower_certified": self.lower_certified,
            "formula_certified": self.formula_certified,
            "tribes_bits_floor": self.tribes_bits_floor,
            "bound_ok": self.bound_ok,
            "cut_bits": self.cut_bits,
            "cut_size": self.cut_size,
            "cut_ok": self.cut_ok,
            "correct": self.correct,
            "answer_digest": self.answer_digest,
            "cost_model": self.cost_model,
            "observability": self.observability,
        }

    @classmethod
    def from_record(
        cls, record: Mapping[str, Any], cached: bool = False
    ) -> "ScenarioResult":
        """Rebuild a result from a deterministic record (e.g. the cache)."""
        return cls(
            spec=ScenarioSpec.from_json_dict(record["spec"]),
            spec_hash=record["spec_hash"],
            topology_name=record["topology_name"],
            query_name=record["query_name"],
            players=record["players"],
            d=record["d"],
            r=record["r"],
            rows=record["rows"],
            measured_rounds=record["measured_rounds"],
            total_bits=record["total_bits"],
            link_utilization=record["link_utilization"],
            upper_formula=record["upper_formula"],
            lower_formula=record["lower_formula"],
            gap=record["gap"],
            gap_budget=record["gap_budget"],
            # .get defaults keep pre-v3 records readable (certification
            # fields absent there are treated as unchecked-but-clean).
            lower_certified=record.get("lower_certified", 0.0),
            formula_certified=record.get("formula_certified", False),
            tribes_bits_floor=record.get("tribes_bits_floor", 0),
            bound_ok=record.get("bound_ok", True),
            cut_bits=record.get("cut_bits", 0),
            cut_size=record.get("cut_size", 0),
            cut_ok=record.get("cut_ok", True),
            correct=record["correct"],
            answer_digest=record["answer_digest"],
            cost_model=record.get("cost_model"),
            observability=record.get("observability"),
            wall_time=0.0,
            cached=cached,
        )

    def to_table1_row(self) -> Table1Row:
        """Render as a :class:`~repro.core.analysis.Table1Row` so the
        lab reuses ``format_table``/``gap_within_budget`` unchanged.

        An undefined gap (lower bound 0, e.g. co-located runs) maps to
        ``inf`` so ``gap_within_budget`` fails loudly instead of passing
        vacuously — don't assert budgets on such scenarios."""
        return Table1Row(
            label=self.spec.family,
            query=self.query_name,
            topology=self.topology_name,
            d=self.d,
            r=self.r,
            n=self.rows,
            measured_rounds=self.measured_rounds,
            upper_formula=self.upper_formula,
            lower_formula=self.lower_formula,
            gap=self.gap if self.gap is not None else float("inf"),
            gap_budget=self.gap_budget,
            correct=self.correct,
            link_util=self.link_utilization,
        )


def answer_digest(schema: Sequence[str], rows: Mapping) -> str:
    """A stable content digest of an answer factor.

    Canonicalizes to sorted ``[key..., value]`` rows (repr-encoding any
    non-JSON value) so two backends agree iff their answers are
    value-identical.
    """
    canon = {
        "schema": list(schema),
        "rows": sorted(
            [[repr(k) for k in key] + [repr(value)] for key, value in rows.items()]
        ),
    }
    payload = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (NumPy's default), pure Python.

    Deterministic across platforms — aggregation must be byte-stable for
    the serial-vs-parallel equality guarantee.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


@dataclass
class FamilyAggregate:
    """Per-family summary row.

    Attributes:
        family: Scenario-family label.
        scenarios: Number of scenarios aggregated.
        correct: How many were correct.
        rounds_median / rounds_p90 / rounds_max: Round statistics.
        gap_median / gap_p90 / gap_max: Gap statistics over scenarios
            with a finite gap (None when no scenario had one).
        gap_min: The smallest gap — the certification-facing tail: on
            formula-certified families it must stay >= 1.
        gap_budget_max: The largest budget among the family's scenarios.
        bound_violations: Scenarios whose certification oracle failed
            (``bound_ok`` False).  Must be 0 everywhere.
    """

    family: str
    scenarios: int
    correct: int
    rounds_median: float
    rounds_p90: float
    rounds_max: int
    gap_median: Optional[float]
    gap_p90: Optional[float]
    gap_max: Optional[float]
    gap_min: Optional[float]
    gap_budget_max: float
    bound_violations: int

    def to_record(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "scenarios": self.scenarios,
            "correct": self.correct,
            "rounds_median": self.rounds_median,
            "rounds_p90": self.rounds_p90,
            "rounds_max": self.rounds_max,
            "gap_median": self.gap_median,
            "gap_p90": self.gap_p90,
            "gap_max": self.gap_max,
            "gap_min": self.gap_min,
            "gap_budget_max": self.gap_budget_max,
            "bound_violations": self.bound_violations,
        }


def aggregate(results: Sequence[ScenarioResult]) -> List[FamilyAggregate]:
    """Fold results into per-family rows, in first-appearance order."""
    by_family: Dict[str, List[ScenarioResult]] = {}
    for result in results:
        by_family.setdefault(result.spec.family, []).append(result)
    out = []
    for family, group in by_family.items():
        rounds = [float(r.measured_rounds) for r in group]
        gaps = [r.gap for r in group if r.gap is not None]
        out.append(
            FamilyAggregate(
                family=family,
                scenarios=len(group),
                correct=sum(1 for r in group if r.correct),
                rounds_median=percentile(rounds, 50.0),
                rounds_p90=percentile(rounds, 90.0),
                rounds_max=max(r.measured_rounds for r in group),
                gap_median=percentile(gaps, 50.0) if gaps else None,
                gap_p90=percentile(gaps, 90.0) if gaps else None,
                gap_max=max(gaps) if gaps else None,
                gap_min=min(gaps) if gaps else None,
                gap_budget_max=max(r.gap_budget for r in group),
                bound_violations=sum(1 for r in group if not r.bound_ok),
            )
        )
    return out
