"""Typed result records and deterministic aggregation.

A :class:`ScenarioResult` is everything one scenario execution produced:
the spec, the measured protocol rounds, the Theorem 4.1/5.2 formula
values, the Table 1 gap, a digest of the answer (so backend-parity suites
can assert byte-identical answers without shipping factors around), and
bookkeeping (wall time, cache provenance).

The record splits into a **deterministic** part — identical whether the
scenario ran serially, in a worker process, or came from the cache — and
a volatile part (``wall_time``, ``cached``) that never enters artifacts
or cache-equality checks.

:func:`aggregate` folds results into per-family summary rows
(median/p90/max of rounds and gap) with a pure-Python percentile, so
aggregates are bit-stable across NumPy versions and process counts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.analysis import Table1Row
from .spec import ScenarioSpec

#: Bump together with cache-incompatible result changes.
#: v2: records carry total_bits and link_utilization (the two-plane
#: engine's bit-accounting parity contract needs both in artifacts).
RESULT_SCHEMA = "repro.lab/result.v2"


@dataclass
class ScenarioResult:
    """One executed scenario.

    Attributes:
        spec: The scenario that produced this result.
        spec_hash: ``spec.content_hash()`` (the cache key).
        topology_name: The materialized topology's display name.
        query_name: The materialized query's display name.
        players: Number of players actually holding relations.
        d: Degeneracy component of the bound formulas.
        r: Arity component of the bound formulas.
        rows: Largest input listing size N of the materialized instance.
        measured_rounds: Simulator rounds of the protocol run.
        total_bits: Total bits the protocol carried over all edges — part
            of the engine-parity contract (generator and compiled runs
            of the same scenario must agree exactly).
        link_utilization: Peak per-round bits of the busiest directed
            edge divided by the capacity ``B`` (the Table 1 link column).
        upper_formula: Theorem 4.1/5.2 upper-bound value.
        lower_formula: Lower-bound value.
        gap: measured / lower, or None when the lower bound is 0
            (co-located runs) — kept None so artifacts stay strict JSON.
        gap_budget: The Table 1 gap-column budget for this family.
        correct: Protocol answer matched the centralized solver.
        answer_digest: sha256 of the canonicalized answer factor.
        wall_time: Seconds spent executing (volatile; excluded from the
            deterministic record).
        protocol_wall_time: Seconds spent in the protocol run alone
            (volatile) — what the engine axis actually changes.
        solver_wall_time: Seconds spent in the centralized reference
            solve alone (volatile) — what the solver axis actually
            changes.
        cached: True when served from the result cache (volatile).
    """

    spec: ScenarioSpec
    spec_hash: str
    topology_name: str
    query_name: str
    players: int
    d: float
    r: float
    rows: int
    measured_rounds: int
    total_bits: int
    link_utilization: float
    upper_formula: float
    lower_formula: float
    gap: Optional[float]
    gap_budget: float
    correct: bool
    answer_digest: str
    wall_time: float = 0.0
    protocol_wall_time: float = 0.0
    solver_wall_time: float = 0.0
    cached: bool = False

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def deterministic_record(self) -> Dict[str, Any]:
        """The reproducible part — what artifacts and the cache store."""
        return {
            "schema": RESULT_SCHEMA,
            "spec": self.spec.to_json_dict(),
            "spec_hash": self.spec_hash,
            "label": self.spec.label,
            "family": self.spec.family,
            "topology_name": self.topology_name,
            "query_name": self.query_name,
            "players": self.players,
            "d": self.d,
            "r": self.r,
            "rows": self.rows,
            "measured_rounds": self.measured_rounds,
            "total_bits": self.total_bits,
            "link_utilization": self.link_utilization,
            "upper_formula": self.upper_formula,
            "lower_formula": self.lower_formula,
            "gap": self.gap,
            "gap_budget": self.gap_budget,
            "correct": self.correct,
            "answer_digest": self.answer_digest,
        }

    @classmethod
    def from_record(
        cls, record: Mapping[str, Any], cached: bool = False
    ) -> "ScenarioResult":
        """Rebuild a result from a deterministic record (e.g. the cache)."""
        return cls(
            spec=ScenarioSpec.from_json_dict(record["spec"]),
            spec_hash=record["spec_hash"],
            topology_name=record["topology_name"],
            query_name=record["query_name"],
            players=record["players"],
            d=record["d"],
            r=record["r"],
            rows=record["rows"],
            measured_rounds=record["measured_rounds"],
            total_bits=record["total_bits"],
            link_utilization=record["link_utilization"],
            upper_formula=record["upper_formula"],
            lower_formula=record["lower_formula"],
            gap=record["gap"],
            gap_budget=record["gap_budget"],
            correct=record["correct"],
            answer_digest=record["answer_digest"],
            wall_time=0.0,
            cached=cached,
        )

    def to_table1_row(self) -> Table1Row:
        """Render as a :class:`~repro.core.analysis.Table1Row` so the
        lab reuses ``format_table``/``gap_within_budget`` unchanged.

        An undefined gap (lower bound 0, e.g. co-located runs) maps to
        ``inf`` so ``gap_within_budget`` fails loudly instead of passing
        vacuously — don't assert budgets on such scenarios."""
        return Table1Row(
            label=self.spec.family,
            query=self.query_name,
            topology=self.topology_name,
            d=self.d,
            r=self.r,
            n=self.rows,
            measured_rounds=self.measured_rounds,
            upper_formula=self.upper_formula,
            lower_formula=self.lower_formula,
            gap=self.gap if self.gap is not None else float("inf"),
            gap_budget=self.gap_budget,
            correct=self.correct,
            link_util=self.link_utilization,
        )


def answer_digest(schema: Sequence[str], rows: Mapping) -> str:
    """A stable content digest of an answer factor.

    Canonicalizes to sorted ``[key..., value]`` rows (repr-encoding any
    non-JSON value) so two backends agree iff their answers are
    value-identical.
    """
    canon = {
        "schema": list(schema),
        "rows": sorted(
            [[repr(k) for k in key] + [repr(value)] for key, value in rows.items()]
        ),
    }
    payload = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (NumPy's default), pure Python.

    Deterministic across platforms — aggregation must be byte-stable for
    the serial-vs-parallel equality guarantee.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


@dataclass
class FamilyAggregate:
    """Per-family summary row.

    Attributes:
        family: Scenario-family label.
        scenarios: Number of scenarios aggregated.
        correct: How many were correct.
        rounds_median / rounds_p90 / rounds_max: Round statistics.
        gap_median / gap_p90 / gap_max: Gap statistics over scenarios
            with a finite gap (None when no scenario had one).
        gap_budget_max: The largest budget among the family's scenarios.
    """

    family: str
    scenarios: int
    correct: int
    rounds_median: float
    rounds_p90: float
    rounds_max: int
    gap_median: Optional[float]
    gap_p90: Optional[float]
    gap_max: Optional[float]
    gap_budget_max: float

    def to_record(self) -> Dict[str, Any]:
        return {
            "family": self.family,
            "scenarios": self.scenarios,
            "correct": self.correct,
            "rounds_median": self.rounds_median,
            "rounds_p90": self.rounds_p90,
            "rounds_max": self.rounds_max,
            "gap_median": self.gap_median,
            "gap_p90": self.gap_p90,
            "gap_max": self.gap_max,
            "gap_budget_max": self.gap_budget_max,
        }


def aggregate(results: Sequence[ScenarioResult]) -> List[FamilyAggregate]:
    """Fold results into per-family rows, in first-appearance order."""
    by_family: Dict[str, List[ScenarioResult]] = {}
    for result in results:
        by_family.setdefault(result.spec.family, []).append(result)
    out = []
    for family, group in by_family.items():
        rounds = [float(r.measured_rounds) for r in group]
        gaps = [r.gap for r in group if r.gap is not None]
        out.append(
            FamilyAggregate(
                family=family,
                scenarios=len(group),
                correct=sum(1 for r in group if r.correct),
                rounds_median=percentile(rounds, 50.0),
                rounds_p90=percentile(rounds, 90.0),
                rounds_max=max(r.measured_rounds for r in group),
                gap_median=percentile(gaps, 50.0) if gaps else None,
                gap_p90=percentile(gaps, 90.0) if gaps else None,
                gap_max=max(gaps) if gaps else None,
                gap_budget_max=max(r.gap_budget for r in group),
            )
        )
    return out
