"""Multi-scenario tensor execution — the batched suite runner.

:func:`run_suite_batched` executes a suite like
:func:`repro.lab.runner.run_suite`, but first groups structurally
identical scenarios (same query shape, factor schemas, semiring and
free variables — in practice the 16 axis planes of one fuzz identity,
plus same-shape identities across seeds).  Each group shares one
materialization (:func:`repro.lab.runner.materialize_scenario`) and the
hot structural memos, and after its members run, the whole group is
re-solved **once** as a stacked tensor program: every member relation
gains a leading ``__scenario__`` column, the stacked relations share one
:class:`~repro.faq.executor.DictionaryPool` inside the columnar backend,
one solver dispatch answers all scenarios, and the unstacked per-scenario
answers are asserted byte-identical (by answer digest) to the members'
individually-executed answers.

Every member still runs the *full* per-scenario pipeline — protocol,
certification, cost model, counters — so a batched run's deterministic
records are byte-identical to a serial :func:`run_suite`'s.  Batching
buys throughput (shared materialization + memos + one group solve as a
cross-check), never different answers; :class:`BatchParityError` is
raised the moment the stacked solve disagrees with any member.

The ``batch.groups`` / ``batch.grouped_scenarios`` counters fire outside
every member's per-scenario counter window, so member observability
blocks stay identical to unbatched runs.
"""

from __future__ import annotations

import gc
import json
import pickle
import random
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import kernels
from ..core.memo import clear_all_memos
from ..faq import FAQQuery, solve_naive, solve_variable_elimination
from ..hypergraph import Hypergraph
from ..obs.counters import COUNTERS
from ..semiring import Factor
from .cache import ResultCache
from .results import ScenarioResult, answer_digest
from .runner import (
    SuiteRun,
    _execute_with_context,
    materialize_scenario,
)
from .spec import ScenarioSpec, SuiteSpec

#: The leading stacking variable: scenario index within the group.
SCENARIO_VAR = "__scenario__"

#: Spec fields erased by the coarse grouping key.  The four parity axes
#: never change the instance; seed / size / placement knobs change the
#: *content* but not (necessarily) the shape — the structural signature
#: check below decides whether two identities actually stack.
_GROUP_NEUTRAL_FIELDS = (
    "engine", "solver", "backend", "kernels",
    "seed", "n", "domain_size", "assignment", "max_rounds",
)


class BatchParityError(AssertionError):
    """The stacked group solve disagreed with a member's own answer."""


def _resolved_plane_key(spec: ScenarioSpec) -> str:
    """The spec's identity with the kernel tier *resolved*.

    ``kernels="jit"`` without numba installed executes bit-for-bit the
    same code path as ``kernels="numpy"`` (:func:`repro.kernels
    .resolved_tier`), so the two planes are one computation.  The
    batched runner executes each distinct resolved computation once and
    materializes the twin plane's result from it; with numba installed
    the keys differ and every plane runs for real.
    """
    payload = spec.to_json_dict()
    if payload.get("kernels") == "jit" and not kernels.HAVE_NUMBA:
        payload["kernels"] = "numpy"
    return json.dumps(payload, sort_keys=True)


def _twin_result(twin: ScenarioResult, spec: ScenarioSpec) -> ScenarioResult:
    """A fresh result for ``spec`` cloned from its resolved-plane twin.

    Every deterministic field of the twin is provably equal to what
    executing ``spec`` would produce (same resolved computation); only
    the spec identity differs.  Wall times are copied — they priced the
    one execution that actually ran.  The clone is a pickle round-trip:
    results are pickle-clean by construction (they cross the ``--jobs``
    process boundary), and it is ~3x faster than ``copy.deepcopy``.
    """
    result = pickle.loads(pickle.dumps(twin, pickle.HIGHEST_PROTOCOL))
    result.spec = spec
    result.spec_hash = spec.content_hash()
    return result


def _coarse_key(spec: ScenarioSpec) -> str:
    """The shape-candidate grouping key (family/query/topology/semiring)."""
    payload = spec.to_json_dict()
    for field in _GROUP_NEUTRAL_FIELDS:
        payload.pop(field, None)
    return json.dumps(payload, sort_keys=True)


def structural_signature(query: FAQQuery) -> Optional[str]:
    """The exact stacking contract of a materialized query.

    Two queries stack iff their signatures are equal: same factor names
    with the same ordered schemas, same free variables, same semiring.
    Queries with explicit (non-FAQ-SS) aggregates return ``None`` —
    product aggregates fold over full domains, which a cross-instance
    domain union would silently change, so they never stack.
    """
    if query.aggregates:
        return None
    return json.dumps(
        {
            "factors": sorted(
                (name, list(f.schema)) for name, f in query.factors.items()
            ),
            "free_vars": list(query.free_vars),
            "semiring": query.semiring.name,
        },
        sort_keys=True,
    )


def plan_groups(
    specs: Sequence[ScenarioSpec],
) -> List[Tuple[Optional[str], List[ScenarioSpec]]]:
    """Partition specs into stackable groups, preserving first-seen order.

    Coarse-keys by the shape-defining spec fields, then refines by the
    materialized :func:`structural_signature` (materialization is
    memoized, so members reuse these builds during execution).  Returns
    ``(signature, members)`` pairs; ``signature`` is ``None`` for
    unstackable members (each then forms its own singleton group).
    """
    coarse: Dict[str, List[ScenarioSpec]] = {}
    for spec in specs:
        coarse.setdefault(_coarse_key(spec), []).append(spec)
    groups: List[Tuple[Optional[str], List[ScenarioSpec]]] = []
    for members in coarse.values():
        refined: Dict[Optional[str], List[ScenarioSpec]] = {}
        for spec in members:
            built, _topology, _assignment = materialize_scenario(spec)
            sig = structural_signature(built.query)
            refined.setdefault(sig, []).append(spec)
        for sig, bucket in refined.items():
            if sig is None:
                groups.extend((None, [spec]) for spec in bucket)
            else:
                groups.append((sig, bucket))
    return groups


def stack_queries(queries: Sequence[FAQQuery]) -> FAQQuery:
    """One tensor program answering every member query at once.

    Every relation gains a leading :data:`SCENARIO_VAR` column holding
    the member index; domains are the per-variable first-seen union
    across members (content differs, shape does not — enforced by
    :func:`structural_signature`).  The columnar backend then interns
    all stacked columns through one shared dictionary pool, so the
    group executes as a single extra-leading-axis dispatch.
    """
    base = queries[0]
    edges = {
        name: (SCENARIO_VAR,) + tuple(factor.schema)
        for name, factor in base.factors.items()
    }
    domains: Dict[str, Tuple[Any, ...]] = {
        SCENARIO_VAR: tuple(range(len(queries)))
    }
    merged: Dict[str, Dict[Any, None]] = {}
    for query in queries:
        for var, dom in query.domains.items():
            merged.setdefault(var, {}).update(dict.fromkeys(dom))
    domains.update({var: tuple(vals) for var, vals in merged.items()})
    factors: Dict[str, Factor] = {}
    for name, base_factor in base.factors.items():
        schema = (SCENARIO_VAR,) + tuple(base_factor.schema)
        rows: Dict[Tuple[Any, ...], Any] = {}
        for index, query in enumerate(queries):
            for key, value in query.factors[name].rows.items():
                rows[(index,) + tuple(key)] = value
        factors[name] = Factor(schema, rows, base.semiring, name=name)
    return FAQQuery(
        hypergraph=Hypergraph(edges),
        factors=factors,
        domains=domains,
        free_vars=(SCENARIO_VAR,) + tuple(base.free_vars),
        semiring=base.semiring,
        name=f"stacked[{len(queries)}]:{base.name or 'faq'}",
        backend="columnar",
    )


def _solve_stacked(stacked: FAQQuery) -> Factor:
    """Solve the stacked program on the compiled fast path."""
    try:
        return solve_variable_elimination(stacked, solver="compiled")
    except ValueError:
        # Dangling bound variables — same fallback the per-member
        # reference solve takes.
        return solve_naive(stacked, solver="compiled")


def unstack_answers(
    answer: Factor, free_vars: Sequence[str], count: int
) -> List[Dict[Tuple[Any, ...], Any]]:
    """Split a stacked answer back into per-scenario row dicts."""
    schema = tuple(answer.schema)
    scenario_at = schema.index(SCENARIO_VAR)
    positions = [schema.index(var) for var in free_vars]
    per: List[Dict[Tuple[Any, ...], Any]] = [{} for _ in range(count)]
    for key, value in answer.rows.items():
        per[key[scenario_at]][tuple(key[at] for at in positions)] = value
    return per


def verify_group(
    members: Sequence[ScenarioSpec],
    results: Sequence[ScenarioResult],
) -> None:
    """The batched-vs-serial oracle: one stacked solve, per-member digests.

    Raises:
        BatchParityError: if any unstacked per-scenario answer differs
            (by digest) from the member's individually-executed answer.
    """
    queries = [materialize_scenario(spec)[0].query for spec in members]
    stacked = stack_queries(queries)
    answer = _solve_stacked(stacked)
    free_vars = tuple(queries[0].free_vars)
    for index, rows in enumerate(
        unstack_answers(answer, free_vars, len(members))
    ):
        digest = answer_digest(free_vars, rows)
        if digest != results[index].answer_digest:
            raise BatchParityError(
                f"stacked solve disagreed with member "
                f"{members[index].label}: unstacked digest {digest} != "
                f"executed digest {results[index].answer_digest}"
            )


def _measure_baseline(
    sample: Sequence[ScenarioSpec],
    trace: bool = False,
) -> Optional[Dict[str, Any]]:
    """Per-scenario throughput with cold memos (the pre-batching path).

    Each sampled scenario runs the full pipeline with every structural
    memo cleared first, reproducing the cost of executing it in
    isolation — under the same ``trace`` setting as the batched pass,
    so the speedup never compares a traced run to an untraced baseline.
    Results are discarded; only the clock matters.
    """
    if not sample:
        return None
    start = time.perf_counter()
    for spec in sample:
        clear_all_memos()
        _execute_with_context(spec, trace)
    elapsed = time.perf_counter() - start
    return {
        "sample": len(sample),
        "wall_time_s": elapsed,
        "scenarios_per_sec": len(sample) / elapsed if elapsed > 0 else None,
    }


def run_suite_batched(
    suite: SuiteSpec,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    log=None,
    trace: bool = False,
    baseline_sample: int = 50,
) -> SuiteRun:
    """Execute a suite grouped: shared materialization, one stacked
    solve per multi-member group, per-member results byte-identical to
    :func:`~repro.lab.runner.run_suite`.

    Args:
        suite: What to run.
        cache: Optional result cache (hits skip execution *and* the
            stacked cross-check — they were verified when fresh).
        force: Ignore cache reads (still writes fresh results).
        log: Optional progress sink.
        trace: Replay-verify every fresh member's event stream.
        baseline_sample: How many pending scenarios to time on the cold
            per-scenario path first (0 disables); the ratio is the
            ``throughput.speedup`` headline.  The sample is drawn by a
            fixed-seed shuffle — stride sampling lands on systematic
            plane patterns (every 16th scenario of an axis-swept suite
            is the *same* plane of each identity), which biases the
            estimate.

    Returns:
        A :class:`~repro.lab.runner.SuiteRun` whose ``results`` follow
        suite order exactly and whose ``batch`` dict carries the
        (volatile) grouping and throughput stats.
    """
    emit = log or (lambda message: None)
    clear_all_memos()
    start = time.perf_counter()

    hashes = [spec.content_hash() for spec in suite.scenarios]
    by_hash: Dict[str, ScenarioResult] = {}
    pending: List[ScenarioSpec] = []
    seen = set()
    from_cache = set()
    for spec, key in zip(suite.scenarios, hashes):
        if key in seen:
            continue
        seen.add(key)
        record = None if (force or cache is None) else cache.get(key)
        if record is not None:
            by_hash[key] = ScenarioResult.from_record(record, cached=True)
            from_cache.add(key)
            emit(f"[cache] {spec.label}")
        else:
            pending.append(spec)
    cache_hits = sum(1 for key in hashes if key in from_cache)
    executed = len(pending)

    baseline = None
    if baseline_sample and pending:
        sample = random.Random(8191).sample(
            list(pending), min(baseline_sample, len(pending))
        )
        emit(f"[base ] timing {len(sample)} scenario(s) on the cold path")
        baseline = _measure_baseline(sample, trace)
        # The baseline pass warmed the memo plane; restart cold so the
        # batched pass prices its own sharing, not the baseline's.
        clear_all_memos()

    batched_start = time.perf_counter()
    # The batched pass is a bounded, allocation-heavy loop: suspend the
    # cyclic collector for its duration (several percent of wall time in
    # pause stalls) and reclaim cycles once at the end.  Execution
    # semantics are GC-invariant; only refcount-unreachable cycles
    # linger until the final collect.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        groups = plan_groups(pending)
        multi_groups = grouped = stacked_checks = twins = 0
        largest = 0
        plane_cache: Dict[str, ScenarioResult] = {}
        for signature, members in groups:
            multi = signature is not None and len(members) >= 2
            if multi:
                # Outside every member's counter window: group bookkeeping
                # must never show up in per-scenario observability blocks.
                COUNTERS.increment("batch.groups")
                COUNTERS.increment("batch.grouped_scenarios", len(members))
                multi_groups += 1
                grouped += len(members)
                largest = max(largest, len(members))
            member_results: List[ScenarioResult] = []
            for spec in members:
                key = spec.content_hash()
                plane_key = _resolved_plane_key(spec)
                twin = plane_cache.get(plane_key)
                if twin is not None:
                    emit(f"[twin ] {spec.label}")
                    result = _twin_result(twin, spec)
                    twins += 1
                else:
                    emit(f"[run  ] {spec.label}")
                    result = _execute_with_context(spec, trace)
                    plane_cache[plane_key] = result
                by_hash[key] = result
                if cache is not None:
                    cache.put(key, result.deterministic_record())
                for line in result.captured_logs or ():
                    emit(f"[log  ] {spec.label}: {line}")
                emit(f"[done ] {spec.label}: rounds={result.measured_rounds}")
                member_results.append(result)
            if multi:
                verify_group(members, member_results)
                stacked_checks += 1
                emit(
                    f"[batch] {len(members)}-scenario group verified by one "
                    f"stacked solve"
                )
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()
    batched_elapsed = time.perf_counter() - batched_start

    batched_sps = (
        executed / batched_elapsed if batched_elapsed > 0 and executed else None
    )
    base_sps = baseline["scenarios_per_sec"] if baseline else None
    batch_info: Dict[str, Any] = {
        "groups": len(groups),
        "multi_groups": multi_groups,
        "grouped_scenarios": grouped,
        "largest_group": largest,
        "stacked_checks": stacked_checks,
        "plane_twins": twins,
        "scenarios": executed,
        "wall_time_s": batched_elapsed,
        "scenarios_per_sec": batched_sps,
        "baseline": baseline,
        "speedup": (
            batched_sps / base_sps if batched_sps and base_sps else None
        ),
    }

    results = [by_hash[key] for key in hashes]
    return SuiteRun(
        suite=suite,
        results=results,
        cache_hits=cache_hits,
        executed=executed,
        jobs=1,
        wall_time=time.perf_counter() - start,
        batch=batch_info,
    )
