"""The named-suite registry and the built-in suites.

Built-ins:

* ``smoke`` — a fast cross-section (4 scenario families, 4 query
  families x 4 topology families, both storage backends) for CI;
* ``table1`` — the paper's Table 1 sweep: the union of the four per-row
  suites the ``bench_table1_*`` wrappers run individually;
* ``backend-compare`` — every scenario twice, once per storage backend,
  so answer digests and round counts can be asserted pairwise identical;
* ``scaling`` — size and player-count sweeps for perf trajectories;
* ``engine-compare`` / ``engine-smoke`` — every scenario on both protocol
  engines, for the engine-parity gate;
* ``solver-scaling`` / ``solver-compare`` / ``solver-smoke`` — the FAQ
  solver axis: sweeps sized so the reference solve dominates, paired
  across ``solver="operator"``/``"compiled"`` for the solver-parity gate;
* ``fuzz`` / ``fuzz-smoke`` — the fuzzed scenario plane
  (:mod:`repro.lab.generate`): seeded random scenarios, each swept
  across the full engine x solver x backend grid, with lower-bound
  certification on every run (re-seedable via ``run fuzz --seed N``).

Register custom suites with :func:`register_suite`; builders are lazy so
importing this module stays cheap.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional

from ..faq import SOLVERS
from ..kernels import KERNEL_TIERS
from ..protocols.faq_protocol import ENGINES
from ..semiring import BACKENDS
from .spec import ScenarioSpec, SuiteSpec, expand_grid

#: Master seed for the built-in suites (the paper's PODS'19 publication
#: date) — any fixed value works; it only has to be explicit.
DEFAULT_SEED = 20190625

_REGISTRY: Dict[str, Callable[..., SuiteSpec]] = {}


def register_suite(
    name: str, builder: Callable[..., SuiteSpec], overwrite: bool = False
) -> None:
    """Register a lazy suite builder under ``name``.

    A builder may accept a ``seed`` keyword; :func:`get_suite` forwards
    an explicit seed to those (the fuzz suites regenerate their whole
    scenario stream from it).
    """
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"suite {name!r} is already registered")
    _REGISTRY[name] = builder


def _accepts_seed(builder: Callable[..., SuiteSpec]) -> bool:
    try:
        return "seed" in inspect.signature(builder).parameters
    except (TypeError, ValueError):  # builtins without signatures
        return False


def get_suite(name: str, seed: Optional[int] = None) -> SuiteSpec:
    """Build the registered suite ``name``.

    Args:
        name: Registered suite name.
        seed: Optional master seed override for generated (fuzz) suites.

    Raises:
        ValueError: on an unknown name, or when ``seed`` is passed for a
            fixed (non-generated) suite — silently ignoring it would
            misreport what actually ran.
    """
    try:
        builder = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown suite {name!r}; known suites: {known}")
    if seed is None:
        return builder()
    if not _accepts_seed(builder):
        raise ValueError(
            f"suite {name!r} is a fixed suite and takes no seed; only "
            f"generated suites (fuzz*) are re-seedable"
        )
    return builder(seed=seed)


def suite_names() -> List[str]:
    """All registered suite names, sorted."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Table 1 per-row suites (the bench_table1_* wrappers run these)
# ---------------------------------------------------------------------------


def table1_line_suite() -> SuiteSpec:
    """Row 1 — FAQ on a line, worst-case placement, N doubling sweep."""
    return SuiteSpec(
        name="table1-line",
        description="Table 1 row 1: hard star BCQ on the line G1, Lemma 4.4 "
        "placement, rounds ~ Theta(N), gap O~(1)",
        scenarios=expand_grid(
            dict(
                family="faq-line",
                query="hard-star",
                query_params={"arms": 4},
                topology="line",
                topology_params={"n": 4},
                assignment="worst-case",
                seed=DEFAULT_SEED,
            ),
            n=[64, 128, 256],
        ),
    )


def table1_arbitrary_suite() -> SuiteSpec:
    """Row 2 — the same O(1)-degenerate query across topology families."""
    topologies = [
        ("line", {"n": 5}),
        ("ring", {"n": 5}),
        ("clique", {"n": 5}),
        ("grid", {"rows": 2, "cols": 3}),
        ("barbell", {"clique_size": 3, "path_len": 1}),
    ]
    scenarios = tuple(
        ScenarioSpec(
            family="faq-arbitrary",
            query="hard-path",
            query_params={"length": 4},
            topology=topo,
            topology_params=params,
            n=128,
            assignment="worst-case",
            seed=DEFAULT_SEED,
        )
        for topo, params in topologies
    )
    return SuiteSpec(
        name="table1-arbitrary",
        description="Table 1 row 2: hard path BCQ across line/ring/clique/"
        "grid/barbell, gap O~(1) on every topology",
        scenarios=scenarios,
    )


def table1_degenerate_suite() -> SuiteSpec:
    """Row 3 — d-degenerate BCQs, gap budget O~(d)."""
    return SuiteSpec(
        name="table1-degenerate",
        description="Table 1 row 3: random d-degenerate BCQ on a clique, "
        "gap grows at most linearly in d",
        scenarios=expand_grid(
            dict(
                family="bcq-degenerate",
                query="degenerate",
                topology="clique",
                topology_params={"n": 4},
                n=96,
                domain_size=96,
                seed=DEFAULT_SEED,
            ),
            query_params=[{"vertices": 6, "d": d} for d in (1, 2, 3)],
        ),
    )


def table1_hypergraph_suite() -> SuiteSpec:
    """Row 4 — bounded-arity acyclic FAQ-SS, gap budget O~(d^2 r^2)."""
    return SuiteSpec(
        name="table1-hypergraph",
        description="Table 1 row 4: random acyclic arity-r FAQ-SS counting "
        "queries on a clique, gap within the d^2 r^2 budget",
        scenarios=expand_grid(
            dict(
                family="faq-hypergraph",
                query="acyclic",
                topology="clique",
                topology_params={"n": 5},
                n=64,
                domain_size=16,
                semiring="counting",
                seed=DEFAULT_SEED,
            ),
            query_params=[{"edges": 5, "arity": r} for r in (2, 3, 4)],
        ),
    )


def _table1_suite() -> SuiteSpec:
    suite = table1_line_suite()
    for other in (
        table1_arbitrary_suite(),
        table1_degenerate_suite(),
        table1_hypergraph_suite(),
    ):
        suite = suite.merged_with(other)
    return SuiteSpec(
        name="table1",
        scenarios=suite.scenarios,
        description="The full Table 1 sweep: all four rows' scenarios",
    )


def _smoke_suite() -> SuiteSpec:
    """Small but representative: 4 scenario families over 4 query and 4
    topology families, both storage backends — fast enough for CI."""
    scenarios = (
        ScenarioSpec(
            family="faq-line",
            query="hard-star",
            query_params={"arms": 4},
            topology="line",
            topology_params={"n": 4},
            n=32,
            assignment="worst-case",
            seed=DEFAULT_SEED,
        ),
        ScenarioSpec(
            family="faq-arbitrary",
            query="hard-path",
            query_params={"length": 4},
            topology="hypercube",
            topology_params={"dim": 3},
            n=32,
            assignment="worst-case",
            seed=DEFAULT_SEED,
        ),
    ) + expand_grid(
        dict(
            family="bcq-degenerate",
            query="degenerate",
            query_params={"vertices": 5, "d": 2},
            topology="clique",
            topology_params={"n": 4},
            n=32,
            domain_size=32,
            seed=DEFAULT_SEED,
        ),
        backend=["dict", "columnar"],
    ) + expand_grid(
        dict(
            family="faq-hypergraph",
            query="acyclic",
            query_params={"edges": 4, "arity": 3},
            topology="expander",
            topology_params={"n": 8, "degree": 3, "seed": 1},
            n=32,
            domain_size=8,
            semiring="counting",
            seed=DEFAULT_SEED,
        ),
        backend=["dict", "columnar"],
    )
    return SuiteSpec(
        name="smoke",
        scenarios=scenarios,
        description="CI cross-section: 4 scenario families, hard + random "
        "workloads, 4 topology families, both backends",
    )


def _backend_compare_suite() -> SuiteSpec:
    """Every scenario twice — dict vs columnar — for pairwise parity."""
    scenarios = ()
    for family, query, query_params, topology, topology_params, semiring in (
        (
            "backend-degenerate", "degenerate", {"vertices": 6, "d": 2},
            "clique", {"n": 4}, "boolean",
        ),
        (
            "backend-acyclic", "acyclic", {"edges": 4, "arity": 3},
            "hypercube", {"dim": 3}, "counting",
        ),
        (
            "backend-tree", "tree", {"edges": 5},
            "expander", {"n": 8, "degree": 3, "seed": 1}, "counting",
        ),
    ):
        scenarios += expand_grid(
            dict(
                family=family,
                query=query,
                query_params=query_params,
                topology=topology,
                topology_params=topology_params,
                semiring=semiring,
                n=48,
                domain_size=24,
                seed=DEFAULT_SEED,
            ),
            backend=["dict", "columnar"],
        )
    return SuiteSpec(
        name="backend-compare",
        scenarios=scenarios,
        description="dict vs columnar storage on identical scenarios; "
        "answer digests and round counts must match pairwise",
    )


def _scaling_suite() -> SuiteSpec:
    """Size and player-count sweeps (the persisted perf trajectory)."""
    scenarios = expand_grid(
        dict(
            family="scaling-n",
            query="hard-star",
            query_params={"arms": 4},
            topology="line",
            topology_params={"n": 4},
            assignment="worst-case",
            seed=DEFAULT_SEED,
        ),
        n=[32, 64, 128, 256, 1024],
    ) + expand_grid(
        # The headline streaming workload on the columnar data plane —
        # the rows the engine-speedup criterion is measured on.
        dict(
            family="scaling-xl",
            query="hard-star",
            query_params={"arms": 4},
            topology="line",
            topology_params={"n": 4},
            assignment="worst-case",
            backend="columnar",
            seed=DEFAULT_SEED,
        ),
        n=[2048, 8192],
    ) + expand_grid(
        dict(
            family="scaling-players",
            query="hard-path",
            query_params={"length": 4},
            topology="hypercube",
            n=64,
            assignment="worst-case",
            seed=DEFAULT_SEED,
        ),
        topology_params=[{"dim": dim} for dim in (2, 3, 4)],
    ) + expand_grid(
        dict(
            family="scaling-acyclic",
            query="acyclic",
            query_params={"edges": 5, "arity": 3},
            topology="expander",
            topology_params={"n": 8, "degree": 3, "seed": 1},
            domain_size=16,
            semiring="counting",
            backend="columnar",
            seed=DEFAULT_SEED,
        ),
        n=[32, 64, 128],
    )
    return SuiteSpec(
        name="scaling",
        scenarios=scenarios,
        description="N doubling and player-count sweeps across two query "
        "families; the artifact is the perf trajectory",
    )


def _solver_scaling_suite() -> SuiteSpec:
    """Solver-axis scaling rows: sizes where the reference solve is the
    hot loop.  The protocol runs on the compiled engine throughout, so
    within a solver pair only the FAQ solver varies."""
    scenarios = expand_grid(
        dict(
            family="solver-xl",
            query="hard-star",
            query_params={"arms": 4},
            topology="line",
            topology_params={"n": 4},
            assignment="worst-case",
            backend="columnar",
            engine="compiled",
            seed=DEFAULT_SEED,
        ),
        n=[2048, 8192, 32768],
    ) + expand_grid(
        dict(
            family="solver-acyclic",
            query="acyclic",
            query_params={"edges": 5, "arity": 3},
            topology="expander",
            topology_params={"n": 8, "degree": 3, "seed": 1},
            domain_size=16,
            semiring="counting",
            backend="columnar",
            engine="compiled",
            seed=DEFAULT_SEED,
        ),
        n=[128, 512],
    )
    return SuiteSpec(
        name="solver-scaling",
        scenarios=scenarios,
        description="N doubling sweeps sized so the FAQ solver dominates; "
        "the artifact is the solver perf trajectory",
    )


def with_engines(suite: SuiteSpec, name: str, description: str) -> SuiteSpec:
    """Pair every scenario of ``suite`` across both protocol engines.

    Consecutive scenarios differ only in ``engine``, so reports read as
    generator/compiled pairs and the ``parity`` command (and tests) can
    assert digest + rounds + bits equality pairwise.
    """
    scenarios = tuple(
        spec.with_(engine=engine)
        for spec in suite.scenarios
        for engine in ENGINES
    )
    return SuiteSpec(name=name, scenarios=scenarios, description=description)


def _engine_compare_suite() -> SuiteSpec:
    return with_engines(
        _table1_suite(),
        "engine-compare",
        "every Table 1 scenario on both protocol engines; answer digests, "
        "round counts and total bits must match pairwise",
    )


def _engine_smoke_suite() -> SuiteSpec:
    return with_engines(
        _smoke_suite(),
        "engine-smoke",
        "the CI smoke cross-section on both protocol engines (the "
        "engine-parity gate)",
    )


def with_solvers(suite: SuiteSpec, name: str, description: str) -> SuiteSpec:
    """Pair every scenario of ``suite`` across both FAQ solvers.

    Consecutive scenarios differ only in ``solver``, so reports read as
    operator/compiled pairs and the ``parity`` command (and tests) can
    assert digest + rounds + bits equality pairwise — the solver twin of
    :func:`with_engines`.
    """
    scenarios = tuple(
        spec.with_(solver=solver)
        for spec in suite.scenarios
        for solver in SOLVERS
    )
    return SuiteSpec(name=name, scenarios=scenarios, description=description)


def _solver_compare_suite() -> SuiteSpec:
    return with_solvers(
        _solver_scaling_suite(),
        "solver-compare",
        "the solver-scaling sweep on both FAQ solvers; answer digests, "
        "round counts and total bits must match pairwise, and the "
        "compiled solver's wall-clock trajectory is the artifact",
    )


def _solver_smoke_suite() -> SuiteSpec:
    return with_solvers(
        _smoke_suite(),
        "solver-smoke",
        "the CI smoke cross-section on both FAQ solvers (the "
        "solver-parity gate)",
    )


def with_backends(suite: SuiteSpec, name: str, description: str) -> SuiteSpec:
    """Pair every scenario of ``suite`` across both storage backends.

    The third axis twin of :func:`with_engines`/:func:`with_solvers`:
    consecutive scenarios differ only in ``backend`` and must agree on
    answer digest, round count and total bits.
    """
    scenarios = tuple(
        spec.with_(backend=backend)
        for spec in suite.scenarios
        for backend in BACKENDS
    )
    return SuiteSpec(name=name, scenarios=scenarios, description=description)


def with_kernels(suite: SuiteSpec, name: str, description: str) -> SuiteSpec:
    """Pair every scenario of ``suite`` across both kernel tiers.

    The fourth axis twin: consecutive scenarios differ only in
    ``kernels`` (NumPy vs JIT hot-kernel dispatch) and must agree on
    answer digest, round count and total bits.  Without numba installed
    the ``jit`` tier executes the NumPy kernels, so the pair is still
    meaningful as a dispatch-layer no-op check there and a real
    differential gate where numba is present.
    """
    scenarios = tuple(
        spec.with_(kernels=kernels)
        for spec in suite.scenarios
        for kernels in KERNEL_TIERS
    )
    return SuiteSpec(name=name, scenarios=scenarios, description=description)


def with_axes(suite: SuiteSpec, name: str, description: str) -> SuiteSpec:
    """Sweep every scenario across the full engine x solver x backend x
    kernels grid (16 planes per scenario).

    Each consecutive block of 16 shares one scenario identity; the
    ``parity`` command and :func:`repro.lab.report.all_parity_failures`
    then assert the byte-identical contract pairwise along every axis.
    """
    suite = with_engines(suite, name, description)
    suite = with_solvers(suite, name, description)
    suite = with_backends(suite, name, description)
    return with_kernels(suite, name, description)


def _fuzz_suite(seed: int = DEFAULT_SEED) -> SuiteSpec:
    from .generate import fuzz_suite

    # 25 identities x 16 axis planes = 400 certified runs.
    return fuzz_suite(master_seed=seed, count=25, name="fuzz")


def _fuzz_smoke_suite(seed: int = DEFAULT_SEED) -> SuiteSpec:
    from .generate import fuzz_suite

    return fuzz_suite(master_seed=seed, count=6, name="fuzz-smoke")


def _kernels_smoke_suite() -> SuiteSpec:
    return with_kernels(
        _smoke_suite(),
        "kernels-smoke",
        "the CI smoke cross-section on both kernel tiers (the "
        "kernel-dispatch parity gate; the jit tier resolves to numpy "
        "when numba is absent)",
    )


register_suite("smoke", _smoke_suite)
register_suite("table1", _table1_suite)
register_suite("table1-line", table1_line_suite)
register_suite("table1-arbitrary", table1_arbitrary_suite)
register_suite("table1-degenerate", table1_degenerate_suite)
register_suite("table1-hypergraph", table1_hypergraph_suite)
register_suite("backend-compare", _backend_compare_suite)
register_suite("scaling", _scaling_suite)
register_suite("engine-compare", _engine_compare_suite)
register_suite("engine-smoke", _engine_smoke_suite)
register_suite("solver-scaling", _solver_scaling_suite)
register_suite("solver-compare", _solver_compare_suite)
register_suite("solver-smoke", _solver_smoke_suite)
register_suite("kernels-smoke", _kernels_smoke_suite)
register_suite("fuzz", _fuzz_suite)
register_suite("fuzz-smoke", _fuzz_smoke_suite)
