"""Scenario materialization + the parallel, cache-aware suite runner.

The runner is the only place a :class:`~repro.lab.spec.ScenarioSpec`
becomes live objects: a query family builder produces the
:class:`~repro.faq.query.FAQQuery` (threading explicit child seeds from
:func:`repro.workloads.spawn_seeds` through every generator call site), a
topology family builder produces the :class:`~repro.network.Topology`,
and the assignment policy places relations on players.  Execution then
goes through the repository's headline API — ``Planner.execute`` on the
round simulator — exactly like the hand-written benchmarks did.

:func:`run_suite` executes a :class:`~repro.lab.spec.SuiteSpec`:

* scenarios whose content hash is in the :class:`~repro.lab.cache
  .ResultCache` are served from disk (incremental re-runs);
* the rest run serially (``jobs=1``) or on a ``ProcessPoolExecutor``
  (``jobs>1``) — workers only *compute*; the coordinating process does
  all cache writes, so the JSONL stays single-writer;
* results are assembled in **suite order** regardless of completion
  order, which is what makes ``--jobs N`` byte-identical to serial.
"""

from __future__ import annotations

import json
import os
import sys
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import kernels
from ..core.memo import LRUMemo, clear_all_memos, memo_stats
from ..core.planner import Planner, assign_single_player, worst_case_assignment
from ..faq import FAQQuery, bcq
from ..hypergraph import Hypergraph
from ..lowerbounds import embed_tribes_in_forest, embedding_capacity, hard_tribes
from ..lowerbounds.bounds import table1_gap_budget
from ..lowerbounds.cut_simulation import (
    CutAccountingError,
    cut_transcript,
    verify_cut_accounting,
)
from ..network.topology import Topology
from ..obs.counters import COUNTERS, counter_delta, deterministic_view
from ..obs.logging import CaptureHandler, get_logger
from ..obs.trace import RecordingTracer, TraceEvent, Tracer
from ..obs.verify import verify_trace
from ..semiring import get_semiring
from ..workloads import random_instance, random_query_structure, spawn_seeds
from .cache import ResultCache
from .results import ScenarioResult, answer_digest
from .spec import ScenarioSpec, SuiteSpec

#: Semirings whose random instances carry float annotations.
_WEIGHTED_SEMIRINGS = frozenset({"real", "min-plus", "max-plus", "max-times"})


@dataclass
class BuiltQuery:
    """A materialized query plus the embedding metadata policies need.

    ``s_edges``/``t_edges`` are the TRIBES sides of the hard instances —
    present only for the ``hard-*`` families, and required by the
    ``worst-case`` assignment policy.
    """

    query: FAQQuery
    s_edges: Tuple[str, ...] = ()
    t_edges: Tuple[str, ...] = ()


# ---------------------------------------------------------------------------
# Query families
# ---------------------------------------------------------------------------


def _embedded_tribes_query(h: Hypergraph, spec: ScenarioSpec, name: str) -> BuiltQuery:
    """The Lemma 4.4 hard instance: TRIBES embedded in a forest query."""
    (tribes_seed,) = spawn_seeds(spec.seed, 1)
    value = bool(spec.param("value", True))
    tribes = hard_tribes(embedding_capacity(h), spec.n, value, seed=tribes_seed)
    emb = embed_tribes_in_forest(h, tribes)
    query = bcq(h, emb.factors, emb.domains, name=name)
    return BuiltQuery(query, s_edges=tuple(emb.s_edges), t_edges=tuple(emb.t_edges))


def _build_hard_star(spec: ScenarioSpec) -> BuiltQuery:
    arms = int(spec.param("arms", 4))
    return _embedded_tribes_query(
        Hypergraph.star(arms), spec, name=f"hard-star({arms})"
    )


def _build_hard_path(spec: ScenarioSpec) -> BuiltQuery:
    length = int(spec.param("length", 4))
    return _embedded_tribes_query(
        Hypergraph.path(length), spec, name=f"hard-path({length})"
    )


def _random_instance_query(
    h: Hypergraph, spec: ScenarioSpec, name: str, instance_seed: int
) -> BuiltQuery:
    """Random factors over ``h`` in the spec's semiring, free_vars = ().

    ``instance_seed`` must be a *distinct* child of the master seed from
    the structure seed (``spawn_seeds`` prefix stability makes
    re-deriving ``spawn_seeds(spec.seed, 1)[0]`` here collide with the
    callers' structure stream).
    """
    semiring = get_semiring(spec.semiring)
    factors, domains = random_instance(
        h,
        domain_size=spec.domain_size,
        relation_size=spec.n,
        seed=instance_seed,
        semiring=semiring,
        weighted=spec.semiring in _WEIGHTED_SEMIRINGS,
        # Exactly-representable weights: the 8-plane parity contract
        # needs float folds to agree bytewise in any reduction order.
        exact=True,
    )
    if spec.semiring == "boolean":
        return BuiltQuery(bcq(h, factors, domains, name=name))
    return BuiltQuery(
        FAQQuery(
            hypergraph=h,
            factors=factors,
            domains=domains,
            free_vars=(),
            semiring=semiring,
            name=name,
        )
    )


def _build_degenerate(spec: ScenarioSpec) -> BuiltQuery:
    vertices = int(spec.param("vertices", 6))
    d = int(spec.param("d", 2))
    structure_seed, instance_seed = spawn_seeds(spec.seed, 2)
    h = random_query_structure(
        "degenerate", seed=structure_seed, num_vertices=vertices, d=d
    )
    return _random_instance_query(
        h, spec, name=f"degen(v{vertices},d{d})", instance_seed=instance_seed
    )


def _build_acyclic(spec: ScenarioSpec) -> BuiltQuery:
    edges = int(spec.param("edges", 5))
    arity = int(spec.param("arity", 3))
    structure_seed, instance_seed = spawn_seeds(spec.seed, 2)
    h = random_query_structure(
        "acyclic", seed=structure_seed, num_edges=edges, arity=arity
    )
    return _random_instance_query(
        h, spec, name=f"acyclic(e{edges},r{arity})", instance_seed=instance_seed
    )


def _build_tree(spec: ScenarioSpec) -> BuiltQuery:
    edges = int(spec.param("edges", 5))
    structure_seed, instance_seed = spawn_seeds(spec.seed, 2)
    h = random_query_structure("tree", seed=structure_seed, num_edges=edges)
    return _random_instance_query(
        h, spec, name=f"tree(e{edges})", instance_seed=instance_seed
    )


def _build_forest(spec: ScenarioSpec) -> BuiltQuery:
    trees = int(spec.param("trees", 2))
    edges = int(spec.param("edges", 2))
    structure_seed, instance_seed = spawn_seeds(spec.seed, 2)
    h = random_query_structure(
        "forest", seed=structure_seed, num_trees=trees, edges_per_tree=edges
    )
    return _random_instance_query(
        h, spec, name=f"forest(t{trees},e{edges})", instance_seed=instance_seed
    )


def _build_hard_forest(spec: ScenarioSpec) -> BuiltQuery:
    """A TRIBES embedding into a *random* forest — the Lemma 4.4 hard
    instance with fuzzed structure instead of the fixed star/path shapes.

    Seed streams: ``spawn_seeds(spec.seed, 2)`` yields ``(tribes_seed,
    structure_seed)``; ``_embedded_tribes_query`` re-derives the same
    ``tribes_seed`` as ``spawn_seeds(spec.seed, 1)[0]`` (prefix
    stability), so the two call sites stay on distinct streams.
    """
    trees = int(spec.param("trees", 2))
    edges = int(spec.param("edges", 2))
    if edges < 2:
        raise ValueError(
            "hard-forest needs edges >= 2 per tree (a single-edge tree "
            "has no internal vertex to plant a TRIBES pair on)"
        )
    _tribes_seed, structure_seed = spawn_seeds(spec.seed, 2)
    h = random_query_structure(
        "forest", seed=structure_seed, num_trees=trees, edges_per_tree=edges
    )
    return _embedded_tribes_query(
        h, spec, name=f"hard-forest(t{trees},e{edges})"
    )


QUERY_FAMILIES: Dict[str, Callable[[ScenarioSpec], BuiltQuery]] = {
    "hard-star": _build_hard_star,
    "hard-path": _build_hard_path,
    "hard-forest": _build_hard_forest,
    "degenerate": _build_degenerate,
    "acyclic": _build_acyclic,
    "tree": _build_tree,
    "forest": _build_forest,
}

#: Query families whose instances *are* the paper's lower-bound
#: constructions (TRIBES embeddings).  Under the ``worst-case``
#: assignment the Lemma 4.4 reduction applies to the run, so the
#: certification plane enforces the TRIBES bits floor — the embedded
#: instance's content must cross the min cut (``cut_bits >= m * N``).
#: Random-content families only certify the instance-independent
#: cut-accounting bound (the worst-case formulas are statements a lucky
#: instance may legitimately beat).
CERTIFIED_QUERY_FAMILIES = frozenset({"hard-star", "hard-path", "hard-forest"})


# ---------------------------------------------------------------------------
# Topology families
# ---------------------------------------------------------------------------

TOPOLOGY_FAMILIES: Dict[str, Callable[..., Topology]] = {
    "line": lambda n: Topology.line(n),
    "ring": lambda n: Topology.ring(n),
    "clique": lambda n: Topology.clique(n),
    "star": lambda leaves: Topology.star(leaves),
    "grid": lambda rows, cols: Topology.grid(rows, cols),
    "tree": lambda branching, depth: Topology.balanced_tree(branching, depth),
    "barbell": lambda clique_size, path_len: Topology.barbell(clique_size, path_len),
    "hypercube": lambda dim: Topology.hypercube(dim),
    "expander": lambda n, degree, seed=0: Topology.expander(n, degree, seed=seed),
    "regular": lambda n, degree, seed=0: Topology.random_regular(degree, n, seed=seed),
    "two-party": lambda: Topology.two_party(),
}


def build_query(spec: ScenarioSpec) -> BuiltQuery:
    """Materialize the spec's query family."""
    try:
        builder = QUERY_FAMILIES[spec.query]
    except KeyError:
        known = ", ".join(sorted(QUERY_FAMILIES))
        raise ValueError(f"unknown query family {spec.query!r}; known: {known}")
    return builder(spec)


def build_topology(spec: ScenarioSpec) -> Topology:
    """Materialize the spec's topology family."""
    try:
        builder = TOPOLOGY_FAMILIES[spec.topology]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGY_FAMILIES))
        raise ValueError(f"unknown topology family {spec.topology!r}; known: {known}")
    try:
        return builder(**dict(spec.topology_params))
    except TypeError as exc:
        raise ValueError(
            f"bad topology params for {spec.topology!r}: "
            f"{dict(spec.topology_params)} ({exc})"
        ) from exc


def build_assignment(
    spec: ScenarioSpec, built: BuiltQuery, topology: Topology
) -> Optional[Dict[str, str]]:
    """Materialize the assignment policy (None = Planner's round-robin)."""
    if spec.assignment == "round-robin":
        return None
    if spec.assignment == "single":
        return assign_single_player(built.query, topology.nodes[0])
    if spec.assignment == "worst-case":
        if not built.s_edges or not built.t_edges:
            raise ValueError(
                f"assignment 'worst-case' needs a hard-* query family with "
                f"TRIBES sides; {spec.query!r} provides none"
            )
        return worst_case_assignment(
            built.s_edges,
            built.t_edges,
            built.query.hypergraph.edge_names,
            topology,
            topology.nodes,
        )
    raise ValueError(f"unknown assignment policy {spec.assignment!r}")


def _gap_budget(family: str, d: float, r: float) -> float:
    """The Table 1 budget when ``family`` is a paper row; otherwise the
    most generous structural budget (d²r²) so lab-only families still get
    a meaningful shape check."""
    try:
        return table1_gap_budget(family, d, r)
    except ValueError:
        return max(1.0, d) * max(1.0, d) * max(1.0, r) * max(1.0, r)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


#: Certification verdicts shared across axis planes.  The block is a
#: pure function of the plane-stripped identity plus the measured
#: accounting (rounds, bits) — and the axis planes of one identity are
#: per-round accounting-identical by the parity/cost/trace gates, so
#: the two-party cut transcript extraction runs once per identity.
#: Fires after the per-scenario counter window closes, so sharing is
#: trivially counter-neutral.
_CERTIFY_MEMO = LRUMemo("runner.certification", maxsize=1024)


def certify_bounds(
    spec: ScenarioSpec,
    planner: Planner,
    report,
) -> Dict[str, object]:
    """Memoized wrapper over :func:`_certify_bounds_uncached` — see the
    :data:`_CERTIFY_MEMO` note; callers get a fresh dict per call."""
    key = (
        _prediction_key(spec),
        int(report.measured_rounds),
        int(report.total_bits),
    )
    block = _CERTIFY_MEMO.get_or_compute(
        key, lambda: _certify_bounds_uncached(spec, planner, report)
    )
    return dict(block)


def _certify_bounds_uncached(
    spec: ScenarioSpec,
    planner: Planner,
    report,
) -> Dict[str, object]:
    """The lower-bound certification for one executed scenario.

    Two machine-checked, constant-1 oracles:

    * **Cut accounting** (every scenario): extract the two-party
      transcript across a minimum K-separating cut
      (:func:`repro.lowerbounds.cut_simulation.cut_transcript`) and check
      the Lemma 4.4 identity — at most ``cut * B`` bits cross per round
      (:func:`verify_cut_accounting`).  ``lower_certified`` records the
      same identity in rounds form, ``measured_rounds >=
      bits_crossing / (cut * B)``, for reports.  A violation means an
      engine lied about rounds or bits.
    * **TRIBES bits floor** (TRIBES-embedded worst-case scenarios only,
      see :data:`CERTIFIED_QUERY_FAMILIES`): the run is the paper's hard
      instance, so the induced two-party protocol must carry the
      embedded TRIBES content across the cut —
      ``cut_bits >= m * N`` bits (``tribes_bits_floor``), the Lemma 4.4
      reduction's communication claim with constant 1.

    The *rounds*-form formula bound (``lower_formula``, the paper's
    ``Ω̃(mN / MinCut log MinCut)``) is recorded and aggregated as the
    ``gap`` but deliberately **not** gated: its constant is suppressed by
    ``Ω̃``, and fuzzing showed protocols legitimately beating the
    constant-1 rounds form on parallel forest shapes (by shipping only
    the smaller TRIBES side) while comfortably satisfying the bits form.

    Returns the certification fields of a
    :class:`~repro.lab.results.ScenarioResult`.
    """
    players = planner.players
    if len(players) >= 2:
        transcript = cut_transcript(
            planner.topology, players, report.protocol.simulation
        )
        capacity = report.protocol.plan.capacity_bits
        cut_bits = int(transcript.bits_crossing)
        cut_size = int(transcript.cut_size)
        lower_certified = cut_bits / (cut_size * capacity)
        try:
            verify_cut_accounting(transcript, capacity)
            cut_ok = True
        except CutAccountingError:
            cut_ok = False
    else:
        cut_bits = cut_size = 0
        lower_certified = 0.0
        cut_ok = True
    formula_certified = (
        spec.query in CERTIFIED_QUERY_FAMILIES
        and spec.assignment == "worst-case"
        and len(players) >= 2
    )
    tribes_bits_floor = 0
    if formula_certified:
        components = report.predicted.components
        m = components.get("m_forest", 0.0) + components.get("m_core", 0.0)
        tribes_bits_floor = int(m) * max(1, planner.query.max_factor_size)
    # ``measured >= lower_certified`` is cut_ok restated (same identity,
    # rounds form), so the oracle has exactly two independent conjuncts.
    bound_ok = cut_ok and cut_bits >= tribes_bits_floor
    return {
        "lower_certified": float(lower_certified),
        "formula_certified": formula_certified,
        "tribes_bits_floor": tribes_bits_floor,
        "bound_ok": bool(bound_ok),
        "cut_bits": cut_bits,
        "cut_size": cut_size,
        "cut_ok": bool(cut_ok),
    }


#: Cost predictions shared across axis planes.  Same precedent as the
#: CLI's ``predict`` dedup: the engine/solver/backend/kernels planes of
#: one identity are accounting-identical (the parity gates enforce it),
#: so the four predicted metrics are a function of the plane-stripped
#: spec alone.  Runs outside the per-scenario counter window, and the
#: memoized path fires no deterministic counters anyway.
_PREDICTION_MEMO = LRUMemo("costmodel.predicted_metrics", maxsize=4096)

#: Spec axes that never change the predicted (or measured) accounting.
_ACCOUNTING_NEUTRAL_AXES = ("engine", "solver", "backend", "kernels")


@lru_cache(maxsize=8192)
def _prediction_key(spec: ScenarioSpec) -> str:
    """The plane-stripped identity a cost prediction is a function of.

    Cached: specs are frozen and hashable, and every structural memo
    lookup (materialization, prediction, certification) rebuilds this
    JSON key otherwise.
    """
    payload = spec.to_json_dict()
    for axis in _ACCOUNTING_NEUTRAL_AXES:
        payload.pop(axis, None)
    return json.dumps(payload, sort_keys=True)


#: Materialized (query, topology, assignment) triples shared across axis
#: planes.  The four accounting-neutral axes never change what gets
#: built, and execution never mutates the built objects (the Planner
#: copies the query on backend conversion), so the 16 planes of one
#: identity materialize once.  Module-level on purpose: inside a
#: ProcessPool worker the memo persists across that worker's scenarios,
#: which is what makes shipping plain specs (instead of pickled
#: materialized objects) cheap.
#: Compiled protocol plans shared across a scenario's *engine* (and
#: kernel-tier) planes.  A plan is a pure function of (instance,
#: backend, solver): compilation fires no counters and both engines
#: execute the same plan object read-only (like the materialized
#: query/topology above, the plan is shared, never copied — execution
#: must not mutate it, which the byte-identity gates enforce).
_PLAN_MEMO = LRUMemo("runner.protocol_plan", maxsize=256)

_MATERIALIZE_MEMO = LRUMemo("runner.materialized", maxsize=128)

#: Volatile wall-clock ledger for the memo above (``--timings`` only).
_MATERIALIZE_CLOCK = {"build_seconds": 0.0, "builds": 0}


#: Shared-memory materialization payloads, keyed by plane-stripped
#: identity (set in pool workers by :func:`_shm_worker_init`).  When a
#: key is present, :func:`materialize_scenario` *attaches* the
#: coordinator's published relations instead of rebuilding them —
#: byte-identical factors (the store round-trip preserves storage
#: backend, row order and dictionary provenance exactly), with only the
#: cheap topology/assignment objects rebuilt locally.
_SHM_PAYLOADS: Dict[str, Dict[str, Any]] = {}

#: Attach handles kept alive for the worker's lifetime: the factors'
#: arrays view the mapped segments, so the handles must not be closed
#: while any memoized query is live.  Process exit reclaims the maps;
#: unlinking is the coordinator's job.
_SHM_ATTACHED: List[Any] = []


def _attach_materialized(
    spec: ScenarioSpec, payload: Dict[str, Any]
) -> Tuple[BuiltQuery, Topology, Optional[Dict[str, str]]]:
    """Materialize from the coordinator's shared-memory publication."""
    from ..serve.store import attach_query

    attached = attach_query(payload)
    _SHM_ATTACHED.append(attached)
    built = BuiltQuery(
        attached.query,
        s_edges=tuple(attached.extra.get("s_edges", ())),
        t_edges=tuple(attached.extra.get("t_edges", ())),
    )
    topology = build_topology(spec)
    assignment = build_assignment(spec, built, topology)
    return built, topology, assignment


def materialize_scenario(
    spec: ScenarioSpec,
) -> Tuple[BuiltQuery, Topology, Optional[Dict[str, str]]]:
    """The spec's (built query, topology, assignment), memoized per
    plane-stripped identity.  Callers must treat the returned objects as
    immutable — they are shared across the scenario's axis planes."""
    key = _prediction_key(spec)

    def build() -> Tuple[BuiltQuery, Topology, Optional[Dict[str, str]]]:
        start = time.perf_counter()
        payload = _SHM_PAYLOADS.get(key)
        if payload is not None:
            triple = _attach_materialized(spec, payload)
        else:
            built = build_query(spec)
            topology = build_topology(spec)
            assignment = build_assignment(spec, built, topology)
            triple = built, topology, assignment
        _MATERIALIZE_CLOCK["build_seconds"] += time.perf_counter() - start
        _MATERIALIZE_CLOCK["builds"] += 1
        return triple

    return _MATERIALIZE_MEMO.get_or_compute(key, build)


#: Per-worker materialization ledgers, keyed by worker pid.  Each pool
#: result ships the worker's *cumulative* snapshot; last-wins per pid,
#: summed at report time.  Cleared at every :func:`run_suite` entry.
_WORKER_MATERIALIZATION: Dict[int, Dict[str, float]] = {}


def _materialization_snapshot() -> Dict[str, float]:
    """This process's cumulative materialization ledger (picklable)."""
    stats = memo_stats().get("runner.materialized", {})
    return {
        "hits": float(stats.get("hits", 0)),
        "misses": float(stats.get("misses", 0)),
        "build_seconds": _MATERIALIZE_CLOCK["build_seconds"],
        "builds": float(_MATERIALIZE_CLOCK["builds"]),
    }


def materialization_timings() -> Dict[str, object]:
    """Volatile stats for the materialization memo (``--timings`` block).

    ``est_saved_seconds`` prices each memo hit at the mean observed
    build time — the serialization/rebuild work the memo avoided.  Under
    ``--jobs N`` each worker ships its cumulative ledger back with every
    result; this merges the coordinator's ledger with the workers'.
    """
    snap = _materialization_snapshot()
    merged = {k: snap[k] for k in ("hits", "misses", "build_seconds", "builds")}
    for worker in _WORKER_MATERIALIZATION.values():
        for field in merged:
            merged[field] += worker.get(field, 0.0)
    mean_build = merged["build_seconds"] / max(1.0, merged["builds"])
    return {
        "hits": int(merged["hits"]),
        "misses": int(merged["misses"]),
        "size": int(memo_stats().get("runner.materialized", {}).get("size", 0)),
        "build_seconds": merged["build_seconds"],
        "est_saved_seconds": merged["hits"] * mean_build,
    }


def certify_costs(
    spec: ScenarioSpec,
    planner: Planner,
    report,
) -> Dict[str, object]:
    """The symbolic cost-plane verdict for one executed scenario.

    The third certification axis (after answer correctness and the
    lower-bound oracles): :func:`repro.costmodel.predict_costs` prices
    the executed plan's skeleton without running a single protocol
    round, and on covered cells the prediction must match the measured
    run **exactly** on all four metrics — rounds, total bits,
    busiest-link bits/round, and the per-directed-link bit map (as a
    digest).  Uncovered cells are reported with ``exact_match=None``;
    they are listed by the CLI, never silently skipped and never gated.

    Returns the ``cost_model`` block of a
    :class:`~repro.lab.results.ScenarioResult`.
    """
    # Late import so worker processes that never touch the cost plane
    # don't pay for sympy-aware modules at import time.
    from ..costmodel import CostModelError, cell_of, edge_digest, is_covered, predict_costs

    simulation = report.protocol.simulation
    measured = {
        "rounds": int(report.measured_rounds),
        "total_bits": int(report.protocol.total_bits),
        "max_edge_bits_per_round": int(simulation.max_edge_bits_per_round),
        "bits_per_edge_digest": edge_digest(simulation.bits_per_edge),
    }
    cell = cell_of(spec)
    block: Dict[str, object] = {
        "cell": list(cell),
        "covered": is_covered(spec),
        "measured": measured,
        "predicted": None,
        "exact_match": None,
    }
    if not block["covered"]:
        return block
    try:
        predicted = dict(_PREDICTION_MEMO.get_or_compute(
            _prediction_key(spec),
            lambda: predict_costs(
                spec, plan=report.protocol.plan,
                nodes=planner.topology.nodes,
            ).metrics(),
        ))
    except CostModelError as exc:
        block["exact_match"] = False
        block["error"] = str(exc)
        return block
    block["predicted"] = predicted
    block["exact_match"] = block["predicted"] == measured
    return block


def _trace_block(
    events: Sequence[TraceEvent], report, cost_model: Dict[str, object]
) -> Dict[str, Any]:
    """The per-run trace-verification verdict (the fourth axis).

    Replaying the trace's ``Send``/``CycleFastForward`` events must
    reproduce the measured :class:`~repro.network.simulator
    .SimulationResult` exactly on all four cost metrics; on cells the
    symbolic cost model covers, that transitively pins
    measured = predicted = traced (``cost_model_match``).
    """
    # Late import mirrors certify_costs: the digest lives in the
    # (sympy-aware) costmodel package.
    from ..costmodel import edge_digest

    verdict = verify_trace(events, report.protocol.simulation)
    covered = bool(cost_model.get("covered"))
    return {
        "events": len(events),
        "verified": verdict.ok,
        "mismatches": list(verdict.mismatches),
        "replayed": {
            "rounds": verdict.replayed.rounds,
            "total_bits": verdict.replayed.total_bits,
            "max_edge_bits_per_round": verdict.replayed.max_edge_bits_per_round,
            "bits_per_edge_digest": edge_digest(verdict.replayed.bits_per_edge),
        },
        "cost_model_match": (
            (verdict.ok and cost_model.get("exact_match") is True)
            if covered
            else None
        ),
    }


def execute_scenario(spec: ScenarioSpec, trace: bool = False) -> ScenarioResult:
    """Run one scenario end-to-end (deterministically).

    This is the worker entry point: it must stay module-level and take
    only picklable arguments.  With ``trace=True`` the run records the
    full protocol event stream, replays it, and attaches the (volatile)
    verification verdict — the events themselves never leave the worker.
    """
    result, _events = _execute_traced(
        spec, RecordingTracer() if trace else None
    )
    return result


def record_scenario_trace(
    spec: ScenarioSpec,
) -> Tuple[ScenarioResult, List[TraceEvent]]:
    """Run one scenario with tracing on, returning the raw event stream.

    The ``repro.lab trace`` subcommand's entry point (in-process only:
    event streams are not shipped across worker boundaries).
    """
    tracer = RecordingTracer()
    result, events = _execute_traced(spec, tracer)
    return result, events


def _execute_traced(
    spec: ScenarioSpec, tracer: Optional[Tracer]
) -> Tuple[ScenarioResult, List[TraceEvent]]:
    start = time.perf_counter()
    built, topology, assignment = materialize_scenario(spec)
    counters_before = COUNTERS.snapshot()
    # The kernel tier is scoped to exactly the counter window: planner
    # construction + execution is where every hot kernel dispatch fires,
    # so the ``kernels.numpy``/``kernels.jit`` deltas are a pure
    # function of (spec, installed numba).
    with kernels.use_tier(spec.kernels):
        planner = Planner(
            built.query, topology, assignment=assignment,
            backend=spec.backend, engine=spec.engine, solver=spec.solver,
            tracer=tracer,
        )
        plan = _PLAN_MEMO.get_or_compute(
            (_prediction_key(spec), spec.backend, spec.solver),
            planner.compile_protocol_plan,
        )
        report = planner.execute(max_rounds=spec.max_rounds, plan=plan)
    observability = deterministic_view(
        counter_delta(counters_before, COUNTERS.snapshot())
    )
    predicted = report.predicted
    d = float(predicted.components.get("d", 1.0))
    r = float(predicted.components.get("r", 2.0))
    lower = float(predicted.lower_rounds)
    gap = (report.measured_rounds / lower) if lower > 0 else None
    certification = certify_bounds(spec, planner, report)
    cost_model = certify_costs(spec, planner, report)
    events: List[TraceEvent] = list(tracer.events) if tracer is not None else []
    trace_verdict = (
        _trace_block(events, report, cost_model) if tracer is not None else None
    )
    result = ScenarioResult(
        spec=spec,
        spec_hash=spec.content_hash(),
        topology_name=topology.name,
        query_name=planner.query.name or spec.query,
        players=len(planner.players),
        d=d,
        r=r,
        rows=planner.query.max_factor_size,
        measured_rounds=report.measured_rounds,
        total_bits=int(report.total_bits),
        link_utilization=float(report.link_utilization),
        upper_formula=float(predicted.upper_rounds),
        lower_formula=lower,
        gap=gap,
        gap_budget=_gap_budget(spec.family, d, r),
        lower_certified=certification["lower_certified"],
        formula_certified=certification["formula_certified"],
        tribes_bits_floor=certification["tribes_bits_floor"],
        bound_ok=certification["bound_ok"],
        cut_bits=certification["cut_bits"],
        cut_size=certification["cut_size"],
        cut_ok=certification["cut_ok"],
        correct=bool(report.correct),
        answer_digest=answer_digest(report.answer.schema, report.answer.rows),
        cost_model=cost_model,
        observability=observability,
        trace=trace_verdict,
        wall_time=time.perf_counter() - start,
        protocol_wall_time=float(report.protocol_wall_time),
        solver_wall_time=float(report.solver_wall_time),
        cached=False,
    )
    return result, events


def _worker_init(path: List[str]) -> None:
    """Propagate the parent's import path to spawn-style workers."""
    for entry in path:
        if entry not in sys.path:
            sys.path.append(entry)


def _shm_worker_init(
    path: List[str], payloads: Dict[str, Dict[str, Any]]
) -> None:
    """Pool initializer for ``--shm`` runs: import path + the published
    materialization payloads (segment names and manifests only — the
    relation bytes stay in shared memory, never on the pickle wire)."""
    _worker_init(path)
    _SHM_PAYLOADS.clear()
    _SHM_PAYLOADS.update(payloads)


def _execute_with_context(
    spec: ScenarioSpec, trace: bool = False
) -> ScenarioResult:
    """Execute one scenario, capturing its log records and warnings.

    ProcessPool workers print to their own (discarded) stderr, so
    anything a scenario logs or warns would silently vanish under
    ``--jobs N``.  Capture both here — inside the worker — and attach
    them to the (picklable) result; the coordinator re-emits them.
    """
    capture = CaptureHandler()
    logger = get_logger()
    logger.addHandler(capture)
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            try:
                result = execute_scenario(spec, trace=trace)
            except Exception as exc:
                raise RuntimeError(
                    f"scenario {spec.label} failed: {exc}"
                ) from exc
    finally:
        logger.removeHandler(capture)
    lines = list(capture.lines)
    lines.extend(
        f"WARNING {w.category.__name__}: {w.message}" for w in caught
    )
    result.captured_logs = lines or None
    return result


def _execute_pooled(
    spec: ScenarioSpec, trace: bool = False
) -> Tuple[ScenarioResult, int, Dict[str, float]]:
    """Pool entry point: the result plus this worker's cumulative
    materialization ledger, so the coordinator's ``--timings`` block can
    account for builds the workers' memos saved."""
    result = _execute_with_context(spec, trace)
    return result, os.getpid(), _materialization_snapshot()


@dataclass
class SuiteRun:
    """One :func:`run_suite` invocation.

    Attributes:
        suite: The executed suite.
        results: One result per suite scenario, **in suite order**.
        cache_hits: Scenario *occurrences* served from the on-disk cache
            (duplicates of a cached scenario each count).
        executed: Unique scenarios executed fresh this run.
        jobs: Worker processes used (1 = in-process serial).
        wall_time: Total coordinator wall time in seconds.
        batch: Grouping/throughput stats when the run came from the
            batched runner (:func:`repro.lab.batch.run_suite_batched`);
            ``None`` for ordinary runs.  Volatile (contains wall-clock
            rates) — never part of the deterministic scenario records.
    """

    suite: SuiteSpec
    results: List[ScenarioResult]
    cache_hits: int
    executed: int
    jobs: int
    wall_time: float
    batch: Optional[Dict[str, Any]] = None

    @property
    def hit_rate(self) -> float:
        """Fraction of suite scenarios served from the cache."""
        return self.cache_hits / len(self.results) if self.results else 0.0

    @property
    def all_correct(self) -> bool:
        return all(r.correct for r in self.results)

    @property
    def traced(self) -> List[ScenarioResult]:
        """Results executed fresh with a trace verdict attached."""
        return [r for r in self.results if r.trace is not None]

    @property
    def trace_mismatches(self) -> List[ScenarioResult]:
        """Traced results whose replay (or cost-model cross-check) failed."""
        return [
            r
            for r in self.traced
            if not r.trace.get("verified")
            or r.trace.get("cost_model_match") is False
        ]


def run_suite(
    suite: SuiteSpec,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    log: Optional[Callable[[str], None]] = None,
    trace: bool = False,
    shm: bool = False,
) -> SuiteRun:
    """Execute a suite: cache lookups, then (parallel) fresh runs.

    Args:
        suite: What to run.
        jobs: ``1`` runs in-process; ``>1`` uses a ProcessPoolExecutor.
        cache: Optional result cache; hits skip execution, fresh results
            are persisted.  ``None`` disables caching entirely.
        force: Ignore cache *reads* (still writes), re-running everything.
        log: Optional progress sink (e.g. ``print``).
        trace: Record and replay-verify the protocol event stream of
            every freshly-executed scenario, attaching the (volatile)
            verdict as ``result.trace``.  Cached hits are not re-traced.
        shm: With ``jobs > 1``, materialize each unique plane-stripped
            identity once in the coordinator and publish the relations
            to a shared-memory store (:mod:`repro.serve.store`); workers
            attach instead of rebuilding.  Results stay byte-identical
            to serial runs (the parallel≡serial gate covers this path).

    Returns:
        A :class:`SuiteRun` whose ``results`` follow suite order exactly,
        independent of ``jobs`` and of worker completion order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    emit = log or (lambda message: None)
    # Every suite run starts with a cold structural memo plane: sharing
    # happens *across the axis planes within this run* (where all the
    # repetition is), and a run's behaviour never depends on what the
    # process executed before it.
    clear_all_memos()
    _WORKER_MATERIALIZATION.clear()
    start = time.perf_counter()

    hashes = [spec.content_hash() for spec in suite.scenarios]
    by_hash: Dict[str, ScenarioResult] = {}
    pending: List[ScenarioSpec] = []
    pending_hashes: List[str] = []
    seen = set()
    from_cache = set()
    for spec, key in zip(suite.scenarios, hashes):
        if key in seen:
            continue
        seen.add(key)
        record = None if (force or cache is None) else cache.get(key)
        if record is not None:
            by_hash[key] = ScenarioResult.from_record(record, cached=True)
            from_cache.add(key)
            emit(f"[cache] {spec.label}")
        else:
            pending.append(spec)
            pending_hashes.append(key)
    # Count *occurrences* (not unique specs) so a fully-cached suite with
    # duplicate scenarios still reports a 100% hit rate.
    cache_hits = sum(1 for key in hashes if key in from_cache)

    executed = len(pending)

    def finish(spec: ScenarioSpec, key: str, result: ScenarioResult) -> None:
        # Persist every completed result immediately so one failing
        # scenario never discards its siblings' finished work.
        by_hash[key] = result
        if cache is not None:
            cache.put(key, result.deterministic_record())
        # Re-emit what the worker captured: log records and warnings
        # raised inside a ProcessPool worker would otherwise vanish.
        for line in result.captured_logs or ():
            emit(f"[log  ] {spec.label}: {line}")
        emit(f"[done ] {spec.label}: rounds={result.measured_rounds}")

    if pending:
        if jobs == 1 or len(pending) == 1:
            for spec, key in zip(pending, pending_hashes):
                emit(f"[run  ] {spec.label}")
                finish(spec, key, _execute_with_context(spec, trace))
        else:
            shm_store = None
            initializer, initargs = _worker_init, (list(sys.path),)
            if shm:
                # Materialize each unique identity once, publish to
                # shared memory; workers receive segment *names* via the
                # pool initializer and attach on first touch.
                from ..serve.store import SharedRelationStore, publish_query

                shm_store = SharedRelationStore()
                payloads: Dict[str, Dict[str, Any]] = {}
                for spec in pending:
                    identity = _prediction_key(spec)
                    if identity in payloads:
                        continue
                    built, _topology, _assignment = materialize_scenario(spec)
                    payloads[identity] = publish_query(
                        shm_store, identity, built.query,
                        extra={
                            "s_edges": built.s_edges,
                            "t_edges": built.t_edges,
                        },
                    )
                initializer = _shm_worker_init
                initargs = (list(sys.path), payloads)
                emit(
                    f"[shm  ] published {len(payloads)} identities "
                    f"({shm_store.total_bytes} bytes shared)"
                )
            emit(f"[pool ] {len(pending)} scenarios on {jobs} workers")
            try:
                with ProcessPoolExecutor(
                    max_workers=jobs, initializer=initializer, initargs=initargs
                ) as pool:
                    futures = {
                        pool.submit(_execute_pooled, spec, trace): (spec, key)
                        for spec, key in zip(pending, pending_hashes)
                    }
                    failure: Optional[BaseException] = None
                    for future in as_completed(futures):
                        spec, key = futures[future]
                        try:
                            result, worker_pid, ledger = future.result()
                            _WORKER_MATERIALIZATION[worker_pid] = ledger
                            finish(spec, key, result)
                        except BaseException as exc:  # noqa: BLE001 — re-raised
                            failure = failure or exc
                    if failure is not None:
                        raise failure
            finally:
                if shm_store is not None:
                    shm_store.close()

    results = [by_hash[key] for key in hashes]
    return SuiteRun(
        suite=suite,
        results=results,
        cache_hits=cache_hits,
        executed=executed,
        jobs=jobs,
        wall_time=time.perf_counter() - start,
    )
