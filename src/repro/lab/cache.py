"""On-disk result cache — content-hash keyed, append-only JSONL.

Layout: ``<cache_dir>/results.jsonl``, one entry per line::

    {"key": "<spec sha256>", "schema": "repro.lab/result.v1", "record": {...}}

Append-only keeps writes atomic-enough for the lab's single-writer model
(workers compute, only the coordinating process writes).  On load, the
*last* entry per key wins, so ``--force`` re-runs simply append fresher
records.  Unreadable lines and records with a foreign schema are skipped
— a stale or corrupt cache degrades to cache misses, never to wrong
results.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from .results import RESULT_SCHEMA

CACHE_FILENAME = "results.jsonl"


class ResultCache:
    """A directory-backed scenario-result cache.

    Args:
        cache_dir: Directory holding ``results.jsonl`` (created lazily on
            first write).
    """

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        self.path = os.path.join(cache_dir, CACHE_FILENAME)
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._skipped = 0
        self._load()

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    self._skipped += 1
                    continue
                if (
                    not isinstance(entry, dict)
                    or entry.get("schema") != RESULT_SCHEMA
                    or "key" not in entry
                    or "record" not in entry
                ):
                    self._skipped += 1
                    continue
                self._entries[entry["key"]] = entry["record"]

    # ------------------------------------------------------------------
    # Mapping-ish surface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached deterministic record for ``key``, or None."""
        return self._entries.get(key)

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Persist ``record`` under ``key`` (append + in-memory update)."""
        os.makedirs(self.cache_dir, exist_ok=True)
        entry = {"key": key, "schema": RESULT_SCHEMA, "record": dict(record)}
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        self._entries[key] = dict(record)

    def items(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        return iter(self._entries.items())

    @property
    def skipped_lines(self) -> int:
        """Lines dropped on load (corruption / schema drift)."""
        return self._skipped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultCache {self.path!r} entries={len(self._entries)}>"
