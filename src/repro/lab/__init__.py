"""repro.lab — the declarative scenario lab.

Describe experiments as hashable :class:`ScenarioSpec` grids, run them
through the paper's Planner/protocol pipeline in parallel with an
on-disk result cache, and persist Table-1-style results as JSON bench
artifacts.  CLI: ``python -m repro.lab run smoke --jobs 2``.
"""

from .batch import (
    BatchParityError,
    plan_groups,
    run_suite_batched,
    stack_queries,
    unstack_answers,
)
from .cache import ResultCache
from .generate import fuzz_suite, generate_scenarios, sample_scenario
from .report import (
    ARTIFACT_FILENAME,
    PARITY_AXES,
    all_parity_failures,
    artifact_bytes,
    artifact_payload,
    bound_violations,
    certification_payload,
    format_aggregate_table,
    format_certification_table,
    format_results_table,
    render_csv,
    render_markdown,
    write_artifact,
)
from .results import (
    FamilyAggregate,
    ScenarioResult,
    aggregate,
    answer_digest,
    percentile,
)
from .runner import (
    CERTIFIED_QUERY_FAMILIES,
    QUERY_FAMILIES,
    TOPOLOGY_FAMILIES,
    SuiteRun,
    build_assignment,
    build_query,
    build_topology,
    execute_scenario,
    run_suite,
)
from .spec import (
    ASSIGNMENTS,
    SPEC_VERSION,
    ScenarioSpec,
    SuiteSpec,
    expand_grid,
)
from .suites import (
    DEFAULT_SEED,
    get_suite,
    register_suite,
    suite_names,
    with_axes,
    with_backends,
    table1_arbitrary_suite,
    table1_degenerate_suite,
    table1_hypergraph_suite,
    table1_line_suite,
)

__all__ = [
    "ScenarioSpec",
    "SuiteSpec",
    "expand_grid",
    "ASSIGNMENTS",
    "SPEC_VERSION",
    "ScenarioResult",
    "FamilyAggregate",
    "aggregate",
    "answer_digest",
    "percentile",
    "ResultCache",
    "SuiteRun",
    "run_suite",
    "run_suite_batched",
    "BatchParityError",
    "plan_groups",
    "stack_queries",
    "unstack_answers",
    "execute_scenario",
    "build_query",
    "build_topology",
    "build_assignment",
    "QUERY_FAMILIES",
    "CERTIFIED_QUERY_FAMILIES",
    "TOPOLOGY_FAMILIES",
    "fuzz_suite",
    "generate_scenarios",
    "sample_scenario",
    "PARITY_AXES",
    "all_parity_failures",
    "bound_violations",
    "certification_payload",
    "format_certification_table",
    "with_axes",
    "with_backends",
    "format_results_table",
    "format_aggregate_table",
    "render_markdown",
    "render_csv",
    "artifact_payload",
    "artifact_bytes",
    "write_artifact",
    "ARTIFACT_FILENAME",
    "DEFAULT_SEED",
    "get_suite",
    "register_suite",
    "suite_names",
    "table1_line_suite",
    "table1_arbitrary_suite",
    "table1_degenerate_suite",
    "table1_hypergraph_suite",
]
