"""CLI: ``python -m repro.lab run <suite> [--jobs N] [--out DIR]``.

Commands:

* ``run <suite>`` — execute a registered suite, print the Table-1-style
  scenario table, family aggregates and the bound-certification table,
  and write ``BENCH_lab.json`` (plus optional markdown/CSV) under
  ``--out``.  Exit code 1 when any scenario's protocol answer disagrees
  with the centralized solver, when any run violates its certified
  lower bound, when any engine/solver/backend pair breaks parity, or
  when the symbolic cost model mispredicts any covered run (uncovered
  cells are enumerated on stdout, never gated).
  ``--engine generator|compiled`` overrides every scenario's protocol
  engine; ``--engine both`` runs each scenario on both engines (paired,
  for parity checks and speedup measurements).  ``--solver
  operator|compiled|both`` does the same for the FAQ solver axis.
  ``--timings`` adds a volatile wall-clock section (per-scenario times
  and per-pair engine/solver speedups) to the artifact.  ``--seed N``
  regenerates a generated (fuzz) suite from master seed N.
* ``parity <BENCH_lab.json>`` — verify parity in an artifact: every pair
  of scenarios differing only in the protocol engine, only in the FAQ
  solver, or only in the storage backend must agree exactly on answer
  digest, round count and total bits.  Exit code 1 on any mismatch.
* ``predict <suite>`` — price every scenario of a suite symbolically
  (zero protocol execution): per-scenario rounds/bits/busiest-link
  estimates, the coverage report, and with ``--symbolic`` the kernel
  formula table.  ``--artifact BENCH_lab.json`` cross-checks every
  covered prediction against the recorded measurements (exit 1 on any
  mismatch — the artifact-consistency oracle CI runs).
* ``trace <suite> [--scenario LABEL]`` — execute one scenario of a suite
  with the protocol event tracer on, write the event stream as JSONL and
  as Chrome trace-event JSON (loadable at https://ui.perfetto.dev) under
  ``--out``, print the terminal round-by-round link-utilization
  timeline, and replay-verify the trace against the measured run (exit
  code 1 on any replay or cost-model mismatch).
* ``list`` — show the registered suites with sizes and descriptions.

Every subcommand takes ``--log-level debug|info|warning|error``
(default ``info``); ``run --trace`` additionally replay-verifies every
freshly-executed scenario's event stream in the workers and gates on the
verdicts like the certification planes.

Caching defaults to ``<out>/.lab_cache/results.jsonl``; re-runs are
incremental (only new/changed scenarios execute).  ``--no-cache``
disables it, ``--force`` ignores cache reads but still persists fresh
results.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import List, Optional

from ..faq import SOLVERS
from ..kernels import KERNEL_TIERS
from ..obs.logging import LOG_LEVELS, configure as configure_logging, get_logger
from ..protocols.faq_protocol import ENGINES
from .cache import ResultCache
from .report import (
    all_parity_failures,
    artifact_payload,
    backend_pairs,
    engine_pairs,
    format_aggregate_table,
    format_certification_table,
    format_cost_table,
    format_results_table,
    kernels_pairs,
    render_csv,
    render_markdown,
    solver_pairs,
    write_artifact,
)
from .results import aggregate
from .runner import run_suite
from .spec import SuiteSpec
from .suites import (
    get_suite,
    suite_names,
    with_engines,
    with_kernels,
    with_solvers,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lab",
        description="Declarative scenario lab: run experiment suites "
        "through the distributed-FAQ pipeline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--log-level", choices=list(LOG_LEVELS), default="info",
        help="logging verbosity for progress/diagnostic lines "
        "(default: info; result tables always print)",
    )

    run_p = sub.add_parser(
        "run", help="run a registered suite", parents=[common]
    )
    run_p.add_argument("suite", help=f"one of: {', '.join(suite_names())}")
    run_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1 = serial in-process)",
    )
    run_p.add_argument(
        "--out", default=".", metavar="DIR",
        help="output directory for BENCH_lab.json (default: cwd)",
    )
    run_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: <out>/.lab_cache)",
    )
    run_p.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    run_p.add_argument(
        "--force", action="store_true",
        help="ignore cache reads (still writes fresh results)",
    )
    run_p.add_argument(
        "--markdown", action="store_true",
        help="also write <out>/LAB_<suite>.md",
    )
    run_p.add_argument(
        "--csv", action="store_true", help="also write <out>/LAB_<suite>.csv"
    )
    run_p.add_argument(
        "--quiet", action="store_true", help="suppress per-scenario progress"
    )
    run_p.add_argument(
        "--engine", choices=list(ENGINES) + ["both"], default=None,
        help="override the protocol engine for every scenario "
        "('both' pairs each scenario across engines)",
    )
    run_p.add_argument(
        "--solver", choices=list(SOLVERS) + ["both"], default=None,
        help="override the FAQ solver for every scenario "
        "('both' pairs each scenario across solvers)",
    )
    run_p.add_argument(
        "--kernels", choices=list(KERNEL_TIERS) + ["both"], default=None,
        help="override the hot-kernel tier for every scenario "
        "('both' pairs each scenario across the numpy and jit tiers; "
        "jit falls back to numpy when numba is not installed)",
    )
    run_p.add_argument(
        "--batch", action="store_true",
        help="group structurally identical scenarios: shared "
        "materialization and memos, one stacked tensor solve per group "
        "cross-checked against every member (adds a volatile "
        "'throughput' block to BENCH_lab.json; serial only)",
    )
    run_p.add_argument(
        "--timings", action="store_true",
        help="add a volatile wall-clock section (per-scenario times, "
        "per-pair engine/solver speedups) to BENCH_lab.json",
    )
    run_p.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="master seed for generated suites (fuzz*): regenerates the "
        "whole scenario stream deterministically from N",
    )
    run_p.add_argument(
        "--trace", action="store_true",
        help="record + replay-verify the protocol event stream of every "
        "freshly-executed scenario (exit 1 on any replay mismatch)",
    )
    run_p.add_argument(
        "--shm", action="store_true",
        help="with --jobs N: materialize each unique identity once and "
        "publish its relations to shared memory; workers attach "
        "zero-copy instead of rebuilding (results stay byte-identical)",
    )

    parity_p = sub.add_parser(
        "parity", help="check engine parity in a BENCH_lab.json artifact",
        parents=[common],
    )
    parity_p.add_argument("artifact", help="path to BENCH_lab.json")

    predict_p = sub.add_parser(
        "predict",
        help="price a suite symbolically — zero protocol execution",
        parents=[common],
    )
    predict_p.add_argument(
        "suite", help=f"one of: {', '.join(suite_names())}"
    )
    predict_p.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="master seed for generated suites (fuzz*)",
    )
    predict_p.add_argument(
        "--artifact", default=None, metavar="PATH",
        help="cross-check predictions against a BENCH_lab.json: every "
        "covered scenario's prediction must reproduce the recorded "
        "measurement exactly (exit 1 on any mismatch)",
    )
    predict_p.add_argument(
        "--symbolic", action="store_true",
        help="also print the per-primitive symbolic kernel table",
    )

    trace_p = sub.add_parser(
        "trace",
        help="trace one scenario: event stream, Perfetto export, "
        "terminal timeline, replay verification",
        parents=[common],
    )
    trace_p.add_argument(
        "suite", help=f"one of: {', '.join(suite_names())}"
    )
    trace_p.add_argument(
        "--scenario", default=None, metavar="LABEL",
        help="substring of the scenario label to trace "
        "(default: the suite's first scenario)",
    )
    trace_p.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="master seed for generated suites (fuzz*)",
    )
    trace_p.add_argument(
        "--out", default=".", metavar="DIR",
        help="output directory for TRACE_<scenario>.jsonl and "
        "TRACE_<scenario>.chrome.json (default: cwd)",
    )

    sub.add_parser("list", help="list registered suites", parents=[common])
    return parser


def _cmd_list() -> int:
    for name in suite_names():
        suite = get_suite(name)
        print(f"{name:<20} {len(suite):>3} scenarios  {suite.description}")
    return 0


def _cmd_parity(args: argparse.Namespace) -> int:
    with open(args.artifact, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    records = payload.get("scenarios", [])
    e_pairs = engine_pairs(records)
    s_pairs = solver_pairs(records)
    b_pairs = backend_pairs(records)
    k_pairs = kernels_pairs(records)
    if not e_pairs and not s_pairs and not b_pairs and not k_pairs:
        print(
            "no engine, solver, backend or kernels pairs in artifact (run "
            "a suite with --engine both / --solver both / --kernels both, "
            "or the *-compare/*-smoke/fuzz suites)"
        )
        return 1
    failures = all_parity_failures(records)
    print(
        f"{len(e_pairs)} engine pair(s), {len(s_pairs)} solver pair(s), "
        f"{len(b_pairs)} backend pair(s), {len(k_pairs)} kernels pair(s) "
        "checked"
    )
    if failures:
        print(f"PARITY FAILURES ({len(failures)}):", *failures, sep="\n  ")
        return 1
    print("parity OK: answer digests, rounds and bits all equal")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    """Symbolically price every scenario of a suite — zero execution.

    With ``--artifact``, every covered scenario present in the artifact
    must have its recorded measurement reproduced exactly by the
    prediction (all four metrics); exit 1 otherwise.
    """
    from ..costmodel import (
        COVERED_CELLS,
        CostModelError,
        cell_of,
        coverage_report,
        format_kernel_table,
        predict_costs,
    )

    suite = get_suite(args.suite, seed=args.seed)
    recorded = {}
    if args.artifact:
        with open(args.artifact, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        recorded = {
            record["spec_hash"]: record
            for record in payload.get("scenarios", [])
        }

    if args.symbolic:
        print(format_kernel_table())
        print()

    # One base prediction per plane-stripped spec: the engine/solver/
    # backend/kernels planes are accounting-identical (the parity gates
    # enforce it), so 16 planes of a scenario share one skeleton price.
    cache = {}
    mismatches: List[str] = []
    matched = 0
    header = (
        f"{'scenario':<52} {'cov':>3} {'rounds':>7} {'bits':>9} "
        f"{'busiest':>7}"
    )
    print(header)
    print("-" * len(header))
    for spec in suite:
        key = json.dumps(
            {
                k: v
                for k, v in spec.to_json_dict().items()
                if k not in ("engine", "solver", "backend", "kernels")
            },
            sort_keys=True,
        )
        try:
            if key in cache:
                prediction = cache[key]
            else:
                prediction = cache[key] = predict_costs(spec)
        except CostModelError as exc:
            print(f"{spec.label:<52} PREDICTION FAILED: {exc}")
            mismatches.append(f"{spec.label}: {exc}")
            continue
        covered = cell_of(spec) in COVERED_CELLS
        print(
            f"{spec.label:<52} {'y' if covered else '-':>3} "
            f"{prediction.rounds:>7} {prediction.total_bits:>9} "
            f"{prediction.max_edge_bits_per_round:>7}"
        )
        record = recorded.get(spec.content_hash())
        if record is None or not covered:
            continue
        matched += 1
        block = record.get("cost_model") or {}
        measured = block.get("measured") or {
            "rounds": record["measured_rounds"],
            "total_bits": record["total_bits"],
        }
        predicted = prediction.metrics()
        diffs = [
            f"{metric} predicted={predicted[metric]!r} "
            f"recorded={measured[metric]!r}"
            for metric in measured
            if metric in predicted and predicted[metric] != measured[metric]
        ]
        if diffs:
            mismatches.append(f"{spec.label}: " + "; ".join(diffs))

    coverage = coverage_report(cell_of(s) for s in suite)
    print()
    print(
        f"suite {suite.name!r}: {coverage['runs']} scenarios priced, "
        f"{coverage['covered_runs']} in covered cells "
        f"({len(coverage['covered_cells'])} distinct), "
        f"{len(coverage['uncovered_cells'])} uncovered cell(s)"
    )
    for cell in coverage["uncovered_cells"]:
        print(f"  uncovered: {cell}")
    if args.artifact:
        print(
            f"artifact cross-check: {matched} covered scenario(s) "
            f"matched against {args.artifact}, "
            f"{len(mismatches)} mismatch(es)"
        )
        if matched == 0:
            print(
                "NO OVERLAP with the artifact (wrong suite or --seed?)"
            )
            return 1
    if mismatches:
        print(
            f"COST MISMATCHES ({len(mismatches)}):", *mismatches,
            sep="\n  ",
        )
        return 1
    return 0


def _sanitize_label(label: str) -> str:
    """A filesystem-safe stand-in for a scenario label."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label).strip("_")


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace one scenario end-to-end and replay-verify the event stream."""
    from ..obs.export import (
        events_to_chrome_trace,
        events_to_jsonl,
        format_timeline,
    )
    from .runner import record_scenario_trace

    logger = get_logger("lab")
    suite = get_suite(args.suite, seed=args.seed)
    specs = list(suite)
    if args.scenario is not None:
        matches = [s for s in specs if args.scenario in s.label]
        if not matches:
            print(
                f"no scenario of suite {suite.name!r} matches "
                f"{args.scenario!r}; labels:"
            )
            for s in specs:
                print(f"  {s.label}")
            return 1
        spec = matches[0]
    else:
        spec = specs[0]

    logger.info(f"[trace] {spec.label}")
    result, events = record_scenario_trace(spec)

    os.makedirs(args.out, exist_ok=True)
    base = _sanitize_label(spec.label)
    jsonl_path = os.path.join(args.out, f"TRACE_{base}.jsonl")
    with open(jsonl_path, "w", encoding="utf-8") as fh:
        fh.write(events_to_jsonl(events))
    chrome_path = os.path.join(args.out, f"TRACE_{base}.chrome.json")
    with open(chrome_path, "w", encoding="utf-8") as fh:
        json.dump(events_to_chrome_trace(events), fh, sort_keys=True)
        fh.write("\n")

    print(format_timeline(events))
    print()
    trace = result.trace or {}
    replayed = trace.get("replayed", {})
    print(
        f"{trace.get('events', 0)} events; replayed "
        f"rounds={replayed.get('rounds')} "
        f"total_bits={replayed.get('total_bits')} "
        f"busiest={replayed.get('max_edge_bits_per_round')}"
    )
    print(f"wrote {jsonl_path}")
    print(f"wrote {chrome_path}")
    mismatches = list(trace.get("mismatches", ()))
    if not trace.get("verified") or trace.get("cost_model_match") is False:
        if trace.get("cost_model_match") is False:
            mismatches.append("cost-model prediction disagreed")
        print(
            f"TRACE MISMATCHES ({len(mismatches)}):", *mismatches,
            sep="\n  ",
        )
        return 1
    covered = trace.get("cost_model_match") is not None
    print(
        "trace verified: replay reproduced the measured run exactly"
        + (" and matched the cost model" if covered else
           " (cost model: uncovered cell)")
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    suite = get_suite(args.suite, seed=args.seed)
    if args.engine == "both":
        suite = with_engines(
            suite, suite.name, suite.description or suite.name
        )
    elif args.engine is not None:
        suite = SuiteSpec(
            name=suite.name,
            scenarios=tuple(s.with_(engine=args.engine) for s in suite),
            description=suite.description,
        )
    if args.solver == "both":
        suite = with_solvers(
            suite, suite.name, suite.description or suite.name
        )
    elif args.solver is not None:
        suite = SuiteSpec(
            name=suite.name,
            scenarios=tuple(s.with_(solver=args.solver) for s in suite),
            description=suite.description,
        )
    if args.kernels == "both":
        suite = with_kernels(
            suite, suite.name, suite.description or suite.name
        )
    elif args.kernels is not None:
        suite = SuiteSpec(
            name=suite.name,
            scenarios=tuple(s.with_(kernels=args.kernels) for s in suite),
            description=suite.description,
        )
    cache: Optional[ResultCache] = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.path.join(args.out, ".lab_cache")
        cache = ResultCache(cache_dir)
    logger = get_logger("lab")
    log = None if args.quiet else logger.info
    if args.batch:
        if args.jobs != 1:
            print("--batch runs serially; drop --jobs")
            return 2
        if args.shm:
            print("--shm applies to pooled runs; drop --batch")
            return 2
        from .batch import run_suite_batched

        run = run_suite_batched(
            suite, cache=cache, force=args.force, log=log, trace=args.trace,
        )
    else:
        if args.shm and args.jobs == 1:
            print("--shm needs --jobs N (N > 1)")
            return 2
        run = run_suite(
            suite, jobs=args.jobs, cache=cache, force=args.force, log=log,
            trace=args.trace, shm=args.shm,
        )

    # The artifact payload (records + certification) is computed once
    # and reused for the console output, the written artifact and the
    # optional markdown report.
    payload = artifact_payload(run, timings=args.timings)
    records = payload["scenarios"]
    cert = payload["certification"]
    violations = cert["bound_violations"]
    parity = all_parity_failures(records)
    cost = payload["cost_model"]
    cost_failures = cost["mismatches"]

    print()
    print(format_results_table(run.results))
    print()
    print(format_aggregate_table(aggregate(run.results)))
    print()
    print(format_certification_table(records))
    print()
    print(format_cost_table(records))
    print()
    print(
        f"certification: {cert['scenarios_checked']} scenarios checked "
        f"({cert['formula_certified']} formula, {cert['cut_checked']} "
        f"cut-accounting), {len(violations)} violation(s); "
        f"{len(parity)} parity failure(s)"
    )
    print(
        f"cost model: {cost['covered_runs']}/{cost['runs']} runs in "
        f"covered cells, {cost['exact_matches']} exact on all four "
        f"metrics, {len(cost_failures)} mismatch(es); "
        f"{len(cost['uncovered_cells'])} uncovered cell(s)"
    )
    # Uncovered cells are never gated, but always enumerated — silence
    # would read as coverage.
    for cell in cost["uncovered_cells"]:
        print(f"  uncovered: {cell}")
    if args.trace:
        traced = run.traced
        mismatched = run.trace_mismatches
        print(
            f"trace: {len(traced)} run(s) traced, "
            f"{len(traced) - len(mismatched)} replay-verified, "
            f"{len(mismatched)} mismatch(es)"
        )
    print(
        f"suite {suite.name!r}: {len(run.results)} scenarios, "
        f"{run.cache_hits} cached ({run.hit_rate:.0%}), "
        f"{run.executed} executed on {run.jobs} job(s) "
        f"in {run.wall_time:.2f}s"
    )
    if run.batch is not None:
        batch = run.batch
        sps = batch.get("scenarios_per_sec")
        base = batch.get("baseline") or {}
        speedup = batch.get("speedup")
        print(
            f"batch: {batch['multi_groups']} group(s) covering "
            f"{batch['grouped_scenarios']} scenario(s) (largest "
            f"{batch['largest_group']}), {batch['stacked_checks']} "
            f"stacked solve(s) verified; "
            + (f"{sps:.1f} scenarios/sec" if sps else "no fresh scenarios")
            + (
                f" vs {base['scenarios_per_sec']:.1f} cold "
                f"({speedup:.1f}x)"
                if base.get("scenarios_per_sec") and speedup
                else ""
            )
        )

    artifact = write_artifact(run, args.out, payload=payload)
    print(f"wrote {artifact}")
    if args.markdown:
        path = os.path.join(args.out, f"LAB_{suite.name}.md")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(render_markdown(run, records=records))
        print(f"wrote {path}")
    if args.csv:
        path = os.path.join(args.out, f"LAB_{suite.name}.csv")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(render_csv(run.results))
        print(f"wrote {path}")

    status = 0
    if not run.all_correct:
        bad = [r.spec.label for r in run.results if not r.correct]
        print(f"INCORRECT scenarios ({len(bad)}):", *bad, sep="\n  ")
        status = 1
    if violations:
        print(f"BOUND VIOLATIONS ({len(violations)}):", *violations, sep="\n  ")
        status = 1
    if parity:
        print(f"PARITY FAILURES ({len(parity)}):", *parity, sep="\n  ")
        status = 1
    if cost_failures:
        print(
            f"COST MISMATCHES ({len(cost_failures)}):", *cost_failures,
            sep="\n  ",
        )
        status = 1
    if args.trace and run.trace_mismatches:
        details = []
        for r in run.trace_mismatches:
            reasons = list(r.trace.get("mismatches", ()))
            if r.trace.get("cost_model_match") is False:
                reasons.append("cost-model prediction disagreed")
            details.append(f"{r.spec.label}: " + "; ".join(reasons))
        print(f"TRACE MISMATCHES ({len(details)}):", *details, sep="\n  ")
        status = 1
    return status


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    configure_logging(getattr(args, "log_level", "info"))
    if args.command == "list":
        return _cmd_list()
    if args.command == "parity":
        return _cmd_parity(args)
    if args.command == "predict":
        return _cmd_predict(args)
    if args.command == "trace":
        return _cmd_trace(args)
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
