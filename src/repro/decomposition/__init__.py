"""GHDs, GYO-GHDs, MD-GHDs and the internal-node-width y(H)."""

from .ghd import GHD, GHDNode, InvalidGHD
from .gyo_ghd import CORE_ROOT_ID, gyo_ghd, is_gyo_ghd
from .md_ghd import (
    internal_nodes_bottom_up,
    is_md_ghd,
    md_ghd,
    private_attribute_witness,
)
from .width import (
    EXACT_SEARCH_LIMIT,
    best_gyo_ghd,
    connector,
    exact_internal_node_width,
    internal_node_width,
    width_report,
)

__all__ = [
    "GHD",
    "GHDNode",
    "InvalidGHD",
    "gyo_ghd",
    "is_gyo_ghd",
    "CORE_ROOT_ID",
    "md_ghd",
    "is_md_ghd",
    "internal_nodes_bottom_up",
    "private_attribute_witness",
    "best_gyo_ghd",
    "internal_node_width",
    "exact_internal_node_width",
    "connector",
    "width_report",
    "EXACT_SEARCH_LIMIT",
]
