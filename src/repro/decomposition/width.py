"""Internal-node-width ``y(H)`` — Definition 2.9.

``y(H)`` is the minimum number of internal (non-leaf) nodes over all
GYO-GHDs of ``H``.  The paper notes (Appendix F) that an O(1)-factor
approximation suffices for the tightness of its bounds; we provide

* :func:`internal_node_width` — the default: build the Construction 2.8
  GYO-GHD, then greedily flatten it with Construction F.6 (MD-GHD), which
  recovers the exact optimum on the paper's examples (stars, ``H2`` of
  Figure 2, paths);
* an ``exact=True`` mode for small acyclic connected hypergraphs that
  enumerates all rooted join trees (parents constrained by connectors) and
  returns the true minimum, used by the test suite as ground truth.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Optional, Tuple

from ..core.memo import LRUMemo, hypergraph_key
from ..hypergraph import Hypergraph, decompose, is_acyclic
from .ghd import GHD
from .gyo_ghd import gyo_ghd
from .md_ghd import md_ghd

#: Edge-count cap above which ``exact=True`` falls back to the greedy bound.
EXACT_SEARCH_LIMIT = 8

#: Structural memo over (H, require_in_root).  The search re-roots and
#: flattens per candidate, which dominates plan compilation for small
#: grids; the result depends only on structure.  GHD carries mutation
#: helpers, so every access returns :meth:`GHD.copy` of the stored
#: master — callers can mutate freely.
_BEST_GHD_MEMO = LRUMemo("decomposition.best_ghd", maxsize=1024)


def best_gyo_ghd(hypergraph: Hypergraph, require_in_root=frozenset()) -> GHD:
    """A GYO-GHD with (greedily) few internal nodes.

    Builds Construction 2.8, then minimizes internal nodes by (a) trying
    every re-rooting (Construction 2.8 roots each removed tree
    *arbitrarily*, so rooting is a legitimate degree of freedom for acyclic
    connected ``H``) and (b) flattening with Construction F.6 (MD-GHD).
    The result is what the distributed protocols of Section 4 / Appendix F
    execute on.

    Args:
        require_in_root: Variables that must lie in the root bag — the
            protocols need the free variables there (the Appendix G.5
            restriction ``F ⊆ V(C(H))``, generalized to any admissible
            rooting).

    Raises:
        ValueError: when no admissible rooting puts ``require_in_root``
            in the root bag (the genuinely unsupported G.5 case).
    """
    require = frozenset(require_in_root)
    key = (hypergraph_key(hypergraph), tuple(sorted(require, key=repr)))
    master = _BEST_GHD_MEMO.get_or_compute(
        key, lambda: _best_gyo_ghd_uncached(hypergraph, require)
    )
    return master.copy()


def _best_gyo_ghd_uncached(hypergraph: Hypergraph, require: frozenset) -> GHD:
    canonical = gyo_ghd(hypergraph)
    candidates = [md_ghd(canonical)]
    if is_acyclic(hypergraph) and hypergraph.is_connected():
        for node_id in list(canonical.nodes):
            if node_id != canonical.root_id:
                candidates.append(md_ghd(canonical.rerooted(node_id)))
    admissible = [c for c in candidates if require <= c.root.chi]
    if not admissible:
        raise ValueError(
            "no GYO-GHD rooting covers the required root variables "
            f"{sorted(require, key=str)} (Appendix G.5 restriction)"
        )
    return min(admissible, key=lambda c: c.num_internal_nodes)


def internal_node_width(hypergraph: Hypergraph, exact: bool = False) -> int:
    """Compute (or tightly approximate) ``y(H)`` of Definition 2.9.

    Args:
        hypergraph: The query hypergraph.
        exact: When True and ``H`` is acyclic, connected and has at most
            :data:`EXACT_SEARCH_LIMIT` edges, run the exhaustive join-tree
            search; otherwise use the MD-GHD greedy value.

    Returns:
        The number of internal nodes of the best (GYO-)GHD found.
    """
    greedy = best_gyo_ghd(hypergraph).num_internal_nodes
    if not exact:
        return greedy
    exact_value = exact_internal_node_width(hypergraph)
    if exact_value is None:
        return greedy
    return min(greedy, exact_value)


def connector(hypergraph: Hypergraph, edge_name: str) -> FrozenSet:
    """Vertices of ``edge_name`` shared with at least one other hyperedge."""
    edge = hypergraph.edge(edge_name)
    shared: set = set()
    for other, verts in hypergraph.edges():
        if other != edge_name:
            shared |= edge & verts
    return frozenset(shared)


def _prufer_trees(k: int):
    """Yield every labeled tree on ``k`` nodes as an adjacency list,
    decoded from Prüfer sequences (k^(k-2) trees)."""
    if k == 1:
        yield {0: []}
        return
    if k == 2:
        yield {0: [1], 1: [0]}
        return
    for seq in itertools.product(range(k), repeat=k - 2):
        degree = [1] * k
        for s in seq:
            degree[s] += 1
        adj: Dict[int, list] = {i: [] for i in range(k)}
        leaves = sorted(i for i in range(k) if degree[i] == 1)
        import heapq

        heapq.heapify(leaves)
        deg = list(degree)
        for s in seq:
            leaf = heapq.heappop(leaves)
            adj[leaf].append(s)
            adj[s].append(leaf)
            deg[s] -= 1
            if deg[s] == 1:
                heapq.heappush(leaves, s)
        u = heapq.heappop(leaves)
        v = heapq.heappop(leaves)
        adj[u].append(v)
        adj[v].append(u)
        yield adj


def exact_internal_node_width(hypergraph: Hypergraph) -> Optional[int]:
    """Exhaustive minimum internal-node count over join trees of ``H``.

    Only defined for connected, acyclic hypergraphs with at most
    :data:`EXACT_SEARCH_LIMIT` edges; returns None otherwise.

    For acyclic ``H`` the GYO-GHDs of Construction 2.8 are exactly the
    (rooted) *join trees*: reduced GHDs whose bags are the hyperedges
    themselves.  We enumerate all labeled trees on the hyperedges via
    Prüfer sequences, keep those satisfying RIP, and observe that the
    minimum number of internal nodes over rootings of an unrooted tree is
    the number of degree->=2 nodes (rooting at any such node; a rooted leaf
    is exactly an unrooted leaf that is not the root).
    """
    names = list(hypergraph.edge_names)
    k = len(names)
    if k > EXACT_SEARCH_LIMIT or not is_acyclic(hypergraph):
        return None
    if not hypergraph.is_connected():
        return None
    if k == 1:
        return 0
    if k == 2:
        return 1

    edge_sets = [hypergraph.edge(n) for n in names]
    # For connected H every join-tree edge joins intersecting bags.
    compatible = [
        [bool(edge_sets[i] & edge_sets[j]) for j in range(k)] for i in range(k)
    ]
    # Vertex -> indices of hyperedges containing it (for the RIP check).
    holders: Dict[object, list] = {}
    for i, es in enumerate(edge_sets):
        for v in es:
            holders.setdefault(v, []).append(i)

    best: Optional[int] = None
    for adj in _prufer_trees(k):
        if any(
            not compatible[u][v] for u, nbrs in adj.items() for v in nbrs
        ):
            continue
        if not _tree_satisfies_rip(adj, holders):
            continue
        internal = sum(1 for nbrs in adj.values() if len(nbrs) >= 2)
        internal = max(internal, 1)  # rooting a 2-node tree makes 1 internal
        if best is None or internal < best:
            best = internal
            if best == 1:
                return 1
    return best


def _tree_satisfies_rip(adj: Dict[int, list], holders: Dict[object, list]) -> bool:
    """Check that each vertex's holder set is connected in the tree."""
    for nodes in holders.values():
        if len(nodes) <= 1:
            continue
        target = set(nodes)
        seen = {nodes[0]}
        stack = [nodes[0]]
        while stack:
            cur = stack.pop()
            for nb in adj[cur]:
                if nb in target and nb not in seen:
                    seen.add(nb)
                    stack.append(nb)
        if seen != target:
            return False
    return True


def width_report(hypergraph: Hypergraph) -> Dict[str, object]:
    """Summary of the width-related quantities for ``H``.

    Returns a dict with keys ``y`` (internal-node-width, greedy),
    ``y_exact`` (exhaustive value or None), ``n2`` (core size,
    Definition 3.1), ``acyclic``, ``num_edges`` and ``arity`` — the inputs
    to every bound formula in the paper.
    """
    dec = decompose(hypergraph)
    ghd = best_gyo_ghd(hypergraph)
    return {
        "y": ghd.num_internal_nodes,
        "y_exact": exact_internal_node_width(hypergraph),
        "n2": dec.n2,
        "acyclic": dec.is_pure_forest,
        "num_edges": hypergraph.num_edges,
        "arity": hypergraph.arity,
        "depth": ghd.depth(),
    }
