"""MD-GHDs — Construction F.6 and the Lemma F.3 structure check.

Construction F.6 takes any (GYO-)GHD and repeatedly performs the *move-up*
operation: for a parent-child pair ``(u, v)``, if some strict ancestor ``w``
of ``u`` satisfies ``chi(v) ∩ chi(u) ⊆ chi(w)``, re-hang ``v`` under the
*topmost* such ``w``.  The result is still a valid GHD, the process
terminates (Corollary F.7), and it tends to convert internal nodes into
leaves — which is why it doubles as the greedy minimizer for the
internal-node-width of Definition 2.9.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ghd import GHD


def _topmost_hosting_ancestor(ghd: GHD, node_id: str) -> Optional[str]:
    """Topmost strict ancestor of ``parent(node_id)`` whose bag contains
    the connector ``chi(node) ∩ chi(parent)``; None when no move applies."""
    node = ghd.nodes[node_id]
    parent_id = node.parent
    if parent_id is None:
        return None
    connector = node.chi & ghd.nodes[parent_id].chi
    best = None
    for anc in ghd.ancestors(parent_id):  # parent's parent .. root
        if connector <= ghd.nodes[anc].chi:
            best = anc  # keep climbing: construction picks the topmost
    return best


def md_ghd(ghd: GHD, max_steps: Optional[int] = None) -> GHD:
    """Apply Construction F.6 until fixpoint and return a new GHD.

    Args:
        ghd: Any valid GHD (typically a GYO-GHD from Construction 2.8).
        max_steps: Safety cap on move-up operations; defaults to the
            Corollary F.7 bound ``|E(T)| * y(T)``.

    Returns:
        The MD-GHD: a valid GHD on the same hypergraph in which no further
        move-up operation applies.
    """
    out = ghd.copy()
    if max_steps is None:
        max_steps = max(1, (len(out) - 1) * max(1, out.num_internal_nodes))
    steps = 0
    changed = True
    while changed and steps <= max_steps:
        changed = False
        for node_id in list(out.nodes):
            if node_id == out.root_id:
                continue
            target = _topmost_hosting_ancestor(out, node_id)
            if target is not None:
                out.reparent(node_id, target)
                steps += 1
                changed = True
    out.validate()
    return out


def is_md_ghd(ghd: GHD) -> bool:
    """True when no Construction F.6 move-up operation applies."""
    return all(
        node_id == ghd.root_id
        or _topmost_hosting_ancestor(ghd, node_id) is None
        for node_id in ghd.nodes
    )


def internal_nodes_bottom_up(ghd: GHD) -> List[str]:
    """Internal node ids indexed bottom-up as in Lemma F.3 (descendants
    before ancestors)."""
    return [n.node_id for n in ghd.postorder() if n.children]


def private_attribute_witness(ghd: GHD, internal_id: str) -> Optional[Tuple]:
    """Lemma F.3 witness for one internal node of an MD-GHD.

    For internal node ``u_i`` (bottom-up order), Lemma F.3 promises an
    attribute ``p_i`` that occurs only in bags of descendants of ``u_i``
    (including ``u_i`` itself) and lies in at least two distinct hyperedges
    incident on it.

    Returns:
        ``(attribute, edge_name_1, edge_name_2)`` or None if no witness
        exists (which for a genuine MD-GHD of an acyclic ``H`` indicates a
        bug — tests assert it is never None there).
    """
    inside = ghd.descendants(internal_id) | {internal_id}
    outside_vertices: set = set()
    for node_id, node in ghd.nodes.items():
        if node_id not in inside:
            outside_vertices |= node.chi
    h = ghd.hypergraph
    children = ghd.nodes[internal_id].children
    for child in children:
        connector = ghd.nodes[child].chi & ghd.nodes[internal_id].chi
        for attr in sorted(connector, key=str):
            if attr in outside_vertices:
                continue
            incident = sorted(h.incident_edges(attr))
            if len(incident) >= 2:
                return (attr, incident[0], incident[1])
    return None
