"""Generalized Hypertree Decompositions (Definition 2.4).

A GHD of ``H = (V, E)`` is a triple ``(T, chi, lambda)`` where ``T`` is a
rooted tree, ``chi(v) ⊆ V`` is a bag of vertices per tree node and
``lambda(v) ⊆ E`` a set of hyperedge names per tree node, such that

  1. every hyperedge ``e`` has some node ``v`` with ``e ⊆ chi(v)`` and
     ``e ∈ lambda(v)`` (coverage), and
  2. for every vertex set ``V'``, the nodes whose bags contain ``V'`` form
     a connected subtree (the running intersection property, RIP).

Because subtrees of a tree have the Helly property, checking RIP on
singletons implies it for all ``V'``; :meth:`GHD.validate` exploits this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..hypergraph import Hypergraph


@dataclass
class GHDNode:
    """One node of a GHD tree.

    Attributes:
        node_id: Unique identifier within the tree.
        chi: The vertex bag ``chi(v)``.
        lam: The hyperedge names ``lambda(v)`` covered at this node.
        parent: Parent node id (None for the root).
        children: Child node ids, in insertion order.
    """

    node_id: str
    chi: FrozenSet
    lam: Set[str] = field(default_factory=set)
    parent: Optional[str] = None
    children: List[str] = field(default_factory=list)


class GHD:
    """A rooted GHD with mutation helpers used by the constructions.

    Args:
        hypergraph: The decomposed query hypergraph.
    """

    def __init__(self, hypergraph: Hypergraph) -> None:
        self.hypergraph = hypergraph
        self.nodes: Dict[str, GHDNode] = {}
        self.root_id: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        chi: Iterable,
        lam: Iterable[str] = (),
        parent: Optional[str] = None,
    ) -> GHDNode:
        """Add a node; the first node added becomes the root.

        Raises:
            ValueError: on duplicate ids, unknown parents, or adding a
                second parentless node.
        """
        if node_id in self.nodes:
            raise ValueError(f"duplicate GHD node id {node_id!r}")
        if parent is None:
            if self.root_id is not None:
                raise ValueError("GHD already has a root; supply a parent")
            self.root_id = node_id
        elif parent not in self.nodes:
            raise ValueError(f"unknown parent node {parent!r}")
        node = GHDNode(node_id, frozenset(chi), set(lam), parent)
        self.nodes[node_id] = node
        if parent is not None:
            self.nodes[parent].children.append(node_id)
        return node

    def reparent(self, node_id: str, new_parent: str) -> None:
        """Move ``node_id`` (with its subtree) under ``new_parent``.

        Raises:
            ValueError: if the move would create a cycle or detach the root.
        """
        if node_id == self.root_id:
            raise ValueError("cannot reparent the root")
        if new_parent not in self.nodes:
            raise ValueError(f"unknown node {new_parent!r}")
        if new_parent in self.descendants(node_id) or new_parent == node_id:
            raise ValueError("reparenting would create a cycle")
        node = self.nodes[node_id]
        old = self.nodes[node.parent]
        old.children.remove(node_id)
        node.parent = new_parent
        self.nodes[new_parent].children.append(node_id)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    @property
    def root(self) -> GHDNode:
        if self.root_id is None:
            raise ValueError("GHD has no nodes")
        return self.nodes[self.root_id]

    def __len__(self) -> int:
        return len(self.nodes)

    def children(self, node_id: str) -> List[str]:
        return list(self.nodes[node_id].children)

    def parent(self, node_id: str) -> Optional[str]:
        return self.nodes[node_id].parent

    def descendants(self, node_id: str) -> Set[str]:
        """All strict descendants of ``node_id``."""
        out: Set[str] = set()
        stack = list(self.nodes[node_id].children)
        while stack:
            cur = stack.pop()
            out.add(cur)
            stack.extend(self.nodes[cur].children)
        return out

    def ancestors(self, node_id: str) -> List[str]:
        """Ancestors from parent up to the root, in order."""
        out: List[str] = []
        cur = self.nodes[node_id].parent
        while cur is not None:
            out.append(cur)
            cur = self.nodes[cur].parent
        return out

    def postorder(self) -> Iterator[GHDNode]:
        """Bottom-up traversal (children before parents)."""
        order: List[str] = []
        stack = [self.root_id] if self.root_id else []
        while stack:
            cur = stack.pop()
            order.append(cur)
            stack.extend(self.nodes[cur].children)
        for node_id in reversed(order):
            yield self.nodes[node_id]

    def preorder(self) -> Iterator[GHDNode]:
        """Top-down traversal (parents before children)."""
        stack = [self.root_id] if self.root_id else []
        while stack:
            cur = stack.pop()
            yield self.nodes[cur]
            stack.extend(reversed(self.nodes[cur].children))

    def leaves(self) -> List[GHDNode]:
        return [n for n in self.nodes.values() if not n.children]

    def internal_nodes(self) -> List[GHDNode]:
        """Non-leaf nodes — the quantity minimized by Definition 2.9."""
        return [n for n in self.nodes.values() if n.children]

    @property
    def num_internal_nodes(self) -> int:
        """``y(T)``: the number of internal (non-leaf) nodes."""
        return len(self.internal_nodes())

    def depth(self) -> int:
        """Edge-depth of the tree (0 for a single node)."""
        best = 0
        stack = [(self.root_id, 0)] if self.root_id else []
        while stack:
            cur, d = stack.pop()
            best = max(best, d)
            stack.extend((c, d + 1) for c in self.nodes[cur].children)
        return best

    # ------------------------------------------------------------------
    # Validation (Definition 2.4)
    # ------------------------------------------------------------------
    def covering_node(self, edge_name: str) -> Optional[str]:
        """Node id covering hyperedge ``edge_name``, if any."""
        edge = self.hypergraph.edge(edge_name)
        for node in self.nodes.values():
            if edge_name in node.lam and edge <= node.chi:
                return node.node_id
        return None

    def validate(self) -> None:
        """Check GHD validity; raise :class:`InvalidGHD` with a reason.

        Checks tree-structure sanity, edge coverage, and RIP (on singleton
        vertex sets, which suffices by the Helly property of subtrees).
        """
        if self.root_id is None:
            raise InvalidGHD("GHD has no nodes")
        # Tree sanity: every non-root reachable from root exactly once.
        reachable = {n.node_id for n in self.preorder()}
        if reachable != set(self.nodes):
            raise InvalidGHD("tree is disconnected or has orphan nodes")
        for name in self.hypergraph.edge_names:
            if self.covering_node(name) is None:
                raise InvalidGHD(f"hyperedge {name!r} is not covered")
        # RIP per vertex.
        for vertex in self.hypergraph.vertices:
            holders = {
                n.node_id for n in self.nodes.values() if vertex in n.chi
            }
            if not holders:
                raise InvalidGHD(f"vertex {vertex!r} appears in no bag")
            # BFS within holders from an arbitrary holder.
            start = next(iter(holders))
            seen = {start}
            stack = [start]
            while stack:
                cur = stack.pop()
                node = self.nodes[cur]
                nbrs = list(node.children)
                if node.parent is not None:
                    nbrs.append(node.parent)
                for nb in nbrs:
                    if nb in holders and nb not in seen:
                        seen.add(nb)
                        stack.append(nb)
            if seen != holders:
                raise InvalidGHD(
                    f"running intersection violated for vertex {vertex!r}"
                )

    def is_valid(self) -> bool:
        try:
            self.validate()
        except InvalidGHD:
            return False
        return True

    def is_reduced(self) -> bool:
        """Reduced-GHD property: each hyperedge has a node with equal bag."""
        for name in self.hypergraph.edge_names:
            edge = self.hypergraph.edge(name)
            if not any(node.chi == edge for node in self.nodes.values()):
                return False
        return True

    def witnesses_acyclicity(self) -> bool:
        """Definition 2.5: every bag is itself a hyperedge of ``H``."""
        edge_sets = set(self.hypergraph.edge_sets())
        return all(node.chi in edge_sets for node in self.nodes.values())

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def rerooted(self, new_root_id: str) -> "GHD":
        """Return a copy rooted at ``new_root_id``.

        RIP and coverage are unrooted properties, so re-rooting a valid GHD
        yields a valid GHD; the paper's Construction 2.8 roots each removed
        tree *arbitrarily*, so minimizing ``y`` legitimately searches over
        rootings.
        """
        if new_root_id not in self.nodes:
            raise ValueError(f"unknown node {new_root_id!r}")
        out = self.copy()
        if new_root_id == out.root_id:
            return out
        # Reverse parent pointers along the path new_root -> old root.
        path = [new_root_id] + out.ancestors(new_root_id)
        for child_id, parent_id in zip(path, path[1:]):
            parent = out.nodes[parent_id]
            parent.children.remove(child_id)
            out.nodes[child_id].children.append(parent_id)
            parent.parent = child_id
        out.nodes[new_root_id].parent = None
        out.root_id = new_root_id
        return out

    def copy(self) -> "GHD":
        out = GHD(self.hypergraph)
        out.root_id = self.root_id
        for node_id, node in self.nodes.items():
            out.nodes[node_id] = GHDNode(
                node_id,
                node.chi,
                set(node.lam),
                node.parent,
                list(node.children),
            )
        return out

    def to_edge_list(self) -> List[Tuple[str, str]]:
        """Tree edges as (parent, child) pairs."""
        return [
            (n.parent, n.node_id)
            for n in self.nodes.values()
            if n.parent is not None
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<GHD nodes={len(self.nodes)} internal={self.num_internal_nodes} "
            f"depth={self.depth()}>"
        )


class InvalidGHD(ValueError):
    """Raised when a decomposition violates Definition 2.4."""
