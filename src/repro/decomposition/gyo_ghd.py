"""GYO-GHDs — Construction 2.8.

Given the core/forest decomposition of Definition 2.7, the GYO-GHD has

* a root ``r'`` with ``chi(r') = V(C(H))`` covering every core edge,
* one node per hyperedge ``e`` with ``e ⊊ V(C(H))`` attached to ``r'``, and
* the removed trees of ``W(H)`` hanging below, following the GYO parent
  links (each removed edge's parent is a witness containing its residual).

The construction yields a *reduced* GHD (Appendix C.1): every hyperedge has
a node whose bag equals it exactly (or equals the root bag).
"""

from __future__ import annotations

from typing import Dict

from ..hypergraph import Decomposition, Hypergraph, decompose
from .ghd import GHD

#: Node id used for the Construction 2.8 super-root.
CORE_ROOT_ID = "__core__"


def gyo_ghd(hypergraph: Hypergraph, decomposition: Decomposition | None = None) -> GHD:
    """Build the canonical GYO-GHD of ``H`` via Construction 2.8.

    Args:
        hypergraph: The query hypergraph ``H``.
        decomposition: Optional precomputed core/forest split; computed
            when omitted.

    Returns:
        A validated, reduced, rooted :class:`~repro.decomposition.ghd.GHD`
        whose root bag is ``V(C(H))``.
    """
    dec = decomposition or decompose(hypergraph)
    core_vertices = dec.core_vertices
    tree = GHD(hypergraph)
    full_bag_edges = sorted(
        name
        for name in dec.core_edge_names
        if hypergraph.edge(name) == core_vertices
    )
    # Exactly one edge equal to the whole core bag is covered by the root
    # itself (keeping the root a single-relation node for acyclic H, which
    # the star protocol requires); duplicates become leaf children.  If no
    # edge equals the bag, the root carries every core edge in lambda so
    # the trivial-protocol planner can read "what the core holds" off it.
    core_lam = {full_bag_edges[0]} if full_bag_edges else set(dec.core_edge_names)
    tree.add_node(CORE_ROOT_ID, core_vertices, core_lam)

    # One child per hyperedge inside the core bag (Construction 2.8 second
    # sentence).  This covers core edges and doubles as the hanging point
    # for each removed tree whose root is such an edge.
    attach_point: Dict[str, str] = {}
    for name in hypergraph.edge_names:
        edge = hypergraph.edge(name)
        if name in core_lam and edge == core_vertices:
            attach_point[name] = CORE_ROOT_ID
        elif edge == core_vertices:
            # A parallel duplicate of the root bag: its own leaf node.
            tree.add_node(name, edge, {name}, parent=CORE_ROOT_ID)
            attach_point[name] = name
        elif name in dec.core_edge_names or name in dec.tree_roots:
            tree.add_node(name, edge, {name}, parent=CORE_ROOT_ID)
            attach_point[name] = name

    # Hang the removed (forest) edges following GYO parent links, in
    # removal order reversed so parents exist before children.
    removed = sorted(dec.gyo.removed, key=lambda r: -r.order)
    for rec in removed:
        if rec.name in attach_point:  # tree roots already placed
            continue
        parent_name = rec.parent
        parent_id = attach_point.get(parent_name, CORE_ROOT_ID)
        tree.add_node(rec.name, rec.original, {rec.name}, parent=parent_id)
        attach_point[rec.name] = rec.name

    tree.validate()
    return tree


def is_gyo_ghd(ghd: GHD) -> bool:
    """Heuristic check that a GHD has the Construction 2.8 shape.

    True when the root bag contains the core vertex set of its hypergraph
    and the GHD is valid and reduced.
    """
    dec = decompose(ghd.hypergraph)
    if not dec.core_vertices <= ghd.root.chi:
        return False
    return ghd.is_valid() and ghd.is_reduced()
