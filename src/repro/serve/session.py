"""Serving sessions — the offline/online split of the serving plane.

A :class:`ServingSession` is one registered scenario identity.  At
registration time (**offline**) it performs every piece of work that is
a pure function of the identity and can therefore be paid once:

* materialization of the query/topology/assignment (shared with the
  lab's structural memo plane),
* backend conversion + decomposition search + protocol-plan compilation
  (:meth:`~repro.core.planner.Planner.compile_protocol_plan`, shared
  via the runner's plan memo),
* query-plan lowering and dictionary interning (one warm solve primes
  the :data:`~repro.faq.plan.PLAN_CACHE` and the executor's dictionary
  pool fast paths),
* the closed-form bound report and — on cells the symbolic cost model
  covers — the **exact** :func:`~repro.costmodel.predict_costs` metrics
  the server's admission controller prices queries with, *without
  executing anything*,
* publication of the relations into the shared-memory store.

The **online** path (:meth:`ServingSession.execute_online`) then touches
only compiled kernels: it re-runs the solver over the already-converted
factors under the registered kernel tier.  Its answer is byte-identical
to :meth:`Planner.execute`'s protocol answer for the same spec — the
four-axis parity contract certifies ``protocol.answer == reference`` on
every lab run, and the reference solve *is* this online solve.

Everything knowable offline is persisted in a JSON-able
:class:`SessionManifest` (the ``martelogan__langformer`` RunSession
idea): a later process can reload the manifest, re-attach the store and
serve without repeating the search.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .. import kernels
from ..core.planner import Planner
from ..lab.batch import structural_signature
from ..lab.results import answer_digest
from ..lab.runner import (
    _PLAN_MEMO,
    _PREDICTION_MEMO,
    _prediction_key,
    materialize_scenario,
)
from ..lab.spec import ScenarioSpec
from .store import ServeError, SharedRelationStore, publish_query

#: Manifest layout version — bump on any incompatible change.
SESSION_VERSION = 1


def session_id_of(spec: ScenarioSpec) -> str:
    """The stable session identity of a spec: its content hash.

    Two requests for the same spec (all axes included) are the *same*
    session — the server coalesces them onto one registration.
    """
    return f"s-{spec.content_hash()[:20]}"


@dataclass
class SessionManifest:
    """The durable, JSON-able record of one registered session.

    Everything the offline phase computed: the spec identity, the
    stacking signature, the admission-control cost prediction, the
    closed-form bounds, the expected answer digest, and the store
    segments the relations live in.
    """

    session_id: str
    spec: Dict[str, Any]
    label: str
    structural_signature: Optional[str]
    covered: bool
    predicted: Optional[Dict[str, Any]]
    bounds: Dict[str, float]
    answer_digest: str
    answer_rows: int
    store: Dict[str, Any]
    offline_seconds: float
    version: int = SESSION_VERSION
    notes: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "session_id": self.session_id,
            "spec": self.spec,
            "label": self.label,
            "structural_signature": self.structural_signature,
            "covered": self.covered,
            "predicted": self.predicted,
            "bounds": self.bounds,
            "answer_digest": self.answer_digest,
            "answer_rows": self.answer_rows,
            "store": self.store,
            "offline_seconds": self.offline_seconds,
            "notes": self.notes,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)


class ServingSession:
    """One registered scenario identity, offline-compiled and warm.

    Construct via :meth:`register`.  Holds the backend-converted
    planner, the compiled protocol plan, the shm publication payload and
    the manifest; :meth:`execute_online` is the kernel-only hot path.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        planner: Planner,
        protocol_plan,
        payload: Dict[str, Any],
        manifest: SessionManifest,
    ) -> None:
        self.spec = spec
        self.planner = planner
        self.protocol_plan = protocol_plan
        self.payload = payload
        self.manifest = manifest

    # -- offline ---------------------------------------------------------
    @classmethod
    def register(
        cls, spec: ScenarioSpec, store: SharedRelationStore
    ) -> "ServingSession":
        """The offline phase: build, compile, predict, publish, warm."""
        start = time.perf_counter()
        session_id = session_id_of(spec)
        built, topology, assignment = materialize_scenario(spec)
        with kernels.use_tier(spec.kernels):
            planner = Planner(
                built.query, topology, assignment=assignment,
                backend=spec.backend, engine=spec.engine, solver=spec.solver,
            )
            # Same memo key as the lab runner, so a suite that already
            # ran this identity hands the serving plane its plan free.
            protocol_plan = _PLAN_MEMO.get_or_compute(
                (_prediction_key(spec), spec.backend, spec.solver),
                planner.compile_protocol_plan,
            )
            # Warm solve: lowers/caches the QueryPlan (compiled solver),
            # interns dictionaries, and pins the expected answer digest.
            warm_answer = planner.reference_answer()
        predicted, covered, note = _admission_prediction(
            spec, protocol_plan, topology
        )
        bound = planner.predict()
        payload = publish_query(
            store, session_id, planner.query,
            extra={
                "spec": spec.to_json_dict(),
                "session_id": session_id,
            },
        )
        digest = answer_digest(warm_answer.schema, warm_answer.rows)
        manifest = SessionManifest(
            session_id=session_id,
            spec=spec.to_json_dict(),
            label=spec.label,
            structural_signature=structural_signature(planner.query),
            covered=covered,
            predicted=predicted,
            bounds={
                "upper_rounds": float(bound.upper_rounds),
                "lower_rounds": float(bound.lower_rounds),
            },
            answer_digest=digest,
            answer_rows=len(warm_answer),
            store={
                "segments": [
                    {
                        "name": entry["segment"],
                        "kind": entry["kind"],
                        "relation": name,
                        "rows": entry["rows"],
                    }
                    for name, entry in payload["relations"].items()
                ],
            },
            offline_seconds=time.perf_counter() - start,
            notes={} if note is None else {"cost_model": note},
        )
        return cls(spec, planner, protocol_plan, payload, manifest)

    # -- online ----------------------------------------------------------
    @property
    def session_id(self) -> str:
        return self.manifest.session_id

    def execute_online(self):
        """The kernel-only hot path: solve over the warm factors.

        Returns the answer :class:`~repro.semiring.factor.Factor` —
        byte-identical (schema, rows, values) to the protocol answer
        :meth:`Planner.execute` produces for the same spec.
        """
        try:
            with kernels.use_tier(self.spec.kernels):
                return self.planner.reference_answer()
        except ServeError:
            raise
        except Exception as exc:
            raise ServeError(
                "execution-failed",
                f"online solve failed for {self.session_id}: {exc}",
                {"session_id": self.session_id},
            ) from exc

    def online_answer(self) -> Dict[str, Any]:
        """One served answer: schema, plain-dict rows, content digest."""
        factor = self.execute_online()
        rows = dict(factor.rows)
        return {
            "schema": list(factor.schema),
            "rows": rows,
            "digest": answer_digest(factor.schema, rows),
        }


def _admission_prediction(
    spec: ScenarioSpec, protocol_plan, topology
) -> Tuple[Optional[Dict[str, Any]], bool, Optional[str]]:
    """The zero-execution cost estimate admission control prices with.

    On covered cells this is the *exact* (certified-per-fuzz-run)
    rounds/bits accounting of the protocol the lab would execute for
    this spec; uncovered cells return ``(None, False, reason)`` and the
    admission policy decides whether to serve them unpriced.
    """
    # Late import mirrors the runner: workers that never price a query
    # skip the sympy-aware costmodel modules.
    from ..costmodel import CostModelError, is_covered, predict_costs

    if not is_covered(spec):
        return None, False, "cell not covered by the symbolic cost model"
    try:
        metrics = dict(_PREDICTION_MEMO.get_or_compute(
            _prediction_key(spec),
            lambda: predict_costs(
                spec, plan=protocol_plan, nodes=topology.nodes
            ).metrics(),
        ))
    except CostModelError as exc:
        return None, False, f"cost model error: {exc}"
    return metrics, True, None
