"""Serving plane — a persistent shared-memory FAQ/BCQ query service.

The lab executes scenarios as cold per-process runs; this package
promotes the Planner / plan-cache / DictionaryPool stack into a
long-lived service with a strict offline/online split:

* :mod:`repro.serve.store` — relations registered once, published as
  zero-copy shared-memory columnar segments warm workers attach to.
* :mod:`repro.serve.session` — the offline phase: materialization,
  decomposition search, protocol-plan compilation, query-plan lowering,
  dictionary interning and symbolic cost prediction, persisted in a
  session manifest.  The online phase touches only compiled kernels.
* :mod:`repro.serve.server` — the asyncio front-end: admission control
  priced by :func:`repro.costmodel.predict_costs` (zero execution),
  coalescing of structurally identical in-flight queries onto one
  stacked execution (reusing the lab's batch plane), and a warm worker
  pool attached to the store.

See ``docs/serving.md`` for the architecture and the benchmark
methodology behind ``BENCH_serving.json``.
"""

from .server import (
    AdmissionPolicy,
    QueryService,
    ServeResult,
    ServiceStats,
    serve_all,
)
from .session import ServingSession, SessionManifest, session_id_of
from .store import (
    AttachedQuery,
    ServeError,
    SharedRelationStore,
    attach_query,
    live_segment_names,
    publish_query,
)

__all__ = [
    "AdmissionPolicy",
    "AttachedQuery",
    "QueryService",
    "ServeError",
    "ServeResult",
    "ServingSession",
    "SessionManifest",
    "ServiceStats",
    "SharedRelationStore",
    "attach_query",
    "live_segment_names",
    "publish_query",
    "serve_all",
    "session_id_of",
]
