"""Shared-memory relation store — publish once, attach zero-copy.

The serving plane keeps registered relations in
:mod:`multiprocessing.shared_memory` segments so warm worker processes
*attach* to the columnar buffers instead of receiving pickled factors
with every task.  One factor publishes as one segment holding its
``int64`` code arrays and its annotation array back to back; the small
parts — schema, dictionaries, domains — travel in a picklable manifest.
Attaching rebuilds a :class:`~repro.semiring.columnar.ColumnarFactor`
whose arrays *view* the segment (zero copy); factors whose storage was
the dict backend, or whose semiring has no columnar profile, round-trip
through an exact decode / pickle fallback instead (order- and
value-preserving, so downstream execution is byte-identical either way).

Lifecycle is explicit: the creating process owns every segment and must
:meth:`SharedRelationStore.close` (close + unlink) when done; attachers
:meth:`AttachedRelations.close` their handles.  The module tracks every
segment the process created so tests can assert nothing leaks into
``/dev/shm`` after a suite (:func:`live_segment_names`).  Attach-side
handles are deliberately unregistered from the CPython resource tracker:
ownership stays with the creator, and the 3.11 tracker would otherwise
double-unlink (bpo-39959) and spam shutdown warnings for segments the
worker merely mapped.
"""

from __future__ import annotations

import pickle
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..faq import FAQQuery
from ..hypergraph import Hypergraph
from ..semiring import BUILTIN_SEMIRINGS, Factor, get_semiring
from ..semiring.backend import backend_of, supports_columnar
from ..semiring.columnar import ColumnarFactor, Dictionary

#: Manifest layout version — bump on any incompatible payload change.
STORE_VERSION = 1


class ServeError(RuntimeError):
    """A structured serving failure — every degraded path raises this.

    Attributes:
        code: Machine-readable failure class:

            * ``"rejected"`` — admission control refused the query (the
              predicted cost exceeds the configured budget; ``detail``
              carries the predicted metrics and the budget).
            * ``"overloaded"`` — the service queue is full.
            * ``"unknown-session"`` — no session registered under the id.
            * ``"worker-crashed"`` — a warm worker died mid-query; the
              pool is recycled, the in-flight query fails fast.
            * ``"store-detached"`` — a shared-memory segment disappeared
              mid-query (torn down / unlinked under the worker).
            * ``"execution-failed"`` — the online solve itself raised.
            * ``"shutdown"`` — the service is closing.
        detail: Optional structured context (JSON-able where possible).
    """

    def __init__(
        self, code: str, message: str, detail: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message)
        self.code = code
        self.detail = detail or {}

    def to_dict(self) -> Dict[str, Any]:
        """The structured form clients/benchmarks record."""
        return {"code": self.code, "message": str(self), "detail": self.detail}

    def __reduce__(self):  # cross the process boundary intact
        return (ServeError, (self.code, str(self), self.detail))


# ---------------------------------------------------------------------------
# Segment bookkeeping
# ---------------------------------------------------------------------------

#: Segments this process *created* and has not yet unlinked, by name.
#: The leak-check tests assert this is empty (and /dev/shm clean) after
#: every store is closed.
_LIVE_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}
_LIVE_LOCK = threading.RLock()


def live_segment_names() -> Tuple[str, ...]:
    """Names of shm segments this process created and still owns."""
    with _LIVE_LOCK:
        return tuple(sorted(_LIVE_SEGMENTS))


def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
    with _LIVE_LOCK:
        _LIVE_SEGMENTS[shm.name] = shm
    return shm


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    with _LIVE_LOCK:
        _LIVE_SEGMENTS.pop(shm.name, None)
    try:
        shm.close()
    finally:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


_ATTACH_LOCK = threading.Lock()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without adopting ownership.

    Python 3.11's ``SharedMemory`` has no ``track=`` parameter: every
    attach registers with the resource tracker, which on fork shares one
    tracker set with the creator (so a later unregister strips the
    creator's entry) and on spawn gives the worker its own tracker
    (which then unlinks the creator's segment when the worker exits —
    bpo-39959).  Ownership here is strictly creator-side, so suppress
    the registration for the duration of the attach.

    Raises:
        ServeError: (``store-detached``) when the segment no longer
            exists — the store was closed/unlinked under the attacher.
    """
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            raise ServeError(
                "store-detached",
                f"shared-memory segment {name!r} has been unlinked",
                {"segment": name},
            ) from None
        finally:
            resource_tracker.register = original
    return shm


# ---------------------------------------------------------------------------
# Publishing
# ---------------------------------------------------------------------------


def _semiring_ref(semiring) -> Dict[str, Any]:
    """A manifest reference: by name for builtins, pickled otherwise."""
    if semiring.name in BUILTIN_SEMIRINGS:
        return {"builtin": semiring.name}
    return {"object": semiring}


def _semiring_deref(ref: Mapping[str, Any]):
    if "builtin" in ref:
        return get_semiring(ref["builtin"])
    return ref["object"]


def _dictionary_spec(d: list) -> Dict[str, Any]:
    """A dictionary's manifest entry, preserving array provenance.

    The executor's interning fast paths key off
    :attr:`~repro.semiring.columnar.Dictionary.array` being present (and
    its dtype), so the attach side must rebuild exactly what the encoder
    produced — otherwise the deterministic ``dict_pool.*`` counters (and
    hence the lab's byte-identity contract) would drift.
    """
    arr = getattr(d, "array", None)
    return {
        "values": list(d),
        "dtype": None if arr is None else arr.dtype.str,
    }


def _dictionary_from_spec(spec: Mapping[str, Any]) -> list:
    values = spec["values"]
    if spec["dtype"] is None:
        return list(values)
    arr = np.array(values, dtype=np.dtype(spec["dtype"]))
    return Dictionary(values, array=arr)


def _publish_columnar(cf: ColumnarFactor, backend: str) -> Tuple[Dict[str, Any], shared_memory.SharedMemory]:
    """One segment: code arrays then the value array, back to back."""
    arrays: List[np.ndarray] = [
        np.ascontiguousarray(c) for c in cf.codes
    ] + [np.ascontiguousarray(cf.values)]
    layout = []
    offset = 0
    for arr in arrays:
        layout.append(
            {"offset": offset, "dtype": arr.dtype.str, "shape": tuple(arr.shape)}
        )
        offset += arr.nbytes
    shm = _create_segment(offset)
    for arr, meta in zip(arrays, layout):
        if arr.nbytes:
            dst = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=meta["offset"]
            )
            dst[...] = arr
    entry = {
        "kind": "columnar",
        "segment": shm.name,
        "backend": backend,
        "schema": tuple(cf.schema),
        "factor_name": cf.name,
        "semiring": _semiring_ref(cf.semiring),
        "arrays": layout,
        "dictionaries": [_dictionary_spec(d) for d in cf.dictionaries],
        "rows": len(cf),
    }
    return entry, shm


def _publish_pickled(factor: Factor) -> Tuple[Dict[str, Any], shared_memory.SharedMemory]:
    # The semiring travels by reference, not by value: builtin semirings
    # hold lambdas (unpicklable), and identity matters — attached
    # factors must carry the *same* semiring object the originals do.
    blob = pickle.dumps(
        (tuple(factor.schema), list(factor.rows.items()), factor.name),
        pickle.HIGHEST_PROTOCOL,
    )
    shm = _create_segment(len(blob))
    shm.buf[: len(blob)] = blob
    return (
        {
            "kind": "pickled",
            "segment": shm.name,
            "backend": backend_of(factor),
            "schema": tuple(factor.schema),
            "factor_name": factor.name,
            "semiring": _semiring_ref(factor.semiring),
            "nbytes": len(blob),
            "rows": len(factor),
        },
        shm,
    )


def publish_factor(factor: Factor) -> Tuple[Dict[str, Any], shared_memory.SharedMemory]:
    """Publish one factor; returns ``(manifest entry, owned segment)``.

    Columnar-capable factors ship as raw arrays (zero-copy attach); the
    rest — exotic semirings, ``int64``-overflowing annotations — fall
    back to one pickled blob per factor (still shared, one copy total
    instead of one per task).
    """
    backend = backend_of(factor)
    if supports_columnar(factor.semiring):
        try:
            return _publish_columnar(ColumnarFactor.from_factor(factor), backend)
        except (ValueError, OverflowError, TypeError):
            pass
    return _publish_pickled(factor)


def _attach_factor(
    entry: Mapping[str, Any],
) -> Tuple[Factor, Optional[shared_memory.SharedMemory]]:
    """Rebuild one factor from its manifest entry.

    Returns ``(factor, segment)`` — ``segment`` is the live handle the
    factor's arrays view (``None`` when the factor was decoded/unpickled
    and the handle already closed).
    """
    shm = _attach_segment(entry["segment"])
    if entry["kind"] == "pickled":
        try:
            schema, pairs, name = pickle.loads(
                bytes(shm.buf[: entry["nbytes"]])
            )
        finally:
            shm.close()
        factor = Factor(
            schema, semiring=_semiring_deref(entry["semiring"]), name=name
        )
        # Assign rows directly (same move as ``to_dict_factor``): the
        # published pairs are already canonical and order matters.
        factor.rows = dict(pairs)
        return factor, None
    codes_and_values: List[np.ndarray] = []
    for meta in entry["arrays"]:
        codes_and_values.append(
            np.ndarray(
                meta["shape"],
                dtype=np.dtype(meta["dtype"]),
                buffer=shm.buf,
                offset=meta["offset"],
            )
        )
    dicts = [_dictionary_from_spec(s) for s in entry["dictionaries"]]
    cf = ColumnarFactor._from_arrays(
        entry["schema"],
        codes_and_values[:-1],
        dicts,
        codes_and_values[-1],
        _semiring_deref(entry["semiring"]),
        entry["factor_name"],
    )
    if entry["backend"] != "columnar":
        # The registered storage was dict-backed: decode (exact, order-
        # preserving) and drop the mapping — byte-identity demands the
        # attach side reproduce the original storage backend.
        factor = cf.to_dict_factor()
        shm.close()
        return factor, None
    return cf, shm


# ---------------------------------------------------------------------------
# Query-level publish/attach
# ---------------------------------------------------------------------------


def publish_query(
    store: "SharedRelationStore",
    key: str,
    query: FAQQuery,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Publish a whole query: relations into ``store``, metadata inline.

    The returned payload is small and picklable (segment names, schemas,
    dictionaries, domains) — ship it to workers once per (worker, key)
    and :func:`attach_query` there.
    """
    relations = {
        name: store._adopt(publish_factor(factor))
        for name, factor in query.factors.items()
    }
    payload = {
        "version": STORE_VERSION,
        "key": key,
        "relations": relations,
        "query": {
            "edges": [(n, tuple(vs)) for n, vs in query.hypergraph.edges()],
            "domains": {v: tuple(dom) for v, dom in query.domains.items()},
            "free_vars": tuple(query.free_vars),
            "semiring": _semiring_ref(query.semiring),
            "aggregates": dict(query.aggregates),
            "bound_order": tuple(query.bound_order),
            "name": query.name,
            "backend": query.backend,
        },
        "extra": dict(extra or {}),
    }
    store._payloads[key] = payload
    return payload


class AttachedQuery:
    """A query rebuilt from a manifest, plus the live segment handles.

    ``close()`` releases the attach-side handles; the columnar factors'
    arrays become invalid afterwards, so close only once the query is no
    longer in use.
    """

    def __init__(self, query: FAQQuery, extra: Dict[str, Any], segments) -> None:
        self.query = query
        self.extra = extra
        self._segments = segments

    def close(self) -> None:
        for shm in self._segments:
            try:
                shm.close()
            except Exception:
                pass
        self._segments = []


def attach_query(payload: Mapping[str, Any]) -> AttachedQuery:
    """Rebuild the published query, attaching its relation segments.

    Raises:
        ServeError: (``store-detached``) if any segment is gone.
    """
    segments = []
    factors: Dict[str, Factor] = {}
    try:
        for name, entry in payload["relations"].items():
            factor, shm = _attach_factor(entry)
            factors[name] = factor
            if shm is not None:
                segments.append(shm)
    except ServeError:
        for shm in segments:
            shm.close()
        raise
    meta = payload["query"]
    query = FAQQuery(
        hypergraph=Hypergraph(dict(meta["edges"])),
        factors=factors,
        domains=dict(meta["domains"]),
        free_vars=meta["free_vars"],
        semiring=_semiring_deref(meta["semiring"]),
        aggregates=dict(meta["aggregates"]),
        bound_order=meta["bound_order"],
        name=meta["name"],
        backend=None,  # factors already carry the registered storage
    )
    # Restore the original backend *field* without re-converting (the
    # compiled solver's structural signature includes it).
    query.backend = meta["backend"]
    return AttachedQuery(query, dict(payload["extra"]), segments)


# ---------------------------------------------------------------------------
# The creator-side store
# ---------------------------------------------------------------------------


class SharedRelationStore:
    """Creator-side registry of published relations.

    One store per service (or per suite run); owns every segment it
    publishes and releases them all on :meth:`close` — which is
    idempotent and also runs via the context-manager protocol, so a
    crashed registration cannot leak ``/dev/shm`` entries past the
    ``with`` block.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._payloads: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.RLock()
        self._closed = False

    # -- bookkeeping ----------------------------------------------------
    def _adopt(self, published: Tuple[Dict[str, Any], shared_memory.SharedMemory]):
        entry, shm = published
        with self._lock:
            if self._closed:
                _release_segment(shm)
                raise ServeError(
                    "shutdown", "store is closed; cannot publish", {}
                )
            self._segments.append(shm)
        return entry

    @property
    def segment_names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(shm.name for shm in self._segments)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(shm.size for shm in self._segments)

    def payload(self, key: str) -> Dict[str, Any]:
        try:
            return self._payloads[key]
        except KeyError:
            raise ServeError(
                "unknown-session", f"no relations published under {key!r}",
                {"key": key},
            ) from None

    def describe(self) -> Dict[str, Any]:
        """A JSON-able summary (segment names/sizes, relation shapes)."""
        with self._lock:
            return {
                "version": STORE_VERSION,
                "segments": [
                    {"name": shm.name, "bytes": shm.size}
                    for shm in self._segments
                ],
                "keys": {
                    key: {
                        name: {
                            "kind": entry["kind"],
                            "segment": entry["segment"],
                            "schema": list(entry["schema"]),
                            "rows": entry["rows"],
                        }
                        for name, entry in payload["relations"].items()
                    }
                    for key, payload in self._payloads.items()
                },
            }

    # -- lifecycle -------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments, self._segments = self._segments, []
            self._payloads.clear()
        for shm in segments:
            _release_segment(shm)

    # ``unlink`` as an explicit alias: the lifecycle tests exercise both
    # spellings, and close() already owns the unlink.
    unlink = close

    def __enter__(self) -> "SharedRelationStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort leak guard
        try:
            self.close()
        except Exception:
            pass
