"""The serving front-end: admission control, batching, warm workers.

:class:`QueryService` is a long-lived asyncio service over a
:class:`~repro.serve.store.SharedRelationStore`.  The request path:

1. **Admission** — every submitted spec resolves to a registered
   :class:`~repro.serve.session.ServingSession` (registering on first
   sight; registration is the offline phase and amortizes to zero).
   The session's :func:`~repro.costmodel.predict_costs` metrics price
   the query *without executing anything*; the
   :class:`AdmissionPolicy` then admits, **rejects** (structured
   :class:`~repro.serve.store.ServeError`, code ``"rejected"``, with
   the predicted rounds/bits in ``detail``) or **defers** it to a
   low-priority lane drained only when the main queue is idle.
2. **Batching** — admitted requests enqueue; the batcher drains the
   queue (plus a short coalescing window), dedupes *identical*
   in-flight sessions onto one execution, and stacks structurally
   identical distinct sessions onto one tensor program using the lab's
   batch plane (:func:`~repro.lab.batch.stack_queries` /
   :func:`~repro.lab.batch.unstack_answers` — ROADMAP items 2 and 3).
3. **Execution** — the solve runs in an executor so the event loop
   stays responsive: in-process mode (``workers=0``, default) uses one
   worker thread over the warm sessions (the thread-safe memo/plan
   caches are the satellite that makes this sound); pool mode
   (``workers>=1``) dispatches to warm processes that attached the
   shared-memory store at fork and cache planners per session — no
   factor pickling on the hot path.

Degradation is structured, never a hang: worker crashes surface as
``ServeError("worker-crashed")`` and the pool is rebuilt; a torn-down
store surfaces as ``ServeError("store-detached")``; closing the service
fails every pending future with ``ServeError("shutdown")``.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import kernels
from ..lab.batch import _solve_stacked, stack_queries, unstack_answers
from ..lab.results import answer_digest
from ..lab.spec import ScenarioSpec
from .session import ServingSession, SessionManifest, session_id_of
from .store import ServeError, SharedRelationStore, attach_query


@dataclass(frozen=True)
class AdmissionPolicy:
    """Zero-execution admission control over predicted protocol costs.

    Attributes:
        max_predicted_bits: Reject/defer queries whose predicted
            ``total_bits`` exceeds this (``None`` = unlimited).
        max_predicted_rounds: Same for predicted ``rounds``.
        over_budget: ``"reject"`` (fail fast with the prediction in the
            error detail) or ``"defer"`` (serve from the low-priority
            lane once the interactive queue is idle).
        allow_unpriced: Whether to admit queries on cells the symbolic
            cost model does not cover (no exact prediction exists).
            ``False`` rejects them with code ``"rejected"``.
    """

    max_predicted_bits: Optional[int] = None
    max_predicted_rounds: Optional[int] = None
    over_budget: str = "reject"
    allow_unpriced: bool = True

    def decide(self, manifest: SessionManifest) -> Tuple[str, Dict[str, Any]]:
        """``("admit"|"defer"|"reject", detail)`` for one session."""
        predicted = manifest.predicted
        if predicted is None:
            if self.allow_unpriced:
                return "admit", {"priced": False}
            return "reject", {
                "priced": False,
                "reason": "no cost prediction for this cell "
                          "and the policy rejects unpriced queries",
            }
        detail = {
            "priced": True,
            "predicted": {
                "rounds": predicted["rounds"],
                "total_bits": predicted["total_bits"],
            },
            "budget": {
                "max_predicted_bits": self.max_predicted_bits,
                "max_predicted_rounds": self.max_predicted_rounds,
            },
        }
        over = (
            self.max_predicted_bits is not None
            and predicted["total_bits"] > self.max_predicted_bits
        ) or (
            self.max_predicted_rounds is not None
            and predicted["rounds"] > self.max_predicted_rounds
        )
        if not over:
            return "admit", detail
        detail["reason"] = "predicted cost exceeds the admission budget"
        return ("defer", detail) if self.over_budget == "defer" else (
            "reject", detail
        )


@dataclass
class ServeResult:
    """One served answer plus its provenance."""

    session_id: str
    digest: str
    schema: List[str]
    rows: Dict[Tuple[Any, ...], Any]
    latency_s: float
    batched: bool = False
    batch_size: int = 1
    coalesced: bool = False
    deferred: bool = False
    admission: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ServiceStats:
    """Cumulative service counters (the bench's coalescing-rate source)."""

    submitted: int = 0
    served: int = 0
    rejected: int = 0
    deferred: int = 0
    failed: int = 0
    batches: int = 0
    coalesced_duplicates: int = 0
    stacked_queries: int = 0
    stacked_groups: int = 0
    worker_crashes: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(vars(self))


# ---------------------------------------------------------------------------
# Warm-worker entry points (module level: picklable by reference)
# ---------------------------------------------------------------------------

#: Per-worker-process cache: published payloads and warm per-session
#: planners, populated lazily on first touch after the initializer.
_WORKER_STATE: Dict[str, Dict[str, Any]] = {"payloads": {}, "sessions": {}}


def _serve_worker_init(path: List[str], payloads: Dict[str, Dict[str, Any]]) -> None:
    """Pool initializer: import path + the (small) session payloads.

    The payloads carry segment *names*, not factor bytes — each worker
    attaches the shared-memory segments on first use of a session.
    """
    for entry in path:
        if entry not in sys.path:
            sys.path.append(entry)
    _WORKER_STATE["payloads"] = dict(payloads)
    _WORKER_STATE["sessions"] = {}


def _worker_session(session_id: str):
    """This worker's warm (spec, planner) for a session, attaching once."""
    warm = _WORKER_STATE["sessions"].get(session_id)
    if warm is not None:
        return warm
    payload = _WORKER_STATE["payloads"].get(session_id)
    if payload is None:
        raise ServeError(
            "unknown-session",
            f"worker has no payload for session {session_id!r}",
            {"session_id": session_id},
        )
    attached = attach_query(payload)
    spec = ScenarioSpec.from_json_dict(payload["extra"]["spec"])
    # Apply the spec's backend conversion exactly as the Planner would
    # (identity when the attached storage already matches); the online
    # solve needs no topology, so no network objects are rebuilt here.
    query = attached.query
    if spec.backend is not None:
        query = query.with_backend(spec.backend)
    warm = (spec, query, attached)
    _WORKER_STATE["sessions"][session_id] = warm
    return warm


def _online_solve(query, spec: ScenarioSpec):
    """The kernel-only online solve (mirrors ``Planner.reference_answer``)."""
    from ..faq import solve_naive, solve_variable_elimination

    with kernels.use_tier(spec.kernels):
        try:
            return solve_variable_elimination(query, solver=spec.solver)
        except ValueError:
            return solve_naive(query, solver=spec.solver)


def _answer_payload(factor) -> Dict[str, Any]:
    rows = dict(factor.rows)  # MappingProxy is not picklable
    return {
        "schema": list(factor.schema),
        "rows": rows,
        "digest": answer_digest(factor.schema, rows),
    }


def _worker_execute(session_id: str) -> Dict[str, Any]:
    """Pool task: serve one session from this worker's warm state."""
    spec, query, _attached = _worker_session(session_id)
    return _answer_payload(_online_solve(query, spec))


def _worker_execute_stacked(session_ids: List[str]) -> List[Dict[str, Any]]:
    """Pool task: one stacked solve answering several sessions at once."""
    warms = [_worker_session(sid) for sid in session_ids]
    queries = [query for _spec, query, _att in warms]
    stacked = stack_queries(queries)
    answer = _solve_stacked(stacked)
    free_vars = tuple(queries[0].free_vars)
    out = []
    for rows in unstack_answers(answer, free_vars, len(queries)):
        out.append({
            "schema": list(free_vars),
            "rows": rows,
            "digest": answer_digest(free_vars, rows),
        })
    return out


def _crash_worker() -> None:  # pragma: no cover - exercised via the pool
    """Test hook: die without cleanup, as a real segfault would."""
    os._exit(3)


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class _Request:
    __slots__ = ("session", "future", "enqueued", "deferred", "admission")

    def __init__(self, session, future, deferred, admission):
        self.session = session
        self.future = future
        self.enqueued = time.perf_counter()
        self.deferred = deferred
        self.admission = admission


class QueryService:
    """A persistent query service over registered relations.

    Args:
        policy: Admission policy (default: admit everything).
        workers: ``0`` serves in-process from warm sessions (one solver
            thread over the shared thread-safe caches); ``N >= 1`` warms
            a process pool that attaches the shared-memory store.
        batch_window: Seconds the batcher waits after the first request
            of a batch for coalescing candidates to arrive.
        max_pending: Queue bound; submissions beyond it fail fast with
            ``ServeError("overloaded")``.
        min_stack: Smallest structurally identical group worth stacking.
    """

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        workers: int = 0,
        batch_window: float = 0.002,
        max_pending: int = 1024,
        min_stack: int = 2,
    ) -> None:
        self.policy = policy or AdmissionPolicy()
        self.workers = int(workers)
        self.batch_window = float(batch_window)
        self.max_pending = int(max_pending)
        self.min_stack = int(min_stack)
        self.store = SharedRelationStore()
        self.sessions: Dict[str, ServingSession] = {}
        self.stats = ServiceStats()
        self._queue: Optional[asyncio.Queue] = None
        self._deferred: Optional[asyncio.Queue] = None
        self._batcher: Optional[asyncio.Task] = None
        self._solver_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._closed = False

    # -- registration (offline) -----------------------------------------
    def register(self, spec: ScenarioSpec) -> SessionManifest:
        """Register one scenario identity (idempotent, offline phase)."""
        if self._closed:
            raise ServeError("shutdown", "service is closed", {})
        session_id = session_id_of(spec)
        session = self.sessions.get(session_id)
        if session is None:
            session = ServingSession.register(spec, self.store)
            self.sessions[session_id] = session
            if self._process_pool is not None:
                # Workers warm lazily: rebuild the pool's payload map so
                # *new* workers see the session; existing workers learn
                # it on their next init (simplest correct policy — the
                # bench registers everything before starting the pool).
                self._restart_pool()
        return session.manifest

    def manifest(self) -> Dict[str, Any]:
        """The service-level manifest: sessions + store summary."""
        return {
            "sessions": {
                sid: s.manifest.to_json_dict()
                for sid, s in sorted(self.sessions.items())
            },
            "store": self.store.describe(),
            "stats": self.stats.to_dict(),
        }

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> "QueryService":
        if self._closed:
            raise ServeError("shutdown", "service is closed", {})
        if self._batcher is not None:
            return self
        self._queue = asyncio.Queue()
        self._deferred = asyncio.Queue()
        self._solver_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-solver"
        )
        if self.workers > 0:
            self._start_pool()
        self._batcher = asyncio.get_running_loop().create_task(
            self._batch_loop()
        )
        return self

    async def __aenter__(self) -> "QueryService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def _start_pool(self) -> None:
        payloads = {sid: s.payload for sid, s in self.sessions.items()}
        self._process_pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_serve_worker_init,
            initargs=(list(sys.path), payloads),
        )

    def _restart_pool(self) -> None:
        pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self._start_pool()

    async def close(self) -> None:
        """Drain nothing, fail everything pending, release the store."""
        if self._closed:
            return
        self._closed = True
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except (asyncio.CancelledError, Exception):
                pass
            self._batcher = None
        for queue in (self._queue, self._deferred):
            while queue is not None and not queue.empty():
                request = queue.get_nowait()
                if not request.future.done():
                    request.future.set_exception(
                        ServeError("shutdown", "service closed", {})
                    )
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=False, cancel_futures=True)
            self._process_pool = None
        if self._solver_pool is not None:
            self._solver_pool.shutdown(wait=False, cancel_futures=True)
            self._solver_pool = None
        self.store.close()

    # -- request path ----------------------------------------------------
    async def submit(self, spec: ScenarioSpec) -> ServeResult:
        """Serve one query; raises :class:`ServeError` when not served."""
        if self._closed or self._batcher is None:
            raise ServeError("shutdown", "service is not running", {})
        self.stats.submitted += 1
        manifest = self.register(spec)
        decision, detail = self.policy.decide(manifest)
        if decision == "reject":
            self.stats.rejected += 1
            raise ServeError(
                "rejected",
                f"admission control rejected {manifest.session_id}",
                {"session_id": manifest.session_id, **detail},
            )
        pending = self._queue.qsize() + self._deferred.qsize()
        if pending >= self.max_pending:
            self.stats.rejected += 1
            raise ServeError(
                "overloaded",
                f"queue is full ({pending} pending)",
                {"max_pending": self.max_pending},
            )
        deferred = decision == "defer"
        future = asyncio.get_running_loop().create_future()
        request = _Request(
            self.sessions[manifest.session_id], future, deferred, detail
        )
        if deferred:
            self.stats.deferred += 1
            await self._deferred.put(request)
        else:
            await self._queue.put(request)
        return await future

    # -- batcher ---------------------------------------------------------
    async def _next_request(self) -> _Request:
        """Interactive queue first; the deferred lane only when idle."""
        if not self._queue.empty():
            return self._queue.get_nowait()
        if not self._deferred.empty():
            return self._deferred.get_nowait()
        interactive = asyncio.ensure_future(self._queue.get())
        low = asyncio.ensure_future(self._deferred.get())
        done, pending = await asyncio.wait(
            (interactive, low), return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        # Both may have completed in the same tick; prefer interactive
        # and push the other back.
        winners = [t for t in done]
        request = winners[0].result()
        for extra in winners[1:]:
            back = extra.result()
            target = self._deferred if back.deferred else self._queue
            target.put_nowait(back)
        return request

    async def _collect_batch(self) -> List[_Request]:
        first = await self._next_request()
        batch = [first]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.batch_window
        while True:
            while not self._queue.empty():
                batch.append(self._queue.get_nowait())
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            try:
                batch.append(
                    await asyncio.wait_for(self._queue.get(), remaining)
                )
            except asyncio.TimeoutError:
                break
        return batch

    async def _batch_loop(self) -> None:
        while True:
            batch = await self._collect_batch()
            self.stats.batches += 1
            try:
                await self._execute_batch(batch)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # defensive: never kill the loop
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(
                            ServeError(
                                "execution-failed", str(exc), {}
                            )
                        )

    async def _execute_batch(self, batch: List[_Request]) -> None:
        # 1. Coalesce identical in-flight sessions: one execution each.
        by_session: Dict[str, List[_Request]] = {}
        for request in batch:
            by_session.setdefault(request.session.session_id, []).append(
                request
            )
        self.stats.coalesced_duplicates += len(batch) - len(by_session)
        # 2. Stack structurally identical distinct sessions.
        by_signature: Dict[Optional[str], List[str]] = {}
        for sid, requests in by_session.items():
            sig = requests[0].session.manifest.structural_signature
            by_signature.setdefault(sig, []).append(sid)
        singles: List[str] = []
        stacks: List[List[str]] = []
        for sig, sids in by_signature.items():
            if sig is not None and len(sids) >= self.min_stack:
                stacks.append(sids)
            else:
                singles.extend(sids)
        for sids in stacks:
            self.stats.stacked_groups += 1
            self.stats.stacked_queries += len(sids)
            answers = await self._run_stacked(sids)
            for sid, answer in zip(sids, answers):
                self._resolve(by_session[sid], answer, len(batch), True)
        for sid in singles:
            answer = await self._run_single(sid)
            self._resolve(by_session[sid], answer, len(batch), False)

    def _resolve(
        self,
        requests: List[_Request],
        answer: Dict[str, Any],
        batch_size: int,
        stacked: bool,
    ) -> None:
        now = time.perf_counter()
        for index, request in enumerate(requests):
            if request.future.done():
                continue
            if isinstance(answer, ServeError):
                self.stats.failed += 1
                request.future.set_exception(answer)
                continue
            self.stats.served += 1
            request.future.set_result(ServeResult(
                session_id=request.session.session_id,
                digest=answer["digest"],
                schema=list(answer["schema"]),
                rows=dict(answer["rows"]),
                latency_s=now - request.enqueued,
                batched=stacked,
                batch_size=batch_size,
                coalesced=index > 0,
                deferred=request.deferred,
                admission=request.admission,
            ))

    # -- execution back ends ---------------------------------------------
    async def _run_single(self, session_id: str):
        session = self.sessions[session_id]
        if self._process_pool is not None:
            return await self._pool_call(_worker_execute, session_id)
        return await self._thread_call(
            lambda: _answer_payload(session.execute_online())
        )

    async def _run_stacked(self, session_ids: List[str]):
        if self._process_pool is not None:
            answers = await self._pool_call(
                _worker_execute_stacked, list(session_ids)
            )
        else:
            def stacked_inline():
                queries = [
                    self.sessions[sid].planner.query for sid in session_ids
                ]
                stacked = stack_queries(queries)
                answer = _solve_stacked(stacked)
                free_vars = tuple(queries[0].free_vars)
                return [
                    {
                        "schema": list(free_vars),
                        "rows": rows,
                        "digest": answer_digest(free_vars, rows),
                    }
                    for rows in unstack_answers(
                        answer, free_vars, len(queries)
                    )
                ]

            answers = await self._thread_call(stacked_inline)
        if isinstance(answers, ServeError):
            return [answers] * len(session_ids)
        return answers

    async def _thread_call(self, fn):
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(self._solver_pool, fn)
        except ServeError as exc:
            return exc
        except Exception as exc:
            return ServeError("execution-failed", str(exc), {})

    async def _pool_call(self, fn, arg):
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._process_pool, fn, arg
            )
        except ServeError as exc:
            return exc
        except BrokenProcessPool:
            # A worker died mid-query.  Degrade structurally: rebuild
            # the pool so the *next* query finds warm workers, fail this
            # one fast with a typed error.
            self.stats.worker_crashes += 1
            self._restart_pool()
            return ServeError(
                "worker-crashed",
                "a warm worker died mid-query; the pool was rebuilt",
                {"workers": self.workers},
            )
        except Exception as exc:
            return ServeError("execution-failed", str(exc), {})


async def serve_all(
    service: QueryService, specs: Sequence[ScenarioSpec]
) -> List[Any]:
    """Submit all specs concurrently; returns results or ServeErrors."""
    return await asyncio.gather(
        *(service.submit(spec) for spec in specs), return_exceptions=True
    )
