"""Probabilistic Graphical Models as FAQ-SS instances (paper Section 1).

A PGM here is a factor graph: variables with finite domains and
non-negative factors.  Computing a *factor marginal* — ``F = e`` for some
hyperedge ``e`` over the semiring ``(R>=0, +, x)`` — is exactly the
paper's second headline FAQ-SS special case; MAP-style queries use the
max-product semiring instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..faq import FAQQuery, marginal_query
from ..hypergraph import Hypergraph
from ..semiring import MAX_TIMES, REAL, Factor


@dataclass
class GraphicalModel:
    """A factor-graph PGM.

    Attributes:
        factors: Named non-negative factors (REAL semiring).
        domains: Domain per variable.
    """

    factors: Dict[str, Factor]
    domains: Dict[str, Tuple[Any, ...]]

    def __post_init__(self) -> None:
        for name, factor in self.factors.items():
            if factor.semiring.name not in (REAL.name, MAX_TIMES.name):
                raise ValueError(
                    f"factor {name!r} must be REAL/MAX_TIMES-annotated"
                )
            for var in factor.schema:
                if var not in self.domains:
                    raise ValueError(f"variable {var!r} has no domain")

    @property
    def hypergraph(self) -> Hypergraph:
        """The underlying query hypergraph."""
        return Hypergraph(
            {name: factor.schema for name, factor in self.factors.items()}
        )

    @property
    def variables(self) -> set:
        out: set = set()
        for factor in self.factors.values():
            out |= set(factor.schema)
        return out

    def marginal_query(self, free_vars: Sequence[str]) -> FAQQuery:
        """The FAQ-SS sum-product query for ``phi(free_vars)``."""
        return marginal_query(
            self.hypergraph,
            self.factors,
            self.domains,
            free_vars=tuple(free_vars),
            semiring=REAL,
            name=f"marginal({','.join(map(str, free_vars))})",
        )

    def map_query(self, free_vars: Sequence[str] = ()) -> FAQQuery:
        """The max-product (Viterbi) query over the same factors."""
        lifted = {
            name: Factor(f.schema, dict(f.rows), MAX_TIMES, name)
            for name, f in self.factors.items()
        }
        return FAQQuery(
            hypergraph=self.hypergraph,
            factors=lifted,
            domains=self.domains,
            free_vars=tuple(free_vars),
            semiring=MAX_TIMES,
            name="map",
        )


def chain_model(
    length: int,
    domain_size: int,
    seed: Optional[int] = None,
) -> GraphicalModel:
    """A random chain-structured PGM (an HMM-like Markov chain).

    Variables ``X0 .. X<length>`` with pairwise potentials
    ``f_i(X_i, X_{i+1})``.
    """
    import random

    rng = random.Random(0 if seed is None else seed)
    domain = tuple(range(domain_size))
    factors = {}
    for i in range(length):
        rows = {
            (a, b): rng.uniform(0.05, 1.0)
            for a in domain
            for b in domain
        }
        factors[f"f{i}"] = Factor(
            (f"X{i}", f"X{i + 1}"), rows, REAL, f"f{i}"
        )
    domains = {f"X{i}": domain for i in range(length + 1)}
    return GraphicalModel(factors, domains)


def tree_model(
    branching: int,
    depth: int,
    domain_size: int,
    seed: Optional[int] = None,
) -> GraphicalModel:
    """A random tree-structured PGM (sensor-network shaped, App. A.4)."""
    import random

    rng = random.Random(0 if seed is None else seed)
    domain = tuple(range(domain_size))
    factors: Dict[str, Factor] = {}
    domains: Dict[str, Tuple[Any, ...]] = {"X0": domain}
    nodes = ["X0"]
    counter = 1
    for _level in range(depth):
        nxt = []
        for parent in nodes:
            for _ in range(branching):
                child = f"X{counter}"
                counter += 1
                rows = {
                    (a, b): rng.uniform(0.05, 1.0)
                    for a in domain
                    for b in domain
                }
                factors[f"f{parent}_{child}"] = Factor(
                    (parent, child), rows, REAL, f"f{parent}_{child}"
                )
                domains[child] = domain
                nxt.append(child)
        nodes = nxt
    return GraphicalModel(factors, domains)


def grid_model(
    rows: int,
    cols: int,
    domain_size: int,
    seed: Optional[int] = None,
) -> GraphicalModel:
    """A random grid MRF — a *cyclic* query exercising the core path."""
    import random

    rng = random.Random(0 if seed is None else seed)
    domain = tuple(range(domain_size))
    factors: Dict[str, Factor] = {}
    domains: Dict[str, Tuple[Any, ...]] = {}
    for r in range(rows):
        for c in range(cols):
            domains[f"X{r}_{c}"] = domain
    idx = 0
    for r in range(rows):
        for c in range(cols):
            for dr, dc in ((0, 1), (1, 0)):
                rr, cc = r + dr, c + dc
                if rr < rows and cc < cols:
                    table = {
                        (a, b): rng.uniform(0.05, 1.0)
                        for a in domain
                        for b in domain
                    }
                    factors[f"g{idx}"] = Factor(
                        (f"X{r}_{c}", f"X{rr}_{cc}"), table, REAL, f"g{idx}"
                    )
                    idx += 1
    return GraphicalModel(factors, domains)
