"""PGMs as FAQ-SS instances (factor marginals, MAP, partition function)."""

from .inference import (
    brute_force_marginal,
    map_value,
    marginal,
    partition_function,
)
from .model import GraphicalModel, chain_model, grid_model, tree_model

__all__ = [
    "GraphicalModel",
    "chain_model",
    "tree_model",
    "grid_model",
    "marginal",
    "partition_function",
    "map_value",
    "brute_force_marginal",
]
