"""PGM inference routines on top of the FAQ engine."""

from __future__ import annotations

import itertools
import math
from typing import Dict, Sequence, Tuple

from ..faq import scalar_value, solve_message_passing, solve_variable_elimination
from ..semiring import Factor
from .model import GraphicalModel


def marginal(
    model: GraphicalModel, free_vars: Sequence[str], normalize: bool = False
) -> Factor:
    """The (optionally normalized) marginal ``phi(free_vars)``.

    Uses the GHD message-passing solver when the model is acyclic and
    falls back to variable elimination otherwise.
    """
    query = model.marginal_query(free_vars)
    try:
        result = solve_message_passing(query)
    except ValueError:
        result = solve_variable_elimination(query)
    if not normalize:
        return result
    total = math.fsum(v for _t, v in result)
    if total <= 0:
        raise ValueError("model has zero total mass; cannot normalize")
    return Factor(
        result.schema,
        {t: v / total for t, v in result},
        result.semiring,
        result.name,
    )


def partition_function(model: GraphicalModel) -> float:
    """The normalizing constant ``Z`` (marginal with no free variables)."""
    return float(scalar_value(solve_variable_elimination(model.marginal_query(()))))


def map_value(model: GraphicalModel) -> float:
    """The max-product optimum (unnormalized MAP score)."""
    return float(scalar_value(solve_variable_elimination(model.map_query(()))))


def brute_force_marginal(
    model: GraphicalModel, free_vars: Sequence[str]
) -> Dict[Tuple, float]:
    """Exponential-time ground truth for tests: enumerate all assignments."""
    free_vars = tuple(free_vars)
    variables = sorted(model.variables, key=str)
    out: Dict[Tuple, float] = {}
    for assignment in itertools.product(
        *(model.domains[v] for v in variables)
    ):
        env = dict(zip(variables, assignment))
        weight = 1.0
        for factor in model.factors.values():
            weight *= factor(tuple(env[v] for v in factor.schema))
            if weight == 0.0:
                break
        if weight == 0.0:
            continue
        key = tuple(env[v] for v in free_vars)
        out[key] = out.get(key, 0.0) + weight
    return out
