"""repro — a reproduction of "Topology Dependent Bounds For FAQs" (PODS 2019).

A from-scratch distributed FAQ/semiring query engine with:

* a synchronous, edge-capacitated, round-counting network simulator
  (Model 2.1);
* the full hypergraph/GHD toolchain (GYO, core/forest decomposition,
  GYO-GHDs, MD-GHDs, internal-node-width y(H));
* centralized FAQ solvers (naive, variable elimination, GHD message
  passing, Yannakakis) and the distributed protocols of Sections 4-6;
* executable TRIBES lower-bound reductions and closed-form bound/gap
  calculators regenerating Table 1;
* the min-entropy toolkit of the matrix-chain lower bound;
* two factor storage backends — the generic ``"dict"`` data plane and a
  vectorized NumPy ``"columnar"`` data plane — selected per query/solver
  via the ``backend=`` knob.

Quickstart::

    from repro import Planner, bcq, Hypergraph, Topology
    from repro.workloads import random_instance

    h = Hypergraph.star(4)
    factors, domains = random_instance(h, domain_size=32, relation_size=64)
    query = bcq(h, factors, domains, backend="columnar")
    report = Planner(query, Topology.line(4)).execute()
    print(report.measured_rounds, report.correct)
"""

from .core import (
    ExecutionReport,
    Planner,
    answer_value,
    assign_round_robin,
    assign_single_player,
    worst_case_assignment,
)
from .decomposition import GHD, best_gyo_ghd, internal_node_width
from .faq import FAQQuery, bcq, marginal_query, natural_join_query, scalar_value
from .hypergraph import Hypergraph, decompose, is_acyclic
from .network import Topology
from .semiring import (
    BACKEND_COLUMNAR,
    BACKEND_DICT,
    BACKENDS,
    BOOLEAN,
    COUNTING,
    GF2,
    MAX_TIMES,
    MIN_PLUS,
    REAL,
    ColumnarFactor,
    Factor,
    Semiring,
    backend_of,
    to_backend,
)

__version__ = "1.0.0"

__all__ = [
    "Planner",
    "ExecutionReport",
    "answer_value",
    "assign_round_robin",
    "assign_single_player",
    "worst_case_assignment",
    "FAQQuery",
    "bcq",
    "natural_join_query",
    "marginal_query",
    "scalar_value",
    "Hypergraph",
    "decompose",
    "is_acyclic",
    "GHD",
    "best_gyo_ghd",
    "internal_node_width",
    "Topology",
    "Factor",
    "ColumnarFactor",
    "Semiring",
    "BACKEND_DICT",
    "BACKEND_COLUMNAR",
    "BACKENDS",
    "backend_of",
    "to_backend",
    "BOOLEAN",
    "COUNTING",
    "REAL",
    "MIN_PLUS",
    "MAX_TIMES",
    "GF2",
    "__version__",
]
