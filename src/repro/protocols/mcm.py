"""Matrix Chain Multiplication protocols on a line — Section 6.

The setting (Problem 1.1): ``G`` is a line ``P0 - P1 - ... - P(k+1)``;
``P0`` holds ``x in F_2^N``, ``P_i`` holds ``A_i in F_2^{N x N}``, and
``P(k+1)`` must learn ``A_k ... A_1 x``.  Per the two-party convention the
paper uses for this problem (footnote 12) each edge carries 1 bit per
round; a word-size parameter generalizes this.

Three protocols:

* :func:`run_mcm_sequential` — Proposition 6.1: ``P_i`` computes the
  partial product ``y_i = A_i y_{i-1}`` and streams it on; Θ(kN) rounds,
  optimal for ``k <= N`` (Theorem 6.4).
* :func:`run_mcm_merge` — Appendix I.1: pairwise matrix merging in
  ``log k`` iterations; ``O(N^2 log k + k)`` rounds, the winner when
  ``k >> N``.
* :func:`run_mcm_trivial` — ship every matrix to the sink; Θ(kN²) rounds
  (footnote 18), the baseline both beat.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..linalg import f2
from ..network.simulator import SimulationResult, Simulator
from ..network.topology import Topology
from .primitives import Mailbox, broadcast_node


@dataclass
class MCMReport:
    """Measured outcome of one MCM protocol run.

    Attributes:
        result: The product vector at the sink.
        rounds: Communication rounds used.
        total_bits: Total bits carried.
        simulation: Raw simulator result.
    """

    result: np.ndarray
    rounds: int
    total_bits: int
    simulation: SimulationResult


def mcm_line(k: int) -> Topology:
    """The MCM topology: a line with players P0..P(k+1)."""
    return Topology.line(k + 2, name="mcm-line")


def _check_inputs(matrices: Sequence[np.ndarray], vector: np.ndarray) -> int:
    n = vector.shape[0]
    for i, a in enumerate(matrices):
        if a.shape != (n, n):
            raise ValueError(
                f"A_{i + 1} has shape {a.shape}; expected ({n}, {n})"
            )
    return n


def _stream_vector(ctx, mail, dst, bits: List[int], word_bits: int, tag: str):
    """Send a bit list to a neighbor, ``word_bits`` bits per round."""
    idx = 0
    total = len(bits)
    while idx < total:
        mail.ingest(ctx)
        while idx < total and ctx.remaining_capacity(dst) >= 1:
            take = min(word_bits, total - idx, ctx.remaining_capacity(dst))
            ctx.send(dst, take, ("w", bits[idx: idx + take]), tag)
            idx += take
        if idx < total:
            yield
    return None


def _recv_vector(ctx, mail, src, total: int, tag: str):
    """Receive ``total`` bits from a neighbor."""
    bits: List[int] = []
    while len(bits) < total:
        mail.ingest(ctx)
        for payload in mail.pop(tag, src):
            bits.extend(payload[1])
        if len(bits) < total:
            yield
    return bits[:total]


def run_mcm_sequential(
    matrices: Sequence[np.ndarray],
    vector: np.ndarray,
    word_bits: int = 1,
    max_rounds: int = 5_000_000,
) -> MCMReport:
    """Proposition 6.1: stream partial products down the line.

    ``P_i`` receives ``y_{i-1}`` (N bits), multiplies by ``A_i`` (free
    computation) and streams ``y_i`` to ``P_{i+1}``; total
    ``Θ(k N / word_bits)`` rounds.
    """
    n = _check_inputs(matrices, vector)
    k = len(matrices)
    topo = mcm_line(k)

    def make_proc(i: int):
        node = Topology.player(i)

        def proc(ctx):
            mail = Mailbox()
            if i == 0:
                yield from _stream_vector(
                    ctx, mail, Topology.player(1),
                    f2.vector_to_bits(vector), word_bits, "y0",
                )
                return None
            bits = yield from _recv_vector(
                ctx, mail, Topology.player(i - 1), n, f"y{i - 1}"
            )
            if i == k + 1:
                return f2.bits_to_vector(bits)
            y = f2.matvec(matrices[i - 1], f2.bits_to_vector(bits))
            yield from _stream_vector(
                ctx, mail, Topology.player(i + 1),
                f2.vector_to_bits(y), word_bits, f"y{i}",
            )
            return None

        del node
        return proc

    processes = {Topology.player(i): make_proc(i) for i in range(k + 2)}
    sim = Simulator(topo, capacity_bits=word_bits, max_rounds=max_rounds)
    res = sim.run(processes)
    out = res.output_of(Topology.player(k + 1))
    return MCMReport(out, res.rounds, res.total_bits, res)


def run_mcm_trivial(
    matrices: Sequence[np.ndarray],
    vector: np.ndarray,
    word_bits: int = 1,
    max_rounds: int = 50_000_000,
) -> MCMReport:
    """Footnote 18's baseline: ship all inputs to the sink; Θ(kN²) rounds.

    Each ``P_i`` forwards everything it receives plus its own matrix
    (N² bits) toward ``P_{k+1}``, which multiplies locally.
    """
    n = _check_inputs(matrices, vector)
    k = len(matrices)
    topo = mcm_line(k)

    def make_proc(i: int):
        def proc(ctx):
            mail = Mailbox()
            # Payloads travel in order: x then A_1 ... A_k, relayed hop by
            # hop; P_i injects its own matrix after forwarding upstream data.
            upstream_bits = n + (i - 1) * n * n if i >= 1 else 0
            own_bits: List[int] = []
            if i == 0:
                own_bits = f2.vector_to_bits(vector)
            elif 1 <= i <= k:
                own_bits = [
                    int(b) for b in np.asarray(matrices[i - 1]).reshape(-1)
                ]
            if i == 0:
                yield from _stream_vector(
                    ctx, mail, Topology.player(1), own_bits, word_bits, "tr"
                )
                return None
            received = yield from _recv_and_forward(
                ctx, mail, Topology.player(i - 1),
                None if i == k + 1 else Topology.player(i + 1),
                upstream_bits, own_bits, word_bits, "tr",
            )
            if i == k + 1:
                x = f2.bits_to_vector(received[:n])
                mats = [
                    f2.bits_to_vector(
                        received[n + j * n * n: n + (j + 1) * n * n]
                    ).reshape(n, n)
                    for j in range(k)
                ]
                return f2.chain_product(mats, x)
            return None

        return proc

    processes = {Topology.player(i): make_proc(i) for i in range(k + 2)}
    sim = Simulator(topo, capacity_bits=word_bits, max_rounds=max_rounds)
    res = sim.run(processes)
    out = res.output_of(Topology.player(k + 1))
    return MCMReport(out, res.rounds, res.total_bits, res)


def _recv_and_forward(
    ctx, mail, src, dst, upstream_bits: int, own_bits: List[int],
    word_bits: int, tag: str,
):
    """Pipelined relay: forward ``upstream_bits`` from ``src`` to ``dst``,
    then append ``own_bits``.  Returns everything seen when ``dst`` is
    None (the sink)."""
    received: List[int] = []
    forwarded = 0
    appended = 0
    total_out = upstream_bits + len(own_bits)
    while True:
        mail.ingest(ctx)
        for payload in mail.pop(tag, src):
            received.extend(payload[1])
        if dst is None:
            if len(received) >= upstream_bits:
                return received + own_bits
        else:
            while forwarded < min(len(received), upstream_bits):
                room = ctx.remaining_capacity(dst)
                if room < 1:
                    break
                take = min(word_bits, upstream_bits - forwarded,
                           len(received) - forwarded, room)
                ctx.send(dst, take,
                         ("w", received[forwarded: forwarded + take]), tag)
                forwarded += take
            if forwarded == upstream_bits:
                while appended < len(own_bits):
                    room = ctx.remaining_capacity(dst)
                    if room < 1:
                        break
                    take = min(word_bits, len(own_bits) - appended, room)
                    ctx.send(dst, take,
                             ("w", own_bits[appended: appended + take]), tag)
                    appended += take
                if appended == len(own_bits):
                    return received
        yield
    del total_out


def run_mcm_merge(
    matrices: Sequence[np.ndarray],
    vector: np.ndarray,
    word_bits: int = 1,
    max_rounds: int = 50_000_000,
) -> MCMReport:
    """Appendix I.1: bottom-to-top pairwise merge; O(N² log k + k) rounds.

    Iteration ``t``: every ``P_i`` with ``i mod 2^t == 2^{t-1}`` streams its
    current partial product matrix ``B`` over distance ``2^{t-1}`` (relayed,
    pipelined) to ``P_{i + 2^{t-1}}``, which multiplies it into its own.
    After ``ceil(log2 k)`` iterations ``P_k`` holds ``A_k ... A_1``; then
    ``P0`` streams ``x`` down the line (relayed) and ``P_{k+1}`` finishes.
    For ``k >> N`` this beats Proposition 6.1's Θ(kN).
    """
    n = _check_inputs(matrices, vector)
    k = len(matrices)
    if k == 0:
        raise ValueError("merge protocol needs at least one matrix")
    topo = mcm_line(k)
    iterations = max(1, math.ceil(math.log2(k))) if k > 1 else 0

    # Precompute the (static) merge schedule so every player knows its role.
    # schedule[t] = list of (src_index, dst_index) for iteration t+1.
    schedule: List[List[tuple]] = []
    holders = set(range(1, k + 1))  # players currently holding a matrix
    for t in range(1, iterations + 1):
        step = 2**t
        half = 2 ** (t - 1)
        pairs = []
        for i in range(1, k + 1):
            if i % step == half and i + half <= k and i in holders and (i + half) in holders:
                pairs.append((i, i + half))
        for src, _dst in pairs:
            holders.discard(src)
        schedule.append(pairs)
    # Cleanup pass for non-power-of-two k: chain the surviving partial
    # products left to right so P_k ends with the full product.
    survivors = sorted(holders)
    for left, right in zip(survivors, survivors[1:]):
        schedule.append([(left, right)])
    final_holder = max(survivors)  # == k: the rightmost holder survives

    def make_proc(i: int):
        def proc(ctx):
            mail = Mailbox()
            mine: Optional[np.ndarray] = (
                np.array(matrices[i - 1], dtype=np.uint8) if 1 <= i <= k else None
            )
            for t, pairs in enumerate(schedule, start=1):
                for src, dst in pairs:
                    if not (min(src, dst) <= i <= max(src, dst)):
                        continue
                    tag = f"m{t}:{src}->{dst}"
                    if i == src:
                        bits = [int(b) for b in mine.reshape(-1)]
                        yield from _stream_vector(
                            ctx, mail, Topology.player(i + 1), bits,
                            word_bits, tag,
                        )
                        mine = None
                    elif i == dst:
                        bits = yield from _recv_vector(
                            ctx, mail, Topology.player(i - 1), n * n, tag
                        )
                        other = f2.bits_to_vector(bits).reshape(n, n)
                        # other = A_{src..} is the *lower* half of the chain:
                        # B_dst = B_dst @ B_src (apply src's half first).
                        mine = f2.matmul(mine, other)
                    else:
                        # Pure relay between src and dst.
                        yield from _relay(
                            ctx, mail, Topology.player(i - 1),
                            Topology.player(i + 1), n * n, word_bits, tag,
                        )
            # Now P_final_holder (= P_k) has the full product; P0 streams x
            # along the line to it; it computes y and streams to the sink.
            if i == 0:
                yield from _stream_vector(
                    ctx, mail, Topology.player(1),
                    f2.vector_to_bits(vector), word_bits, "x",
                )
                return None
            if i < final_holder:
                yield from _relay(
                    ctx, mail, Topology.player(i - 1), Topology.player(i + 1),
                    n, word_bits, "x",
                )
                return None
            if i == final_holder:
                bits = yield from _recv_vector(
                    ctx, mail, Topology.player(i - 1), n, "x"
                )
                y = f2.matvec(mine, f2.bits_to_vector(bits))
                yield from _stream_vector(
                    ctx, mail, Topology.player(i + 1),
                    f2.vector_to_bits(y), word_bits, "y",
                )
                return None
            if i == k + 1:
                bits = yield from _recv_vector(
                    ctx, mail, Topology.player(k), n, "y"
                )
                return f2.bits_to_vector(bits)
            return None

        return proc

    processes = {Topology.player(i): make_proc(i) for i in range(k + 2)}
    sim = Simulator(topo, capacity_bits=word_bits, max_rounds=max_rounds)
    res = sim.run(processes)
    out = res.output_of(Topology.player(k + 1))
    return MCMReport(out, res.rounds, res.total_bits, res)


def _relay(ctx, mail, src, dst, total_bits: int, word_bits: int, tag: str):
    """Store-and-forward ``total_bits`` from ``src`` to ``dst`` (pipelined)."""
    buffered: List[int] = []
    forwarded = 0
    while forwarded < total_bits:
        mail.ingest(ctx)
        for payload in mail.pop(tag, src):
            buffered.extend(payload[1])
        while forwarded < len(buffered):
            room = ctx.remaining_capacity(dst)
            if room < 1:
                break
            take = min(word_bits, len(buffered) - forwarded, room)
            ctx.send(dst, take, ("w", buffered[forwarded: forwarded + take]), tag)
            forwarded += take
        if forwarded < total_bits:
            yield
    return None


def predicted_rounds(k: int, n: int, protocol: str, word_bits: int = 1) -> float:
    """Closed-form round predictions for the three protocols.

    ``sequential``: kN + N (Proposition 6.1); ``trivial``: kN² + N
    (footnote 18); ``merge``: N² ceil(log2 k) + 2N + k (Appendix I.1).
    All divided by ``word_bits``.
    """
    if protocol == "sequential":
        return (k * n + n) / word_bits
    if protocol == "trivial":
        return (k * n * n + n) / word_bits
    if protocol == "merge":
        return (n * n * max(1, math.ceil(math.log2(max(2, k)))) + 2 * n) / word_bits + k
    raise ValueError(f"unknown protocol {protocol!r}")
