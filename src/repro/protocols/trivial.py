"""The trivial protocol — Lemma 3.1.

Every player routes its input functions, tuple by tuple, to one designated
player, who then answers the query with free internal computation.  The
routing runs store-and-forward over a BFS tree rooted at the sink; under
worst-case assignment its round count matches ``τ_MCF`` up to the
Appendix D.1 ``Θ̃(·)`` equivalence (and matches exactly on lines, where
the bottleneck edge is the sink's).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..network.simulator import SimulationResult, Simulator
from ..network.topology import Topology
from ..semiring import Factor, Semiring
from .primitives import (
    Mailbox,
    chunk_packets,
    route_to_sink_node,
    strip_continuations,
)


def factor_to_packets(
    factor: Factor, edge_name: str, tuple_bits: int, capacity: int
) -> List[Tuple[int, Any]]:
    """Serialize a factor as routable packets.

    Each tuple becomes one ``tuple_bits`` packet tagged with its relation
    name; packets larger than the edge capacity are chunked (all bits are
    accounted; only the head chunk carries the payload).
    """
    payloads = [
        (max(1, tuple_bits), (edge_name, row, value)) for row, value in factor
    ]
    return chunk_packets(payloads, capacity)


def packets_to_factors(
    payloads: Sequence[Any],
    schemas: Dict[str, Tuple[str, ...]],
    semiring: Semiring,
) -> Dict[str, Factor]:
    """Reassemble routed packets into factors keyed by relation name."""
    rows: Dict[str, Dict[Tuple, Any]] = {name: {} for name in schemas}
    for payload in strip_continuations(payloads):
        edge_name, row, value = payload
        rows[edge_name][tuple(row)] = value
    return {
        name: Factor(schemas[name], rows[name], semiring, name)
        for name in schemas
    }


def _compile_routing_programs(
    parents: Dict[str, Any],
    children: Dict[str, List[str]],
    holdings: Dict[str, List[Tuple[int, Any]]],
    sink: str,
    capacity_bits: int,
):
    """Compiled-engine routing: RouteOps over the BFS tree.

    Chunk timing replicates :func:`chunk_packets` + the generator's
    store-and-forward exactly; payload content travels out of band (the
    collected order at the sink is sorted by origin, not by arrival —
    the multiset is identical).
    """
    from ..network.program import ComputeStep, NodeProgram, RouteOp, chunk_pattern

    payloads_by_node: Dict[str, List[Any]] = {}

    def make_packets_fn(node: str):
        def packets_fn():
            runs: List[Tuple[Tuple[int, ...], int]] = []
            payloads: List[Any] = []
            for bits, payload in holdings.get(node, []):
                pattern = chunk_pattern(bits, capacity_bits)
                if runs and runs[-1][0] == pattern:
                    runs[-1] = (pattern, runs[-1][1] + 1)
                else:
                    runs.append((pattern, 1))
                payloads.append(payload)
            payloads_by_node[node] = payloads
            return runs

        return packets_fn

    programs = {}
    for node in parents:
        items = [
            RouteOp("route", parents[node], sorted(children[node]),
                    make_packets_fn(node))
        ]
        if node == sink:
            def finish(ctx):
                collected: List[Any] = []
                for origin in sorted(payloads_by_node):
                    collected.extend(payloads_by_node[origin])
                return collected

            items.append(ComputeStep(finish, label="collect", is_output=True))
        programs[node] = NodeProgram(node, items)
    return programs


def route_all_to_sink(
    topology: Topology,
    holdings: Dict[str, List[Tuple[int, Any]]],
    sink: str,
    capacity_bits: int,
    max_rounds: int = 1_000_000,
    engine: str = "generator",
) -> Tuple[List[Any], SimulationResult]:
    """Route arbitrary packets from many players to one sink.

    Args:
        holdings: ``player -> [(bits, payload), ...]``; every node of G
            participates as a relay over the sink-rooted BFS tree.
        engine: ``"generator"`` (reference) or ``"compiled"`` (block
            engine).  Round/bit accounting is identical; the compiled
            engine collects payloads in origin order rather than arrival
            order (the multiset is the same).

    Returns:
        ``(collected_payloads_at_sink, simulation_result)``.
    """
    parents = topology.bfs_tree(sink)
    children: Dict[str, List[str]] = {n: [] for n in parents}
    for node, parent in parents.items():
        if parent is not None:
            children[parent].append(node)

    if engine == "compiled":
        programs = _compile_routing_programs(
            parents, children, holdings, sink, capacity_bits
        )
        sim = Simulator(topology, capacity_bits, max_rounds)
        result = sim.run_program(programs)
        collected = result.output_of(sink) or []
        return list(strip_continuations(collected)), result

    def make_proc(node: str):
        packets = chunk_packets(holdings.get(node, []), capacity_bits)

        def proc(ctx):
            mail = Mailbox()
            result = yield from route_to_sink_node(
                ctx,
                mail,
                parents[node],
                sorted(children[node]),
                packets,
                "route",
            )
            return result

        return proc

    processes = {node: make_proc(node) for node in parents}
    sim = Simulator(topology, capacity_bits, max_rounds)
    result = sim.run(processes)
    collected = result.output_of(sink) or []
    return list(strip_continuations(collected)), result


def run_trivial_protocol(
    topology: Topology,
    factors: Dict[str, Factor],
    assignment: Dict[str, str],
    sink: str,
    tuple_bits: int,
    capacity_bits: int,
    max_rounds: int = 1_000_000,
    engine: str = "generator",
) -> Tuple[Dict[str, Factor], SimulationResult]:
    """Ship whole relations to ``sink`` (the Lemma 3.1 protocol).

    Args:
        factors: Relation name -> factor.
        assignment: Relation name -> owning player.
        tuple_bits: The per-tuple encoding cost ``O(r log D)``.
        engine: Protocol engine (see :func:`route_all_to_sink`).

    Returns:
        ``(factors reassembled at sink, simulation_result)``.
    """
    holdings: Dict[str, List[Tuple[int, Any]]] = {}
    for name, factor in factors.items():
        owner = assignment[name]
        if owner == sink:
            continue
        holdings.setdefault(owner, []).extend(
            (max(1, tuple_bits), (name, row, value)) for row, value in factor
        )
    payloads, result = route_all_to_sink(
        topology, holdings, sink, capacity_bits, max_rounds, engine=engine
    )
    schemas = {name: f.schema for name, f in factors.items()}
    semiring = next(iter(factors.values())).semiring if factors else None
    received = packets_to_factors(payloads, schemas, semiring)
    # Factors already at the sink are taken verbatim.
    for name, factor in factors.items():
        if assignment[name] == sink:
            received[name] = factor
    return received, result
