"""The trivial protocol — Lemma 3.1.

Every player routes its input functions, tuple by tuple, to one designated
player, who then answers the query with free internal computation.  The
routing runs store-and-forward over a BFS tree rooted at the sink; under
worst-case assignment its round count matches ``τ_MCF`` up to the
Appendix D.1 ``Θ̃(·)`` equivalence (and matches exactly on lines, where
the bottleneck edge is the sink's).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..network.simulator import SimulationResult, Simulator
from ..network.topology import Topology
from ..semiring import Factor, Semiring
from .primitives import (
    Mailbox,
    chunk_packets,
    route_to_sink_node,
    strip_continuations,
)


def factor_to_packets(
    factor: Factor, edge_name: str, tuple_bits: int, capacity: int
) -> List[Tuple[int, Any]]:
    """Serialize a factor as routable packets.

    Each tuple becomes one ``tuple_bits`` packet tagged with its relation
    name; packets larger than the edge capacity are chunked (all bits are
    accounted; only the head chunk carries the payload).
    """
    payloads = [
        (max(1, tuple_bits), (edge_name, row, value)) for row, value in factor
    ]
    return chunk_packets(payloads, capacity)


def packets_to_factors(
    payloads: Sequence[Any],
    schemas: Dict[str, Tuple[str, ...]],
    semiring: Semiring,
) -> Dict[str, Factor]:
    """Reassemble routed packets into factors keyed by relation name."""
    rows: Dict[str, Dict[Tuple, Any]] = {name: {} for name in schemas}
    for payload in strip_continuations(payloads):
        edge_name, row, value = payload
        rows[edge_name][tuple(row)] = value
    return {
        name: Factor(schemas[name], rows[name], semiring, name)
        for name in schemas
    }


def route_all_to_sink(
    topology: Topology,
    holdings: Dict[str, List[Tuple[int, Any]]],
    sink: str,
    capacity_bits: int,
    max_rounds: int = 1_000_000,
) -> Tuple[List[Any], SimulationResult]:
    """Route arbitrary packets from many players to one sink.

    Args:
        holdings: ``player -> [(bits, payload), ...]``; every node of G
            participates as a relay over the sink-rooted BFS tree.

    Returns:
        ``(collected_payloads_at_sink, simulation_result)``.
    """
    parents = topology.bfs_tree(sink)
    children: Dict[str, List[str]] = {n: [] for n in parents}
    for node, parent in parents.items():
        if parent is not None:
            children[parent].append(node)

    def make_proc(node: str):
        packets = chunk_packets(holdings.get(node, []), capacity_bits)

        def proc(ctx):
            mail = Mailbox()
            result = yield from route_to_sink_node(
                ctx,
                mail,
                parents[node],
                sorted(children[node]),
                packets,
                "route",
            )
            return result

        return proc

    processes = {node: make_proc(node) for node in parents}
    sim = Simulator(topology, capacity_bits, max_rounds)
    result = sim.run(processes)
    collected = result.output_of(sink) or []
    return list(strip_continuations(collected)), result


def run_trivial_protocol(
    topology: Topology,
    factors: Dict[str, Factor],
    assignment: Dict[str, str],
    sink: str,
    tuple_bits: int,
    capacity_bits: int,
    max_rounds: int = 1_000_000,
) -> Tuple[Dict[str, Factor], SimulationResult]:
    """Ship whole relations to ``sink`` (the Lemma 3.1 protocol).

    Args:
        factors: Relation name -> factor.
        assignment: Relation name -> owning player.
        tuple_bits: The per-tuple encoding cost ``O(r log D)``.

    Returns:
        ``(factors reassembled at sink, simulation_result)``.
    """
    holdings: Dict[str, List[Tuple[int, Any]]] = {}
    for name, factor in factors.items():
        owner = assignment[name]
        if owner == sink:
            continue
        holdings.setdefault(owner, []).extend(
            (max(1, tuple_bits), (name, row, value)) for row, value in factor
        )
    payloads, result = route_all_to_sink(
        topology, holdings, sink, capacity_bits, max_rounds
    )
    schemas = {name: f.schema for name, f in factors.items()}
    semiring = next(iter(factors.values())).semiring if factors else None
    received = packets_to_factors(payloads, schemas, semiring)
    # Factors already at the sink are taken verbatim.
    for name, factor in factors.items():
        if assignment[name] == sink:
            received[name] = factor
    return received, result
