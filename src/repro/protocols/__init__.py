"""Distributed protocols: the paper's upper bounds, executable."""

from .compiler import compile_round_programs
from .faq_protocol import (
    ENGINES,
    FAQProtocolReport,
    ProtocolPlan,
    StarPhase,
    compile_plan,
    default_value_bits,
    run_distributed_faq,
    validate_engine,
)
from .mcm import (
    MCMReport,
    mcm_line,
    predicted_rounds,
    run_mcm_merge,
    run_mcm_sequential,
    run_mcm_trivial,
)
from .primitives import (
    EOS_BITS,
    HEADER_BITS,
    Mailbox,
    broadcast_node,
    chunk_packets,
    convergecast_node,
    parallel_subphases,
    route_to_sink_node,
    strip_continuations,
)
from .set_intersection import (
    reassemble_slices,
    scatter_over_packing,
    SlotPlan,
    combine_over_packing,
    plan_slots,
    run_set_intersection,
)
from .trivial import (
    factor_to_packets,
    packets_to_factors,
    route_all_to_sink,
    run_trivial_protocol,
)

__all__ = [
    "Mailbox",
    "broadcast_node",
    "convergecast_node",
    "route_to_sink_node",
    "parallel_subphases",
    "chunk_packets",
    "strip_continuations",
    "HEADER_BITS",
    "EOS_BITS",
    "SlotPlan",
    "plan_slots",
    "combine_over_packing",
    "run_set_intersection",
    "scatter_over_packing",
    "reassemble_slices",
    "run_trivial_protocol",
    "route_all_to_sink",
    "factor_to_packets",
    "packets_to_factors",
    "StarPhase",
    "ProtocolPlan",
    "FAQProtocolReport",
    "compile_plan",
    "compile_round_programs",
    "default_value_bits",
    "run_distributed_faq",
    "ENGINES",
    "validate_engine",
    "MCMReport",
    "mcm_line",
    "run_mcm_sequential",
    "run_mcm_merge",
    "run_mcm_trivial",
    "predicted_rounds",
]
