"""Multiparty set intersection over Steiner tree packings — Theorem 3.11.

Every player ``u in K`` holds an N-bit vector ``x_u``; a designated player
must learn the bitwise AND (equivalently, the intersection of the sets the
vectors indicate).  The protocol packs edge-disjoint Steiner trees of
terminal diameter <= Δ, splits the N slots across the trees and runs a
pipelined convergecast on each tree in parallel, achieving

    O( min_Δ ( N / ST(G, K, Δ) + Δ ) )

rounds at one bit per slot (Theorem 3.11, from Chattopadhyay et al.).
The same machinery, instantiated with a semiring product instead of AND,
is the ⊗-combining step of the FAQ protocol (footnote 24).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..network.simulator import SimulationResult, Simulator
from ..network.steiner import SteinerTree, optimize_delta, pack_steiner_trees
from ..network.topology import Topology
from .primitives import (
    Mailbox,
    broadcast_node,
    convergecast_node,
    parallel_subphases,
)


@dataclass
class SlotPlan:
    """A Steiner tree packing used as parallel aggregation channels.

    Attributes:
        trees: The edge-disjoint Steiner trees, all rooted at the output
            player and sharing one terminal set.
        delta: The diameter bound the packing satisfies.
    """

    trees: List[SteinerTree]
    delta: int

    @property
    def num_trees(self) -> int:
        return len(self.trees)

    @property
    def root(self) -> str:
        return self.trees[0].root

    @property
    def terminals(self) -> Tuple[str, ...]:
        return self.trees[0].terminals

    def slice_ranges(self, num_slots: int) -> List[Tuple[int, int]]:
        """Split ``num_slots`` into contiguous per-tree ranges."""
        s = len(self.trees)
        per = math.ceil(num_slots / s) if num_slots else 0
        return [
            (min(num_slots, j * per), min(num_slots, (j + 1) * per))
            for j in range(s)
        ]

    def trees_of(self, node: str) -> List[int]:
        """Indices of the packing trees containing ``node``."""
        return [j for j, t in enumerate(self.trees) if node in t.nodes]


def plan_slots(
    topology: Topology,
    players: Sequence[str],
    output_player: str,
    num_slots: int,
    max_diameter: Optional[int] = None,
) -> SlotPlan:
    """Pack Steiner trees rooted at ``output_player`` and slice the slots.

    With ``max_diameter=None`` the Δ of Theorem 3.11 is optimized by
    :func:`repro.network.steiner.optimize_delta`; otherwise the packing is
    computed at the requested Δ (used by the Δ-ablation bench).

    Raises:
        ValueError: if no Steiner tree connects the players at the
            requested diameter.
    """
    terminals = sorted(set(players) | {output_player})
    if max_diameter is None:
        delta, trees, _ = optimize_delta(topology, terminals, max(1, num_slots))
    else:
        trees = pack_steiner_trees(topology, terminals, max_diameter)
        delta = max_diameter
        if not trees:
            raise ValueError(
                f"no Steiner tree of diameter <= {max_diameter} connects "
                f"{terminals}"
            )
    trees = [
        SteinerTree(t.edges, output_player, tuple(terminals)) for t in trees
    ]
    return SlotPlan(trees=trees, delta=delta)


def scatter_over_packing(
    ctx,
    mail: Mailbox,
    plan: SlotPlan,
    items: Optional[Sequence[Any]],
    bits_per_item: int,
    tag: str,
):
    """Scatter ``items`` from the packing root to every tree node.

    The root splits the item list into the plan's per-tree slices and
    broadcasts slice ``j`` down tree ``j`` (the trees are edge-disjoint, so
    the broadcasts run fully in parallel — this is what buys the
    Example 2.3 clique speedup, N/ST(G,K,Δ) + Δ instead of N).

    Returns:
        ``{tree_index: slice_items}`` for the trees this node belongs to.
        Terminals belong to every tree and can reassemble the full list
        with :func:`reassemble_slices`.
    """
    is_root = plan.trees and ctx.node == plan.root
    ranges = plan.slice_ranges(len(items)) if is_root else None
    subgens = []
    tree_indices = []
    for j, tree in enumerate(plan.trees):
        if ctx.node not in tree.nodes:
            continue
        parents = tree.parent_map()
        parent = parents.get(ctx.node)
        children = sorted(n for n, p in parents.items() if p == ctx.node)
        slice_items = None
        if is_root:
            start, stop = ranges[j]
            slice_items = list(items[start:stop])
        subgens.append(
            broadcast_node(
                ctx, mail, parent, children, slice_items, bits_per_item,
                f"{tag}:t{j}",
            )
        )
        tree_indices.append(j)
    results = yield from parallel_subphases(subgens)
    return dict(zip(tree_indices, results))


def reassemble_slices(slices_by_tree: Dict[int, List[Any]], plan: SlotPlan) -> List[Any]:
    """Concatenate per-tree slices back into the original item order."""
    out: List[Any] = []
    for j in range(plan.num_trees):
        out.extend(slices_by_tree.get(j, ()))
    return out


def combine_over_packing(
    ctx,
    mail: Mailbox,
    plan: SlotPlan,
    slots_by_tree: Dict[int, Optional[Sequence[Any]]],
    counts_by_tree: Dict[int, int],
    combine: Callable[[Any, Any], Any],
    identity: Any,
    bits_per_slot: int,
    tag: str,
):
    """One node's role in the packed convergecast (generator).

    The node runs one convergecast per tree it belongs to, in parallel
    (the trees are edge-disjoint, so streams never contend).

    Args:
        slots_by_tree: This node's contribution per tree (None = identity).
        counts_by_tree: Slot count per tree this node participates in
            (learned from the scatter headers, so empty relations and
            uneven splits need no global agreement).

    Returns:
        The full combined slot list at the packing root; None elsewhere.
    """
    subgens = []
    tree_indices = []
    for j, tree in enumerate(plan.trees):
        if ctx.node not in tree.nodes:
            continue
        parents = tree.parent_map()
        parent = parents.get(ctx.node)
        children = sorted(n for n, p in parents.items() if p == ctx.node)
        slots = slots_by_tree.get(j)
        subgens.append(
            convergecast_node(
                ctx,
                mail,
                parent,
                children,
                counts_by_tree[j],
                None if slots is None else list(slots),
                combine,
                identity,
                bits_per_slot,
                f"{tag}:t{j}",
            )
        )
        tree_indices.append(j)
    results = yield from parallel_subphases(subgens)
    if plan.trees and ctx.node == plan.root:
        combined: List[Any] = []
        by_tree = dict(zip(tree_indices, results))
        for j in range(plan.num_trees):
            combined.extend(by_tree.get(j) or ())
        return combined
    return None


def _compile_intersection_programs(
    plan: SlotPlan,
    vectors: Dict[str, Sequence[bool]],
    output_player: str,
    participants,
    ranges,
    bits_per_slot: int,
):
    """The compiled-engine form of the Theorem 3.11 protocol.

    One :class:`~repro.network.program.ConvergecastOp` per (node, tree)
    carries the slot timing; the AND itself is a timing-free fold over
    each tree's contributions, computed at the root in the generator
    engine's association order.
    """
    from ..network.program import ComputeStep, ConvergecastOp, NodeProgram, ParallelOps
    from .compiler import fold_tree_slots

    slots_full = {node: list(vec) for node, vec in vectors.items()}
    vec_and = lambda a, b: [x and y for x, y in zip(a, b)]
    identity_fn = lambda length: [True] * length

    programs = {}
    for node in sorted(participants):
        cc_ops = []
        for j in plan.trees_of(node):
            tree = plan.trees[j]
            parents = tree.parent_map()
            children = sorted(n for n, p in parents.items() if p == node)
            op = ConvergecastOp(f"si:t{j}", parents.get(node), children,
                                bits_per_slot)
            start, stop = ranges[j]
            op.configure(stop - start)
            cc_ops.append(op)
        items = [ParallelOps(cc_ops, label="si")] if cc_ops else []
        if node == output_player:
            def finish(ctx):
                combined: List[bool] = []
                for j, tree in enumerate(plan.trees):
                    start, stop = ranges[j]
                    combined.extend(
                        fold_tree_slots(tree, slots_full, start, stop,
                                        vec_and, identity_fn)
                    )
                return combined

            items.append(ComputeStep(finish, label="si:finish", is_output=True))
        programs[node] = NodeProgram(node, items)
    return programs


def run_set_intersection(
    topology: Topology,
    vectors: Dict[str, Sequence[bool]],
    output_player: str,
    max_diameter: Optional[int] = None,
    bits_per_slot: int = 1,
    max_rounds: int = 1_000_000,
    engine: str = "generator",
) -> Tuple[List[bool], SimulationResult]:
    """Run the full Theorem 3.11 protocol on the simulator.

    Args:
        vectors: ``player -> N-bit vector``; all vectors must share one
            length N.  Players of G absent from the dict participate as
            Steiner relay nodes when needed.
        output_player: Learns the AND of all vectors.
        max_diameter: Fix Δ (None = optimize).
        bits_per_slot: Bits charged per transmitted slot (1 for Boolean).
        engine: ``"generator"`` (reference) or ``"compiled"`` (block
            engine); identical answers and round/bit accounting.

    Returns:
        ``(intersection_vector, simulation_result)``.

    Raises:
        ValueError: on inconsistent vector lengths.
    """
    lengths = {len(v) for v in vectors.values()}
    if len(lengths) > 1:
        raise ValueError(f"vectors have inconsistent lengths: {lengths}")
    num_slots = lengths.pop() if lengths else 0
    plan = plan_slots(
        topology, list(vectors), output_player, num_slots, max_diameter
    )
    participants = set()
    for tree in plan.trees:
        participants |= tree.nodes
    participants |= set(vectors) | {output_player}

    ranges = plan.slice_ranges(num_slots)

    if engine == "compiled":
        programs = _compile_intersection_programs(
            plan, vectors, output_player, participants, ranges, bits_per_slot
        )
        sim = Simulator(
            topology, capacity_bits=max(1, bits_per_slot), max_rounds=max_rounds
        )
        result = sim.run_program(programs)
        answer = result.output_of(output_player)
        return list(answer or []), result

    def make_proc(node: str):
        my = vectors.get(node)

        def proc(ctx):
            mail = Mailbox()
            slots_by_tree = {}
            counts_by_tree = {}
            for j in plan.trees_of(node):
                start, stop = ranges[j]
                counts_by_tree[j] = stop - start
                slots_by_tree[j] = (
                    None if my is None else list(my[start:stop])
                )
            result = yield from combine_over_packing(
                ctx,
                mail,
                plan,
                slots_by_tree,
                counts_by_tree,
                lambda a, b: a and b,
                True,
                bits_per_slot,
                "si",
            )
            return result

        return proc

    processes = {node: make_proc(node) for node in participants}
    sim = Simulator(topology, capacity_bits=max(1, bits_per_slot), max_rounds=max_rounds)
    result = sim.run(processes)
    answer = result.output_of(output_player)
    if answer is None:
        answer = []
    return list(answer), result
