"""The protocol control plane: ProtocolPlan -> per-node RoundPrograms.

This module is the compiled engine's counterpart of
:func:`repro.protocols.faq_protocol._make_player`.  Where the generator
engine interleaves scheduling and data movement inside one generator per
node, the compiler splits the two:

* **Control plane** — :func:`compile_round_programs` turns the static
  parts of a :class:`~repro.protocols.faq_protocol.ProtocolPlan` (star
  order, Steiner packings, routing tree, tag namespace, per-item bit
  charges) into one :class:`~repro.network.program.NodeProgram` per
  node: a schedule of typed ops (scatter BROADCAST, SCORE, ⊗-CONVERGECAST,
  final ROUTE) that the block engine executes in lockstep.  Everything
  that *can* be decided up front is; only data-dependent counts (relation
  sizes shrink as stars rebuild their centers) stay runtime-configured,
  exactly as the generator engine's self-timed headers do.

* **Data plane** — broadcast rows are dictionary-encoded once into a
  shared :class:`~repro.semiring.columnar.WireBlock` (the wire codec
  charges ``tuple_bits`` per row, identical to the generator's per-tuple
  messages); Phase B scores whole blocks with vectorized column kernels
  when the semiring has a vector profile (falling back to the shared
  dict scorer otherwise); convergecast values are folded over each
  Steiner tree in the generator's exact association order, vectorized
  when safe.  Integer (COUNTING) folds pre-check int64 overflow and drop
  to exact Python arithmetic, mirroring the columnar operator kernels.

Engine parity — identical answers, identical round counts, identical
total/per-edge bits — is asserted end-to-end by ``tests/test_program.py``
over every Table 1 suite.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..network.program import (
    BroadcastOp,
    ComputeStep,
    ConvergecastOp,
    NodeProgram,
    ParallelOps,
    RouteOp,
    chunk_pattern,
)
from ..network.steiner import SteinerTree
from ..network.topology import Topology
from ..semiring import (
    BACKEND_COLUMNAR,
    ColumnarFactor,
    Factor,
    VECTOR_PROFILES,
    WireBlock,
    supports_columnar,
    to_backend,
)
from ..semiring.columnar import _INT64_MAX, _composite_key, _merge_dictionaries
from ..faq.operations import project as dict_project
from .faq_protocol import (
    ProtocolPlan,
    StarPhase,
    _finish_locally,
    _score_rows,
    _star_contributions,
)

#: Semirings whose ⊕ is order-insensitive at machine precision (boolean
#: or, exact int64 add, float min/max).  REAL's float ``+`` is excluded:
#: re-associating sums could drift from the dict scorer's fold order, and
#: the parity contract is *byte*-identical answers.
_EXACT_ADD = frozenset({"boolean", "counting", "min-plus", "max-plus", "max-times"})


# ---------------------------------------------------------------------------
# Value-plane helpers: vectorize when safe, stay exact otherwise
# ---------------------------------------------------------------------------


def _profile_of(semiring):
    return VECTOR_PROFILES[semiring.name] if supports_columnar(semiring) else None


def _mul_values(semiring, profile, a, b):
    """Elementwise ⊗ of two slot vectors, matching the generator's ops.

    Vectorized when both sides are arrays and an integer profile cannot
    overflow; otherwise an exact Python fold (unbounded ints).  The
    per-slot operand order is preserved, so even float ⊗ chains agree
    bit for bit with the generator engine.
    """
    if (
        profile is not None
        and isinstance(a, np.ndarray)
        and isinstance(b, np.ndarray)
    ):
        if np.issubdtype(profile.dtype, np.integer) and len(a) and len(b):
            a_max = int(np.abs(a).max())
            b_max = int(np.abs(b).max())
            if a_max and b_max and a_max > _INT64_MAX // b_max:
                return [
                    semiring.mul(x, y) for x, y in zip(a.tolist(), b.tolist())
                ]
        return profile.mul(a, b)
    left = a.tolist() if isinstance(a, np.ndarray) else a
    right = b.tolist() if isinstance(b, np.ndarray) else b
    return [semiring.mul(x, y) for x, y in zip(left, right)]


def _identity_vector(semiring, profile, length: int):
    if profile is not None:
        return np.full(length, semiring.one, dtype=profile.dtype)
    return [semiring.one] * length


def fold_tree_slots(
    tree: SteinerTree,
    slots_by_node: Dict[str, Any],
    start: int,
    stop: int,
    vec_mul: Callable[[Any, Any], Any],
    identity_fn: Callable[[int], Any],
):
    """Combine the packing tree's slot contributions, root association.

    Replicates the convergecast's value flow without its timing: each
    node's value is its own slots (identity when it contributed none)
    combined with its children's folded values in sorted-child order —
    the exact association the generator's pipelined combine produces.

    Args:
        vec_mul: Elementwise slot-vector combiner (e.g. the semiring ⊗).
        identity_fn: length -> identity slot vector.
    """
    parents = tree.parent_map()
    children: Dict[str, List[str]] = {n: [] for n in parents}
    for node, parent in parents.items():
        if parent is not None:
            children[parent].append(node)
    length = stop - start

    def value_of(node: str):
        own = slots_by_node.get(node)
        acc = own[start:stop] if own is not None else identity_fn(length)
        for child in sorted(children.get(node, ())):
            acc = vec_mul(acc, value_of(child))
        return acc

    return value_of(tree.root)


def _align_join_columns(
    wire_dict: List[Any],
    wire_codes: np.ndarray,
    factor_dict: List[Any],
    factor_codes: np.ndarray,
    array_cache: Optional[Dict[int, np.ndarray]] = None,
):
    """Map two dictionary-coded columns into one shared code space.

    Shared dictionaries (zero-copy columnar wire blocks) need no work at
    all.  The fast path for numeric dictionaries translates codes to
    their actual values and shifts into a dense non-negative range —
    pure array arithmetic, no Python-level dictionary merge.  Falls back
    to :func:`_merge_dictionaries` (generic hashable values) otherwise.

    Returns:
        ``(wire_column, factor_column, cardinality)`` where equal entries
        mean equal underlying domain values.
    """
    if wire_dict is factor_dict:
        return wire_codes, factor_codes, len(wire_dict)

    def as_array(d: List[Any]) -> np.ndarray:
        if array_cache is None:
            return np.asarray(d)
        arr = array_cache.get(id(d))
        if arr is None:
            arr = array_cache[id(d)] = np.asarray(d)
        return arr

    try:
        wire_vals = as_array(wire_dict)
        factor_vals = as_array(factor_dict)
        if (
            wire_vals.ndim == 1
            and factor_vals.ndim == 1
            and wire_vals.dtype.kind in "iub"
            and factor_vals.dtype.kind in "iub"
        ):
            lows = [int(a.min()) for a in (wire_vals, factor_vals) if len(a)]
            highs = [int(a.max()) for a in (wire_vals, factor_vals) if len(a)]
            low = min(lows) if lows else 0
            high = max(highs) if highs else 0
            card = high - low + 1
            if 0 < card <= 2 ** 40:
                wire_col = wire_vals.astype(np.int64)[wire_codes] - low
                factor_col = factor_vals.astype(np.int64)[factor_codes] - low
                return wire_col, factor_col, card
    except (TypeError, ValueError, OverflowError):
        # e.g. uint64 dictionaries whose values exceed int64 — fall back
        # to the generic merge below.
        pass
    merged, remap = _merge_dictionaries(wire_dict, factor_dict)
    return wire_codes, remap[factor_codes], len(merged)


def _vector_scores(
    semiring, schema: Sequence[str], contributions: Sequence[Factor],
    wire: WireBlock,
) -> Optional[np.ndarray]:
    """Phase B, vectorized: score every broadcast row in one pass.

    The columnar analogue of ``_score_rows``: each contribution is joined
    to the wire block on its shared columns via merged dictionaries +
    composite-key ``searchsorted`` (missing rows score the semiring
    zero), then ⊗-multiplied into the slot vector.  Returns ``None``
    whenever exactness cannot be guaranteed — no vector profile, int64
    overflow risk, composite-key overflow, or an order-sensitive float ⊕
    in a projection — and the caller falls back to the dict scorer.
    """
    profile = _profile_of(semiring)
    if profile is None:
        return None
    n = len(wire)
    schema_index = wire.schema_index
    slots = np.full(n, semiring.one, dtype=profile.dtype)
    integer = np.issubdtype(profile.dtype, np.integer)
    array_cache: Dict[int, np.ndarray] = {}
    for factor in contributions:
        try:
            cf = ColumnarFactor.from_factor(factor)
        except (ValueError, OverflowError):
            return None
        proj_vars = [v for v in cf.schema if v in schema_index]
        if len(proj_vars) < len(cf.schema):
            # Projection must ⊕-combine colliding rows; only do it
            # vectorized when ⊕ is order-insensitive.
            if semiring.name not in _EXACT_ADD:
                return None
            projected = dict_project(cf, proj_vars)
            if not isinstance(projected, ColumnarFactor):
                try:
                    projected = ColumnarFactor.from_factor(projected)
                except (ValueError, OverflowError):
                    return None
            cf = projected
            proj_vars = [v for v in cf.schema if v in schema_index]
        wire_cols, factor_cols, cards = [], [], []
        for v in proj_vars:
            fi = cf.column_index(v)
            bi = schema_index[v]
            wire_col, factor_col, card = _align_join_columns(
                wire.dictionaries[bi], wire.codes[bi],
                cf.dictionaries[fi], cf.codes[fi], array_cache,
            )
            wire_cols.append(wire_col)
            factor_cols.append(factor_col)
            cards.append(card)
        wire_key = _composite_key(wire_cols, cards, n)
        factor_key = _composite_key(factor_cols, cards, len(cf))
        if wire_key is None or factor_key is None:
            return None
        values = np.full(n, semiring.zero, dtype=profile.dtype)
        if len(factor_key):
            order = np.argsort(factor_key)
            sorted_key = factor_key[order]
            pos = np.minimum(
                np.searchsorted(sorted_key, wire_key), len(sorted_key) - 1
            )
            found = sorted_key[pos] == wire_key
            if found.any():
                values[found] = cf.values[order[pos[found]]]
        if integer and n:
            s_max = int(np.abs(slots).max())
            v_max = int(np.abs(values).max())
            if s_max and v_max and s_max > _INT64_MAX // v_max:
                return None
        slots = profile.mul(slots, values)
    return slots


# ---------------------------------------------------------------------------
# Shared per-phase runtime state
# ---------------------------------------------------------------------------


class StarRuntime:
    """Data-plane state one star phase shares across its participants.

    In-process stand-in for "every participant eventually holds the
    broadcast block / its subtree's scores": ops still gate every read
    behind the block engine's count arithmetic, so nothing is consumed
    before its bits have been charged.
    """

    def __init__(self, plan: ProtocolPlan, star: StarPhase) -> None:
        self.plan = plan
        self.star = star
        self.wire: Optional[WireBlock] = None
        self.ranges: Optional[List[Tuple[int, int]]] = None
        self._rows: Optional[List[Tuple]] = None
        self.slots: Dict[str, Any] = {}

    def ensure_items(self, state: Dict[str, Factor]) -> None:
        """Encode the center relation once, when the root starts scattering."""
        if self.wire is not None:
            return
        factor = state[self.star.center_edge]
        if isinstance(factor, ColumnarFactor):
            # Already columnar: the wire block shares the code arrays and
            # dictionaries (annotations stay local — the scatter ships
            # rows only, at tuple_bits each, like the generator).
            self.wire = WireBlock(
                factor.schema, factor.codes, factor.dictionaries
            )
        else:
            self.wire = WireBlock.encode_rows(
                self.star.center_schema, factor.tuples()
            )
        self.ranges = self.star.slot_plan.slice_ranges(len(self.wire))

    def tree_count(self, j: int) -> int:
        start, stop = self.ranges[j]
        return stop - start

    def rows(self) -> List[Tuple]:
        """Decoded broadcast rows (dict-plane fallback, cached)."""
        if self._rows is None:
            self._rows = self.wire.decode_rows()
        return self._rows

    def combined_at_root(self):
        """The ⊗-convergecast result, reassembled across the packing."""
        semiring = self.plan.query.semiring
        profile = _profile_of(semiring)
        vec_mul = lambda a, b: _mul_values(semiring, profile, a, b)
        identity_fn = lambda length: _identity_vector(semiring, profile, length)
        per_tree = []
        for j, tree in enumerate(self.star.slot_plan.trees):
            start, stop = self.ranges[j]
            per_tree.append(
                fold_tree_slots(
                    tree, self.slots, start, stop, vec_mul, identity_fn
                )
            )
        if all(isinstance(v, np.ndarray) for v in per_tree):
            return (
                np.concatenate(per_tree) if per_tree
                else _identity_vector(semiring, profile, 0)
            )
        out: List[Any] = []
        for v in per_tree:
            out.extend(v.tolist() if isinstance(v, np.ndarray) else v)
        return out


class FinalRuntime:
    """Payload side-channel of the final routing phase.

    Chunk timing and every bit still travel through the block engine;
    only the payload *content* — which is timing-independent (the sink
    keys received tuples by relation and row) — moves out of band.
    """

    def __init__(self) -> None:
        self.payloads: Dict[str, List[Tuple[str, Tuple, Any]]] = {}

    def register(self, node: str, items: List[Tuple[str, Tuple, Any]]) -> None:
        self.payloads[node] = items

    def collected(self) -> List[Tuple[str, Tuple, Any]]:
        out: List[Tuple[str, Tuple, Any]] = []
        for node in sorted(self.payloads):
            out.extend(self.payloads[node])
        return out


# ---------------------------------------------------------------------------
# Star phase compilation
# ---------------------------------------------------------------------------


def _compute_star_slots(
    plan: ProtocolPlan,
    star: StarPhase,
    state: Dict[str, Factor],
    node: str,
    runtime: StarRuntime,
):
    """Phase B for one terminal: vectorized scorer, dict fallback."""
    contributions = _star_contributions(plan, star, state, node)
    if not contributions:
        return None
    scores = _vector_scores(
        plan.query.semiring, star.center_schema, contributions, runtime.wire
    )
    if scores is not None:
        return scores
    return _score_rows(
        plan.query.semiring, star.center_schema, contributions, runtime.rows()
    )


def _rebuild_center(
    plan: ProtocolPlan, star: StarPhase, runtime: StarRuntime, combined
) -> Factor:
    """Phase D: the center's owner rebuilds its relation from the scores.

    Same canonicalization as the generator path (zero annotations drop);
    when the query's data plane is columnar and the scores stayed
    vectorized, the rebuild is pure array slicing on the wire block.
    """
    query = plan.query
    semiring = query.semiring
    wire = runtime.wire
    if (
        isinstance(combined, np.ndarray)
        and query.backend == BACKEND_COLUMNAR
        and supports_columnar(semiring)
    ):
        profile = VECTOR_PROFILES[semiring.name]
        zero = profile.is_zero_mask(combined)
        if zero.any():
            keep = ~zero
            codes = [c[keep] for c in wire.codes]
            values = combined[keep]
        else:
            codes = list(wire.codes)
            values = combined
        return ColumnarFactor._from_arrays(
            star.center_schema, codes, list(wire.dictionaries), values,
            semiring, star.center_edge,
        )
    values = combined.tolist() if isinstance(combined, np.ndarray) else combined
    new_rows = {
        tuple(row): values[i] for i, row in enumerate(runtime.rows())
    }
    rebuilt = Factor(star.center_schema, new_rows, semiring, star.center_edge)
    if query.backend is not None:
        rebuilt = to_backend(rebuilt, query.backend)
    return rebuilt


def _compile_star(
    plan: ProtocolPlan,
    star: StarPhase,
    node: str,
    state: Dict[str, Factor],
    runtime: StarRuntime,
) -> List:
    """This node's schedule for one star phase (scatter, score, combine,
    rebuild) — empty when the node is outside the star's packing."""
    slot_plan = star.slot_plan
    my_trees = slot_plan.trees_of(node)
    if not my_trees:
        return []
    is_root = node == slot_plan.root
    sid = star.star_id

    scatter_ops: List[BroadcastOp] = []
    cc_ops: List[ConvergecastOp] = []
    for j in my_trees:
        tree = slot_plan.trees[j]
        parents = tree.parent_map()
        parent = parents.get(node)
        tree_children = sorted(n for n, p in parents.items() if p == node)
        root_count_fn = None
        if is_root:
            def root_count_fn(j=j):
                runtime.ensure_items(state)
                return runtime.tree_count(j)

        scatter_ops.append(
            BroadcastOp(
                f"s{sid}:bc:t{j}", parent, tree_children,
                plan.tuple_bits, root_count_fn,
            )
        )
        cc_ops.append(
            ConvergecastOp(
                f"s{sid}:cc:t{j}", parent, tree_children, plan.value_bits
            )
        )

    def phase_b(ctx) -> None:
        # Counts were learned from the scatter (headers on the wire, the
        # shared block in process); they configure the convergecast.
        for scatter_op, cc_op in zip(scatter_ops, cc_ops):
            cc_op.configure(scatter_op.count)
        if node in slot_plan.terminals:
            slots = _compute_star_slots(plan, star, state, node, runtime)
            if slots is not None:
                runtime.slots[node] = slots

    def phase_d(ctx) -> None:
        if is_root:
            combined = runtime.combined_at_root()
            state[star.center_edge] = _rebuild_center(
                plan, star, runtime, combined
            )
        for leaf_edge in star.leaf_edges:
            state.pop(leaf_edge, None)

    return [
        ParallelOps(scatter_ops, label=f"s{sid}:scatter"),
        ComputeStep(phase_b, label=f"s{sid}:score"),
        ParallelOps(cc_ops, label=f"s{sid}:combine"),
        ComputeStep(phase_d, label=f"s{sid}:rebuild"),
    ]


# ---------------------------------------------------------------------------
# Final (trivial-protocol) phase compilation
# ---------------------------------------------------------------------------


def _compile_final(
    plan: ProtocolPlan,
    node: str,
    state: Dict[str, Factor],
    runtime: FinalRuntime,
) -> List:
    """This node's schedule for the Lemma 3.1 routing + local finish."""
    rparents = plan.routing_parents
    items: List = []
    if node in rparents:
        children = sorted(n for n, p in rparents.items() if p == node)
        item_bits = plan.tuple_bits + plan.value_bits

        def packets_fn() -> List[Tuple[Tuple[int, ...], int]]:
            payloads: List[Tuple[str, Tuple, Any]] = []
            for name in plan.final_edges:
                if (
                    plan.assignment[name] == node
                    and node != plan.output_player
                ):
                    factor = state.get(name, plan.query.factors[name])
                    for row, value in factor:
                        payloads.append((name, row, value))
            runtime.register(node, payloads)
            if not payloads:
                return []
            pattern = chunk_pattern(item_bits, plan.capacity_bits)
            return [(pattern, len(payloads))]

        items.append(
            RouteOp("final", rparents.get(node), children, packets_fn)
        )
    if node == plan.output_player:
        query = plan.query

        def finish(ctx) -> Factor:
            received: Dict[str, Dict[Tuple, Any]] = {
                name: {} for name in plan.final_edges
            }
            for name, row, value in runtime.collected():
                received[name][tuple(row)] = value
            final_factors: Dict[str, Factor] = {}
            for name in plan.final_edges:
                if plan.assignment[name] == node:
                    final_factors[name] = state.get(name, query.factors[name])
                else:
                    final_factors[name] = Factor(
                        query.factors[name].schema, received[name],
                        query.semiring, name,
                    )
            return _finish_locally(query, final_factors, plan.solver)

        items.append(ComputeStep(finish, label="finish", is_output=True))
    return items


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def compile_round_programs(
    plan: ProtocolPlan, topology: Topology
) -> Dict[str, NodeProgram]:
    """Compile the full protocol into one :class:`NodeProgram` per node.

    The programs replicate the generator players phase for phase: each
    node runs its stars bottom-up (skipping stars whose packing it is
    not part of — the self-timed overlap the Mailbox enables is
    preserved, nodes simply progress independently), then the final
    routing toward the output player, who finishes the residual query
    with free local computation.
    """
    query = plan.query
    states: Dict[str, Dict[str, Factor]] = {
        node: {
            name: query.factors[name]
            for name, owner in plan.assignment.items()
            if owner == node
        }
        for node in topology.nodes
    }
    star_runtimes = {
        star.star_id: StarRuntime(plan, star) for star in plan.stars
    }
    final_runtime = FinalRuntime()

    programs: Dict[str, NodeProgram] = {}
    for node in topology.nodes:
        items: List = []
        for star in plan.stars:
            items.extend(
                _compile_star(
                    plan, star, node, states[node],
                    star_runtimes[star.star_id],
                )
            )
        items.extend(_compile_final(plan, node, states[node], final_runtime))
        programs[node] = NodeProgram(node, items)
    return programs
