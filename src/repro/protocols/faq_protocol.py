"""The distributed FAQ / BCQ protocol — the paper's upper bounds, executed.

This module compiles a query + topology + assignment into the protocol of
Sections 4–5 / Appendix F–G and runs it on the round simulator:

1. Build the best GYO-GHD (Construction 2.8 + F.6 flattening) and list its
   internal nodes bottom-up — the ``y(H)`` *star phases* of Lemma 4.1.
2. Each star phase is Algorithm 1/2/3: the center's relation is broadcast
   to all players; each leaf owner pushes down the aggregates of its
   private variables (Corollary G.2) and scores every broadcast tuple; the
   scores are ⊗-combined back to the center's owner over an edge-disjoint
   Steiner tree packing (Theorem 3.11 / footnote 24).
3. What remains is the core ``C(H)``: every surviving relation is routed
   to the output player (the trivial protocol, Lemma 3.1), who finishes
   the query with free internal computation (Lemma 4.2 / F.2).

The resulting round count realizes

    O( y(H) * min_Δ( N / ST(G,K,Δ) + Δ ) + τ_MCF(G, K, n2 * d * r * N) )

which the benchmarks compare against the Ω̃ lower-bound formulas.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.trace import Tracer, normalize as _normalize_tracer

from ..decomposition import GHD, best_gyo_ghd
from ..faq import (
    FAQQuery,
    solve_naive,
    solve_variable_elimination,
    validate_solver,
)
from ..faq.message_passing import upward_pass_message
from ..hypergraph import Hypergraph
from ..network.simulator import SimulationResult, Simulator
from ..network.topology import Topology
from ..semiring import BOOLEAN, Factor, to_backend
from .primitives import (
    Mailbox,
    chunk_packets,
    route_to_sink_node,
    strip_continuations,
)
from .set_intersection import (
    SlotPlan,
    combine_over_packing,
    plan_slots,
    reassemble_slices,
    scatter_over_packing,
)


@dataclass
class StarPhase:
    """One Lemma 4.1 star: a GHD internal node and its (current) leaves.

    Attributes:
        star_id: Bottom-up index (0-based); also the message-tag namespace.
        center_node: GHD node id of the star center.
        center_edge: Relation name held at the center.
        center_schema: The broadcast tuple schema (deterministic order).
        leaf_edges: Relation names of the leaves, by GHD child node.
        slot_plan: Steiner packing rooted at the center's owner; both the
            scatter of the center's tuples (phase A) and the ⊗-convergecast
            of the scores (phase C) run over it, giving the Theorem 3.11
            ``N/ST(G,K,Δ) + Δ`` behaviour per phase.
    """

    star_id: int
    center_node: str
    center_edge: str
    center_schema: Tuple[str, ...]
    leaf_edges: Tuple[str, ...]
    slot_plan: SlotPlan


@dataclass
class ProtocolPlan:
    """Everything every player needs to know up front (Model 2.1 grants
    all nodes knowledge of H, G and the protocol).

    ``solver`` selects the FAQ solver strategy players use for their free
    internal computation (the residual solve at the output player);
    communication is unaffected, and both strategies produce identical
    answers.
    """

    query: FAQQuery
    ghd: GHD
    assignment: Dict[str, str]
    output_player: str
    stars: List[StarPhase]
    final_edges: Tuple[str, ...]
    routing_parents: Dict[str, Optional[str]]
    tuple_bits: int
    value_bits: int
    capacity_bits: int
    solver: str = "operator"

    @property
    def num_star_phases(self) -> int:
        return len(self.stars)


@dataclass
class FAQProtocolReport:
    """Measured outcome of one protocol run.

    Attributes:
        answer: The result factor over the free variables, as known by the
            output player at the end of the protocol.
        rounds: Communication rounds used (Model 2.1 accounting).
        total_bits: Total bits carried across all edges.
        simulation: The raw simulator result.
        plan: The compiled plan (star count = the y(H) factor, Δs, ...).
    """

    answer: Factor
    rounds: int
    total_bits: int
    simulation: SimulationResult
    plan: ProtocolPlan

    @property
    def num_star_phases(self) -> int:
        return self.plan.num_star_phases


def default_value_bits(query: FAQQuery) -> int:
    """Bits charged per transmitted semiring value.

    1 for Boolean annotations; otherwise a 32-bit word (the paper treats
    semiring values as unit-cost ``O(log D)``-bit objects).
    """
    if query.semiring.name == BOOLEAN.name:
        return 1
    return 32


def compile_plan(
    query: FAQQuery,
    topology: Topology,
    assignment: Dict[str, str],
    output_player: Optional[str] = None,
    ghd: Optional[GHD] = None,
    max_diameter: Optional[int] = None,
    solver: str = "operator",
) -> ProtocolPlan:
    """Compile the distributed protocol for (query, topology, assignment).

    Args:
        query: The FAQ instance.  Free variables must fit in one GHD
            root bag (the Appendix G.5 restriction ``F ⊆ V(C(H))``,
            generalized to any admissible rooting).
        assignment: Relation name -> owning player (complete assignment of
            one node per function, as in Model 2.1).
        output_player: The designated player that must know the answer;
            defaults to the owner of a core relation.
        ghd: Optional decomposition (defaults to the best GYO-GHD).
        max_diameter: Fix the Steiner packing Δ (None = optimize per star).
        solver: FAQ solver strategy (``"operator"`` or ``"compiled"``)
            players use for free internal computation.

    Raises:
        ValueError: on incomplete assignments, unknown players, or free
            variables no root bag can host.
    """
    solver = validate_solver(solver)
    missing = set(query.hypergraph.edge_names) - set(assignment)
    if missing:
        raise ValueError(f"unassigned relations: {sorted(missing)}")
    bad_players = {p for p in assignment.values() if p not in topology}
    if bad_players:
        raise ValueError(f"assigned players not in G: {sorted(bad_players)}")

    free = set(query.free_vars)
    if ghd is not None:
        tree = ghd
        stray_free = free - set(tree.root.chi)
        if stray_free:
            raise ValueError(
                "free variables outside the GHD root bag are unsupported "
                f"(Appendix G.5): {sorted(stray_free, key=str)}"
            )
    else:
        # Choose a rooting whose root bag holds every free variable —
        # the protocol's form of the F ⊆ V(C(H)) restriction.
        tree = best_gyo_ghd(query.hypergraph, require_in_root=free)
    if output_player is None:
        root_edges = sorted(tree.root.lam) or sorted(query.hypergraph.edge_names)
        output_player = assignment[root_edges[0]]
    if output_player not in topology:
        raise ValueError(f"output player {output_player!r} not in G")

    tuple_bits = query.bits_per_tuple()
    value_bits = default_value_bits(query)
    capacity = max(tuple_bits, value_bits)

    # Node id -> the single relation it carries (None for a multi-relation
    # core root, which is handled by the trivial phase instead).
    def node_edge(node_id: str) -> Optional[str]:
        lam = tree.nodes[node_id].lam
        if len(lam) == 1:
            return next(iter(lam))
        return None

    stars: List[StarPhase] = []
    consumed: set = set()
    star_id = 0
    postorder = [n.node_id for n in tree.postorder()]
    for node_id in postorder:
        node = tree.nodes[node_id]
        if not node.children:
            continue
        center_edge = node_edge(node_id)
        if center_edge is None:
            continue  # multi-relation core root: trivial phase handles it
        leaf_edges = []
        for child_id in node.children:
            child_edge = node_edge(child_id)
            if child_edge is None:
                raise ValueError(
                    f"GHD node {child_id!r} carries {len(tree.nodes[child_id].lam)} "
                    "relations; only the root may"
                )
            leaf_edges.append(child_edge)
            consumed.add(child_edge)
        center_owner = assignment[center_edge]
        participants = sorted(
            {center_owner} | {assignment[e] for e in leaf_edges}
        )
        slot_plan = plan_slots(
            topology,
            participants,
            center_owner,
            max(1, len(query.factors[center_edge])),
            max_diameter,
        )
        center_schema = query.factors[center_edge].schema
        stars.append(
            StarPhase(
                star_id=star_id,
                center_node=node_id,
                center_edge=center_edge,
                center_schema=center_schema,
                leaf_edges=tuple(leaf_edges),
                slot_plan=slot_plan,
            )
        )
        star_id += 1

    final_edges = tuple(
        sorted(set(query.hypergraph.edge_names) - consumed)
    )
    # Restrict the final routing to nodes on some origin->sink path, so
    # co-located instances cost zero communication (no EOS chatter).
    routing_parents = topology.bfs_tree(output_player)
    origins = {
        assignment[name]
        for name in final_edges
        if assignment[name] != output_player
    }
    participants = {output_player}
    for origin in origins:
        cur = origin
        while cur is not None and cur not in participants:
            participants.add(cur)
            cur = routing_parents[cur]
    routing_parents = {
        node: (parent if parent in participants else None)
        for node, parent in routing_parents.items()
        if node in participants
    }
    return ProtocolPlan(
        query=query,
        ghd=tree,
        assignment=dict(assignment),
        output_player=output_player,
        stars=stars,
        final_edges=final_edges,
        routing_parents=routing_parents,
        tuple_bits=tuple_bits,
        value_bits=value_bits,
        capacity_bits=capacity,
        solver=solver,
    )


def _star_contributions(
    plan: ProtocolPlan,
    star: StarPhase,
    state: Dict[str, Factor],
    node: str,
) -> List[Factor]:
    """The factors this player scores broadcast tuples against.

    The center's owner contributes its own relation; each leaf owner
    contributes its pushed-down message (Corollary G.2); a player holding
    several star relations contributes all of them (the paper exploits
    |K| < k, Section 2.2.1).  Shared by both protocol engines so Phase B
    semantics cannot drift between them.
    """
    contributions: List[Factor] = []
    center_owner = plan.assignment[star.center_edge]
    if node == center_owner and star.center_edge in state:
        contributions.append(state[star.center_edge])
    keep = set(plan.ghd.nodes[star.center_node].chi)
    for leaf_edge in star.leaf_edges:
        if plan.assignment[leaf_edge] == node and leaf_edge in state:
            message = upward_pass_message(plan.query, state[leaf_edge], keep)
            contributions.append(message)
    return contributions


def _score_rows(
    semiring,
    schema: Sequence[str],
    contributions: Sequence[Factor],
    rows: Sequence[Tuple],
) -> List[Any]:
    """The dict-plane scorer: ⊗ of per-contribution lookups per row."""
    slots: List[Any] = [semiring.one] * len(rows)
    schema_index = {v: i for i, v in enumerate(schema)}
    for factor in contributions:
        proj = [schema_index[v] for v in factor.schema if v in schema_index]
        proj_vars = [v for v in factor.schema if v in schema_index]
        # Reorder factor lookup to its own schema order.
        order = [factor.schema.index(v) for v in proj_vars]
        lookup: Dict[Tuple, Any] = {}
        for frow, fval in factor:
            key = tuple(frow[i] for i in order)
            if key in lookup:
                lookup[key] = semiring.add(lookup[key], fval)
            else:
                lookup[key] = fval
        for i, row in enumerate(rows):
            key = tuple(row[j] for j in proj)
            value = lookup.get(key, semiring.zero)
            slots[i] = semiring.mul(slots[i], value)
    return slots


def _compute_slots(
    plan: ProtocolPlan,
    star: StarPhase,
    state: Dict[str, Factor],
    node: str,
    rows: Sequence[Tuple],
) -> Optional[List[Any]]:
    """Phase B of Algorithm 3: this player's per-tuple contributions.

    Returns None when this player holds none of the star's relations.
    """
    contributions = _star_contributions(plan, star, state, node)
    if not contributions:
        return None
    return _score_rows(plan.query.semiring, star.center_schema, contributions, rows)


def _make_player(plan: ProtocolPlan, node: str):
    """Build the full per-player generator: all star phases + final phase."""
    query = plan.query
    semiring = query.semiring

    def proc(ctx):
        mail = Mailbox()
        state: Dict[str, Factor] = {
            name: query.factors[name]
            for name, owner in plan.assignment.items()
            if owner == node
        }
        for star in plan.stars:
            center_owner = plan.assignment[star.center_edge]
            slot_plan = star.slot_plan
            in_packing = bool(slot_plan.trees_of(node))
            if not in_packing:
                continue  # this player neither holds nor relays star data
            # Phase A: scatter the center relation's tuples over the
            # packing (tree j carries slice j — Algorithm 1's broadcast,
            # parallelized as in Example 2.3).
            items = (
                list(state[star.center_edge].tuples())
                if node == center_owner
                else None
            )
            slices_by_tree = yield from scatter_over_packing(
                ctx, mail, slot_plan, items, plan.tuple_bits,
                f"s{star.star_id}:bc",
            )
            counts_by_tree = {
                j: len(s) for j, s in slices_by_tree.items()
            }
            rows = reassemble_slices(slices_by_tree, slot_plan)
            # Phase B: local slot computation (free, Model 2.1).  Only the
            # packing terminals (the star's owners) hold full rows; others
            # contribute identities.
            is_terminal = node in slot_plan.terminals
            slots = (
                _compute_slots(plan, star, state, node, rows)
                if is_terminal
                else None
            )
            slots_by_tree: Dict[int, Optional[List[Any]]] = {}
            if slots is None:
                slots_by_tree = {j: None for j in counts_by_tree}
            else:
                offset = 0
                for j in sorted(counts_by_tree):
                    count = counts_by_tree[j]
                    slots_by_tree[j] = slots[offset: offset + count]
                    offset += count
            # Phase C: ⊗-convergecast over the packing (footnote 24).
            combined = yield from combine_over_packing(
                ctx,
                mail,
                slot_plan,
                slots_by_tree,
                counts_by_tree,
                semiring.mul,
                semiring.one,
                plan.value_bits,
                f"s{star.star_id}:cc",
            )
            # Phase D: the center's owner rebuilds its relation (on the
            # query's storage backend, so later phases stay vectorized).
            if node == center_owner:
                new_rows = {
                    tuple(row): combined[i] for i, row in enumerate(rows)
                }
                rebuilt = Factor(
                    star.center_schema, new_rows, semiring, star.center_edge
                )
                if query.backend is not None:
                    rebuilt = to_backend(rebuilt, query.backend)
                state[star.center_edge] = rebuilt
            # Leaves are absorbed; drop them everywhere.
            for leaf_edge in star.leaf_edges:
                state.pop(leaf_edge, None)

        # Final phase: the trivial protocol ships every surviving relation
        # to the output player, who finishes with free computation.
        payloads: List[Tuple[int, Any]] = []
        for name in plan.final_edges:
            if plan.assignment[name] == node and node != plan.output_player:
                factor = state.get(name, query.factors[name])
                item_bits = plan.tuple_bits + plan.value_bits
                for row, value in factor:
                    payloads.append((item_bits, (name, row, value)))
        packets = chunk_packets(payloads, plan.capacity_bits)
        rparents = plan.routing_parents
        if node in rparents:
            rchildren = sorted(n for n, p in rparents.items() if p == node)
            collected = yield from route_to_sink_node(
                ctx, mail, rparents.get(node), rchildren, packets, "final"
            )
        else:
            collected = None
        if node != plan.output_player:
            return None
        # Reassemble the residual query and solve it locally.
        received: Dict[str, Dict[Tuple, Any]] = {
            name: {} for name in plan.final_edges
        }
        for payload in strip_continuations(collected or []):
            name, row, value = payload
            received[name][tuple(row)] = value
        final_factors: Dict[str, Factor] = {}
        for name in plan.final_edges:
            if plan.assignment[name] == node:
                final_factors[name] = state.get(name, query.factors[name])
            else:
                final_factors[name] = Factor(
                    query.factors[name].schema, received[name], semiring, name
                )
        return _finish_locally(query, final_factors, plan.solver)

    return proc


def _finish_locally(
    query: FAQQuery,
    factors: Dict[str, Factor],
    solver: str = "operator",
) -> Factor:
    """Solve the residual core query with free internal computation."""
    residual_h = Hypergraph(
        {name: f.schema for name, f in factors.items()}
    )
    residual_vars = residual_h.vertices
    residual = FAQQuery(
        hypergraph=residual_h,
        factors=factors,
        domains={v: query.domains[v] for v in residual_vars},
        free_vars=tuple(v for v in query.free_vars if v in residual_vars),
        semiring=query.semiring,
        aggregates={
            v: agg
            for v, agg in query.aggregates.items()
            if v in residual_vars and v not in query.free_vars
        },
        bound_order=tuple(
            v for v in query.bound_order if v in residual_vars
        ),
        name=f"{query.name or 'faq'}/residual",
        # The output player's free computation runs on the query's data
        # plane: relations received over the wire (rebuilt as dict rows)
        # are re-encoded columnar here when the query asks for it.
        backend=query.backend,
    )
    try:
        return solve_variable_elimination(residual, solver=solver)
    except ValueError:
        return solve_naive(residual, solver=solver)


#: The two protocol execution engines: ``"generator"`` is the reference
#: per-node-generator simulator; ``"compiled"`` is the block-granular
#: RoundProgram fast path (see :mod:`repro.protocols.compiler`).  Both
#: produce identical answers and identical round/bit accounting.
ENGINES: Tuple[str, ...] = ("generator", "compiled")


def validate_engine(engine: str) -> str:
    """Check an engine name, returning it unchanged."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; known: {', '.join(ENGINES)}"
        )
    return engine


def run_distributed_faq(
    query: FAQQuery,
    topology: Topology,
    assignment: Dict[str, str],
    output_player: Optional[str] = None,
    ghd: Optional[GHD] = None,
    max_diameter: Optional[int] = None,
    max_rounds: int = 2_000_000,
    engine: str = "generator",
    solver: str = "operator",
    tracer: Optional[Tracer] = None,
    plan: Optional[ProtocolPlan] = None,
) -> FAQProtocolReport:
    """Compile and run the distributed FAQ protocol on the simulator.

    This is the repository's headline entry point: the executable form of
    Theorems 4.1 / 5.1 / 5.2's upper bounds.

    Args:
        engine: ``"generator"`` steps one Python generator per node per
            round (the reference engine); ``"compiled"`` compiles the
            plan into per-node RoundPrograms and runs the block-granular
            fast path.  Answers, round counts and bit accounting are
            identical; only wall-clock differs.
        solver: FAQ solver strategy for the players' free internal
            computation — ``"operator"`` or ``"compiled"`` (cached fused
            query plans).  Orthogonal to ``engine``: it never touches
            what goes over the wire, so answers, round counts and bit
            accounting are identical across solvers.
        tracer: optional :class:`~repro.obs.trace.Tracer`; when enabled,
            the simulator emits per-round protocol events and this entry
            point records a ``plan_compile`` phase timer.  A disabled or
            absent tracer costs one attribute check per guard.
        plan: optional precompiled :class:`ProtocolPlan` for exactly
            this (query, topology, assignment, solver) — skips the
            compile step (the ``plan_compile`` timer still fires, at
            ~zero elapsed).  Compilation is deterministic and touches no
            counters, so a reused plan is accounting-identical to a
            fresh compile; callers must not mutate it.

    Returns:
        An :class:`FAQProtocolReport` with the answer factor and exact
        round/bit accounting.
    """
    validate_engine(engine)
    tracer = _normalize_tracer(tracer)
    compile_start = time.perf_counter()
    if plan is None:
        plan = compile_plan(
            query, topology, assignment, output_player, ghd, max_diameter,
            solver=solver,
        )
    elif plan.solver != validate_solver(solver):
        raise ValueError(
            f"precompiled plan was built for solver={plan.solver!r}, "
            f"not {solver!r}"
        )
    if tracer is not None:
        tracer.phase_timer("plan_compile", time.perf_counter() - compile_start)
    sim = Simulator(topology, plan.capacity_bits, max_rounds, tracer=tracer)
    if engine == "compiled":
        from .compiler import compile_round_programs

        result = sim.run_program(compile_round_programs(plan, topology))
    else:
        processes = {n: _make_player(plan, n) for n in topology.nodes}
        result = sim.run(processes)
    answer = result.output_of(plan.output_player)
    if answer is None:
        raise RuntimeError("output player produced no answer (protocol bug)")
    return FAQProtocolReport(
        answer=answer,
        rounds=result.rounds,
        total_bits=result.total_bits,
        simulation=result,
        plan=plan,
    )
