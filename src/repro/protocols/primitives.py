"""Pipelined communication primitives for Model 2.1 protocols.

Every paper protocol decomposes into three reusable patterns:

* **broadcast** — a root pipelines a list of items down a spanning tree
  (Algorithm 1 step 3: "the player containing R broadcasts it");
* **convergecast** — slot-indexed values are combined bottom-up along a
  (Steiner) tree with a commutative operator (the engine of the
  Theorem 3.11 set-intersection protocol and of Algorithm 3's ⊗ of
  annotated messages, footnote 24);
* **routing** — store-and-forward of packets toward a sink over a BFS
  tree (the trivial protocol of Lemma 3.1 realizing τ_MCF).

All primitives are *self-timed*: counts travel in headers, so no global
barrier is ever needed and phases of different protocol steps can coexist,
disambiguated by message tags.

These generators are the **reference semantics**: each has a
block-granular mirror in :mod:`repro.network.program`
(``BroadcastOp`` / ``ConvergecastOp`` / ``RouteOp`` / ``ParallelOps``)
that must replicate its per-round decisions bit for bit — change one and
you must change the other (the engine-parity tests in
``tests/test_program.py`` will catch a drift).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..network.simulator import NodeContext

#: Bits charged for a count header (a 32-bit length prefix).
HEADER_BITS = 32
#: Bits charged for an end-of-stream marker.
EOS_BITS = 1


class Mailbox:
    """Per-node message buffer keyed by (tag, src).

    Generators from different protocol phases share one mailbox so that a
    message arriving "early" (while the node is still finishing a previous
    phase) is never lost.  Ingestion is idempotent per round.
    """

    def __init__(self) -> None:
        self._queues: Dict[Tuple[str, str], deque] = {}
        self._last_round = -1

    def ingest(self, ctx: NodeContext) -> None:
        """Pull this round's inbox into the buffer (at most once per round)."""
        if ctx.round == self._last_round:
            return
        self._last_round = ctx.round
        for msg in ctx.inbox:
            self._queues.setdefault((msg.tag, msg.src), deque()).append(msg)

    def pop(self, tag: str, src: str) -> List[Any]:
        """Drain and return payloads for one (tag, src) stream, in order."""
        queue = self._queues.get((tag, src))
        if not queue:
            return []
        out = [m.payload for m in queue]
        queue.clear()
        return out


def broadcast_node(
    ctx: NodeContext,
    mail: Mailbox,
    parent: Optional[str],
    children: Sequence[str],
    items: Optional[Sequence[Any]],
    bits_per_item: int,
    tag: str,
) -> Generator[None, None, List[Any]]:
    """One node's role in a pipelined tree broadcast.

    The root (``parent is None``) supplies ``items``; every other node
    receives them from its parent.  Items are forwarded to children as they
    arrive (store-and-forward pipelining), at most ``capacity`` bits per
    child edge per round.  A count header precedes the stream so receivers
    are self-terminating.

    Returns:
        The full item list (at every node).
    """
    if parent is None:
        received: List[Any] = list(items or ())
        count: Optional[int] = len(received)
    else:
        received = []
        count = None
    children = list(children)
    per_item = max(1, bits_per_item)
    # The count header is HEADER_BITS long; on thin edges it is sent in
    # capacity-sized chunks (the first carries the value, the rest are
    # accounted filler) so header cost never exceeds the per-round budget.
    header_left = {c: HEADER_BITS for c in children}
    header_started = set()
    forwarded = {c: 0 for c in children}

    while True:
        mail.ingest(ctx)
        if parent is not None:
            for payload in mail.pop(tag, parent):
                kind, value = payload
                if kind == "hdr":
                    count = value
                elif kind == "it":
                    received.append(value)
                # "hdrc" filler chunks are accounting-only.
        for child in children:
            if count is None:
                continue
            while header_left[child] > 0:
                room = ctx.remaining_capacity(child)
                if room < 1:
                    break
                take = min(room, header_left[child])
                if child not in header_started:
                    ctx.send(child, take, ("hdr", count), tag)
                    header_started.add(child)
                else:
                    ctx.send(child, take, ("hdrc", None), tag)
                header_left[child] -= take
        for child in children:
            if header_left[child] > 0:
                continue
            while (
                forwarded[child] < len(received)
                and ctx.remaining_capacity(child) >= per_item
            ):
                ctx.send(child, per_item, ("it", received[forwarded[child]]), tag)
                forwarded[child] += 1
        done = (
            count is not None
            and len(received) == count
            and all(header_left[c] == 0 for c in children)
            and all(forwarded[c] == count for c in children)
        )
        if done:
            return received
        yield


def convergecast_node(
    ctx: NodeContext,
    mail: Mailbox,
    parent: Optional[str],
    children: Sequence[str],
    num_slots: int,
    my_slots: Optional[Sequence[Any]],
    combine: Callable[[Any, Any], Any],
    identity: Any,
    bits_per_slot: int,
    tag: str,
) -> Generator[None, None, Optional[List[Any]]]:
    """One node's role in a pipelined bottom-up slot aggregation.

    Slot ``i`` of the result is ``combine`` folded over every tree node's
    ``my_slots[i]`` (nodes passing ``None`` contribute ``identity``).  Each
    node emits slot ``i`` to its parent as soon as all children delivered
    their slot ``i`` — the classic pipeline giving ``num_slots + depth``
    rounds at one slot per edge per round.

    Returns:
        The combined slot list at the tree root; None elsewhere.
    """
    children = list(children)
    child_vals: Dict[str, List[Any]] = {c: [] for c in children}
    out_idx = 0
    result: List[Any] = []
    per_slot = max(1, bits_per_slot)

    while out_idx < num_slots:
        mail.ingest(ctx)
        for child in children:
            child_vals[child].extend(mail.pop(tag, child))
        while out_idx < num_slots:
            if any(len(child_vals[c]) <= out_idx for c in children):
                break
            value = my_slots[out_idx] if my_slots is not None else identity
            for child in children:
                value = combine(value, child_vals[child][out_idx])
            if parent is None:
                result.append(value)
                out_idx += 1
            else:
                if ctx.remaining_capacity(parent) < per_slot:
                    break
                ctx.send(parent, per_slot, value, tag)
                out_idx += 1
        if out_idx < num_slots:
            yield
    return result if parent is None else None


def route_to_sink_node(
    ctx: NodeContext,
    mail: Mailbox,
    parent: Optional[str],
    children: Sequence[str],
    packets: Sequence[Tuple[int, Any]],
    tag: str,
) -> Generator[None, None, Optional[List[Any]]]:
    """One node's role in store-and-forward routing toward a sink.

    The routing tree is a BFS tree rooted at the sink (``parent`` is the
    next hop).  Each node first forwards everything received from its
    children plus its own ``packets``; when its queue is empty *and* every
    child has signalled end-of-stream, it signals EOS itself and stops.
    This realizes the trivial protocol / τ_MCF routing of Lemma 3.1.

    Args:
        packets: ``(bits, payload)`` pairs originated here; each must fit
            the edge capacity (chunk larger objects with
            :func:`chunk_packets`).

    Returns:
        Collected payloads at the sink (``parent is None``); None elsewhere.
    """
    children = list(children)
    queue: deque = deque(packets)
    eos_pending = set(children)
    collected: List[Any] = []
    eos_sent = False

    while True:
        mail.ingest(ctx)
        for child in children:
            for payload in mail.pop(tag, child):
                if payload == ("eos",):
                    eos_pending.discard(child)
                else:
                    queue.append(payload)
        if parent is None:
            while queue:
                bits, data = queue.popleft()
                collected.append(data)
            if not eos_pending:
                return collected
        else:
            while queue:
                bits, data = queue[0]
                if ctx.remaining_capacity(parent) < bits:
                    break
                ctx.send(parent, bits, (bits, data), tag)
                queue.popleft()
            if not queue and not eos_pending and not eos_sent:
                if ctx.remaining_capacity(parent) >= EOS_BITS:
                    ctx.send(parent, EOS_BITS, ("eos",), tag)
                    eos_sent = True
            if eos_sent:
                return None
        yield


def chunk_packets(
    payloads: Sequence[Tuple[int, Any]], capacity: int
) -> List[Tuple[int, Any]]:
    """Split oversized packets into capacity-sized chunks.

    The first chunk carries the payload; continuation chunks carry a
    filler marker (the receiver keeps only real payloads, but every bit is
    accounted).
    """
    out: List[Tuple[int, Any]] = []
    for bits, data in payloads:
        if bits <= capacity:
            out.append((bits, data))
            continue
        out.append((capacity, data))
        remaining = bits - capacity
        while remaining > 0:
            out.append((min(capacity, remaining), ("cont",)))
            remaining -= capacity
    return out


def strip_continuations(payloads: Sequence[Any]) -> List[Any]:
    """Drop the filler chunks produced by :func:`chunk_packets`."""
    return [p for p in payloads if p != ("cont",)]


def parallel_subphases(
    subgens: Sequence[Generator],
) -> Generator[None, None, List[Any]]:
    """Run several sub-generators in lockstep within one node.

    Each live sub-generator is stepped once per round (they share the
    node's per-edge capacity through the common context).  Used when a
    node participates in several edge-disjoint Steiner-tree convergecasts
    of the same phase simultaneously (Theorem 3.11).

    Returns:
        The sub-generators' return values, in input order.
    """
    live = list(enumerate(subgens))
    results: List[Any] = [None] * len(live)
    while live:
        still = []
        for idx, gen in live:
            try:
                next(gen)
            except StopIteration as stop:
                results[idx] = stop.value
            else:
                still.append((idx, gen))
        live = still
        if live:
            yield
    return results


def idle_rounds(ctx: NodeContext, mail: Mailbox, rounds: int) -> Generator[None, None, None]:
    """Wait a fixed number of rounds (keeping the mailbox fresh)."""
    for _ in range(rounds):
        mail.ingest(ctx)
        yield
