"""The timing recurrence ρ — exact rounds and per-round load, no data.

The closed forms in :mod:`repro.costmodel.formulas` price *how many
bits* cross each link (structural, timing-free).  *When* they cross —
the round count and the busiest link-round — is decided by the engines'
self-timed pipelining.  This module evaluates that recurrence exactly,
in the **count plane**: it replays the per-round decisions of the block
engine's ops (:mod:`repro.network.program`) on a :class:`CostSkeleton`,
tracking only integer counts — no tuples, no semiring values, no
simulator, no protocol execution.

This is a deliberate *independent reimplementation* of the op semantics
(header chunking, per-round forwarding budgets, the convergecast's
min-over-children gate, the routing EOS handshake, same-round op
chaining, round-``t`` blocks delivered at ``t+1``): the lab compares its
output for **equality** against both engines over the fuzzed plane, so
any drift between an engine and this model is a caught bug in one of
them, not noise.  The generator and compiled engines are themselves
parity-gated against each other, so one evaluation prices all planes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .skeleton import CostSkeleton, RouteSkeleton, StarSkeleton

#: Mirror of :data:`repro.network.program.HEADER_BITS`.
HEADER_BITS = 32
#: Mirror of :data:`repro.network.program.EOS_BITS`.
EOS_BITS = 1


class CostModelError(Exception):
    """The cost model could not price a scenario (model bug or an
    uncovered structure — never silently swallowed)."""


@dataclass(frozen=True)
class CostVector:
    """The four predicted metrics for one scenario."""

    rounds: int
    total_bits: int
    max_edge_bits_per_round: int
    bits_per_edge: Dict[Tuple[str, str], int]


class _Ctx:
    """Count-plane ProgramContext: per-round room + next-round delivery."""

    __slots__ = ("node", "capacity", "queues", "sent", "outbox")

    def __init__(self, node: str, capacity: int) -> None:
        self.node = node
        self.capacity = capacity
        self.queues: Dict[Tuple[str, str], deque] = {}
        self.sent: Dict[str, int] = {}
        self.outbox: List[Tuple[str, str, str, str, int, int, object]] = []

    def room(self, dst: str) -> int:
        return self.capacity - self.sent.get(dst, 0)

    def send(self, dst, tag, kind, bits, count=1, meta=None) -> None:
        used = self.sent.get(dst, 0)
        if used + bits > self.capacity:
            raise CostModelError(
                f"model overdrew capacity: {self.node}->{dst} "
                f"{used + bits} > {self.capacity}"
            )
        self.sent[dst] = used + bits
        self.outbox.append((self.node, dst, tag, kind, bits, count, meta))

    def pop(self, tag: str, src: str) -> List:
        queue = self.queues.get((tag, src))
        if not queue:
            return []
        out = list(queue)
        queue.clear()
        return out


class _Op:
    def start(self, ctx: _Ctx) -> None:
        pass

    def step(self, ctx: _Ctx) -> bool:
        raise NotImplementedError


class _Compute(_Op):
    """Free local computation: completes in place (Model 2.1)."""

    def step(self, ctx: _Ctx) -> bool:
        return True


class _Parallel(_Op):
    """Members stepped in input order each round, sharing capacity."""

    def __init__(self, members: List[_Op]) -> None:
        self.members = members
        self.done_flags = [False] * len(members)

    def start(self, ctx: _Ctx) -> None:
        for member in self.members:
            member.start(ctx)

    def step(self, ctx: _Ctx) -> bool:
        for i, member in enumerate(self.members):
            if not self.done_flags[i]:
                self.done_flags[i] = member.step(ctx)
        return all(self.done_flags)


class _Broadcast(_Op):
    """Mirror of BroadcastOp.step: header first (chunked, count in the
    first chunk), then items at ``per_item`` bits, budget per child."""

    def __init__(self, tag, parent, children, per_item, root_count=None):
        self.tag = tag
        self.parent = parent
        self.children = list(children)
        self.per_item = max(1, per_item)
        self.root_count = root_count
        self.count: Optional[int] = None
        self.received = 0
        self.header_left = {c: HEADER_BITS for c in self.children}
        self.header_started: set = set()
        self.forwarded = {c: 0 for c in self.children}

    def start(self, ctx: _Ctx) -> None:
        if self.parent is None:
            self.count = int(self.root_count or 0)
            self.received = self.count

    def step(self, ctx: _Ctx) -> bool:
        if self.parent is not None:
            for blk in ctx.pop(self.tag, self.parent):
                kind, count, meta = blk
                if kind == "hdr":
                    self.count = meta
                elif kind == "it":
                    self.received += count
        for child in self.children:
            if self.count is None:
                continue
            while self.header_left[child] > 0:
                room = ctx.room(child)
                if room < 1:
                    break
                take = min(room, self.header_left[child])
                if child not in self.header_started:
                    ctx.send(child, self.tag, "hdr", take, meta=self.count)
                    self.header_started.add(child)
                else:
                    ctx.send(child, self.tag, "hdrc", take)
                self.header_left[child] -= take
        for child in self.children:
            if self.header_left[child] > 0:
                continue
            k = min(
                self.received - self.forwarded[child],
                ctx.room(child) // self.per_item,
            )
            if k > 0:
                ctx.send(child, self.tag, "it", k * self.per_item, count=k)
                self.forwarded[child] += k
        return (
            self.count is not None
            and self.received == self.count
            and all(b == 0 for b in self.header_left.values())
            and all(self.forwarded[c] == self.count for c in self.children)
        )


class _Convergecast(_Op):
    """Mirror of ConvergecastOp.step: slot i moves up once every child
    delivered slot i, at most ``room // per_slot`` per round."""

    def __init__(self, tag, parent, children, per_slot, num_slots):
        self.tag = tag
        self.parent = parent
        self.children = list(children)
        self.per_slot = max(1, per_slot)
        self.num_slots = int(num_slots)
        self.out_idx = 0
        self.buffered = {c: 0 for c in self.children}

    def step(self, ctx: _Ctx) -> bool:
        for child in self.children:
            for blk in ctx.pop(self.tag, child):
                _kind, count, _meta = blk
                self.buffered[child] += count
        if self.children:
            avail = min(self.buffered[c] for c in self.children)
        else:
            avail = self.num_slots
        k = min(self.num_slots, avail) - self.out_idx
        if self.parent is not None and k > 0:
            k = min(k, ctx.room(self.parent) // self.per_slot)
            if k > 0:
                ctx.send(self.parent, self.tag, "slot",
                         k * self.per_slot, count=k)
        k = max(0, k)
        self.out_idx += k
        return self.out_idx >= self.num_slots


class _Route(_Op):
    """Mirror of RouteOp.step: greedy store-and-forward of chunk sizes
    toward the sink, then the 1-bit EOS handshake."""

    def __init__(self, tag, parent, children, chunks: List[int]):
        self.tag = tag
        self.parent = parent
        self.children = list(children)
        self.queue: deque = deque(chunks)
        self.eos_pending = set(self.children)
        self.eos_sent = False

    def step(self, ctx: _Ctx) -> bool:
        for child in self.children:
            for blk in ctx.pop(self.tag, child):
                kind, _count, meta = blk
                if kind == "eos":
                    self.eos_pending.discard(child)
                else:  # "run": meta is the chunk-size tuple
                    self.queue.extend(meta)
        if self.parent is None:
            self.queue.clear()
            return not self.eos_pending
        sent: List[int] = []
        room = ctx.room(self.parent)
        while self.queue and room >= self.queue[0]:
            size = self.queue.popleft()
            room -= size
            sent.append(size)
        if sent:
            ctx.send(self.parent, self.tag, "run", sum(sent),
                     count=len(sent), meta=tuple(sent))
        if (
            not self.queue
            and not self.eos_pending
            and not self.eos_sent
            and ctx.room(self.parent) >= EOS_BITS
        ):
            ctx.send(self.parent, self.tag, "eos", EOS_BITS)
            self.eos_sent = True
        return self.eos_sent


class _Program:
    """Mirror of NodeProgram: ops in order, same-round chaining."""

    def __init__(self, node: str, items: List[_Op]) -> None:
        self.node = node
        self.items = items
        self.index = 0
        self.started = False

    @property
    def done(self) -> bool:
        return self.index >= len(self.items)

    def step_round(self, ctx: _Ctx) -> bool:
        moved = False
        while self.index < len(self.items):
            op = self.items[self.index]
            if not self.started:
                op.start(ctx)
                self.started = True
            if not op.step(ctx):
                return moved
            self.index += 1
            self.started = False
            moved = True
        return moved


def _chunk_pattern(item_bits: int, capacity: int) -> Tuple[int, ...]:
    """Mirror of :func:`repro.network.program.chunk_pattern`."""
    item_bits = max(1, item_bits)
    if item_bits <= capacity:
        return (item_bits,)
    sizes = [capacity]
    remaining = item_bits - capacity
    while remaining > 0:
        sizes.append(min(capacity, remaining))
        remaining -= capacity
    return tuple(sizes)


def _build_programs(skeleton: CostSkeleton) -> Dict[str, _Program]:
    """One count-plane program per node, mirroring the compiler's
    schedule: per participating star [scatter ∥, score, combine ∥,
    rebuild], then the final route for routing participants."""
    programs: Dict[str, _Program] = {}
    for node in skeleton.nodes:
        items: List[_Op] = []
        for star in skeleton.stars:
            my_trees = star.trees_of(node)
            if not my_trees:
                continue
            sid = star.star_id
            scatter: List[_Op] = []
            combine: List[_Op] = []
            for j in my_trees:
                parents = star.trees[j]
                parent = parents.get(node)
                children = sorted(n for n, p in parents.items() if p == node)
                is_root = parent is None
                scatter.append(
                    _Broadcast(
                        f"s{sid}:bc:t{j}", parent, children,
                        skeleton.tuple_bits,
                        star.counts[j] if is_root else None,
                    )
                )
                combine.append(
                    _Convergecast(
                        f"s{sid}:cc:t{j}", parent, children,
                        skeleton.value_bits, star.counts[j],
                    )
                )
            items.extend(
                [_Parallel(scatter), _Compute(), _Parallel(combine), _Compute()]
            )
        route = skeleton.route
        if node in route.parents:
            count = route.payload_counts.get(node, 0)
            pattern = _chunk_pattern(skeleton.item_bits, skeleton.capacity)
            chunks = list(pattern) * count
            items.append(
                _Route(
                    "final", route.parents.get(node),
                    route.children_of(node), chunks,
                )
            )
            if node == skeleton.output_player:
                items.append(_Compute())
        programs[node] = _Program(node, items)
    return programs


def evaluate_timing(
    skeleton: CostSkeleton, max_rounds: int = 1_000_000
) -> CostVector:
    """Run the timing recurrence ρ to completion — the exact oracle.

    Implements the engines' round loop: blocks sent in round ``t`` are
    delivered in ``t + 1``; ``rounds`` is the last round with any send;
    deliveries to finished programs are dropped.  Raises
    :class:`CostModelError` on deadlock or round overrun, which can only
    mean a model bug (the engines themselves would have deadlocked too).
    """
    programs = _build_programs(skeleton)
    contexts = {n: _Ctx(n, skeleton.capacity) for n in skeleton.nodes}
    live = deque(sorted(n for n, p in programs.items() if not p.done))

    pending: List[Tuple[str, str, str, str, int, int, object]] = []
    total_bits = 0
    last_send_round = 0
    bits_per_edge: Dict[Tuple[str, str], int] = {}
    max_edge_bits_per_round = 0

    round_no = 0
    while True:
        round_no += 1
        if round_no > max_rounds:
            raise CostModelError(
                f"cost model exceeded max_rounds={max_rounds} "
                f"(live nodes: {sorted(live)})"
            )
        had_pending = bool(pending)
        for src, dst, tag, kind, _bits, count, meta in pending:
            if dst in contexts and not programs[dst].done:
                contexts[dst].queues.setdefault((tag, src), deque()).append(
                    (kind, count, meta)
                )
        pending = []

        round_sends: List[Tuple[str, str, str, str, int, int, object]] = []
        round_edge_bits: Dict[Tuple[str, str], int] = {}
        finished_any = False
        moved_any = False
        for node in list(live):
            ctx = contexts[node]
            ctx.sent = {}
            prog = programs[node]
            moved_any = prog.step_round(ctx) or moved_any
            round_sends.extend(ctx.outbox)
            ctx.outbox = []
            if prog.done:
                live.remove(node)
                finished_any = True

        if round_sends:
            last_send_round = round_no
            for src, dst, _tag, _kind, bits, _count, _meta in round_sends:
                total_bits += bits
                link = (src, dst)
                bits_per_edge[link] = bits_per_edge.get(link, 0) + bits
                round_edge_bits[link] = round_edge_bits.get(link, 0) + bits
            busiest = max(round_edge_bits.values())
            if busiest > max_edge_bits_per_round:
                max_edge_bits_per_round = busiest

        if not live and not round_sends:
            break
        if live and not round_sends and not had_pending and not finished_any \
                and not moved_any:
            raise CostModelError(
                f"cost model deadlocked at round {round_no} "
                f"(live nodes: {sorted(live)})"
            )
        pending = round_sends

    return CostVector(
        rounds=last_send_round,
        total_bits=total_bits,
        max_edge_bits_per_round=max_edge_bits_per_round,
        bits_per_edge=bits_per_edge,
    )
