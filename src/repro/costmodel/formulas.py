"""Symbolic cost formulas — the structural closed forms.

Model 2.1 charges one direction of one edge at most ``B`` bits per
round; what the protocol sends over a link is fully determined by the
plan skeleton, so three of the four cost metrics have *timing-free*
closed forms:

* **Scatter** (Algorithm 1 over a packing tree): every tree edge carries
  the 32-bit count header downstream plus all ``k_j`` slice tuples at
  ``b_t`` bits each — ``H + k_j * b_t`` per edge, whatever the
  pipelining does round by round.
* **⊗-convergecast** (footnote 24): every non-root tree node pushes
  exactly ``k_j`` slot values at ``b_v`` bits to its parent.
* **Final routing** (Lemma 3.1): the link ``v -> parent(v)`` carries
  every payload item originating in ``v``'s routing subtree, at
  ``b_t + b_v`` bits each (chunking splits but never pads), plus one
  1-bit EOS per non-sink participant.

``rounds`` and ``max_edge_bits_per_round`` depend on *when* those bits
move; they come from the timing recurrence ρ
(:func:`repro.costmodel.timing.evaluate_timing`), with closed forms
below for the kernels simple enough to admit one (two-party routing,
silent placements).  The expressions are built on
:mod:`repro.costmodel.expr` — exact integer algebra, printable, and
exportable to sympy when installed.

Symbols: ``B`` (capacity), ``b_t`` (bits per tuple), ``b_v`` (bits per
value), ``H`` (header bits), ``k{s}_{j}`` (slot count of star ``s``,
packing tree ``j``), ``P_{node}`` (final payload items originating at
``node``), and in the kernel table ``E`` (tree edges), ``k`` (slots),
``P`` (payload items), ``L`` (path hops).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .expr import Expr, Sym, add, const, evaluate, floordiv, max_, mul, sym
from .skeleton import CostSkeleton
from .timing import EOS_BITS, HEADER_BITS

B = sym("B")
b_t = sym("b_t")
b_v = sym("b_v")
H = sym("H")


def count_symbol(star_id: int, j: int) -> Sym:
    """``k{s}_{j}``: slots of star ``star_id``'s packing tree ``j``."""
    return sym(f"k{star_id}_{j}")


def payload_symbol(node: str) -> Sym:
    """``P_{node}``: final-phase payload items originating at ``node``."""
    return sym(f"P_{node}")


def symbolic_environment(skeleton: CostSkeleton) -> Dict[str, int]:
    """The concrete values of every symbol, from the skeleton."""
    env: Dict[str, int] = {
        "B": skeleton.capacity,
        "b_t": skeleton.tuple_bits,
        "b_v": skeleton.value_bits,
        "H": HEADER_BITS,
    }
    for star in skeleton.stars:
        for j, count in enumerate(star.counts):
            env[count_symbol(star.star_id, j).name] = count
    for node, count in skeleton.route.payload_counts.items():
        env[payload_symbol(node).name] = count
    return env


def symbolic_bits_per_edge(
    skeleton: CostSkeleton,
) -> Dict[Tuple[str, str], Expr]:
    """Exact per-directed-link bit totals, as symbolic expressions."""
    terms: Dict[Tuple[str, str], List[Expr]] = {}

    def accumulate(link: Tuple[str, str], term: Expr) -> None:
        terms.setdefault(link, []).append(term)

    for star in skeleton.stars:
        for j, parents in enumerate(star.trees):
            k = count_symbol(star.star_id, j)
            for child, parent in parents.items():
                if parent is None:
                    continue
                accumulate((parent, child), add(H, mul(k, b_t)))
                accumulate((child, parent), mul(k, b_v))

    route = skeleton.route
    for node, parent in route.parents.items():
        if parent is None:
            continue
        payload_terms: List[Expr] = [const(EOS_BITS)]
        stack = [node]
        while stack:
            cur = stack.pop()
            if cur in route.payload_counts:
                payload_terms.append(
                    mul(payload_symbol(cur), add(b_t, b_v))
                )
            stack.extend(route.children_of(cur))
        accumulate((node, parent), add(*payload_terms))

    return {link: add(*parts) for link, parts in sorted(terms.items())}


def symbolic_total_bits(skeleton: CostSkeleton) -> Expr:
    """Exact total bits: the sum of every directed link's expression."""
    per_edge = symbolic_bits_per_edge(skeleton)
    if not per_edge:
        return const(0)
    return add(*per_edge.values())


def structural_costs(
    skeleton: CostSkeleton,
) -> Tuple[Expr, Dict[Tuple[str, str], Expr], Dict[str, int]]:
    """``(total_bits, bits_per_edge, environment)`` for one skeleton."""
    per_edge = symbolic_bits_per_edge(skeleton)
    total = add(*per_edge.values()) if per_edge else const(0)
    return total, per_edge, symbolic_environment(skeleton)


def evaluate_structural(
    skeleton: CostSkeleton,
) -> Tuple[int, Dict[Tuple[str, str], int]]:
    """The structural formulas evaluated at the skeleton's parameters."""
    total, per_edge, env = structural_costs(skeleton)
    return (
        evaluate(total, env),
        {link: evaluate(expr, env) for link, expr in per_edge.items()},
    )


# ---------------------------------------------------------------------------
# The kernel table — per-primitive closed forms for docs and `predict`
# ---------------------------------------------------------------------------

_E = sym("E")
_k = sym("k")
_P = sym("P")


def two_party_route_rounds() -> Expr:
    """Rounds of a single-origin distance-1 route with ``P >= 1`` items.

    Every item is ``b_t + b_v > B = max(b_t, b_v)`` bits, so it chunks
    into ``(B, b_t + b_v - B)``; the greedy forwarder then ships exactly
    one item per two rounds.  The trailing EOS bit piggybacks on the
    final remainder round unless the remainder already fills the link
    (``b_t == b_v``), which costs one extra round — the
    ``floor((b_t + b_v - B) / B)`` term.
    """
    return add(mul(2, _P), floordiv(add(b_t, b_v, mul(-1, B)), B))


#: The per-primitive symbolic kernels: (name, expression, description).
#: ``bits`` kernels are exact for every cell; ``rounds`` kernels are
#: exact for the stated shape and validated against the timing
#: recurrence by the test suite.
KERNEL_FORMULAS: Tuple[Tuple[str, Expr, str], ...] = (
    (
        "scatter_tree_bits",
        mul(_E, add(H, mul(_k, b_t))),
        "Phase A bits of one packing tree: every tree edge carries the "
        "count header plus all k slice tuples downstream (Algorithm 1).",
    ),
    (
        "combine_tree_bits",
        mul(_E, mul(_k, b_v)),
        "Phase C bits of one packing tree: every non-root node pushes "
        "its k slot values to its parent (footnote 24 convergecast).",
    ),
    (
        "star_tree_bits",
        mul(_E, add(H, mul(_k, add(b_t, b_v)))),
        "One packing tree's full star cost: scatter + combine.",
    ),
    (
        "route_link_bits",
        add(mul(_P, add(b_t, b_v)), const(EOS_BITS)),
        "Final-phase bits on one routing link carrying P subtree items "
        "(Lemma 3.1): chunking splits items but never pads, plus EOS.",
    ),
    (
        "single_placement_rounds",
        const(0),
        "Co-located placement: every phase is free local computation, "
        "zero rounds and zero bits (Model 2.1).",
    ),
    (
        "two_party_route_rounds",
        two_party_route_rounds(),
        "Single-origin distance-1 routing of P >= 1 items: two rounds "
        "per chunked item, plus one trailing EOS round iff the item "
        "remainder saturates the link (b_t == b_v).",
    ),
    (
        "busiest_link_saturation",
        max_(B, const(0)),
        "Upper envelope of max_edge_bits_per_round: no directed link "
        "ever carries more than B bits in one round (Model 2.1); the "
        "exact value comes from the timing recurrence rho.",
    ),
)


def format_kernel_table() -> str:
    """The kernel table as aligned text (for `predict --symbolic`)."""
    rows = [(name, str(expr)) for name, expr, _desc in KERNEL_FORMULAS]
    width = max(len(name) for name, _ in rows)
    lines = [f"{'kernel':<{width}}  formula", f"{'-' * width}  {'-' * 7}"]
    for name, rendered in rows:
        lines.append(f"{name:<{width}}  {rendered}")
    return "\n".join(lines)
