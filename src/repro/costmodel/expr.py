"""A tiny exact symbolic-expression layer for the cost model.

The cost formulas (:mod:`repro.costmodel.formulas`) are built from these
nodes so they can be *printed* as algebra, *evaluated* exactly over
integer environments, and — when :mod:`sympy` is installed — *exported*
as sympy expressions for interactive manipulation.  sympy is strictly
optional: evaluation is pure Python integer arithmetic (the model's
equality oracle must not depend on an extra dependency being present).

Only the operations the Model 2.1 accounting needs exist: ``+``, ``*``,
``ceil-div``, ``floor-div``, ``max`` — all closed over the integers, so
an expression evaluated at integer parameters is an exact bit/round
count, never a float approximation.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Sequence, Tuple, Union

Number = int
ExprLike = Union["Expr", int]


def _wrap(value: ExprLike) -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"cost expressions are integer-valued, got {value!r}")
    return Const(value)


class Expr:
    """Base class: an exact integer-valued symbolic expression."""

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate exactly over an integer environment."""
        raise NotImplementedError

    def free_symbols(self) -> Tuple[str, ...]:
        """Sorted names of the symbols the expression mentions."""
        out: set = set()
        self._collect(out)
        return tuple(sorted(out))

    def _collect(self, out: set) -> None:
        raise NotImplementedError

    def to_sympy(self):  # pragma: no cover - exercised only with sympy
        """Export as a sympy expression (requires sympy)."""
        raise NotImplementedError

    # -- operator sugar -------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return add(self, other)

    def __radd__(self, other: ExprLike) -> "Expr":
        return add(other, self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return mul(self, other)

    def __rmul__(self, other: ExprLike) -> "Expr":
        return mul(other, self)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Expr) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))


class Const(Expr):
    """An integer literal."""

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def _collect(self, out: set) -> None:
        pass

    def to_sympy(self):
        import sympy

        return sympy.Integer(self.value)

    def __repr__(self) -> str:
        return str(self.value)


class Sym(Expr):
    """A named integer parameter (N, m, B, ...)."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("symbols need a non-empty name")
        self.name = name

    def evaluate(self, env: Mapping[str, int]) -> int:
        try:
            return int(env[self.name])
        except KeyError:
            raise KeyError(f"symbol {self.name!r} missing from environment")

    def _collect(self, out: set) -> None:
        out.add(self.name)

    def to_sympy(self):
        import sympy

        return sympy.Symbol(self.name, integer=True, nonnegative=True)

    def __repr__(self) -> str:
        return self.name


class _NAry(Expr):
    """Shared machinery for flattened n-ary operators."""

    op = "?"

    def __init__(self, terms: Sequence[Expr]) -> None:
        self.terms: Tuple[Expr, ...] = tuple(terms)

    def _collect(self, out: set) -> None:
        for term in self.terms:
            term._collect(out)


class Add(_NAry):
    op = "+"

    def evaluate(self, env: Mapping[str, int]) -> int:
        return sum(t.evaluate(env) for t in self.terms)

    def to_sympy(self):
        import sympy

        return sympy.Add(*[t.to_sympy() for t in self.terms])

    def __repr__(self) -> str:
        return " + ".join(map(repr, self.terms))


class Mul(_NAry):
    op = "*"

    def evaluate(self, env: Mapping[str, int]) -> int:
        out = 1
        for t in self.terms:
            out *= t.evaluate(env)
        return out

    def to_sympy(self):
        import sympy

        return sympy.Mul(*[t.to_sympy() for t in self.terms])

    def __repr__(self) -> str:
        parts = [
            f"({t!r})" if isinstance(t, Add) else repr(t) for t in self.terms
        ]
        return "*".join(parts)


class Max(_NAry):
    op = "max"

    def evaluate(self, env: Mapping[str, int]) -> int:
        return max(t.evaluate(env) for t in self.terms)

    def to_sympy(self):
        import sympy

        return sympy.Max(*[t.to_sympy() for t in self.terms])

    def __repr__(self) -> str:
        return f"max({', '.join(map(repr, self.terms))})"


class CeilDiv(Expr):
    """``ceil(a / b)`` — exact over positive integer ``b``."""

    def __init__(self, num: Expr, den: Expr) -> None:
        self.num = num
        self.den = den

    def evaluate(self, env: Mapping[str, int]) -> int:
        den = self.den.evaluate(env)
        if den <= 0:
            raise ZeroDivisionError(f"ceildiv by {den} in {self!r}")
        return -((-self.num.evaluate(env)) // den)

    def _collect(self, out: set) -> None:
        self.num._collect(out)
        self.den._collect(out)

    def to_sympy(self):
        import sympy

        return sympy.ceiling(self.num.to_sympy() / self.den.to_sympy())

    def __repr__(self) -> str:
        return f"ceil({_grouped(self.num)} / {_grouped(self.den)})"


class FloorDiv(Expr):
    """``floor(a / b)`` — exact over positive integer ``b``."""

    def __init__(self, num: Expr, den: Expr) -> None:
        self.num = num
        self.den = den

    def evaluate(self, env: Mapping[str, int]) -> int:
        den = self.den.evaluate(env)
        if den <= 0:
            raise ZeroDivisionError(f"floordiv by {den} in {self!r}")
        return self.num.evaluate(env) // den

    def _collect(self, out: set) -> None:
        self.num._collect(out)
        self.den._collect(out)

    def to_sympy(self):
        import sympy

        return sympy.floor(self.num.to_sympy() / self.den.to_sympy())

    def __repr__(self) -> str:
        return f"floor({_grouped(self.num)} / {_grouped(self.den)})"


def _grouped(expr: Expr) -> str:
    """Render a division operand, parenthesized when it would misread."""
    return f"({expr!r})" if isinstance(expr, (Add, Mul)) else repr(expr)


# ---------------------------------------------------------------------------
# Constructors (with light constant folding, so printed formulas stay tidy)
# ---------------------------------------------------------------------------


def sym(name: str) -> Sym:
    """A named integer symbol."""
    return Sym(name)


def const(value: int) -> Const:
    """An integer literal node."""
    return Const(value)


def add(*terms: ExprLike) -> Expr:
    """Sum with flattening and constant folding."""
    flat = []
    constant = 0
    for term in map(_wrap, terms):
        parts = term.terms if isinstance(term, Add) else (term,)
        for part in parts:
            if isinstance(part, Const):
                constant += part.value
            else:
                flat.append(part)
    if constant or not flat:
        flat.append(Const(constant))
    return flat[0] if len(flat) == 1 else Add(flat)


def mul(*terms: ExprLike) -> Expr:
    """Product with flattening, constant folding and 0/1 absorption."""
    flat = []
    constant = 1
    for term in map(_wrap, terms):
        parts = term.terms if isinstance(term, Mul) else (term,)
        for part in parts:
            if isinstance(part, Const):
                constant *= part.value
            else:
                flat.append(part)
    if constant == 0:
        return Const(0)
    if constant != 1 or not flat:
        flat.insert(0, Const(constant))
    return flat[0] if len(flat) == 1 else Mul(flat)


def max_(*terms: ExprLike) -> Expr:
    """n-ary max (folds when every operand is constant)."""
    wrapped = [_wrap(t) for t in terms]
    if not wrapped:
        raise ValueError("max_ needs at least one operand")
    if all(isinstance(t, Const) for t in wrapped):
        return Const(max(t.value for t in wrapped))
    return wrapped[0] if len(wrapped) == 1 else Max(wrapped)


def ceildiv(num: ExprLike, den: ExprLike) -> Expr:
    """``ceil(num / den)`` (folds constants)."""
    num_e, den_e = _wrap(num), _wrap(den)
    if isinstance(num_e, Const) and isinstance(den_e, Const):
        return Const(-((-num_e.value) // den_e.value))
    return CeilDiv(num_e, den_e)


def floordiv(num: ExprLike, den: ExprLike) -> Expr:
    """``floor(num / den)`` (folds constants)."""
    num_e, den_e = _wrap(num), _wrap(den)
    if isinstance(num_e, Const) and isinstance(den_e, Const):
        return Const(num_e.value // den_e.value)
    return FloorDiv(num_e, den_e)


def evaluate(expr: ExprLike, env: Mapping[str, int]) -> int:
    """Evaluate an expression (or plain int) over ``env``."""
    return _wrap(expr).evaluate(env)


def have_sympy() -> bool:
    """Whether the optional sympy bridge is importable."""
    try:
        import sympy  # noqa: F401
    except ImportError:
        return False
    return True


def to_sympy(expr: ExprLike):
    """Export to sympy (raises ImportError when sympy is missing)."""
    import sympy  # noqa: F401 — fail loudly if absent

    return _wrap(expr).to_sympy()
