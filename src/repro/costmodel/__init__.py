"""Symbolic communication-cost model — exact, per-run, zero-execution.

The lab's third certification axis (after answer correctness and the
lower-bound oracles): for every covered
(query × topology × placement × engine) cell, this package predicts
``rounds``, ``total_bits``, ``bits_per_edge`` and
``max_edge_bits_per_round`` from the plan skeleton alone and the lab
asserts **equality** against the measured run.  See docs/costmodel.md
for the symbolic table and the how-to-add-a-cell recipe.
"""

from .expr import (
    Expr,
    add,
    ceildiv,
    const,
    evaluate,
    floordiv,
    have_sympy,
    max_,
    mul,
    sym,
    to_sympy,
)
from .formulas import (
    KERNEL_FORMULAS,
    format_kernel_table,
    structural_costs,
    symbolic_bits_per_edge,
    symbolic_environment,
    symbolic_total_bits,
)
from .model import (
    COST_METRIC_NAMES,
    COVERED_CELLS,
    Cell,
    CostPrediction,
    cell_of,
    coverage_report,
    edge_digest,
    format_cell,
    is_covered,
    predict_costs,
    predict_from_skeleton,
)
from .skeleton import CostSkeleton, RouteSkeleton, StarSkeleton, extract_skeleton
from .timing import CostModelError, CostVector, evaluate_timing

__all__ = [
    "COST_METRIC_NAMES",
    "COVERED_CELLS",
    "Cell",
    "CostModelError",
    "CostPrediction",
    "CostSkeleton",
    "CostVector",
    "Expr",
    "KERNEL_FORMULAS",
    "RouteSkeleton",
    "StarSkeleton",
    "add",
    "ceildiv",
    "cell_of",
    "const",
    "coverage_report",
    "edge_digest",
    "evaluate",
    "evaluate_timing",
    "extract_skeleton",
    "floordiv",
    "format_cell",
    "format_kernel_table",
    "have_sympy",
    "is_covered",
    "max_",
    "mul",
    "predict_costs",
    "predict_from_skeleton",
    "structural_costs",
    "sym",
    "symbolic_bits_per_edge",
    "symbolic_environment",
    "symbolic_total_bits",
    "to_sympy",
]
