"""The cost-model surface: covered cells, prediction, digests.

A **cell** is a ``(query family, topology family, placement, engine)``
4-tuple — the granularity at which the model claims exactness.
:data:`COVERED_CELLS` enumerates every claimed cell explicitly; for a
covered cell, :func:`predict_costs` must match the engines bit-for-bit
on all four metrics, and the lab gates that equality per run.  Anything
outside the enumeration is *uncovered*: reported and listed, never
silently skipped, never gated.

Prediction composes the two layers:

* the **structural** closed forms of :mod:`repro.costmodel.formulas`
  give ``total_bits`` and ``bits_per_edge`` exactly;
* the **timing recurrence** ρ of :mod:`repro.costmodel.timing` gives
  ``rounds`` and ``max_edge_bits_per_round`` exactly.

The two layers are cross-checked against each other on every prediction
(the recurrence's bit totals must equal the closed forms), so internal
drift raises :class:`CostModelError` instead of producing a confident
wrong answer.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .expr import Expr
from .formulas import structural_costs
from .skeleton import CostSkeleton, extract_skeleton
from .timing import CostModelError, evaluate_timing

Cell = Tuple[str, str, str, str]

#: The four metrics the model must predict exactly on covered cells —
#: the key set of both sides of a result's ``cost_model`` comparison.
COST_METRIC_NAMES: Tuple[str, ...] = (
    "rounds",
    "total_bits",
    "max_edge_bits_per_round",
    "bits_per_edge_digest",
)

#: Query families that embed the TRIBES hard instances (these are the
#: only families the ``worst-case`` placement accepts).
HARD_QUERY_FAMILIES: Tuple[str, ...] = ("hard-forest", "hard-path", "hard-star")
#: Random-content query families (round-robin / single placements).
RANDOM_QUERY_FAMILIES: Tuple[str, ...] = ("acyclic", "degenerate", "forest", "tree")
#: Topology families the model prices (all lab families).
TOPOLOGY_FAMILIES: Tuple[str, ...] = (
    "barbell", "clique", "expander", "grid", "hypercube", "line",
    "regular", "ring", "star", "tree", "two-party",
)
#: Protocol engines (accounting-identical by the engine-parity gate, so
#: one prediction covers both — but coverage is still tracked per cell).
ENGINES: Tuple[str, ...] = ("generator", "compiled")


def _enumerate_covered() -> frozenset:
    cells = set()
    placements = {
        **{q: ("round-robin", "single", "worst-case") for q in HARD_QUERY_FAMILIES},
        **{q: ("round-robin", "single") for q in RANDOM_QUERY_FAMILIES},
    }
    for query, assignments in placements.items():
        for assignment in assignments:
            for topology in TOPOLOGY_FAMILIES:
                for engine in ENGINES:
                    cells.add((query, topology, assignment, engine))
    return frozenset(cells)


#: Every (query × topology × placement × engine) cell the model claims
#: to price **exactly**.  The lab asserts equality on covered cells and
#: reports (never gates) the rest.  To extend coverage, add the cell
#: here and let the fuzz oracle + hypothesis suite prove the claim —
#: see docs/costmodel.md for the recipe.
COVERED_CELLS: frozenset = _enumerate_covered()


def cell_of(spec) -> Cell:
    """The coverage cell of a :class:`~repro.lab.spec.ScenarioSpec`."""
    return (spec.query, spec.topology, spec.assignment, spec.engine)


def is_covered(spec) -> bool:
    """Whether the model claims exact predictions for this spec."""
    return cell_of(spec) in COVERED_CELLS


def edge_digest(bits_per_edge: Mapping[Tuple[str, str], int]) -> str:
    """A stable digest of a directed-link bit map.

    Canonicalizes to sorted ``"u->v": bits`` pairs, so the measured map
    (simulator) and the predicted map (model) agree iff they are equal
    as functions — zero-bit links are dropped on both sides first.
    """
    canon = {
        f"{src}->{dst}": int(bits)
        for (src, dst), bits in bits_per_edge.items()
        if bits
    }
    payload = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CostPrediction:
    """A zero-execution cost prediction for one scenario.

    Attributes:
        cell: The (query, topology, assignment, engine) coverage cell.
        covered: Whether the model claims exactness for that cell.
        rounds / total_bits / max_edge_bits_per_round / bits_per_edge:
            The four predicted metrics (exact on covered cells).
        skeleton: The plan skeleton the prediction was derived from.
        total_bits_expr / bits_per_edge_exprs / environment: The
            symbolic layer — closed forms plus the concrete symbol
            values they were evaluated at.
    """

    cell: Cell
    covered: bool
    rounds: int
    total_bits: int
    max_edge_bits_per_round: int
    bits_per_edge: Dict[Tuple[str, str], int]
    skeleton: CostSkeleton
    total_bits_expr: Expr
    bits_per_edge_exprs: Dict[Tuple[str, str], Expr]
    environment: Dict[str, int]

    @property
    def bits_per_edge_digest(self) -> str:
        return edge_digest(self.bits_per_edge)

    def metrics(self) -> Dict[str, object]:
        """The comparison payload recorded in result `cost_model` blocks."""
        return {
            "rounds": self.rounds,
            "total_bits": self.total_bits,
            "max_edge_bits_per_round": self.max_edge_bits_per_round,
            "bits_per_edge_digest": self.bits_per_edge_digest,
        }


def predict_from_skeleton(
    skeleton: CostSkeleton, cell: Cell, max_rounds: int = 1_000_000
) -> CostPrediction:
    """Price a skeleton: closed forms + recurrence, cross-checked."""
    total_expr, edge_exprs, env = structural_costs(skeleton)
    timing = evaluate_timing(skeleton, max_rounds=max_rounds)
    structural_total = total_expr.evaluate(env)
    structural_edges = {
        link: expr.evaluate(env) for link, expr in edge_exprs.items()
    }
    measured_edges = {
        link: bits for link, bits in timing.bits_per_edge.items() if bits
    }
    structural_edges = {
        link: bits for link, bits in structural_edges.items() if bits
    }
    if structural_total != timing.total_bits or structural_edges != measured_edges:
        raise CostModelError(
            "structural formulas disagree with the timing recurrence: "
            f"total {structural_total} vs {timing.total_bits} "
            f"(cell {cell}) — cost-model internal drift"
        )
    return CostPrediction(
        cell=cell,
        covered=cell in COVERED_CELLS,
        rounds=timing.rounds,
        total_bits=timing.total_bits,
        max_edge_bits_per_round=timing.max_edge_bits_per_round,
        bits_per_edge=dict(timing.bits_per_edge),
        skeleton=skeleton,
        total_bits_expr=total_expr,
        bits_per_edge_exprs=edge_exprs,
        environment=env,
    )


def predict_costs(
    spec,
    plan=None,
    nodes: Optional[Sequence[str]] = None,
) -> CostPrediction:
    """Predict the four cost metrics for a scenario — without running it.

    Args:
        spec: The :class:`~repro.lab.spec.ScenarioSpec` to price.
        plan: An already-compiled
            :class:`~repro.protocols.faq_protocol.ProtocolPlan` to reuse
            (the lab's certification path passes the executed plan so
            nothing is compiled twice).  When None, the scenario's
            query/topology/assignment are materialized here and the plan
            compiled fresh — still zero protocol rounds.
        nodes: All topology nodes; required with ``plan``, derived
            otherwise.
    """
    if plan is None:
        # Late imports: the lab imports this package for certification,
        # so the module graph must stay acyclic at import time.
        from ..core.planner import assign_round_robin
        from ..lab.runner import build_assignment, build_query, build_topology
        from ..protocols.faq_protocol import compile_plan

        built = build_query(spec)
        topology = build_topology(spec)
        assignment = build_assignment(spec, built, topology)
        if assignment is None:
            assignment = assign_round_robin(built.query, topology)
        plan = compile_plan(
            built.query, topology, assignment, solver=spec.solver
        )
        nodes = topology.nodes
    elif nodes is None:
        raise ValueError("predict_costs(plan=...) requires nodes=")
    skeleton = extract_skeleton(plan, tuple(nodes))
    return predict_from_skeleton(
        skeleton, cell_of(spec), max_rounds=spec.max_rounds
    )


def coverage_report(cells: Iterable[Cell]) -> Dict[str, object]:
    """Summarize observed cells against :data:`COVERED_CELLS`.

    Args:
        cells: One cell per run (duplicates count as runs).

    Returns:
        ``runs`` / ``covered_runs``, plus sorted unique covered and
        uncovered cell lists (as ``query@topology/assignment/engine``
        strings — the log format the lab prints).
    """
    cells = list(cells)
    covered = [c for c in cells if c in COVERED_CELLS]
    uncovered = [c for c in cells if c not in COVERED_CELLS]
    return {
        "runs": len(cells),
        "covered_runs": len(covered),
        "covered_cells": sorted({format_cell(c) for c in covered}),
        "uncovered_cells": sorted({format_cell(c) for c in uncovered}),
    }


def format_cell(cell: Cell) -> str:
    """Render a cell as ``query@topology/assignment/engine``."""
    query, topology, assignment, engine = cell
    return f"{query}@{topology}/{assignment}/{engine}"
