"""Plan skeletons — the structural facts the cost formulas range over.

A :class:`CostSkeleton` is everything about a compiled
:class:`~repro.protocols.faq_protocol.ProtocolPlan` that communication
cost depends on, and nothing else: per-star Steiner-tree shapes and slot
counts, the final routing tree with per-origin payload counts, and the
three bit charges (tuple, value, capacity).  Extracting it runs **zero
protocol rounds** — the only computation it performs is the players'
*free* local work (Model 2.1 charges nothing for internal computation),
replayed here sequentially:

* The center of each star is broadcast in its **original** size: a GHD
  node is the center of exactly one star, and the stars run bottom-up,
  so no earlier star can have rebuilt it.  The slice count of tree ``j``
  is therefore known statically from the input relation.
* The only data-dependent sizes are the **final-edge payloads**: a star
  rebuilds its center with semiring-zero rows dropped, so how many rows
  survive to be routed to the output player depends on the data.  The
  replay recomputes exactly those counts with the shared Phase-B scorer
  (:func:`~repro.protocols.faq_protocol._score_rows`) and the compiled
  engine's fold order (:func:`~repro.protocols.compiler.fold_tree_slots`)
  — both imported, not re-implemented, so the model cannot drift from
  the engines.

Both engines and all solver/backend planes produce identical accounting
(the lab's parity gates enforce this), so one skeleton prices all eight
planes of a scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..protocols.compiler import fold_tree_slots
from ..protocols.faq_protocol import (
    ProtocolPlan,
    _score_rows,
    _star_contributions,
)
from ..semiring import Factor


@dataclass(frozen=True)
class StarSkeleton:
    """One star phase's cost-relevant shape.

    Attributes:
        star_id: Bottom-up star index (the message-tag namespace).
        center_edge: Relation broadcast from the center.
        trees: Per packing tree, its parent map (node -> parent, root
            maps to None) in packing order.
        counts: Per packing tree, the number of slots (center tuples) it
            carries — ``k_j`` in the formulas.
    """

    star_id: int
    center_edge: str
    trees: Tuple[Dict[str, Optional[str]], ...]
    counts: Tuple[int, ...]

    def trees_of(self, node: str) -> List[int]:
        """Packing-tree indices this node participates in."""
        return [j for j, pm in enumerate(self.trees) if node in pm]

    def tree_edges(self, j: int) -> int:
        """Edge count of packing tree ``j`` (``E_j`` in the formulas)."""
        return len(self.trees[j]) - 1


@dataclass(frozen=True)
class RouteSkeleton:
    """The final trivial-protocol phase's cost-relevant shape.

    Attributes:
        parents: Routing-tree parent pointers, restricted to nodes on
            some origin -> output-player path (the sink maps to None).
        payload_counts: Per participant, how many (relation, row, value)
            items it *originates* (zero for pure relays and the sink).
    """

    parents: Dict[str, Optional[str]]
    payload_counts: Dict[str, int]

    def children_of(self, node: str) -> List[str]:
        return sorted(n for n, p in self.parents.items() if p == node)

    def path_length(self, node: str) -> int:
        """Hops from ``node`` to the sink along the routing tree."""
        hops = 0
        cur: Optional[str] = node
        while cur is not None and self.parents.get(cur) is not None:
            cur = self.parents[cur]
            hops += 1
        return hops

    def subtree_payload(self, node: str) -> int:
        """Items crossing the ``node -> parent`` link (subtree origins)."""
        total = self.payload_counts.get(node, 0)
        for child in self.children_of(node):
            total += self.subtree_payload(child)
        return total


@dataclass(frozen=True)
class CostSkeleton:
    """Everything the cost of one scenario depends on."""

    nodes: Tuple[str, ...]
    output_player: str
    capacity: int
    tuple_bits: int
    value_bits: int
    stars: Tuple[StarSkeleton, ...]
    route: RouteSkeleton

    @property
    def item_bits(self) -> int:
        """Bits per routed (tuple, value) item in the final phase."""
        return self.tuple_bits + self.value_bits


def _replay_final_counts(plan: ProtocolPlan) -> Dict[str, int]:
    """Per-origin final-phase payload counts, via free local replay.

    Runs the stars bottom-up over a single global relation state: score
    every broadcast row with the engines' shared Phase-B scorer, fold
    per tree in the convergecast's association order, rebuild the center
    (zero-annotated rows drop, exactly like ``Factor``'s constructor),
    and absorb the leaves.  Each relation participates in at most one
    star as a leaf and at most one as a center (before its parent's
    star), so the global sequential state sees every factor exactly as
    the owning player would.
    """
    query = plan.query
    semiring = query.semiring
    state: Dict[str, Factor] = dict(query.factors)
    for star in plan.stars:
        factor = state[star.center_edge]
        rows = list(factor.tuples())
        ranges = star.slot_plan.slice_ranges(len(rows))
        slots_by_node: Dict[str, List] = {}
        for node in star.slot_plan.terminals:
            contributions = _star_contributions(plan, star, state, node)
            if contributions:
                slots_by_node[node] = _score_rows(
                    semiring, star.center_schema, contributions, rows
                )
        combined: List = []
        for j, tree in enumerate(star.slot_plan.trees):
            start, stop = ranges[j]
            combined.extend(
                fold_tree_slots(
                    tree,
                    slots_by_node,
                    start,
                    stop,
                    lambda a, b: [semiring.mul(x, y) for x, y in zip(a, b)],
                    lambda length: [semiring.one] * length,
                )
            )
        new_rows = {tuple(row): combined[i] for i, row in enumerate(rows)}
        state[star.center_edge] = Factor(
            star.center_schema, new_rows, semiring, star.center_edge
        )
        for leaf_edge in star.leaf_edges:
            state.pop(leaf_edge, None)

    counts: Dict[str, int] = {}
    for name in plan.final_edges:
        owner = plan.assignment[name]
        if owner != plan.output_player:
            surviving = state.get(name, query.factors[name])
            counts[owner] = counts.get(owner, 0) + len(surviving)
    return counts


def extract_skeleton(plan: ProtocolPlan, nodes: Tuple[str, ...]) -> CostSkeleton:
    """Distill a compiled plan into its cost skeleton.

    Args:
        plan: The compiled protocol plan.
        nodes: All topology nodes (every node runs a — possibly empty —
            program, and step order is the sorted node order).
    """
    stars = []
    for star in plan.stars:
        count = len(plan.query.factors[star.center_edge])
        ranges = star.slot_plan.slice_ranges(count)
        stars.append(
            StarSkeleton(
                star_id=star.star_id,
                center_edge=star.center_edge,
                trees=tuple(t.parent_map() for t in star.slot_plan.trees),
                counts=tuple(stop - start for start, stop in ranges),
            )
        )
    route = RouteSkeleton(
        parents=dict(plan.routing_parents),
        payload_counts=_replay_final_counts(plan),
    )
    return CostSkeleton(
        nodes=tuple(sorted(nodes)),
        output_player=plan.output_player,
        capacity=plan.capacity_bits,
        tuple_bits=plan.tuple_bits,
        value_bits=plan.value_bits,
        stars=tuple(stars),
        route=route,
    )
