"""Planner + analysis: the repository's headline API."""

from .analysis import (
    Table1Row,
    bound_certified,
    format_table,
    gap_within_budget,
    table1_row,
)
from .planner import (
    ExecutionReport,
    Planner,
    answer_value,
    assign_round_robin,
    assign_single_player,
    worst_case_assignment,
)

__all__ = [
    "Planner",
    "ExecutionReport",
    "answer_value",
    "assign_round_robin",
    "assign_single_player",
    "worst_case_assignment",
    "Table1Row",
    "table1_row",
    "format_table",
    "gap_within_budget",
    "bound_certified",
]
