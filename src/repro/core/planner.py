"""The public planning/execution API — the paper's pipeline end-to-end.

``Planner`` ties everything together: given a query ``H``, a topology
``G`` and an assignment of relations to players, it predicts the paper's
upper/lower round bounds (Theorems 4.1 / 5.2), compiles and runs the
distributed protocol, and reports measured-vs-formula gaps as in Table 1.

Assignment policies:

* :func:`assign_round_robin` — spread relations over players;
* :func:`assign_single_player` — everything co-located (zero-communication
  sanity case);
* :func:`worst_case_assignment` — the adversarial Lemma 4.4 placement:
  the Alice-side relations of a TRIBES embedding on one side of a minimum
  K-separating cut, the Bob-side on the other.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..faq import (
    FAQQuery,
    scalar_value,
    solve_naive,
    solve_variable_elimination,
    validate_solver,
)
from ..lowerbounds.bounds import BoundReport, bcq_bounds, faq_bounds
from ..network.topology import Topology
from ..obs.trace import Tracer, activate, normalize as _normalize_tracer
from ..protocols.faq_protocol import (
    ENGINES,
    FAQProtocolReport,
    compile_plan,
    run_distributed_faq,
    validate_engine,
)
from ..semiring import BOOLEAN, Factor


def assign_round_robin(
    query: FAQQuery, topology: Topology, players: Optional[Sequence[str]] = None
) -> Dict[str, str]:
    """Relation i -> player (i mod |players|), deterministically ordered."""
    pool = list(players) if players is not None else topology.nodes
    return {
        name: pool[i % len(pool)]
        for i, name in enumerate(sorted(query.hypergraph.edge_names))
    }


def assign_single_player(query: FAQQuery, player: str) -> Dict[str, str]:
    """Every relation on one player (the trivially-communication-free case)."""
    return {name: player for name in query.hypergraph.edge_names}


def worst_case_assignment(
    s_edges: Sequence[str],
    t_edges: Sequence[str],
    all_edges: Sequence[str],
    topology: Topology,
    players: Sequence[str],
) -> Dict[str, str]:
    """The Lemma 4.4 adversarial placement across a minimum cut.

    Alice's relations (``s_edges``) go to players on the A side of a
    minimum K-separating cut, Bob's (``t_edges``) to the B side; the rest
    round-robin over K.  Any protocol then simulates a two-party TRIBES
    protocol across the cut.

    Raises:
        ValueError: if some side of the cut contains no player of K.
    """
    from ..network.mincut import mincut_partition

    side_a, side_b, _crossing = mincut_partition(topology, players)
    players_a = sorted(set(players) & side_a)
    players_b = sorted(set(players) & side_b)
    if not players_a or not players_b:
        raise ValueError("the min cut does not split the player set K")
    assignment: Dict[str, str] = {}
    for i, name in enumerate(sorted(s_edges)):
        assignment[name] = players_a[i % len(players_a)]
    for i, name in enumerate(sorted(t_edges)):
        assignment[name] = players_b[i % len(players_b)]
    rest = [e for e in sorted(all_edges) if e not in assignment]
    pool = sorted(players)
    for i, name in enumerate(rest):
        assignment[name] = pool[i % len(pool)]
    return assignment


@dataclass
class ExecutionReport:
    """Predicted bounds + measured protocol cost for one run.

    Attributes:
        answer: The protocol's answer factor.
        reference: The centralized solver's answer (correctness oracle).
        correct: Whether they agree.
        measured_rounds: Simulator round count.
        predicted: The closed-form :class:`BoundReport`.
        protocol: The raw protocol report.
        protocol_wall_time: Seconds spent executing the protocol alone
            (excludes the reference solve and bound formulas, which are
            engine-independent harness work).
        solver_wall_time: Seconds spent in the centralized reference
            solve alone — what the ``solver`` axis actually changes.
    """

    answer: Factor
    reference: Factor
    correct: bool
    measured_rounds: int
    predicted: BoundReport
    protocol: FAQProtocolReport
    protocol_wall_time: float = 0.0
    solver_wall_time: float = 0.0

    @property
    def measured_gap(self) -> float:
        """measured rounds / formula lower bound — the Table 1 gap."""
        if self.predicted.lower_rounds <= 0:
            return float("inf")
        return self.measured_rounds / self.predicted.lower_rounds

    @property
    def total_bits(self) -> int:
        """Total bits the protocol carried over all edges."""
        return self.protocol.total_bits

    @property
    def link_utilization(self) -> float:
        """Peak per-round link load as a fraction of the capacity ``B``."""
        return self.protocol.simulation.link_utilization(
            self.protocol.plan.capacity_bits
        )


class Planner:
    """Plan, predict and execute a distributed FAQ computation.

    Args:
        query: The FAQ instance.
        topology: The communication graph ``G``.
        assignment: Relation -> player; defaults to round-robin over all
            nodes of ``G``.
        output_player: The player that must know the answer.
        backend: Optional factor storage backend (``"dict"`` or
            ``"columnar"``) applied to the query up front; both the
            centralized reference solve and every player's free internal
            computation then run on that data plane.  ``None`` (default)
            keeps the query's own backend.
        engine: Protocol execution engine — ``"generator"`` (the
            reference per-node-generator simulator) or ``"compiled"``
            (the block-granular RoundProgram fast path).  Both produce
            identical answers and identical round/bit accounting.
        solver: FAQ solver strategy — ``"operator"`` (operator-at-a-time
            factor algebra) or ``"compiled"`` (cached fused query plans).
            Applies to the centralized reference solve *and* to every
            player's free internal computation inside the protocol; both
            strategies produce identical answers and identical protocol
            cost metrics.
        tracer: Optional :class:`~repro.obs.trace.Tracer`.  When enabled,
            :meth:`execute` emits per-round protocol events plus
            ``plan_compile`` / ``protocol`` / ``solve`` / ``intern``
            phase timers.  ``None`` or a disabled tracer is normalized
            away so the hot path pays one attribute check.
    """

    def __init__(
        self,
        query: FAQQuery,
        topology: Topology,
        assignment: Optional[Dict[str, str]] = None,
        output_player: Optional[str] = None,
        backend: Optional[str] = None,
        engine: str = "generator",
        solver: str = "operator",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.backend = backend
        self.engine = validate_engine(engine)
        self.solver = validate_solver(solver)
        self.tracer = _normalize_tracer(tracer)
        if backend is not None:
            query = query.with_backend(backend)
        self.query = query
        self.topology = topology
        self.assignment = assignment or assign_round_robin(query, topology)
        self.output_player = output_player

    @property
    def players(self) -> List[str]:
        """``K``: the players actually holding relations."""
        return sorted(set(self.assignment.values()))

    def predict(self) -> BoundReport:
        """The Theorem 4.1 / 5.2 closed-form bounds for this instance."""
        n = max(1, self.query.max_factor_size)
        players = self.players
        if len(players) < 2:
            return BoundReport(0.0, 0.0, {"co_located": 1.0})
        if self.query.semiring.name == BOOLEAN.name and not self.query.free_vars:
            return bcq_bounds(self.query.hypergraph, self.topology, players, n)
        return faq_bounds(self.query.hypergraph, self.topology, players, n)

    def reference_answer(self) -> Factor:
        """The centralized ground truth (on the configured solver)."""
        try:
            return solve_variable_elimination(self.query, solver=self.solver)
        except ValueError:
            return solve_naive(self.query, solver=self.solver)

    def compile_protocol_plan(self):
        """The :class:`~repro.protocols.faq_protocol.ProtocolPlan`
        :meth:`execute` would compile — exposed so sweep runners can
        compile once per (instance, backend, solver) and pass the plan
        back via ``execute(plan=...)``.  The plan is engine-neutral:
        both engines execute the same compiled plan."""
        return compile_plan(
            self.query,
            self.topology,
            self.assignment,
            self.output_player,
            solver=self.solver,
        )

    def execute(
        self, max_rounds: int = 2_000_000, plan=None
    ) -> ExecutionReport:
        """Run the distributed protocol and cross-check the answer.

        ``plan`` optionally supplies a precompiled protocol plan (see
        :meth:`compile_protocol_plan`); it must have been compiled for
        exactly this planner's (query, topology, assignment, solver).
        """
        tracer = self.tracer
        # ``activate`` publishes the tracer to module-level consumers
        # (e.g. the intern phase timer inside the plan executor) that sit
        # below layers with no tracer parameter of their own.
        with activate(tracer):
            start = time.perf_counter()
            protocol = run_distributed_faq(
                self.query,
                self.topology,
                self.assignment,
                output_player=self.output_player,
                max_rounds=max_rounds,
                engine=self.engine,
                solver=self.solver,
                tracer=tracer,
                plan=plan,
            )
            protocol_wall_time = time.perf_counter() - start
            start = time.perf_counter()
            reference = self.reference_answer()
            solver_wall_time = time.perf_counter() - start
        if tracer is not None:
            tracer.phase_timer("protocol", protocol_wall_time)
            tracer.phase_timer("solve", solver_wall_time)
        return ExecutionReport(
            answer=protocol.answer,
            reference=reference,
            correct=protocol.answer == reference,
            measured_rounds=protocol.rounds,
            predicted=self.predict(),
            protocol=protocol,
            protocol_wall_time=protocol_wall_time,
            solver_wall_time=solver_wall_time,
        )


def answer_value(report: ExecutionReport):
    """Convenience: the scalar answer of a BCQ execution."""
    return scalar_value(report.answer)
