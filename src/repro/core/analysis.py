"""Table-style reporting: regenerate the paper's Table 1 rows.

Each :func:`table1_row` call produces one row in the paper's format —
query class, topology, (d, r), measured upper, formula lower, gap — and
:func:`format_table` renders a set of rows the way the paper prints
Table 1.  Benchmarks call these and assert the gap column's shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..lowerbounds.bounds import table1_gap_budget
from .planner import ExecutionReport, Planner


@dataclass
class Table1Row:
    """One rendered Table 1 row.

    Attributes:
        label: Row id ("faq-line", "bcq-degenerate", ...).
        query: Query description.
        topology: Topology name.
        d: Degeneracy of the query.
        r: Arity of the query.
        n: Relation size N.
        measured_rounds: Simulator rounds of the protocol.
        upper_formula: The Theorem 4.1/5.2 upper bound value.
        lower_formula: The lower bound value.
        gap: measured / lower.
        gap_budget: The Table 1 gap column (Õ(1), Õ(d), Õ(d²r²), ...).
        correct: Protocol answer matched the centralized solver.
        link_util: Peak per-round load of the busiest directed edge as a
            fraction of the capacity ``B`` (1.0 = some link saturated its
            Model 2.1 budget in some round; None = not measured).
    """

    label: str
    query: str
    topology: str
    d: float
    r: float
    n: int
    measured_rounds: int
    upper_formula: float
    lower_formula: float
    gap: float
    gap_budget: float
    correct: bool
    link_util: Optional[float] = None


def table1_row(label: str, planner: Planner) -> Table1Row:
    """Execute one instance and render it as a Table 1 row."""
    report: ExecutionReport = planner.execute()
    pred = report.predicted
    d = pred.components.get("d", 1.0)
    r = pred.components.get("r", 2.0)
    return Table1Row(
        label=label,
        query=planner.query.name or "query",
        topology=planner.topology.name,
        d=d,
        r=r,
        n=planner.query.max_factor_size,
        measured_rounds=report.measured_rounds,
        upper_formula=pred.upper_rounds,
        lower_formula=pred.lower_rounds,
        gap=report.measured_gap,
        gap_budget=table1_gap_budget(label, d, r),
        correct=report.correct,
        link_util=report.link_utilization,
    )


def format_table(rows: Sequence[Table1Row]) -> str:
    """Render rows in the paper's Table 1 layout.

    The ``link`` column is the run's peak per-round link utilization
    (busiest directed edge bits / capacity ``B``) — ``1.00`` means the
    protocol saturated some link's Model 2.1 budget in some round.
    """
    header = (
        f"{'row':<16} {'query':<14} {'G':<14} {'d':>3} {'r':>3} {'N':>6} "
        f"{'rounds':>8} {'upper':>10} {'lower':>10} {'gap':>8} {'budget':>8} "
        f"{'link':>5} ok"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        link = f"{row.link_util:>5.2f}" if row.link_util is not None else f"{'-':>5}"
        lines.append(
            f"{row.label:<16} {row.query:<14} {row.topology:<14} "
            f"{row.d:>3.0f} {row.r:>3.0f} {row.n:>6} "
            f"{row.measured_rounds:>8} {row.upper_formula:>10.1f} "
            f"{row.lower_formula:>10.1f} {row.gap:>8.2f} "
            f"{row.gap_budget:>8.1f} {link} {'+' if row.correct else 'X'}"
        )
    return "\n".join(lines)


def bound_certified(row: Table1Row) -> bool:
    """Tightness check: measured rounds >= the formula lower bound.

    A constant-1 reading of the paper's ``Ω̃`` rounds bound.  The
    canonical Table 1 hard rows (``faq-line``/``faq-arbitrary`` — star
    and path TRIBES embeddings under the Lemma 4.4 worst-case
    placement) run at gap >= 1, so their benches pin this as a
    tightness regression.  It is **not** a general per-run theorem:
    random instances may legitimately beat the worst-case statement,
    and even hard forest shapes can beat the suppressed constant (see
    ``docs/testing.md``); the lab's per-run oracle is
    :func:`repro.lab.runner.certify_bounds` (cut accounting + the
    TRIBES bits floor).
    """
    return row.measured_rounds + 1e-9 >= row.lower_formula


def gap_within_budget(
    row: Table1Row, polylog_allowance: float = 64.0
) -> bool:
    """Check the Table 1 shape: gap <= allowance * budget.

    The allowance absorbs the paper's suppressed ``Õ``-polylogs and our
    protocol constants; the *budget* carries the structural d/r factors
    the gap column asserts.
    """
    return row.gap <= polylog_allowance * row.gap_budget
