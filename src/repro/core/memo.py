"""Structural memoization — sharing pure graph work across axis planes.

Every scenario identity in a lab grid runs once per axis plane (engine ×
solver × backend × kernels), and the planes are *accounting-identical*
by construction (the parity gates enforce it).  The expensive inputs to
a plan, however, are pure functions of graph structure alone: Steiner
tree packings and the Δ-grid scan over them (:mod:`repro.network
.steiner`), minimum K-separating cuts (:mod:`repro.network.mincut`), and
the symbolic cost prediction of a plan skeleton.  Recomputing them per
plane is the dominant cost of a suite run — profiled at roughly half of
per-scenario wall time — so this module gives each such function a
process-wide LRU keyed on its *structural* inputs.

Two invariants make the memo plane safe:

* **Purity** — every memoized function is deterministic in its key; the
  memo can only substitute a value for the identical computation.
  Mutable results are defensively shallow-copied on every hit (the
  elements themselves — :class:`~repro.network.steiner.SteinerTree`,
  edge tuples, node names — are immutable).
* **Counter-neutrality** — none of the memoized code paths increment
  any :data:`~repro.obs.counters.DETERMINISTIC_COUNTERS` member, so a
  memo hit cannot perturb the per-scenario observability delta the lab
  snapshots; serial, parallel and batched runs stay byte-identical.
  (Tests grep-assert the second invariant indirectly: the full
  differential suite runs with the memo hot and cold.)

Keys for :class:`~repro.network.topology.Topology` arguments come from
:func:`topology_key` — the sorted edge tuple, cached on the instance —
so two structurally equal topologies share entries regardless of name.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Tuple

_MISSING = object()


class LRUMemo:
    """A tiny process-wide LRU map: ``get_or_compute(key, thunk)``.

    Thread-safe: the serving plane shares one process's memos across an
    asyncio front-end and its executor threads, so lookup/insert/clear
    hold a per-memo lock.  The thunk itself runs *outside* the lock —
    memoized functions are pure, so two threads racing on a cold key at
    worst compute the identical value twice (last insert wins); holding
    the lock through an arbitrary thunk would instead serialize every
    independent computation and invite lock-ordering deadlocks between
    memos.
    """

    __slots__ = ("name", "maxsize", "hits", "misses", "_data", "_lock")

    def __init__(self, name: str, maxsize: int = 4096) -> None:
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()
        _REGISTRY[name] = self

    def get_or_compute(self, key: Hashable, thunk: Callable[[], Any]) -> Any:
        data = self._data
        with self._lock:
            value = data.get(key, _MISSING)
            if value is not _MISSING:
                self.hits += 1
                data.move_to_end(key)
                return value
            self.misses += 1
        value = thunk()
        with self._lock:
            data[key] = value
            if len(data) > self.maxsize:
                data.popitem(last=False)
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._data)


#: All live memos by name — introspection for ``--timings`` and tests.
_REGISTRY: Dict[str, LRUMemo] = {}


def memo_stats() -> Dict[str, Dict[str, int]]:
    """Per-memo ``{hits, misses, size}`` — the ``--timings`` memo block."""
    return {
        name: {
            "hits": memo.hits,
            "misses": memo.misses,
            "size": len(memo),
        }
        for name, memo in sorted(_REGISTRY.items())
    }


def clear_all_memos() -> None:
    """Drop every entry and stat (test isolation; never needed for
    correctness — stale entries cannot exist, keys are structural)."""
    for memo in _REGISTRY.values():
        memo.clear()


def topology_key(topology) -> Tuple[Tuple[str, str], ...]:
    """The structural identity of a topology: its sorted edge tuple.

    Cached on the instance — building it is O(E log E) and every
    memoized call needs it.
    """
    key = getattr(topology, "_structural_key", None)
    if key is None:
        key = tuple(topology.edges())
        topology._structural_key = key
    return key


def hypergraph_key(hypergraph) -> Tuple:
    """The structural identity of a hypergraph: sorted (name, vertices).

    :class:`~repro.hypergraph.Hypergraph` is deliberately unhashable
    (edge *data* lives elsewhere), so memo keys use this explicit
    structural projection.  Vertices sort by ``repr`` to tolerate mixed
    vertex types; ``Hypergraph`` has ``__slots__``, so unlike
    :func:`topology_key` the key cannot be cached on the instance —
    fine, the grids only build small hypergraphs.
    """
    return tuple(
        (name, tuple(sorted(vs, key=repr)))
        for name, vs in sorted(hypergraph.edges(), key=lambda kv: kv[0])
    )
