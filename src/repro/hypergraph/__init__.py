"""Multi-hypergraphs, degeneracy, GYO reduction and core/forest split."""

from .degeneracy import (
    degeneracy,
    degeneracy_ordering,
    is_d_degenerate,
    simple_graph_degeneracy,
)
from .gyo import (
    Decomposition,
    GyoResult,
    RemovedEdge,
    decompose,
    gyo_reduce,
    is_acyclic,
    n2,
)
from .hypergraph import Hypergraph

__all__ = [
    "Hypergraph",
    "degeneracy",
    "degeneracy_ordering",
    "is_d_degenerate",
    "simple_graph_degeneracy",
    "gyo_reduce",
    "GyoResult",
    "RemovedEdge",
    "decompose",
    "Decomposition",
    "is_acyclic",
    "n2",
]
