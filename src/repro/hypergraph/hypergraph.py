"""Multi-hypergraphs — the query structure ``H = (V, E)`` of the paper.

Hyperedges are *named* (one name per input function ``f_e``), so two
relations over the same attribute set remain distinct — the paper's ``H`` is
explicitly a multi-hypergraph (Section 1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Sequence, Tuple


class Hypergraph:
    """A multi-hypergraph with named hyperedges.

    Args:
        edges: Mapping from edge name to an iterable of vertices, or an
            iterable of ``(name, vertices)`` pairs.
        vertices: Optional extra isolated vertices (vertices in no edge).
    """

    __slots__ = ("_edges", "_vertices", "_incidence")

    def __init__(
        self,
        edges: Mapping[str, Iterable] | Iterable[Tuple[str, Iterable]] = (),
        vertices: Iterable = (),
    ) -> None:
        items = edges.items() if isinstance(edges, Mapping) else edges
        self._edges: Dict[str, FrozenSet] = {}
        for name, verts in items:
            if name in self._edges:
                raise ValueError(f"duplicate hyperedge name {name!r}")
            fs = frozenset(verts)
            if not fs:
                raise ValueError(f"hyperedge {name!r} is empty")
            self._edges[name] = fs
        self._vertices = set(vertices)
        for fs in self._edges.values():
            self._vertices |= fs
        self._incidence: Dict[object, set] = {v: set() for v in self._vertices}
        for name, fs in self._edges.items():
            for v in fs:
                self._incidence[v].add(name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> set:
        """The vertex set ``V`` (copy)."""
        return set(self._vertices)

    @property
    def edge_names(self) -> Tuple[str, ...]:
        """Hyperedge names in insertion order."""
        return tuple(self._edges)

    def edge(self, name: str) -> FrozenSet:
        """Vertex set of edge ``name``.

        Raises:
            KeyError: if no such edge.
        """
        return self._edges[name]

    def edges(self) -> Iterator[Tuple[str, FrozenSet]]:
        """Iterate ``(name, vertex set)`` pairs."""
        return iter(self._edges.items())

    def edge_sets(self) -> Tuple[FrozenSet, ...]:
        """All hyperedge vertex sets (with multiplicity), insertion order."""
        return tuple(self._edges.values())

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """``k = |E|`` in the paper's notation."""
        return len(self._edges)

    @property
    def arity(self) -> int:
        """Maximum hyperedge size ``r``; 0 for an edgeless hypergraph."""
        return max((len(e) for e in self._edges.values()), default=0)

    def __contains__(self, vertex) -> bool:
        return vertex in self._vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Hypergraph |V|={self.num_vertices} |E|={self.num_edges} "
            f"arity={self.arity}>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._edges == other._edges and self._vertices == other._vertices

    def __hash__(self):
        raise TypeError("Hypergraph objects are unhashable")

    # ------------------------------------------------------------------
    # Degrees and incidence (Definition 3.2)
    # ------------------------------------------------------------------
    def incident_edges(self, vertex) -> set:
        """Names of edges containing ``vertex``.

        Raises:
            KeyError: if ``vertex`` is not in the hypergraph.
        """
        return set(self._incidence[vertex])

    def degree(self, vertex) -> int:
        """``|{e : e contains vertex}|`` — Definition 3.2."""
        return len(self._incidence[vertex])

    def neighbors(self, vertex) -> set:
        """Vertices sharing at least one hyperedge with ``vertex``."""
        out: set = set()
        for name in self._incidence[vertex]:
            out |= self._edges[name]
        out.discard(vertex)
        return out

    # ------------------------------------------------------------------
    # Sub-structures
    # ------------------------------------------------------------------
    def restrict_edges(self, names: Iterable[str]) -> "Hypergraph":
        """Sub-hypergraph induced by a subset of edge names."""
        names = list(names)
        missing = [n for n in names if n not in self._edges]
        if missing:
            raise KeyError(f"unknown hyperedges: {missing}")
        return Hypergraph({n: self._edges[n] for n in names})

    def induced_subhypergraph(self, verts: Iterable) -> "Hypergraph":
        """Sub-hypergraph on a vertex subset.

        Each hyperedge is intersected with ``verts``; empty intersections are
        dropped.  This is the notion of sub-hypergraph under which
        degeneracy (Definition 3.3) is defined.
        """
        keep = set(verts)
        edges = {}
        for name, fs in self._edges.items():
            inter = fs & keep
            if inter:
                edges[name] = inter
        return Hypergraph(edges, vertices=keep & self._vertices)

    def remove_vertex(self, vertex) -> "Hypergraph":
        """Sub-hypergraph with one vertex removed (edges shrink, may vanish)."""
        return self.induced_subhypergraph(self._vertices - {vertex})

    def is_simple_graph(self) -> bool:
        """True when every hyperedge has arity at most 2 (Section 4)."""
        return self.arity <= 2

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connected_components(self) -> list[set]:
        """Vertex sets of connected components (via shared hyperedges)."""
        seen: set = set()
        components: list[set] = []
        for start in self._vertices:
            if start in seen:
                continue
            stack = [start]
            comp = set()
            while stack:
                v = stack.pop()
                if v in comp:
                    continue
                comp.add(v)
                stack.extend(self.neighbors(v) - comp)
            seen |= comp
            components.append(comp)
        return components

    def is_connected(self) -> bool:
        return len(self.connected_components()) <= 1

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(cls, edge_sets: Sequence[Iterable], prefix: str = "R") -> "Hypergraph":
        """Build a hypergraph naming edges ``R0, R1, ...``."""
        return cls({f"{prefix}{i}": verts for i, verts in enumerate(edge_sets)})

    @classmethod
    def star(cls, num_leaves: int, center: str = "A") -> "Hypergraph":
        """The star query ``H1`` of Figure 1: edges (center, leaf_i)."""
        if num_leaves < 1:
            raise ValueError("a star needs at least one leaf")
        return cls(
            {f"R{i}": (center, f"{center}_{i}") for i in range(num_leaves)}
        )

    @classmethod
    def path(cls, length: int) -> "Hypergraph":
        """A path query: edges (v0,v1), (v1,v2), ..., (v_{length-1}, v_length)."""
        if length < 1:
            raise ValueError("a path needs at least one edge")
        return cls({f"R{i}": (f"v{i}", f"v{i + 1}") for i in range(length)})

    @classmethod
    def cycle(cls, length: int) -> "Hypergraph":
        """A cycle query on ``length`` vertices (length >= 3)."""
        if length < 3:
            raise ValueError("a cycle needs at least three vertices")
        return cls(
            {
                f"R{i}": (f"v{i}", f"v{(i + 1) % length}")
                for i in range(length)
            }
        )

    @classmethod
    def clique(cls, size: int) -> "Hypergraph":
        """The k-clique query of the open problem in Appendix B."""
        if size < 2:
            raise ValueError("a clique needs at least two vertices")
        edges = {}
        idx = 0
        for i in range(size):
            for j in range(i + 1, size):
                edges[f"R{idx}"] = (f"v{i}", f"v{j}")
                idx += 1
        return cls(edges)
