"""Degeneracy of (hyper)graphs — Definition 3.3.

A (hyper)graph is *d-degenerate* when every sub(hyper)graph has a vertex of
degree at most ``d`` (degree = number of incident hyperedges,
Definition 3.2).  The degeneracy is the smallest such ``d``; it is computed
by the classic min-degree peeling order, which also yields a *degeneracy
ordering* used by protocol constructions for d-degenerate queries.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from .hypergraph import Hypergraph


def degeneracy_ordering(hypergraph: Hypergraph) -> Tuple[int, List]:
    """Compute ``(degeneracy, peeling order)`` by repeated min-degree removal.

    Returns:
        A pair ``(d, order)`` where ``order`` lists vertices in the order
        they were peeled and ``d`` is the maximum degree observed at peel
        time — exactly the degeneracy of Definition 3.3.  An edgeless or
        empty hypergraph has degeneracy 0.
    """
    # Degrees under vertex removal: removing v shrinks each incident edge;
    # an edge disappears only when all of its vertices are gone, so a
    # remaining vertex's degree is the number of its incident edges that
    # still contain it — which never changes until *it* is removed.  What
    # does change is which edges count: an edge whose other endpoints are
    # all removed still counts for v (it still contains v).  Hence degree
    # of v in the induced subhypergraph on remaining vertices equals the
    # number of original edges e with v in e and e ∩ remaining != {} —
    # always true since v itself remains.  So hypergraph degree under
    # *vertex-induced* subhypergraphs is static per vertex; degeneracy
    # would then be max-min over subsets which peeling computes exactly.
    remaining = hypergraph.vertices
    if not remaining:
        return 0, []

    # Edge survives as long as it has >= 1 remaining vertex; a remaining
    # vertex v is in the (shrunk) edge iff v was in the original edge.
    # Therefore deg(v) is constant while v remains, and the min-degree
    # peel is a single pass over a static degree heap.
    degree = {v: hypergraph.degree(v) for v in remaining}
    heap = [(deg, v) for v, deg in degree.items()]
    heapq.heapify(heap)
    order: List = []
    seen: set = set()
    d = 0
    while heap:
        deg, v = heapq.heappop(heap)
        if v in seen:
            continue
        seen.add(v)
        order.append(v)
        d = max(d, deg)
    return d, order


def degeneracy(hypergraph: Hypergraph) -> int:
    """The degeneracy ``d`` of Definition 3.3."""
    return degeneracy_ordering(hypergraph)[0]


def is_d_degenerate(hypergraph: Hypergraph, d: int) -> bool:
    """True when every sub(hyper)graph has a vertex of degree <= ``d``."""
    return degeneracy(hypergraph) <= d


def simple_graph_degeneracy(hypergraph: Hypergraph) -> int:
    """Degeneracy for an arity-<=2 hypergraph, with self-loops allowed.

    For simple graphs the textbook notion (every subgraph has a vertex of
    degree <= d, where removing a vertex also removes its incident edges)
    differs from the hypergraph peel above because removing an endpoint
    destroys a 2-ary edge entirely.  The paper's Section 4 uses this graph
    notion; this function implements the classic dynamic peel.

    Raises:
        ValueError: if some hyperedge has arity > 2.
    """
    if hypergraph.arity > 2:
        raise ValueError("simple_graph_degeneracy requires arity <= 2")
    remaining = hypergraph.vertices
    # adjacency with edge multiplicity via edge names
    incident = {v: set(hypergraph.incident_edges(v)) for v in remaining}
    edges = dict(hypergraph.edges())
    d = 0
    while remaining:
        v = min(remaining, key=lambda u: len(incident[u]))
        d = max(d, len(incident[v]))
        remaining.discard(v)
        for name in list(incident[v]):
            for u in edges[name]:
                if u != v and u in remaining:
                    incident[u].discard(name)
        incident.pop(v)
    return d
