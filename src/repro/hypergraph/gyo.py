"""GYO reduction, acyclicity, and the core/forest decomposition.

Implements Definition 2.6 (GYO-reduction / GYOA), Definition 2.5
(acyclicity via GYO), Definition 2.7 (the split of ``H`` into a *core*
``C(H)`` and a *forest* ``W(H)``) and Definition 3.1 (``n2(H)``).

GYOA iterates two steps on a working copy of ``H``:

  (a) eliminate a vertex present in only one hyperedge;
  (b) delete a hyperedge contained in another hyperedge.

The hyperedges deleted by step (b) form a forest of acyclic hypergraphs
(each deleted edge has a *witness* edge containing its residual, which
becomes its parent candidate).  ``H`` is acyclic iff GYOA empties it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from .hypergraph import Hypergraph


@dataclass
class RemovedEdge:
    """Record of one hyperedge deleted by GYOA step (b).

    Attributes:
        name: The hyperedge's name in the original ``H``.
        original: Its original vertex set.
        residual: Its (shrunk) vertex set at deletion time — the connector
            it shares with the rest of the query.  Empty when the edge
            survived to the very end (it is then a tree root).
        witnesses: Names of edges that contained ``residual`` at deletion
            time (valid parents in a GYO-GHD).
        parent: The chosen parent among ``witnesses`` (None for roots).
        order: Deletion timestamp (0-based).
    """

    name: str
    original: FrozenSet
    residual: FrozenSet
    witnesses: Tuple[str, ...]
    parent: Optional[str]
    order: int


@dataclass
class GyoResult:
    """Outcome of running GYOA on a hypergraph.

    Attributes:
        hypergraph: The input ``H``.
        reduced_edges: Shrunk edges of the GYO-reduction ``H'`` keyed by
            original name.  Empty iff ``H`` is acyclic.
        removed: Deletion records, in deletion order.
        eliminated_vertices: Vertices eliminated by step (a), in order.
    """

    hypergraph: Hypergraph
    reduced_edges: Dict[str, FrozenSet]
    removed: List[RemovedEdge]
    eliminated_vertices: List = field(default_factory=list)

    @property
    def is_acyclic(self) -> bool:
        """Definition 2.5: GYOA emptied ``H``."""
        return not self.reduced_edges

    def removed_by_name(self) -> Dict[str, RemovedEdge]:
        return {r.name: r for r in self.removed}


def gyo_reduce(hypergraph: Hypergraph) -> GyoResult:
    """Run GYOA (Definition 2.6) and record the full elimination history.

    Tie-breaking is deterministic (lexicographic on vertex / edge names) so
    results are reproducible; Cohen-Kanza-Sagiv show the GYO-reduction
    itself is unique regardless of order (Appendix C.1).
    """
    work: Dict[str, set] = {name: set(vs) for name, vs in hypergraph.edges()}
    removed: List[RemovedEdge] = []
    eliminated: List = []
    order = 0

    def vertex_locations() -> Dict[object, List[str]]:
        locs: Dict[object, List[str]] = {}
        for name, verts in work.items():
            for v in verts:
                locs.setdefault(v, []).append(name)
        return locs

    changed = True
    while changed:
        changed = False
        # Step (a): eliminate vertices present in exactly one hyperedge.
        locs = vertex_locations()
        lonely = sorted(
            (v for v, names in locs.items() if len(names) == 1),
            key=str,
        )
        for v in lonely:
            (home,) = locs[v]
            if home in work and v in work[home]:
                work[home].discard(v)
                eliminated.append(v)
                changed = True
        # Drop edges that became empty: they survived to the end of their
        # component and act as tree roots (no witness).
        for name in sorted(n for n, vs in work.items() if not vs):
            removed.append(
                RemovedEdge(
                    name=name,
                    original=hypergraph.edge(name),
                    residual=frozenset(),
                    witnesses=(),
                    parent=None,
                    order=order,
                )
            )
            order += 1
            del work[name]
            changed = True
        # Step (b): delete one edge contained in another, then re-loop so
        # vertex eliminations interleave as the definition prescribes.
        names = sorted(work)
        deleted_this_pass = False
        for name in names:
            if deleted_this_pass:
                break
            verts = work[name]
            witnesses = tuple(
                sorted(
                    other
                    for other in work
                    if other != name and verts <= work[other]
                )
            )
            if witnesses:
                removed.append(
                    RemovedEdge(
                        name=name,
                        original=hypergraph.edge(name),
                        residual=frozenset(verts),
                        witnesses=witnesses,
                        parent=None,  # assigned by build_removal_forest
                        order=order,
                    )
                )
                order += 1
                del work[name]
                deleted_this_pass = True
                changed = True

    reduced = {name: frozenset(vs) for name, vs in work.items()}
    result = GyoResult(hypergraph, reduced, removed, eliminated)
    _assign_parents(result)
    return result


def _assign_parents(result: GyoResult) -> None:
    """Choose a parent for each removed edge among its witnesses.

    Preference order: a witness that was itself removed *later* (deepening
    the removed forest, as in the Appendix C.2 walk-through where e5/e6
    hang under the late-removed root e4), falling back to a witness that
    survives in ``H'`` (the edge then roots its own tree under the core).
    """
    removal_order = {r.name: r.order for r in result.removed}
    for rec in result.removed:
        if not rec.witnesses:
            rec.parent = None
            continue
        removed_later = [
            w for w in rec.witnesses
            if w in removal_order and removal_order[w] > rec.order
        ]
        if removed_later:
            rec.parent = max(removed_later, key=lambda w: removal_order[w])
        else:
            in_core = [w for w in rec.witnesses if w in result.reduced_edges]
            rec.parent = in_core[0] if in_core else None


def is_acyclic(hypergraph: Hypergraph) -> bool:
    """Definition 2.5 via GYO (alpha-acyclicity)."""
    return gyo_reduce(hypergraph).is_acyclic


@dataclass
class Decomposition:
    """The core/forest split of Definition 2.7.

    Attributes:
        hypergraph: The input ``H``.
        gyo: The underlying GYO run.
        core_edge_names: Names of edges belonging to the core ``C(H)``:
            the GYO-reduction ``H'`` plus the root edge of every removed
            tree (their vertices make up ``V(C(H))``).
        forest_edge_names: Removed non-root edges, grouped per tree — the
            forest ``W(H)``.
        tree_roots: Root edge name per removed tree (parallel to
            ``forest_trees``).
        forest_trees: For each removed tree, mapping child edge name ->
            parent edge name (the root maps to None).
    """

    hypergraph: Hypergraph
    gyo: GyoResult
    core_edge_names: Tuple[str, ...]
    forest_edge_names: Tuple[str, ...]
    tree_roots: Tuple[str, ...]
    forest_trees: Tuple[Dict[str, Optional[str]], ...]

    @property
    def core_vertices(self) -> FrozenSet:
        """``V(C(H))`` — vertices of ``H'`` plus the tree-root edges."""
        verts: set = set()
        for name in self.core_edge_names:
            if name in self.gyo.reduced_edges:
                verts |= self.gyo.reduced_edges[name]
            verts |= self.hypergraph.edge(name)
        return frozenset(verts)

    @property
    def n2(self) -> int:
        """Definition 3.1: ``n2(H) = |V(C(H))|``."""
        return len(self.core_vertices)

    @property
    def is_pure_forest(self) -> bool:
        """True when ``H' = {}`` — i.e. ``H`` is acyclic."""
        return self.gyo.is_acyclic


def decompose(hypergraph: Hypergraph) -> Decomposition:
    """Split ``H`` into core ``C(H)`` and forest ``W(H)`` (Definition 2.7).

    The removed edges of GYOA are organized into trees by their parent
    links; the root of every tree joins the core alongside the
    GYO-reduction ``H'``, and everything else forms the forest — matching
    the Appendix C.2 walk-through.
    """
    gyo = gyo_reduce(hypergraph)
    by_name = gyo.removed_by_name()

    def tree_root_of(name: str) -> str:
        seen = {name}
        cur = by_name[name]
        while cur.parent is not None and cur.parent in by_name:
            nxt = cur.parent
            if nxt in seen:  # defensive: parent links should be acyclic
                raise RuntimeError(f"cycle in GYO parent links at {nxt!r}")
            seen.add(nxt)
            cur = by_name[nxt]
        return cur.name

    trees: Dict[str, Dict[str, Optional[str]]] = {}
    for rec in gyo.removed:
        root = tree_root_of(rec.name)
        tree = trees.setdefault(root, {})
        parent = rec.parent if (rec.parent in by_name) else None
        tree[rec.name] = parent if rec.name != root else None

    tree_roots = tuple(sorted(trees))
    core_names = tuple(sorted(set(gyo.reduced_edges) | set(tree_roots)))
    forest_names = tuple(
        sorted(
            name
            for root, tree in trees.items()
            for name in tree
            if name != root
        )
    )
    forest_trees = tuple(trees[r] for r in tree_roots)
    return Decomposition(
        hypergraph=hypergraph,
        gyo=gyo,
        core_edge_names=core_names,
        forest_edge_names=forest_names,
        tree_roots=tree_roots,
        forest_trees=forest_trees,
    )


def n2(hypergraph: Hypergraph) -> int:
    """``n2(H)`` of Definition 3.1."""
    return decompose(hypergraph).n2
