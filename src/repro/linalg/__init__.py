"""F2 linear algebra substrate for the MCM problem (Section 6)."""

from . import f2

__all__ = ["f2"]
