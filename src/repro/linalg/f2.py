"""F2 (GF(2)) linear algebra — the substrate of the MCM problem (Section 6).

Vectors are numpy uint8 arrays of 0/1; matrices are ``N x N`` uint8 arrays.
All arithmetic is mod 2.  Also provides rank/invertibility helpers used by
the min-entropy experiments (Appendix H) and deterministic random
generation for the MCM benches.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np


def random_vector(n: int, rng: np.random.Generator) -> np.ndarray:
    """A uniform vector in F_2^n."""
    return rng.integers(0, 2, size=n, dtype=np.uint8)


def random_matrix(n: int, rng: np.random.Generator, m: Optional[int] = None) -> np.ndarray:
    """A uniform matrix in F_2^{m x n} (square when ``m`` is omitted)."""
    rows = n if m is None else m
    return rng.integers(0, 2, size=(rows, n), dtype=np.uint8)


def matvec(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """``A x`` over F_2."""
    if matrix.shape[1] != vector.shape[0]:
        raise ValueError(
            f"shape mismatch: {matrix.shape} @ {vector.shape}"
        )
    return (matrix.astype(np.uint16) @ vector.astype(np.uint16) % 2).astype(np.uint8)


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``A B`` over F_2."""
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    return (a.astype(np.uint16) @ b.astype(np.uint16) % 2).astype(np.uint8)


def chain_product(matrices: Iterable[np.ndarray], vector: np.ndarray) -> np.ndarray:
    """``A_k ... A_1 x`` — the MCM ground truth (Problem 1.1).

    ``matrices`` is given in application order ``[A_1, ..., A_k]``.
    """
    y = np.array(vector, dtype=np.uint8)
    for a in matrices:
        y = matvec(a, y)
    return y


def rank(matrix: np.ndarray) -> int:
    """Rank over F_2 by Gaussian elimination."""
    a = matrix.astype(np.uint8).copy() % 2
    rows, cols = a.shape
    r = 0
    for c in range(cols):
        pivot = None
        for i in range(r, rows):
            if a[i, c]:
                pivot = i
                break
        if pivot is None:
            continue
        a[[r, pivot]] = a[[pivot, r]]
        for i in range(rows):
            if i != r and a[i, c]:
                a[i] ^= a[r]
        r += 1
        if r == rows:
            break
    return r


def is_invertible(matrix: np.ndarray) -> bool:
    """True when a square matrix has full rank over F_2."""
    rows, cols = matrix.shape
    return rows == cols and rank(matrix) == rows


def vector_to_bits(vector: np.ndarray) -> List[int]:
    """A vector as a plain bit list (protocol payloads)."""
    return [int(b) & 1 for b in vector]


def bits_to_vector(bits: Iterable[int]) -> np.ndarray:
    return np.fromiter((int(b) & 1 for b in bits), dtype=np.uint8)


def pack_int(vector: np.ndarray) -> int:
    """A vector as one Python integer (for hashing distributions)."""
    out = 0
    for b in vector:
        out = (out << 1) | int(b)
    return out


def unpack_int(value: int, n: int) -> np.ndarray:
    """Inverse of :func:`pack_int`."""
    return np.fromiter(
        (((value >> (n - 1 - i)) & 1) for i in range(n)), dtype=np.uint8
    )
