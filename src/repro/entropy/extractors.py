"""Extractor-style facts behind the MCM lower bound — Appendix H.

Numerically verifiable (exact, by enumeration over small F_2 spaces):

* **Theorem H.9** (Dodis–Oliveira): for independent ``y, z`` on F_2^n
  with ``H∞(y) + H∞(z) >= (1 + Δ) n``, the pair ``(y, <y, z>)`` is
  ``2^{-Δn/2 - 1}``-close to ``D_y x U_1``.
* **Theorem 6.3 shape**: matrix–vector multiplication amplifies
  min-entropy — if ``A`` is (close to) uniform and ``x`` has linear
  min-entropy, ``Ax`` has nearly full min-entropy.
* **Appendix I.3**: the Shannon-entropy counterexample — conditioned on
  the images of a basis of a planted subspace, the Shannon entropy of
  ``Ax`` collapses to about half of ``H(x)``, which is why the paper's
  induction needs min-entropy.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Mapping, Tuple

import numpy as np

from ..linalg import f2
from .minentropy import (
    min_entropy,
    shannon_entropy,
    statistical_distance,
)


def all_vectors(n: int):
    """All 2^n vectors of F_2^n, as int-coded keys + arrays."""
    for value in range(2**n):
        yield value, f2.unpack_int(value, n)


def inner_product_distance(
    dist_y: Mapping[int, float], dist_z: Mapping[int, float], n: int
) -> float:
    """Exact statistical distance of ``(y, <y,z>)`` from ``D_y x U_1``.

    Both distributions are over int-coded F_2^n vectors; ``y`` and ``z``
    are independent.
    """
    joint: Dict[Tuple[int, int], float] = {}
    vecs = {v: arr for v, arr in all_vectors(n)}
    for y, py in dist_y.items():
        if py == 0:
            continue
        for z, pz in dist_z.items():
            if pz == 0:
                continue
            ip = int(np.dot(vecs[y], vecs[z]) % 2)
            key = (y, ip)
            joint[key] = joint.get(key, 0.0) + py * pz
    ideal = {
        (y, b): py / 2 for y, py in dist_y.items() for b in (0, 1)
    }
    return statistical_distance(joint, ideal)


def theorem_h9_bound(n: int, h_y: float, h_z: float) -> float:
    """``2^{-Δn/2 - 1}`` with ``Δ = (H∞(y) + H∞(z))/n - 1``."""
    delta = (h_y + h_z) / n - 1.0
    return 2.0 ** (-(delta * n) / 2 - 1)


def flat_distribution_on(values, total: int | None = None) -> Dict[int, float]:
    """Uniform over the given int-coded support."""
    values = list(values)
    p = 1.0 / len(values)
    return {v: p for v in values}


def matvec_min_entropy(
    dist_a: Mapping[int, float],
    dist_x: Mapping[int, float],
    n: int,
) -> float:
    """Exact ``H∞(Ax)`` for independent int-coded A (row-major n² bits)
    and x distributions.  Feasible for n <= 3 with uniform A; use planted
    ``dist_a`` supports for larger n."""
    out: Dict[int, float] = {}
    xs = {v: f2.unpack_int(v, n) for v in dist_x}
    for a_code, pa in dist_a.items():
        if pa == 0:
            continue
        a = f2.unpack_int(a_code, n * n).reshape(n, n)
        for x_code, px in dist_x.items():
            if px == 0:
                continue
            y = f2.pack_int(f2.matvec(a, xs[x_code]))
            out[y] = out.get(y, 0.0) + pa * px
    return min_entropy(out)


def uniform_matrices(n: int) -> Dict[int, float]:
    """The uniform distribution on all 2^(n²) matrices (n <= 3 advised)."""
    total = 2 ** (n * n)
    p = 1.0 / total
    return {v: p for v in range(total)}


def planted_deficiency_matrices(n: int, fixed_rows: int) -> Dict[int, float]:
    """Uniform over matrices whose first ``fixed_rows`` rows are zero —
    min-entropy ``(n - fixed_rows) n`` = deficiency ``γ = fixed_rows/n``."""
    free = (n - fixed_rows) * n
    out = {}
    p = 1.0 / (2**free)
    for tail in range(2**free):
        out[tail] = p  # leading rows zero: code == tail
    return out


def shannon_counterexample(n: int, t: int) -> Dict[str, float]:
    """Appendix I.3, computed exactly for small ``n``.

    The distribution on ``x``: with probability ``1 - α`` uniform on
    ``S = span(e_1..e_t)``, with probability ``α`` uniform on the
    complementary coordinate subspace (``α = t/n`` as in the appendix).
    ``A`` is uniform; ``f(A) = (A e_1, ..., A e_t)``.

    Returns a dict with:
        ``h_x``: the Shannon entropy of x (≈ 2α(1-α)n);
        ``h_ax_given_fa_x``: the exact conditional Shannon entropy
        ``H(Ax | f(A), x)`` — 0 on the ``x ∈ S`` branch (Ax is then
        determined by f(A) and x) and full on the other branch, i.e.
        ``α * n``: about *half* of ``h_x`` for small α.  Min-entropy-based
        amplification (Theorem 6.3) has no such collapse.
    """
    if not 1 <= t < n:
        raise ValueError("need 1 <= t < n")
    alpha = t / n
    # H(x): mixture of uniforms on disjoint supports S (2^t) and S' (2^{n-t}).
    dist_x: Dict[int, float] = {}
    for code in range(2**n):
        high = code >> (n - t)  # first t coordinates
        low = code & ((1 << (n - t)) - 1)
        if low == 0:  # x in S = span(e_1..e_t)
            dist_x[code] = dist_x.get(code, 0.0) + (1 - alpha) / (2**t)
        if high == 0:  # x in the complement span(e_{t+1}..e_n)
            dist_x[code] = dist_x.get(code, 0.0) + alpha / (2 ** (n - t))
    total = math.fsum(dist_x.values())
    dist_x = {k: v / total for k, v in dist_x.items()}
    h_x = shannon_entropy(dist_x)

    # H(Ax | f(A), x): exact branch computation.
    #  - x in S, x != 0: Ax = sum of revealed columns -> determined: 0 bits.
    #  - x = 0: Ax = 0: 0 bits.
    #  - x in S' \ {0}: given f(A), Ax is uniform on F_2^n: n bits.
    p_splice = dist_x.get(0, 0.0)  # the all-zero vector sits in both parts
    mass_outside = math.fsum(
        p for code, p in dist_x.items()
        if (code >> (n - t)) == 0 and code != 0
    )
    h_ax = mass_outside * n
    return {
        "n": float(n),
        "alpha": alpha,
        "h_x": h_x,
        "h_ax_given_fa_x": h_ax,
        "claimed_upper": alpha * n,
        "zero_mass": p_splice,
    }
