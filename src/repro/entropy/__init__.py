"""Min-entropy toolkit for the MCM lower bound (Section 6.2, App. H/I)."""

from .extractors import (
    all_vectors,
    inner_product_distance,
    matvec_min_entropy,
    planted_deficiency_matrices,
    shannon_counterexample,
    theorem_h9_bound,
    uniform_matrices,
)
from .minentropy import (
    conditional_smooth_min_entropy,
    guessing_probability,
    lemma_6_1_bound,
    lemma_6_3_bound,
    min_entropy,
    shannon_entropy,
    smooth_min_entropy,
    statistical_distance,
    uniform,
)

__all__ = [
    "min_entropy",
    "shannon_entropy",
    "smooth_min_entropy",
    "conditional_smooth_min_entropy",
    "guessing_probability",
    "lemma_6_1_bound",
    "lemma_6_3_bound",
    "statistical_distance",
    "uniform",
    "all_vectors",
    "inner_product_distance",
    "theorem_h9_bound",
    "matvec_min_entropy",
    "uniform_matrices",
    "planted_deficiency_matrices",
    "shannon_counterexample",
]
