"""Min-entropy, smooth min-entropy and conditional variants — Section 6.2.1.

Distributions are dicts (or arrays) of probabilities.  Definitions follow
the paper:

* ``H∞(X) = -log2 max_x Pr[X = x]``;
* ``Hε∞(X) = sup_E H∞(X ∧ E)`` over events with ``Pr[E] >= 1 - ε``
  (equivalently, clip probability mass ε off the largest atoms —
  water-filling gives the exact optimum);
* ``Hε∞(X|Y) = sup_E -log max_{x,y} Pr[E, X=x | Y=y]`` (note the paper
  does *not* normalize by Pr[E]).

Also provides Shannon entropy, the Lemma 6.1 chain-rule substitute check
and the Lemma 6.3 guessing bound.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Mapping, Tuple

Probability = float
Distribution = Mapping[Hashable, Probability]


def _validate(probs: Iterable[Probability]) -> list:
    values = [float(p) for p in probs]
    if any(p < -1e-12 for p in values):
        raise ValueError("probabilities must be non-negative")
    total = math.fsum(values)
    if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
        raise ValueError(f"probabilities must sum to 1, got {total}")
    return values


def min_entropy(dist: Distribution) -> float:
    """``H∞(X)`` in bits."""
    values = _validate(dist.values())
    peak = max(values) if values else 1.0
    return -math.log2(peak)


def shannon_entropy(dist: Distribution) -> float:
    """``H(X)`` in bits."""
    values = _validate(dist.values())
    return -math.fsum(p * math.log2(p) for p in values if p > 0)


def smooth_min_entropy(dist: Distribution, epsilon: float) -> float:
    """``Hε∞(X)`` by exact water-filling.

    The optimal event E removes mass from the largest atoms: clip all
    atoms at threshold ``t`` where the clipped mass totals ε; then
    ``Hε∞ = -log2 t``.

    Raises:
        ValueError: for ε outside [0, 1).
    """
    if not 0 <= epsilon < 1:
        raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")
    values = sorted(_validate(dist.values()), reverse=True)
    if epsilon == 0:
        return -math.log2(values[0])
    # Find t: sum_i (p_i - t)_+ = epsilon, scanning the sorted prefix.
    removed = 0.0
    for i, p in enumerate(values):
        nxt = values[i + 1] if i + 1 < len(values) else 0.0
        # Lowering the cap from p to nxt over the first i+1 atoms removes
        # (i+1) * (p - nxt) additional mass.
        chunk = (i + 1) * (p - nxt)
        if removed + chunk >= epsilon:
            t = p - (epsilon - removed) / (i + 1)
            return -math.log2(max(t, 1e-300))
        removed += chunk
    return float("inf")  # epsilon removes everything


def conditional_smooth_min_entropy(
    joint: Mapping[Tuple[Hashable, Hashable], Probability], epsilon: float
) -> float:
    """``Hε∞(X|Y)`` for a finite joint distribution of (X, Y).

    Per the paper's definition the quantity maximized over E is
    ``-log max_{x,y} Pr[E, X=x | Y=y]``; the optimal E clips the largest
    *conditional* masses, paying ``Pr[Y=y] * (p(x|y) - t)`` to clip an
    atom to ``t``.  Binary search on the threshold gives the exact value.

    Raises:
        ValueError: for ε outside [0, 1) or an unnormalized joint.
    """
    if not 0 <= epsilon < 1:
        raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")
    _validate(joint.values())
    marginal: Dict[Hashable, float] = {}
    for (_x, y), p in joint.items():
        marginal[y] = marginal.get(y, 0.0) + p
    conditional = {
        (x, y): p / marginal[y] for (x, y), p in joint.items() if marginal[y] > 0
    }
    if epsilon == 0:
        return -math.log2(max(conditional.values()))

    def clip_cost(t: float) -> float:
        return math.fsum(
            marginal[y] * (p - t)
            for (x, y), p in conditional.items()
            if p > t
        )

    lo, hi = 0.0, max(conditional.values())
    if clip_cost(0.0) <= epsilon:
        return float("inf")
    for _ in range(200):
        mid = (lo + hi) / 2
        if clip_cost(mid) > epsilon:
            lo = mid
        else:
            hi = mid
    return -math.log2(max(hi, 1e-300))


def guessing_probability(
    joint: Mapping[Tuple[Hashable, Hashable], Probability]
) -> float:
    """``max_f Pr[f(Y) = X]`` — the optimal guess given Y (Lemma 6.3)."""
    _validate(joint.values())
    best_per_y: Dict[Hashable, float] = {}
    for (x, y), p in joint.items():
        best_per_y[y] = max(best_per_y.get(y, 0.0), p)
    return math.fsum(best_per_y.values())


def lemma_6_3_bound(h_eps: float, epsilon: float) -> float:
    """The Lemma 6.3 bound: ``Pr[f(Y) = X] <= ε + 2^{-L}``."""
    return epsilon + 2.0 ** (-h_eps)


def lemma_6_1_bound(
    h_eps_x: float, support_bits: float, epsilon_prime: float
) -> float:
    """Lemma 6.1 (Renner-Wolf): the chain-rule substitute.

    ``H^{ε+ε'}∞(X|Y) >= Hε∞(X) - ℓ - log(1/ε')`` when Y has support size
    at most ``2^ℓ``.  Returns the right-hand side.
    """
    if epsilon_prime <= 0:
        raise ValueError("epsilon_prime must be positive")
    return h_eps_x - support_bits - math.log2(1.0 / epsilon_prime)


def uniform(support_size: int) -> Dict[int, float]:
    """The uniform distribution on ``range(support_size)``."""
    if support_size < 1:
        raise ValueError("support must be non-empty")
    p = 1.0 / support_size
    return {i: p for i in range(support_size)}


def statistical_distance(d1: Distribution, d2: Distribution) -> float:
    """Total variation distance between two finite distributions."""
    keys = set(d1) | set(d2)
    return 0.5 * math.fsum(
        abs(d1.get(k, 0.0) - d2.get(k, 0.0)) for k in keys
    )
