"""MinCut(G, K) — Definition 3.6.

``MinCut(G, K)`` is the size of the smallest edge cut of ``G`` that
separates at least two players of ``K``; every cut separating ``K``
separates a fixed terminal from some other terminal, so the Steiner
mincut equals ``min_{t in K, t != s} edge_connectivity(s, t)``.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

import networkx as nx

from ..core.memo import LRUMemo, topology_key
from .topology import Topology

#: Both cut surfaces are pure functions of (edge set, terminals); the
#: planner recomputes them once per axis plane, the bound oracles again
#: per certification — memo hits replace every repeat with a lookup.
_VALUE_MEMO = LRUMemo("mincut.value", maxsize=8192)
_PARTITION_MEMO = LRUMemo("mincut.partition", maxsize=4096)


def mincut(topology: Topology, players: Sequence[str]) -> int:
    """``MinCut(G, K)``: minimum edge cut separating the players ``K``.

    Memoized on (edge set, terminals) — the value is deterministic.

    Args:
        topology: The communication graph ``G``.
        players: The terminal set ``K`` (at least two distinct players).

    Raises:
        ValueError: if fewer than two distinct players are given or a
            player is not a node of ``G``.
    """
    key = (topology_key(topology), tuple(sorted(set(players))))
    return _VALUE_MEMO.get_or_compute(
        key, lambda: _mincut(topology, players)
    )


def _mincut(topology: Topology, players: Sequence[str]) -> int:
    terminals = sorted(set(players))
    if len(terminals) < 2:
        raise ValueError("MinCut(G, K) needs at least two distinct players")
    missing = [p for p in terminals if p not in topology]
    if missing:
        raise ValueError(f"players not in topology: {missing}")
    source = terminals[0]
    return min(
        nx.algorithms.connectivity.local_edge_connectivity(
            topology.graph, source, t
        )
        for t in terminals[1:]
    )


def mincut_partition(
    topology: Topology, players: Sequence[str]
) -> Tuple[Set[str], Set[str], List[Tuple[str, str]]]:
    """A minimum K-separating cut as ``(A, B, crossing_edges)``.

    Used by the lower-bound reductions (Lemma 4.4): relations embedding the
    Alice side of TRIBES are assigned into ``A``, the Bob side into ``B``,
    and any protocol induces a two-party protocol across the returned
    crossing edges.

    Memoized like :func:`mincut`; hits return fresh sets and a fresh
    crossing list over the same immutable node/edge names.
    """
    key = (topology_key(topology), tuple(sorted(set(players))))
    side_a, side_b, crossing = _PARTITION_MEMO.get_or_compute(
        key, lambda: _mincut_partition(topology, players)
    )
    return set(side_a), set(side_b), list(crossing)


def _mincut_partition(
    topology: Topology, players: Sequence[str]
) -> Tuple[Set[str], Set[str], List[Tuple[str, str]]]:
    terminals = sorted(set(players))
    if len(terminals) < 2:
        raise ValueError("need at least two distinct players")
    source = terminals[0]
    best = None
    g = topology.graph
    for t in terminals[1:]:
        value, side_a, side_b = _unit_mincut(g, source, t)
        if best is None or value < best[0]:
            best = (value, side_a, side_b)
    _, side_a, side_b = best
    crossing = sorted(
        tuple(sorted((u, v)))
        for u, v in g.edges
        if (u in side_a) != (v in side_a)
    )
    return set(side_a), set(side_b), crossing


def _unit_mincut(g: nx.Graph, s: str, t: str):
    """Minimum s-t edge cut with unit capacities."""
    h = nx.Graph()
    h.add_nodes_from(g.nodes)
    for u, v in g.edges:
        h.add_edge(u, v, capacity=1)
    value, (side_a, side_b) = nx.minimum_cut(h, s, t)
    return value, side_a, side_b
