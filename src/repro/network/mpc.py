"""The MPC comparison topologies — Appendix A.

Appendix A argues the basic MPC model (MPC(0), Model A.1) is captured by
Model 2.1 instantiated on a specific topology ``G'``: ``k`` input nodes,
each holding one relation, all directly connected to every node of a
``p``-clique of workers.  With per-edge capacity ``L' = L/k = N/p``
(eq. (13)), the paper's Steiner-packing protocol recovers MPC(0)'s
O(1)-round star joins (Section A.1.4): the packing contains ``p``
diameter-2 trees (one per worker), so

    min_Δ ( N / ST(G',K,Δ) + Δ ) = O(N / p),

which divided by the edge capacity ``L'`` is O(1) rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .steiner import SteinerTree
from .topology import Topology


def input_node(i: int) -> str:
    """Name of the i-th MPC input node (holds relation i)."""
    return f"I{i}"


def worker_node(j: int) -> str:
    """Name of the j-th MPC worker (clique) node."""
    return f"W{j}"


def build_mpc0_topology(k: int, p: int) -> Topology:
    """The MPC(0) network ``G'`` of Model A.1.

    ``k`` input nodes (no edges among them), each adjacent to all ``p``
    workers; the workers form a clique.

    Raises:
        ValueError: for k < 1 or p < 1.
    """
    if k < 1 or p < 1:
        raise ValueError("need k >= 1 input nodes and p >= 1 workers")
    edges: List[Tuple[str, str]] = []
    for i in range(k):
        for j in range(p):
            edges.append((input_node(i), worker_node(j)))
    for a in range(p):
        for b in range(a + 1, p):
            edges.append((worker_node(a), worker_node(b)))
    return Topology(edges, name=f"mpc0(k{k},p{p})")


def mpc_edge_capacity(k: int, n: int, p: int) -> int:
    """Equation (13): ``L' = L/k = N/p`` bits per edge per round."""
    return max(1, math.ceil(n / p))


def mpc_star_packing(k: int, p: int) -> List[SteinerTree]:
    """Section A.1.4's explicit packing: ``p`` diameter-2 Steiner trees.

    Tree ``j`` is worker ``W_j`` plus its ``k`` edges to the input nodes —
    pairwise edge-disjoint by construction, terminal diameter 2.
    """
    terminals = tuple(sorted(input_node(i) for i in range(k)))
    trees = []
    for j in range(p):
        edges = tuple(
            sorted(
                tuple(sorted((input_node(i), worker_node(j))))
                for i in range(k)
            )
        )
        trees.append(SteinerTree(edges, terminals[0], terminals))
    return trees


@dataclass
class MPCComparison:
    """The Appendix A.1.4 bound comparison for one (k, p, N) triple.

    Attributes:
        steiner_rounds: ``min_Δ(N/ST + Δ)`` with the explicit packing
            (in tuple units).
        rounds_at_mpc_capacity: The same divided by ``L' = N/p`` — the
            O(1) figure the appendix derives.
    """

    k: int
    p: int
    n: int
    steiner_rounds: float
    rounds_at_mpc_capacity: float


def compare_star_bounds(k: int, p: int, n: int) -> MPCComparison:
    """Compute the Appendix A.1.4 numbers for a star query on MPC(0)."""
    packing = mpc_star_packing(k, p)
    st = len(packing)
    delta = max(t.terminal_diameter() for t in packing)
    steiner_rounds = n / st + delta
    capacity = mpc_edge_capacity(k, n, p)
    return MPCComparison(
        k=k,
        p=p,
        n=n,
        steiner_rounds=steiner_rounds,
        rounds_at_mpc_capacity=steiner_rounds / capacity + delta,
    )
