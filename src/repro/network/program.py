"""Compiled round programs — the block-granular protocol engine.

The generator engine (:meth:`repro.network.simulator.Simulator.run`) steps
one Python generator per node per round and ships every tuple as its own
:class:`~repro.network.simulator.Message`.  This module is the *compiled*
alternative: the control plane expresses a protocol as one
:class:`NodeProgram` per node — a static schedule of typed ops
(:class:`BroadcastOp`, :class:`ConvergecastOp`, :class:`RouteOp`,
:class:`ComputeStep`) with precompiled trees, tags and roles — and the
data plane moves :class:`BlockMessage` descriptors that cover a whole
round's worth of items per edge in one Python object, with payload rows
living in shared columnar :class:`~repro.semiring.columnar.WireBlock`
buffers (capacity enforcement is integer arithmetic plus array slicing,
never per-tuple work).

The engine is **accounting-exact** with respect to the generator engine:
each op's per-round decisions replicate the corresponding generator
primitive in :mod:`repro.protocols.primitives` (same header chunking,
same per-round item counts, same EOS handshake), so round counts, total
bits, per-edge bits and message counts come out identical.  On top of
that, :func:`run_program` *fast-forwards* steady streaming states: when
the per-round send signature settles into a cycle (period 1 or 2) and
every live op can bound how long its behaviour replays, the engine jumps
whole cycles at once — thousands of pipeline rounds cost O(1) Python
instead of O(rounds).

Self-timing is preserved exactly: ops are started lazily, a finished op
hands the round over to the next op of the same node (mirroring how a
``yield from`` chain resumes), and early-arriving blocks wait in
per-(tag, src) queues just like the generator engine's ``Mailbox``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import kernels
from ..obs.counters import COUNTERS
from ..obs.trace import Tracer, normalize as _normalize_tracer
from .simulator import (
    CapacityExceeded,
    SimulationError,
    SimulationResult,
    _format_blocked,
)
from .topology import Topology

#: Mirrors :data:`repro.protocols.primitives.HEADER_BITS` (kept local to
#: avoid a protocols -> network -> protocols import cycle).
HEADER_BITS = 32
#: Mirrors :data:`repro.protocols.primitives.EOS_BITS`.
EOS_BITS = 1

#: "Unbounded" cycle horizon — the engine takes a min over ops, so any
#: op without its own bound returns this.
UNBOUNDED = 10 ** 15


class BlockMessage:
    """One block on the wire: a round's worth of one stream's traffic.

    Attributes:
        src/dst: Directed edge the block traverses.
        tag: Stream tag (same namespace as the generator engine).
        kind: ``"hdr"``/``"hdrc"`` (count header and its filler chunks),
            ``"it"`` (broadcast items), ``"slot"`` (convergecast slots),
            ``"run"`` (routing chunk run), ``"eos"`` (end of stream).
        bits: Total bits charged against the edge for this block.
        count: Logical payload units covered (items/slots/chunks).
        messages: Generator-engine message equivalents (for
            ``total_messages`` parity).
        meta: Kind-specific data — the announced count for ``"hdr"``,
            the exact chunk-size tuple for ``"run"``.
    """

    __slots__ = ("src", "dst", "tag", "kind", "bits", "count", "messages", "meta")

    def __init__(self, src, dst, tag, kind, bits, count, messages, meta=None):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.kind = kind
        self.bits = bits
        self.count = count
        self.messages = messages
        self.meta = meta

    def signature(self) -> Tuple:
        """The per-round cycle-detection key (payload-free)."""
        return (self.src, self.dst, self.tag, self.kind, self.bits,
                self.count, self.meta)


class ProgramContext:
    """Per-node API handed to program ops (the block-plane ``NodeContext``).

    Enforces the same per-edge per-direction capacity as the generator
    engine, but at block granularity: a k-item block charges its full
    ``bits`` against the round budget in one call.
    """

    def __init__(self, node: str, topology: Topology, capacity: int) -> None:
        self.node = node
        self.topology = topology
        self.capacity = capacity
        self.round = 0
        self.queues: Dict[Tuple[str, str], deque] = {}
        #: The run's tracer (or None) — ops with trace-worthy internal
        #: structure (ComputeStep) read it; set by :func:`run_program`.
        self.tracer: Optional[Tracer] = None
        self._sent: Dict[str, int] = {}
        self._outbox: List[BlockMessage] = []

    def room(self, dst: str) -> int:
        """Bits still sendable to ``dst`` this round."""
        return self.capacity - self._sent.get(dst, 0)

    def send_block(
        self,
        dst: str,
        tag: str,
        kind: str,
        bits: int,
        count: int = 1,
        messages: Optional[int] = None,
        meta=None,
    ) -> None:
        """Queue one block for delivery next round (capacity-checked)."""
        if bits < 1:
            raise ValueError(f"blocks must carry at least 1 bit, got {bits}")
        if not self.topology.has_edge(self.node, dst):
            raise ValueError(f"{self.node} -> {dst}: not an edge of G")
        used = self._sent.get(dst, 0)
        if used + bits > self.capacity:
            raise CapacityExceeded(
                f"round {self.round}: {self.node}->{dst} would carry "
                f"{used + bits} bits > capacity {self.capacity}"
            )
        self._sent[dst] = used + bits
        self._outbox.append(
            BlockMessage(self.node, dst, tag, kind, bits, count,
                         count if messages is None else messages, meta)
        )

    def pop(self, tag: str, src: str) -> List[BlockMessage]:
        """Drain the (tag, src) stream's blocks, in arrival order."""
        queue = self.queues.get((tag, src))
        if not queue:
            return []
        out = list(queue)
        queue.clear()
        return out

    def pending_tags(self) -> List[str]:
        """Tags with undrained blocks (deadlock diagnostics)."""
        return sorted({tag for (tag, _src), q in self.queues.items() if q})

    # -- engine hooks ---------------------------------------------------
    def _begin_round(self, round_no: int) -> None:
        self.round = round_no
        self._sent = {}

    def _collect(self) -> List[BlockMessage]:
        out = self._outbox
        self._outbox = []
        return out


class ProgramOp:
    """One schedulable unit of a :class:`NodeProgram`."""

    label = "op"

    def start(self, ctx: ProgramContext) -> None:
        """Called once, in the round the op becomes current."""

    def step(self, ctx: ProgramContext) -> bool:
        """Run one round; return True when the op has completed."""
        raise NotImplementedError

    def cycle_horizon(self, p: int) -> int:
        """How many *additional* p-round cycles replay identically.

        Called only after the engine has observed two identical
        consecutive p-round send cycles.  Returning 0 declines the
        fast-forward; any positive k asserts that, with the last cycle's
        arrivals repeating, this op's next ``k`` cycles consume and send
        exactly the same blocks and cross no internal boundary.
        """
        return 0

    def advance(self, p: int, k: int) -> None:
        """Apply ``k`` replays of the last ``p`` rounds' state deltas."""

    def describe(self) -> str:
        return self.label

    # -- shared history helpers ----------------------------------------
    def _record(self, rec: Tuple) -> None:
        hist = getattr(self, "_hist", None)
        if hist is None:
            hist = self._hist = deque(maxlen=8)
        hist.append(rec)

    def _cycle_stable(self, p: int) -> bool:
        """Did the op's own last two p-round cycles behave identically?"""
        hist = getattr(self, "_hist", None)
        if hist is None or len(hist) < 2 * p:
            return False
        return all(hist[-i] == hist[-i - p] for i in range(1, p + 1))

    def _cycle_records(self, p: int) -> List[Tuple]:
        return list(self._hist)[-p:]


class ComputeStep(ProgramOp):
    """A zero-round local computation (Model 2.1: computation is free).

    Runs its callback in the round it becomes current and completes
    immediately, handing the same round to the next op — exactly like
    straight-line code between ``yield from`` calls in a generator
    protocol.  When ``is_output`` is set, the callback's return value
    becomes the node's program output.
    """

    def __init__(self, fn: Callable[[ProgramContext], Any],
                 label: str = "compute", is_output: bool = False) -> None:
        self.fn = fn
        self.label = label
        self.is_output = is_output
        self.value: Any = None

    def step(self, ctx: ProgramContext) -> bool:
        self.value = self.fn(ctx)
        tracer = ctx.tracer
        if tracer is not None:
            tracer.compute_step(ctx.round, ctx.node, self.label)
        return True


class ParallelOps(ProgramOp):
    """Run member ops in lockstep within one node (``parallel_subphases``).

    Each live member is stepped once per round, in input order, sharing
    the node's per-edge capacity through the common context; the group
    completes when every member has.
    """

    def __init__(self, members: Sequence[ProgramOp], label: str = "parallel") -> None:
        self.members = list(members)
        self.done_flags = [False] * len(self.members)
        self.label = label
        self._steps = 0
        self._finished_at: Dict[int, int] = {}

    def start(self, ctx: ProgramContext) -> None:
        for member in self.members:
            member.start(ctx)

    def step(self, ctx: ProgramContext) -> bool:
        self._steps += 1
        for i, member in enumerate(self.members):
            if not self.done_flags[i]:
                if member.step(ctx):
                    self.done_flags[i] = True
                    self._finished_at[i] = self._steps
        return all(self.done_flags)

    def cycle_horizon(self, p: int) -> int:
        # A member that completed within the candidate cycle window put
        # its *final* sends into the recorded signature; replaying the
        # cycle would charge those sends again with no op state behind
        # them.  The group's completion is invisible to the scheduler
        # (the program index does not move), so decline the jump here.
        if any(self._steps - at < p for at in self._finished_at.values()):
            return 0
        horizons = [
            member.cycle_horizon(p)
            for member, done in zip(self.members, self.done_flags)
            if not done
        ]
        return min(horizons) if horizons else UNBOUNDED

    def advance(self, p: int, k: int) -> None:
        for member, done in zip(self.members, self.done_flags):
            if not done:
                member.advance(p, k)

    def describe(self) -> str:
        live = [
            member.describe()
            for member, done in zip(self.members, self.done_flags)
            if not done
        ]
        return f"{self.label}({', '.join(live)})"


class BroadcastOp(ProgramOp):
    """One node's role in a pipelined tree broadcast, block-granular.

    Mirrors :func:`repro.protocols.primitives.broadcast_node` round for
    round: the count header travels first (chunked to the capacity on
    thin edges, value in the first chunk, accounted filler after), then
    items stream at ``per_item`` bits each, as many per round per child
    as the remaining budget allows — sent as a single block.

    Only counts move here; item *content* is a shared
    :class:`~repro.semiring.columnar.WireBlock` the protocol compiler
    exposes to every participant out of band (the simulator is one
    process — receivers still never act on rows before the counts say
    they arrived).
    """

    def __init__(
        self,
        tag: str,
        parent: Optional[str],
        children: Sequence[str],
        per_item: int,
        root_count_fn: Optional[Callable[[], int]] = None,
    ) -> None:
        self.tag = tag
        self.parent = parent
        self.children = list(children)
        self.per_item = max(1, per_item)
        self.root_count_fn = root_count_fn
        self.count: Optional[int] = None
        self.received = 0
        self.header_left = {c: HEADER_BITS for c in self.children}
        self.header_started: set = set()
        self.forwarded = {c: 0 for c in self.children}
        self.label = f"broadcast:{tag}"

    def start(self, ctx: ProgramContext) -> None:
        if self.parent is None:
            self.count = int(self.root_count_fn()) if self.root_count_fn else 0
            self.received = self.count

    def step(self, ctx: ProgramContext) -> bool:
        arrived = 0
        header_activity = False
        if self.parent is not None:
            for blk in ctx.pop(self.tag, self.parent):
                if blk.kind == "hdr":
                    self.count = blk.meta
                elif blk.kind == "it":
                    self.received += blk.count
                    arrived += blk.count
                # "hdrc" filler is accounting-only.
        for child in self.children:
            if self.count is None:
                continue
            while self.header_left[child] > 0:
                room = ctx.room(child)
                if room < 1:
                    break
                take = min(room, self.header_left[child])
                if child not in self.header_started:
                    ctx.send_block(child, self.tag, "hdr", take, count=1,
                                   meta=self.count)
                    self.header_started.add(child)
                else:
                    ctx.send_block(child, self.tag, "hdrc", take, count=1)
                self.header_left[child] -= take
                header_activity = True
        sends = []
        for child in self.children:
            if self.header_left[child] > 0:
                sends.append(0)
                continue
            k = min(
                self.received - self.forwarded[child],
                ctx.room(child) // self.per_item,
            )
            if k > 0:
                ctx.send_block(child, self.tag, "it", k * self.per_item,
                               count=k)
                self.forwarded[child] += k
            sends.append(k)
        self._record((arrived, tuple(sends), header_activity,
                      self.count is None))
        return (
            self.count is not None
            and self.received == self.count
            and all(b == 0 for b in self.header_left.values())
            and all(self.forwarded[c] == self.count for c in self.children)
        )

    def cycle_horizon(self, p: int) -> int:
        if not self._cycle_stable(p):
            return 0
        recs = self._cycle_records(p)
        if any(rec[2] for rec in recs):  # header still moving: transient
            return 0
        arrived = sum(rec[0] for rec in recs)
        sends = [sum(rec[1][i] for rec in recs)
                 for i in range(len(self.children))]
        if self.count is None:
            # Nothing can have arrived or been sent; fully dormant.
            return UNBOUNDED if arrived == 0 and not any(sends) else 0
        if any(self.header_left.values()):
            return 0
        k = UNBOUNDED
        if arrived > 0:
            k = min(k, (self.count - self.received) // arrived - 1)
        for child, s in zip(self.children, sends):
            if s > 0:
                k = min(k, (self.count - self.forwarded[child]) // s - 1)
                drain = arrived - s
                if drain < 0:
                    backlog = self.received - self.forwarded[child]
                    k = min(k, backlog // (-drain) - 1)
        if arrived == 0 and not any(sends):
            return UNBOUNDED
        return max(0, k)

    def advance(self, p: int, k: int) -> None:
        recs = self._cycle_records(p)
        self.received += k * sum(rec[0] for rec in recs)
        for i, child in enumerate(self.children):
            self.forwarded[child] += k * sum(rec[1][i] for rec in recs)


class ConvergecastOp(ProgramOp):
    """One node's role in a pipelined slot convergecast, count-based.

    Mirrors :func:`repro.protocols.primitives.convergecast_node`: slot
    ``i`` moves to the parent once every child has delivered its slot
    ``i``, at most ``capacity // bits_per_slot`` slots per round.  The
    combined *values* never ride these blocks: they are a timing-free
    fold over the tree's contributions, computed once by the protocol
    compiler when the root completes (in the exact association order the
    generator engine uses, so even float semirings agree bit for bit).

    ``num_slots`` is configured at runtime (by the scatter phase that
    learned the counts) before the op starts.
    """

    def __init__(
        self,
        tag: str,
        parent: Optional[str],
        children: Sequence[str],
        per_slot: int,
    ) -> None:
        self.tag = tag
        self.parent = parent
        self.children = list(children)
        self.per_slot = max(1, per_slot)
        self.num_slots: Optional[int] = None
        self.out_idx = 0
        self.buffered = {c: 0 for c in self.children}
        self.label = f"convergecast:{tag}"

    def configure(self, num_slots: int) -> None:
        self.num_slots = int(num_slots)

    def step(self, ctx: ProgramContext) -> bool:
        if self.num_slots is None:
            raise SimulationError(
                f"{self.label}: stepped before configure() — the compiler "
                "must set num_slots when the scatter phase completes"
            )
        arrivals = []
        for child in self.children:
            got = 0
            for blk in ctx.pop(self.tag, child):
                got += blk.count
            self.buffered[child] += got
            arrivals.append(got)
        if self.children:
            avail = min(self.buffered[c] for c in self.children)
        else:
            avail = self.num_slots
        k = min(self.num_slots, avail) - self.out_idx
        if self.parent is not None and k > 0:
            k = min(k, ctx.room(self.parent) // self.per_slot)
            if k > 0:
                ctx.send_block(self.parent, self.tag, "slot",
                               k * self.per_slot, count=k)
        k = max(0, k)
        self.out_idx += k
        self._record((tuple(arrivals), k))
        return self.out_idx >= self.num_slots

    def cycle_horizon(self, p: int) -> int:
        if not self._cycle_stable(p):
            return 0
        recs = self._cycle_records(p)
        arrivals = [sum(rec[0][i] for rec in recs)
                    for i in range(len(self.children))]
        moved = sum(rec[1] for rec in recs)
        if moved == 0 and not any(arrivals):
            return UNBOUNDED
        k = UNBOUNDED
        if moved > 0:
            k = min(k, (self.num_slots - self.out_idx) // moved - 1)
        for child, a in zip(self.children, arrivals):
            drain = a - moved
            if drain < 0:
                slack = self.buffered[child] - self.out_idx
                k = min(k, slack // (-drain) - 1)
        return max(0, k)

    def advance(self, p: int, k: int) -> None:
        recs = self._cycle_records(p)
        for i, child in enumerate(self.children):
            self.buffered[child] += k * sum(rec[0][i] for rec in recs)
        self.out_idx += k * sum(rec[1] for rec in recs)


class _Run:
    """A run of routing chunks: ``pattern`` repeated ``reps`` times."""

    __slots__ = ("pattern", "reps", "pos")

    def __init__(self, pattern: Tuple[int, ...], reps: int, pos: int = 0) -> None:
        self.pattern = pattern
        self.reps = reps
        self.pos = pos  # chunks of the first repetition already consumed


class RouteOp(ProgramOp):
    """One node's role in store-and-forward routing toward a sink.

    Mirrors :func:`repro.protocols.primitives.route_to_sink_node` chunk
    for chunk: forward as many queued chunks as the round budget allows,
    then the 1-bit EOS handshake once the queue is drained and every
    child has signalled.  The queue holds only chunk *sizes* — packet
    payloads are routed out of band by the protocol compiler (the
    collected multiset at the sink is timing-independent), split into a
    compact run-encoded static part (this node's own packets, typically
    one uniform item pattern) and a dynamic deque of arrived chunk
    sizes.  That split is what makes the fast-forward horizons exact:
    origins replay whole pattern repetitions, relays replay while the
    queue is a fixed point of (consume cycle, append cycle).
    """

    def __init__(
        self,
        tag: str,
        parent: Optional[str],
        children: Sequence[str],
        packets_fn: Optional[Callable[[], List[Tuple[Tuple[int, ...], int]]]] = None,
    ) -> None:
        self.tag = tag
        self.parent = parent
        self.children = list(children)
        self.packets_fn = packets_fn
        self.static: deque = deque()
        self.dynamic: deque = deque()
        self.eos_pending = set(self.children)
        self.eos_sent = False
        self.label = f"route:{tag}"

    def start(self, ctx: ProgramContext) -> None:
        if self.packets_fn is None:
            return
        for pattern, reps in self.packets_fn():
            pattern = tuple(pattern)
            if not pattern or reps <= 0:
                continue
            if self.static and self.static[-1].pattern == pattern:
                self.static[-1].reps += reps
            else:
                self.static.append(_Run(pattern, reps))

    # -- queue helpers --------------------------------------------------
    def _pop_chunk(self) -> Optional[int]:
        """Peek-and-consume the next queued chunk size, or None if empty."""
        if self.static:
            run = self.static[0]
            size = run.pattern[run.pos]
            return size
        if self.dynamic:
            return self.dynamic[0]
        return None

    def _consume_chunk(self) -> None:
        if self.static:
            run = self.static[0]
            run.pos += 1
            if run.pos == len(run.pattern):
                run.pos = 0
                run.reps -= 1
                if run.reps == 0:
                    self.static.popleft()
            return
        self.dynamic.popleft()

    def _queue_empty(self) -> bool:
        return not self.static and not self.dynamic

    def step(self, ctx: ProgramContext) -> bool:
        arrived: List[int] = []
        eos_events = 0
        for child in self.children:
            for blk in ctx.pop(self.tag, child):
                if blk.kind == "eos":
                    self.eos_pending.discard(child)
                    eos_events += 1
                else:  # "run": meta is the exact chunk-size tuple
                    arrived.extend(blk.meta)
                    self.dynamic.extend(blk.meta)
        if self.parent is None:
            # Sink: consume everything as it arrives (content is routed
            # out of band; see the compiler's FinalRuntime).
            self.static.clear()
            self.dynamic.clear()
            self._record((tuple(arrived), (), eos_events, None))
            return not self.eos_pending
        sent: List[int] = []
        room = ctx.room(self.parent)
        while True:
            size = self._pop_chunk()
            if size is None or room < size:
                break
            # Track the budget per chunk so partial-capacity rounds match
            # the generator exactly; coalesce into one wire block below.
            self._consume_chunk()
            room -= size
            sent.append(size)
        if sent:
            ctx.send_block(self.parent, self.tag, "run", sum(sent),
                           count=len(sent), meta=tuple(sent))
        if (
            self._queue_empty()
            and not self.eos_pending
            and not self.eos_sent
            and ctx.room(self.parent) >= EOS_BITS
        ):
            ctx.send_block(self.parent, self.tag, "eos", EOS_BITS, count=1)
            self.eos_sent = True
        front = self.static[0] if self.static else None
        self._record((
            tuple(arrived),
            tuple(sent),
            eos_events,
            (front.pattern, front.pos) if front is not None else None,
        ))
        return self.eos_sent

    def cycle_horizon(self, p: int) -> int:
        if not self._cycle_stable(p):
            return 0
        recs = self._cycle_records(p)
        if any(rec[2] for rec in recs):  # EOS transitions are one-offs
            return 0
        cyc_arrived: List[int] = []
        cyc_sent: List[int] = []
        for rec in recs:
            cyc_arrived.extend(rec[0])
            cyc_sent.extend(rec[1])
        if self.parent is None:
            # Sink: unconditionally consumes; nothing else can change.
            return UNBOUNDED
        if not cyc_arrived and not cyc_sent:
            return UNBOUNDED
        if self.static and not self.dynamic and not cyc_arrived:
            # Origin regime: consuming own pattern-run packets only.
            front = self.static[0]
            pattern_len = len(front.pattern)
            if not cyc_sent or len(cyc_sent) % pattern_len != 0:
                return 0
            reps_per_cycle = len(cyc_sent) // pattern_len
            remaining = front.reps  # pos is cycle-stable via the record
            return max(0, remaining // reps_per_cycle - 1)
        if not self.static:
            # Relay regime: the queue must be a fixed point of one cycle
            # (consume the cycle's sends from the front, append the
            # cycle's arrivals at the back).
            consumed = len(cyc_sent)
            queue = list(self.dynamic)
            if consumed > len(queue):
                return 0
            if queue[consumed:] + cyc_arrived == queue:
                return UNBOUNDED
            return 0
        return 0

    def advance(self, p: int, k: int) -> None:
        recs = self._cycle_records(p)
        if self.parent is None:
            return
        cyc_sent = sum(len(rec[1]) for rec in recs)
        cyc_arrived = sum(len(rec[0]) for rec in recs)
        if self.static and not cyc_arrived:
            front = self.static[0]
            front.reps -= k * (cyc_sent // len(front.pattern))
            if front.reps == 0 and front.pos == 0:
                self.static.popleft()
            return
        # Relay fixed point: the queue is unchanged by construction.

    def describe(self) -> str:
        waiting = sorted(self.eos_pending)
        return f"{self.label}(awaiting EOS from {waiting})" if waiting else self.label


class NodeProgram:
    """A node's compiled schedule: ops executed in order, self-timed."""

    def __init__(self, node: str, items: Sequence[ProgramOp]) -> None:
        self.node = node
        self.items = list(items)
        self.index = 0
        self.started = False
        self.output: Any = None

    @property
    def done(self) -> bool:
        return self.index >= len(self.items)

    def current(self) -> Optional[ProgramOp]:
        return self.items[self.index] if self.index < len(self.items) else None

    def step_round(self, ctx: ProgramContext) -> bool:
        """Run this node's round; returns True when the program advanced
        its schedule position (progress without any send)."""
        moved = False
        while self.index < len(self.items):
            op = self.items[self.index]
            if not self.started:
                op.start(ctx)
                self.started = True
            if not op.step(ctx):
                return moved
            if isinstance(op, ComputeStep) and op.is_output:
                self.output = op.value
            self.index += 1
            self.started = False
            moved = True
        return moved

    def describe(self) -> str:
        op = self.current()
        return op.describe() if op is not None else "finished"


#: Rounds carrying at least this many blocks take the struct-of-arrays
#: accounting path; smaller rounds use the scalar path (identical
#: integer arithmetic into the same ledger arrays, no array overhead).
_BATCH_THRESHOLD = 8


class _EdgeLedger:
    """Interned per-edge bit totals — the batched round accounting plane.

    Directed links are interned to dense int64 ids in first-seen block
    order; one lockstep round's accounting is then a single
    struct-of-arrays scatter-add (:func:`repro.kernels.round_accumulate`)
    into the directed and undirected total arrays — plus one vectorized
    per-link capacity audit — instead of a per-block dict-update loop.
    The period-1/2 fast-forward replay of a steady cycle becomes
    ``totals[eids] += k * bits`` array arithmetic over the cycle's stored
    round vectors.  :meth:`bits_per_edge` / :meth:`edge_bits` materialize
    the result dicts in first-seen order, byte-identical to what the
    per-block loop used to produce.
    """

    __slots__ = ("_ids", "_links", "_undir_ids", "_undir_keys",
                 "_undir_map", "_dir_totals", "_undir_totals")

    def __init__(self) -> None:
        self._ids: Dict[Tuple[str, str], int] = {}
        self._links: List[Tuple[str, str]] = []
        self._undir_ids: Dict[Tuple[str, str], int] = {}
        self._undir_keys: List[Tuple[str, str]] = []
        self._undir_map = np.zeros(8, dtype=np.int64)
        self._dir_totals = np.zeros(8, dtype=np.int64)
        self._undir_totals = np.zeros(8, dtype=np.int64)

    def intern(self, src: str, dst: str) -> int:
        """Dense id of the directed link, allocating on first sight."""
        eid = self._ids.get((src, dst))
        if eid is not None:
            return eid
        eid = len(self._links)
        self._ids[(src, dst)] = eid
        self._links.append((src, dst))
        key = (dst, src) if dst < src else (src, dst)
        uid = self._undir_ids.get(key)
        if uid is None:
            uid = len(self._undir_keys)
            self._undir_ids[key] = uid
            self._undir_keys.append(key)
            if uid >= len(self._undir_totals):
                self._undir_totals = np.concatenate(
                    (self._undir_totals, np.zeros_like(self._undir_totals)))
        if eid >= len(self._dir_totals):
            self._dir_totals = np.concatenate(
                (self._dir_totals, np.zeros_like(self._dir_totals)))
            self._undir_map = np.concatenate(
                (self._undir_map, np.zeros_like(self._undir_map)))
        self._undir_map[eid] = uid
        return eid

    def accumulate(self, eids: np.ndarray, bits: np.ndarray) -> None:
        """Charge one round's blocks: one scatter-add per total array."""
        kernels.round_accumulate(self._dir_totals, eids, bits)
        kernels.round_accumulate(
            self._undir_totals, self._undir_map[eids], bits)

    def add_scalar(self, eid: int, bits: int) -> None:
        """Single-block charge — same arithmetic as :meth:`accumulate`."""
        self._dir_totals[eid] += bits
        self._undir_totals[self._undir_map[eid]] += bits

    def replay(self, eids: np.ndarray, bits: np.ndarray, k: int) -> None:
        """Apply ``k`` repeats of one steady-cycle round in one step."""
        self.accumulate(eids, k * bits)

    def bits_per_edge(self) -> Dict[Tuple[str, str], int]:
        """Directed per-link totals, keys in first-seen order."""
        totals = self._dir_totals
        return {
            link: int(totals[i]) for i, link in enumerate(self._links)
        }

    def edge_bits(self) -> Dict[Tuple[str, str], int]:
        """Undirected per-edge totals, keys in first-seen order."""
        totals = self._undir_totals
        return {
            key: int(totals[i]) for i, key in enumerate(self._undir_keys)
        }


def run_program(
    topology: Topology,
    capacity_bits: int,
    programs: Dict[str, NodeProgram],
    max_rounds: int = 1_000_000,
    fast_forward: bool = True,
    tracer: Optional[Tracer] = None,
) -> SimulationResult:
    """Execute compiled node programs in synchronous lockstep rounds.

    The accounting contract matches :meth:`Simulator.run` exactly: blocks
    sent in round ``t`` are readable in round ``t + 1``; ``rounds`` is
    the last round with any send; ``total_bits``/``edge_bits``/
    ``bits_per_edge``/``total_messages`` equal what the generator engine
    would have charged message by message.

    Steady streaming states are fast-forwarded: once the per-round send
    signature repeats with period 1 or 2 and every live op bounds its
    replay horizon, whole cycles are applied arithmetically.  The jump
    changes wall-clock only — the resulting accounting is identical to
    stepping every round (``fast_forward=False`` steps every round and
    must produce byte-identical results; tests assert this).

    With a live ``tracer``, every round boundary, block send, compute
    step and fast-forward jump is emitted as a typed event; the jump
    event carries the cycle's send signatures so replaying the trace
    reproduces the accounting exactly (:mod:`repro.obs.verify`).

    Raises:
        SimulationError: on deadlock (a round in which no node made any
            progress) or when ``max_rounds`` is exceeded; the error names
            the blocked nodes, their current program step and the tags
            they are waiting on.
    """
    if capacity_bits < 1:
        raise ValueError("capacity must be at least 1 bit per round")
    unknown = [n for n in programs if n not in topology]
    if unknown:
        raise ValueError(f"programs for nodes not in G: {unknown}")

    tracer = _normalize_tracer(tracer)
    contexts = {
        node: ProgramContext(node, topology, capacity_bits)
        for node in programs
    }
    if tracer is not None:
        tracer.run_start("compiled", capacity_bits, list(topology.nodes))
        for ctx in contexts.values():
            ctx.tracer = tracer
    live = deque(sorted(node for node, prog in programs.items() if not prog.done))
    outputs: Dict[str, Any] = {
        node: prog.output for node, prog in programs.items() if prog.done
    }

    pending: List[BlockMessage] = []
    total_bits = 0
    total_messages = 0
    last_send_round = 0
    last_delivery_round = 0
    ledger = _EdgeLedger()
    max_edge_bits_per_round = 0

    # Fast-forward bookkeeping: (signature, bits, messages, round edge-id
    # vector, round per-edge bit vector) — the two arrays are the round's
    # accounting delta in ledger coordinates, replayed arithmetically.
    history: deque = deque(maxlen=4)
    next_attempt_round = 0
    attempt_backoff = 1

    def blocked_map() -> Dict[str, List[str]]:
        return {
            node: (
                [f"step {programs[node].describe()}"]
                + contexts[node].pending_tags()
            )
            for node in live
        }

    round_no = 0
    while True:
        round_no += 1
        if tracer is not None:
            tracer.round_start(round_no)
        if round_no > max_rounds:
            blocked = blocked_map()
            raise SimulationError(
                f"exceeded max_rounds={max_rounds}; blocked nodes: "
                f"{_format_blocked(blocked)}",
                blocked=blocked,
            )
        had_pending = bool(pending)
        if had_pending:
            last_delivery_round = round_no
            for blk in pending:
                ctx = contexts.get(blk.dst)
                if ctx is not None and not programs[blk.dst].done:
                    ctx.queues.setdefault((blk.tag, blk.src), deque()).append(blk)
                # Blocks to passive/finished nodes are dropped silently,
                # like the generator engine's message handling.
        pending = []

        round_sends: List[BlockMessage] = []
        finished_any = False
        moved_any = False
        for node in list(live):
            ctx = contexts[node]
            ctx._begin_round(round_no)
            prog = programs[node]
            moved = prog.step_round(ctx)
            moved_any = moved_any or moved
            sent = ctx._collect()
            round_sends.extend(sent)
            if prog.done:
                outputs[node] = prog.output
                live.remove(node)
                finished_any = True

        round_bits = 0
        round_msgs = 0
        round_eids: Optional[np.ndarray] = None
        round_link_bits: Optional[np.ndarray] = None
        if round_sends:
            nblk = len(round_sends)
            if nblk >= _BATCH_THRESHOLD:
                # Struct-of-arrays dispatch: one interning pass builds
                # the round's (edge id, bits) vectors, then the whole
                # round is accounted with one grouped sum, one
                # vectorized capacity audit and one scatter-add — no
                # per-block dict updates.
                eids = np.empty(nblk, dtype=np.int64)
                bits_arr = np.empty(nblk, dtype=np.int64)
                for i, blk in enumerate(round_sends):
                    eids[i] = ledger.intern(blk.src, blk.dst)
                    bits_arr[i] = blk.bits
                    round_msgs += blk.messages
                round_bits = int(bits_arr.sum())
                round_eids, inv = np.unique(eids, return_inverse=True)
                round_link_bits = np.zeros(len(round_eids), dtype=np.int64)
                np.add.at(round_link_bits, inv, bits_arr)
                busiest = int(round_link_bits.max())
                if busiest > capacity_bits:  # pragma: no cover - the
                    # per-block send_block guard makes this unreachable;
                    # kept as the batched restatement of the invariant.
                    raise CapacityExceeded(
                        f"round {round_no}: a link would carry {busiest} "
                        f"bits > capacity {capacity_bits}"
                    )
                ledger.accumulate(eids, bits_arr)
                COUNTERS.increment("engine.batched_rounds")
            else:
                # Scalar path for tiny rounds: identical arithmetic into
                # the same ledger arrays, without the array setup cost.
                per: Dict[int, int] = {}
                for blk in round_sends:
                    eid = ledger.intern(blk.src, blk.dst)
                    round_bits += blk.bits
                    round_msgs += blk.messages
                    ledger.add_scalar(eid, blk.bits)
                    per[eid] = per.get(eid, 0) + blk.bits
                link_ids = sorted(per)
                round_eids = np.fromiter(
                    link_ids, count=len(link_ids), dtype=np.int64)
                round_link_bits = np.fromiter(
                    (per[e] for e in link_ids), count=len(link_ids),
                    dtype=np.int64)
                busiest = max(per.values())
            last_send_round = round_no
            total_bits += round_bits
            total_messages += round_msgs
            if busiest > max_edge_bits_per_round:
                max_edge_bits_per_round = busiest
        if tracer is not None:
            for blk in round_sends:
                tracer.send(
                    round_no, blk.src, blk.dst, blk.bits, tag=blk.tag,
                    kind=blk.kind, count=blk.count, messages=blk.messages,
                )
            tracer.round_end(round_no, round_bits, round_msgs)

        if not live and not round_sends:
            break
        if live and not round_sends and not had_pending and not finished_any \
                and not moved_any:
            blocked = blocked_map()
            raise SimulationError(
                f"deadlock at round {round_no}: no node can make progress; "
                f"blocked nodes: {_format_blocked(blocked)}",
                blocked=blocked,
            )

        sig = tuple(blk.signature() for blk in round_sends)
        history.append(
            (sig, round_bits, round_msgs, round_eids, round_link_bits))
        pending = round_sends

        if not fast_forward:
            continue
        if round_no < next_attempt_round or finished_any or moved_any:
            continue
        for period in (1, 2):
            if len(history) < 2 * period:
                continue
            cycle = list(history)[-period:]
            prev = list(history)[-2 * period:-period]
            if [c[0] for c in cycle] != [c[0] for c in prev]:
                continue
            if not any(c[0] for c in cycle):
                continue  # an all-idle cycle cannot be sending-steady
            # Every cycle stream must be actively drained by its
            # receiver's *current* op: a stream buffering for a later
            # phase (the mailbox case) leaves blocks queued, and a jump
            # would never materialize them.
            drained = True
            for c in cycle:
                for src, dst, tag, _kind, _bits, _count, _meta in c[0]:
                    dst_prog = programs.get(dst)
                    if dst_prog is None or dst_prog.done:
                        continue  # dropped on delivery in both engines
                    if contexts[dst].queues.get((tag, src)):
                        drained = False
                        break
                if not drained:
                    break
            if not drained:
                continue
            horizons = [
                programs[node].current().cycle_horizon(period)
                for node in live
            ]
            k = min(horizons) if horizons else 0
            k = min(k, (max_rounds - round_no) // period)
            if k < 1:
                continue
            for node in live:
                programs[node].current().advance(period, k)
            cycle_bits = sum(c[1] for c in cycle)
            cycle_msgs = sum(c[2] for c in cycle)
            total_bits += k * cycle_bits
            total_messages += k * cycle_msgs
            for c in cycle:
                # The stored round vectors replay as pure array
                # arithmetic: totals[eids] += k * bits.
                if c[3] is not None and len(c[3]):
                    ledger.replay(c[3], c[4], k)
            COUNTERS.increment("engine.fast_forward")
            COUNTERS.increment("engine.fast_forward_rounds", k * period)
            if tracer is not None:
                tracer.cycle_fast_forward(
                    start_round=round_no,
                    period=period,
                    repeats=k,
                    end_round=round_no + k * period,
                    cycle=tuple(
                        tuple(
                            (src, dst, tag, kind, bits)
                            for src, dst, tag, kind, bits, _count, _meta
                            in c[0]
                        )
                        for c in cycle
                    ),
                )
            round_no += k * period
            last_send_round = round_no
            last_delivery_round = round_no
            next_attempt_round = 0
            attempt_backoff = 1
            break
        else:
            # No jump this round; back off so long ineligible stretches
            # don't pay the detection cost every round.
            next_attempt_round = round_no + attempt_backoff
            attempt_backoff = min(64, attempt_backoff * 2)

    return SimulationResult(
        rounds=last_send_round,
        total_bits=total_bits,
        total_messages=total_messages,
        outputs=outputs,
        edge_bits=ledger.edge_bits(),
        bits_per_edge=ledger.bits_per_edge(),
        max_edge_bits_per_round=max_edge_bits_per_round,
        max_inflight_round=last_delivery_round,
    )


def chunk_pattern(item_bits: int, capacity: int) -> Tuple[int, ...]:
    """The chunk-size pattern of one routed item of ``item_bits`` bits.

    Mirrors :func:`repro.protocols.primitives.chunk_packets` for a single
    payload: a head chunk of at most ``capacity`` bits followed by
    capacity-sized continuation filler, the last one partial.
    """
    item_bits = max(1, item_bits)
    if item_bits <= capacity:
        return (item_bits,)
    sizes = [capacity]
    remaining = item_bits - capacity
    while remaining > 0:
        sizes.append(min(capacity, remaining))
        remaining -= capacity
    return tuple(sizes)
