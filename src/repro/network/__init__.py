"""Topologies, cuts, Steiner packing, flow bounds and the round simulator."""

from .flows import routing_demand, sparsity_bound, tau_mcf, tau_mcf_bits
from .mincut import mincut, mincut_partition
from .program import (
    BlockMessage,
    BroadcastOp,
    ComputeStep,
    ConvergecastOp,
    NodeProgram,
    ParallelOps,
    ProgramContext,
    RouteOp,
    chunk_pattern,
    run_program,
)
from .simulator import (
    CapacityExceeded,
    Message,
    NodeContext,
    SimulationError,
    SimulationResult,
    Simulator,
    passive_relay,
    run_protocol,
)
from .steiner import (
    SteinerTree,
    find_steiner_tree,
    optimize_delta,
    pack_steiner_trees,
    st_value,
)
from .topology import Topology

__all__ = [
    "Topology",
    "mincut",
    "mincut_partition",
    "SteinerTree",
    "find_steiner_tree",
    "pack_steiner_trees",
    "st_value",
    "optimize_delta",
    "tau_mcf",
    "tau_mcf_bits",
    "routing_demand",
    "sparsity_bound",
    "Simulator",
    "SimulationResult",
    "Message",
    "NodeContext",
    "CapacityExceeded",
    "SimulationError",
    "passive_relay",
    "run_protocol",
    "NodeProgram",
    "ProgramContext",
    "BlockMessage",
    "BroadcastOp",
    "ConvergecastOp",
    "RouteOp",
    "ComputeStep",
    "ParallelOps",
    "run_program",
    "chunk_pattern",
]
