"""Network topologies ``G = (V, E)`` — Model 2.1's communication graph.

A :class:`Topology` is a simple undirected graph of *players* with
per-edge, per-direction, per-round bit capacities.  Builders cover the
topologies the paper discusses: the line ``G1`` and clique ``G2`` of
Figure 1, stars, rings, grids, balanced trees (sensor networks,
Appendix A.4), random regular graphs (MPC-style well-connected networks)
and barbells (small-cut adversarial cases).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx


class Topology:
    """An undirected communication topology over named players.

    Args:
        edges: Iterable of ``(u, v)`` pairs.
        name: Optional label used in reports.
    """

    def __init__(self, edges: Iterable[Tuple[str, str]], name: str = "G") -> None:
        self.graph = nx.Graph()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop on {u!r} is not allowed")
            self.graph.add_edge(u, v)
        if self.graph.number_of_nodes() == 0:
            raise ValueError("topology must have at least one edge")
        self.name = name
        self._sp_cache: Dict[str, Dict[str, List[str]]] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        return sorted(self.graph.nodes)

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def edges(self) -> List[Tuple[str, str]]:
        return sorted(tuple(sorted(e)) for e in self.graph.edges)

    def neighbors(self, node: str) -> List[str]:
        return sorted(self.graph.neighbors(node))

    def has_edge(self, u: str, v: str) -> bool:
        return self.graph.has_edge(u, v)

    def degree(self, node: str) -> int:
        return self.graph.degree(node)

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    def __contains__(self, node: str) -> bool:
        return node in self.graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Topology {self.name} |V|={self.num_nodes} |E|={self.num_edges}>"

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def shortest_path(self, src: str, dst: str) -> List[str]:
        """A shortest path (list of nodes, inclusive), cached per source."""
        if src not in self._sp_cache:
            self._sp_cache[src] = dict(nx.single_source_shortest_path(self.graph, src))
        return self._sp_cache[src][dst]

    def distance(self, src: str, dst: str) -> int:
        return len(self.shortest_path(src, dst)) - 1

    def eccentricity(self, node: str, among: Optional[Sequence[str]] = None) -> int:
        targets = among if among is not None else self.nodes
        return max(self.distance(node, t) for t in targets)

    def diameter(self, among: Optional[Sequence[str]] = None) -> int:
        """Diameter of G, or of the distances among a terminal subset."""
        targets = list(among) if among is not None else self.nodes
        return max(
            self.distance(u, v) for u in targets for v in targets
        )

    def bfs_tree(self, root: str) -> Dict[str, Optional[str]]:
        """Parent map of a BFS tree rooted at ``root`` (root maps to None)."""
        parents: Dict[str, Optional[str]] = {root: None}
        frontier = [root]
        while frontier:
            nxt = []
            for u in frontier:
                for v in self.neighbors(u):
                    if v not in parents:
                        parents[v] = u
                        nxt.append(v)
            frontier = nxt
        return parents

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @staticmethod
    def player(i: int) -> str:
        return f"P{i}"

    @classmethod
    def line(cls, n: int, name: str = "line") -> "Topology":
        """The line ``G1`` of Figure 1: P0 - P1 - ... - P(n-1)."""
        if n < 2:
            raise ValueError("a line needs at least two nodes")
        return cls(
            ((cls.player(i), cls.player(i + 1)) for i in range(n - 1)),
            name=f"{name}({n})",
        )

    @classmethod
    def clique(cls, n: int, name: str = "clique") -> "Topology":
        """The clique ``G2`` of Figure 1."""
        if n < 2:
            raise ValueError("a clique needs at least two nodes")
        return cls(
            (
                (cls.player(i), cls.player(j))
                for i in range(n)
                for j in range(i + 1, n)
            ),
            name=f"{name}({n})",
        )

    @classmethod
    def star(cls, n_leaves: int, name: str = "star") -> "Topology":
        """A hub P0 with ``n_leaves`` leaves."""
        if n_leaves < 1:
            raise ValueError("a star needs at least one leaf")
        return cls(
            ((cls.player(0), cls.player(i + 1)) for i in range(n_leaves)),
            name=f"{name}({n_leaves})",
        )

    @classmethod
    def ring(cls, n: int, name: str = "ring") -> "Topology":
        if n < 3:
            raise ValueError("a ring needs at least three nodes")
        return cls(
            ((cls.player(i), cls.player((i + 1) % n)) for i in range(n)),
            name=f"{name}({n})",
        )

    @classmethod
    def grid(cls, rows: int, cols: int, name: str = "grid") -> "Topology":
        if rows < 1 or cols < 1 or rows * cols < 2:
            raise ValueError("grid needs at least two nodes")
        edges = []
        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    edges.append((f"P{r}_{c}", f"P{r}_{c + 1}"))
                if r + 1 < rows:
                    edges.append((f"P{r}_{c}", f"P{r + 1}_{c}"))
        return cls(edges, name=f"{name}({rows}x{cols})")

    @classmethod
    def balanced_tree(cls, branching: int, depth: int, name: str = "tree") -> "Topology":
        """A sensor-network-style balanced tree (Appendix A.4)."""
        g = nx.balanced_tree(branching, depth)
        return cls(
            ((cls.player(u), cls.player(v)) for u, v in g.edges),
            name=f"{name}(b{branching},d{depth})",
        )

    @classmethod
    def random_regular(
        cls, degree: int, n: int, seed: int = 0, name: str = "regular"
    ) -> "Topology":
        """A connected random d-regular graph (expander-like)."""
        attempt = seed
        for _ in range(64):
            g = nx.random_regular_graph(degree, n, seed=attempt)
            if nx.is_connected(g):
                return cls(
                    ((cls.player(u), cls.player(v)) for u, v in g.edges),
                    name=f"{name}(d{degree},n{n})",
                )
            attempt += 1
        raise RuntimeError("could not sample a connected regular graph")

    @classmethod
    def hypercube(cls, dim: int, name: str = "hypercube") -> "Topology":
        """The ``dim``-dimensional hypercube: 2^dim players, edges between
        ids differing in exactly one bit (a classic low-diameter,
        high-min-cut datacenter/MPC topology)."""
        if dim < 1:
            raise ValueError("hypercube dimension must be >= 1")
        n = 1 << dim
        return cls(
            (
                (cls.player(i), cls.player(i | (1 << b)))
                for i in range(n)
                for b in range(dim)
                if not i & (1 << b)
            ),
            name=f"{name}(d{dim})",
        )

    @classmethod
    def expander(
        cls, n: int, degree: int, seed: int = 0, name: str = "expander"
    ) -> "Topology":
        """A seeded expander-like topology: a connected random ``degree``-
        regular graph.  A deterministic wrapper over
        :meth:`random_regular` with the argument order and naming the
        experiment lab uses (``n`` first, like every other builder)."""
        return cls.random_regular(degree, n, seed=seed, name=name)

    @classmethod
    def barbell(cls, clique_size: int, path_len: int, name: str = "barbell") -> "Topology":
        """Two cliques joined by a path — a natural small-min-cut topology."""
        if clique_size < 2:
            raise ValueError("clique_size must be >= 2")
        edges = []
        left = [f"L{i}" for i in range(clique_size)]
        right = [f"R{i}" for i in range(clique_size)]
        for side in (left, right):
            for i in range(clique_size):
                for j in range(i + 1, clique_size):
                    edges.append((side[i], side[j]))
        path = [left[0]] + [f"M{i}" for i in range(path_len)] + [right[0]]
        for a, b in zip(path, path[1:]):
            edges.append((a, b))
        return cls(edges, name=f"{name}({clique_size},{path_len})")

    @classmethod
    def two_party(cls, name: str = "edge") -> "Topology":
        """The two-party topology of Model 2.2: a single edge (a, b)."""
        return cls([("a", "b")], name=name)
