"""Steiner trees and edge-disjoint Steiner tree packing.

Implements Definition 3.8 (Steiner trees for a terminal set ``K``),
Definition 3.9 (``ST(G, K, Δ)``: the maximum number of edge-disjoint
Steiner trees of terminal diameter at most Δ) and the workhorse behind
Theorem 3.11's set-intersection protocol: the packing determines how an
N-bit vector is split into parallel aggregation channels.

The packer is greedy — Theorem 3.10 (Lau) guarantees Ω(MinCut(G, K))
edge-disjoint trees exist at unbounded diameter, and the greedy packer
achieves that order on the paper's topologies (lines, cliques, grids,
regular graphs); benches check shape, not exact constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
from networkx.algorithms.approximation import steiner_tree as nx_steiner_tree

from ..core.memo import LRUMemo, topology_key
from .topology import Topology

#: Packings and Δ-scans are pure functions of (graph, terminals, Δ,
#: limit) and dominate plan construction; the lab reruns each identity
#: once per axis plane, so these memos turn the per-plane recomputation
#: into a lookup.  SteinerTree is frozen — only the lists are copied.
_PACK_MEMO = LRUMemo("steiner.pack", maxsize=4096)
_DELTA_MEMO = LRUMemo("steiner.optimize_delta", maxsize=2048)


@dataclass(frozen=True)
class SteinerTree:
    """One Steiner tree: edges plus a designated root.

    Attributes:
        edges: Tree edges, each a sorted pair.
        root: The terminal the protocols aggregate toward.
        terminals: The terminal set ``K`` it spans.
    """

    edges: Tuple[Tuple[str, str], ...]
    root: str
    terminals: Tuple[str, ...]

    @property
    def nodes(self) -> set:
        out = set()
        for u, v in self.edges:
            out.add(u)
            out.add(v)
        if not out:
            out = {self.root}
        return out

    def parent_map(self) -> Dict[str, Optional[str]]:
        """Parent pointers toward ``root`` (root maps to None)."""
        adjacency: Dict[str, List[str]] = {}
        for u, v in self.edges:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        parents: Dict[str, Optional[str]] = {self.root: None}
        frontier = [self.root]
        while frontier:
            nxt = []
            for node in frontier:
                for nb in sorted(adjacency.get(node, ())):
                    if nb not in parents:
                        parents[nb] = node
                        nxt.append(nb)
            frontier = nxt
        return parents

    def depth(self) -> int:
        """Maximum hop count from any tree node to the root."""
        parents = self.parent_map()
        best = 0
        for node in parents:
            d = 0
            cur = node
            while parents[cur] is not None:
                cur = parents[cur]
                d += 1
            best = max(best, d)
        return best

    def terminal_diameter(self) -> int:
        """Max tree distance between two terminals (Definition 3.9's Δ)."""
        g = nx.Graph(list(self.edges))
        if g.number_of_nodes() == 0:
            return 0
        best = 0
        for i, s in enumerate(self.terminals):
            lengths = nx.single_source_shortest_path_length(g, s)
            for t in self.terminals[i + 1:]:
                best = max(best, lengths[t])
        return best


def _prune_to_steiner(tree_edges, terminals) -> Optional[Tuple[Tuple[str, str], ...]]:
    """Iteratively drop non-terminal leaves from a tree edge set."""
    adjacency: Dict[str, set] = {}
    for u, v in tree_edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    terminal_set = set(terminals)
    if not terminal_set <= set(adjacency) and len(terminal_set) > 1:
        return None
    changed = True
    while changed:
        changed = False
        for node in list(adjacency):
            if node not in terminal_set and len(adjacency[node]) == 1:
                (nb,) = adjacency[node]
                adjacency[nb].discard(node)
                del adjacency[node]
                changed = True
    edges = set()
    for u, nbrs in adjacency.items():
        for v in nbrs:
            edges.add(tuple(sorted((u, v))))
    return tuple(sorted(edges))


def _candidate_trees(
    g: nx.Graph, terminals: Sequence[str]
) -> List[Tuple[Tuple[str, str], ...]]:
    """Candidate Steiner trees in ``g``: the metric-closure approximation
    plus pruned BFS and DFS spanning trees rooted at each terminal.

    BFS trees are shallow (good Δ), DFS trees are path-like (they spread
    edge usage, which is what lets the greedy packer find multiple
    edge-disjoint trees on well-connected graphs like the Figure 2
    clique)."""
    out: List[Tuple[Tuple[str, str], ...]] = []
    try:
        approx = nx_steiner_tree(g, list(terminals))
        if all(t in approx for t in terminals):
            pruned = _prune_to_steiner(list(approx.edges), terminals)
            if pruned is not None:
                out.append(pruned)
    except (nx.NetworkXError, KeyError):
        pass
    component = None
    for root in terminals:
        if root not in g:
            return out
        if component is None:
            component = set(nx.node_connected_component(g, root))
        if any(t not in component for t in terminals):
            return []
        for tree_edges in (
            list(nx.bfs_tree(g, root).edges),
            list(nx.dfs_tree(g, root).edges),
        ):
            pruned = _prune_to_steiner(tree_edges, terminals)
            if pruned:
                out.append(pruned)
    # Dedup.
    seen = set()
    unique = []
    for edges in out:
        if edges not in seen:
            seen.add(edges)
            unique.append(edges)
    return unique


def find_steiner_tree(
    topology: Topology, terminals: Sequence[str], graph: Optional[nx.Graph] = None
) -> Optional[SteinerTree]:
    """One Steiner tree for ``terminals`` in ``graph`` (default: all of G).

    Returns None when the terminals are not connected in the residual
    graph.
    """
    g = graph if graph is not None else topology.graph
    terminals = sorted(set(terminals))
    if len(terminals) == 1:
        return SteinerTree((), terminals[0], tuple(terminals))
    candidates = _candidate_trees(g, terminals)
    if not candidates:
        return None
    edges = candidates[0]
    return SteinerTree(tuple(edges), terminals[0], tuple(terminals))


def pack_steiner_trees(
    topology: Topology,
    terminals: Sequence[str],
    max_diameter: Optional[int] = None,
    limit: Optional[int] = None,
) -> List[SteinerTree]:
    """Greedy edge-disjoint Steiner tree packing (Definition 3.9).

    Repeatedly extracts a Steiner tree from the residual graph, keeping
    only trees whose terminal diameter is within ``max_diameter``.
    Memoized on the structural inputs (edge set, terminals, Δ, limit) —
    the packing is deterministic, so a hit returns a fresh list of the
    same frozen trees.

    Args:
        topology: The communication graph.
        terminals: The terminal set ``K``.
        max_diameter: The Δ bound (None = |V|, i.e. unbounded).
        limit: Optional cap on the number of trees.

    Returns:
        A (possibly empty) list of edge-disjoint Steiner trees.
    """
    key = (
        topology_key(topology), tuple(sorted(set(terminals))),
        max_diameter, limit,
    )
    return list(_PACK_MEMO.get_or_compute(
        key,
        lambda: _pack_steiner_trees(topology, terminals, max_diameter, limit),
    ))


def _pack_steiner_trees(
    topology: Topology,
    terminals: Sequence[str],
    max_diameter: Optional[int] = None,
    limit: Optional[int] = None,
) -> List[SteinerTree]:
    residual = topology.graph.copy()
    delta = max_diameter if max_diameter is not None else topology.num_nodes
    terminals = sorted(set(terminals))
    packed: List[SteinerTree] = []
    if len(terminals) == 1:
        return [SteinerTree((), terminals[0], tuple(terminals))]
    while limit is None or len(packed) < limit:
        candidates = [
            SteinerTree(edges, terminals[0], tuple(terminals))
            for edges in _candidate_trees(residual, terminals)
        ]
        candidates = [
            t for t in candidates if t.terminal_diameter() <= delta
        ]
        if not candidates:
            break
        # Prefer the tree whose removal keeps the terminals best connected
        # (max-min residual terminal degree), breaking ties toward fewer
        # edges — this is what finds the two edge-disjoint paths of
        # Example 2.3 on the clique.
        def score(tree: SteinerTree):
            used = set(tree.edges)
            min_degree = min(
                sum(
                    1
                    for nb in residual.neighbors(t)
                    if tuple(sorted((t, nb))) not in used
                )
                for t in terminals
            )
            return (min_degree, -len(tree.edges))

        best = max(candidates, key=score)
        packed.append(best)
        if not best.edges:
            break
        residual.remove_edges_from(best.edges)
    return packed


def st_value(
    topology: Topology, terminals: Sequence[str], max_diameter: Optional[int] = None
) -> int:
    """``ST(G, K, Δ)`` as achieved by the greedy packer."""
    return len(pack_steiner_trees(topology, terminals, max_diameter))


def optimize_delta(
    topology: Topology,
    terminals: Sequence[str],
    total_words: int,
) -> Tuple[int, List[SteinerTree], int]:
    """Minimize ``ceil(total_words / ST(G,K,Δ)) + Δ`` over Δ (Theorem 3.11).

    Scans Δ over the terminal diameter up to |V| on a geometric grid (the
    objective is unimodal enough in practice; benches sweep Δ exhaustively
    for the ablation).

    Returns:
        ``(delta, trees, predicted_rounds)`` for the best Δ found; the
        ``trees`` list is the packing to run the protocol over.

    Raises:
        ValueError: if no Steiner tree connects the terminals at all.
    """
    key = (topology_key(topology), tuple(sorted(set(terminals))), total_words)
    delta, trees, rounds = _DELTA_MEMO.get_or_compute(
        key, lambda: _optimize_delta(topology, terminals, total_words)
    )
    return delta, list(trees), rounds


def _optimize_delta(
    topology: Topology,
    terminals: Sequence[str],
    total_words: int,
) -> Tuple[int, List[SteinerTree], int]:
    lo = topology.diameter(among=sorted(set(terminals))) if len(set(terminals)) > 1 else 1
    lo = max(1, lo)
    hi = max(lo, topology.num_nodes)
    candidates = sorted(
        {lo, hi}
        | {min(hi, lo * (2**i)) for i in range(0, 12)}
    )
    best: Optional[Tuple[int, List[SteinerTree], int]] = None
    for delta in candidates:
        trees = pack_steiner_trees(topology, terminals, max_diameter=delta)
        if not trees:
            continue
        rounds = -(-total_words // len(trees)) + delta
        if best is None or rounds < best[2]:
            best = (delta, trees, rounds)
    if best is None:
        raise ValueError(
            f"no Steiner tree connects terminals {sorted(set(terminals))}"
        )
    return best
