"""Synchronous round-based network simulator — Model 2.1.

The model: a synchronous network ``G`` where, in each round, at most ``B``
bits (the paper's ``O(r * log2 D)``) traverse each edge *per direction*;
messages sent in round ``t`` are readable in round ``t + 1``; internal
computation is free; all nodes know ``H``, ``G`` and the protocol.

Protocols are written as one generator per node: the node reads
``ctx.inbox``, calls ``ctx.send(...)`` any number of times (subject to the
per-edge capacity) and ``yield``s to end its round.  The simulator runs all
generators in lockstep, enforces capacities, delivers messages, counts
rounds and accounts every bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from ..obs.trace import Tracer, normalize as _normalize_tracer
from .topology import Topology


class CapacityExceeded(RuntimeError):
    """A node tried to push more than ``B`` bits over an edge in one round."""


class SimulationError(RuntimeError):
    """The simulation violated an invariant (deadlock, round cap, ...).

    Attributes:
        blocked: ``node -> sorted tags of the node's in-flight traffic``
            for every node that was still live when the simulation gave
            up — the tags say which protocol phase was still streaming
            toward each node.  An empty list means no traffic was in
            flight for the node in the final round; messages delivered
            in earlier rounds (and possibly buffered unread inside the
            protocol's own mailbox) are not visible to the simulator.
    """

    def __init__(self, message: str, blocked: Optional[Dict[str, List[str]]] = None) -> None:
        super().__init__(message)
        self.blocked: Dict[str, List[str]] = blocked or {}


def _format_blocked(blocked: Dict[str, List[str]]) -> str:
    """Render the blocked-node map for a :class:`SimulationError`."""
    if not blocked:
        return "no live nodes"
    parts = []
    for node in sorted(blocked):
        tags = blocked[node]
        parts.append(
            f"{node}[{', '.join(tags) if tags else 'no in-flight traffic'}]"
        )
    return "; ".join(parts)


@dataclass(frozen=True)
class Message:
    """One message in flight.

    Attributes:
        src: Sending node.
        dst: Receiving node (a neighbor of ``src``).
        bits: Size charged against the edge capacity (>= 1).
        payload: Arbitrary Python payload (the simulator never inspects it;
            ``bits`` is the ground truth for accounting).
        tag: Protocol-defined routing label (e.g. which Steiner tree or
            which stream a word belongs to).
        sent_round: 1-based round in which the message was sent.
    """

    src: str
    dst: str
    bits: int
    payload: Any
    tag: str = ""
    sent_round: int = 0


class NodeContext:
    """Per-node API handed to protocol generators.

    Attributes:
        node: This node's name.
        topology: The shared topology (read-only by convention).
        capacity: Per-edge per-direction bits per round (``B``).
        inbox: Messages delivered this round (sent in the previous round).
        round: The current 1-based round number.
    """

    def __init__(self, node: str, topology: Topology, capacity: int) -> None:
        self.node = node
        self.topology = topology
        self.capacity = capacity
        self.inbox: List[Message] = []
        self.round = 0
        self._outbox: List[Message] = []
        self._sent_bits_this_round: Dict[str, int] = {}

    def send(self, dst: str, bits: int, payload: Any = None, tag: str = "") -> None:
        """Queue a message to a neighbor for delivery next round.

        Raises:
            ValueError: if ``dst`` is not a neighbor or ``bits < 1``.
            CapacityExceeded: if the edge's per-round budget is exhausted.
        """
        if bits < 1:
            raise ValueError(f"messages must carry at least 1 bit, got {bits}")
        if not self.topology.has_edge(self.node, dst):
            raise ValueError(f"{self.node} -> {dst}: not an edge of G")
        used = self._sent_bits_this_round.get(dst, 0)
        if used + bits > self.capacity:
            raise CapacityExceeded(
                f"round {self.round}: {self.node}->{dst} would carry "
                f"{used + bits} bits > capacity {self.capacity}"
            )
        self._sent_bits_this_round[dst] = used + bits
        self._outbox.append(
            Message(self.node, dst, bits, payload, tag, self.round)
        )

    def remaining_capacity(self, dst: str) -> int:
        """Bits still sendable to ``dst`` this round."""
        return self.capacity - self._sent_bits_this_round.get(dst, 0)

    def messages(self, tag: Optional[str] = None, src: Optional[str] = None) -> List[Message]:
        """Filter this round's inbox by tag and/or sender."""
        out = self.inbox
        if tag is not None:
            out = [m for m in out if m.tag == tag]
        if src is not None:
            out = [m for m in out if m.src == src]
        return list(out)

    # -- internal hooks -------------------------------------------------
    def _begin_round(self, round_no: int, inbox: List[Message]) -> None:
        self.round = round_no
        self.inbox = inbox
        self._outbox = []
        self._sent_bits_this_round = {}

    def _collect(self) -> List[Message]:
        out = self._outbox
        self._outbox = []
        return out


ProcessFactory = Callable[[NodeContext], Generator[None, None, Any]]


@dataclass
class SimulationResult:
    """Outcome of one protocol run.

    Attributes:
        rounds: Number of communication rounds used — the largest round
            index in which any message was sent (computation-only trailing
            rounds are free, per Model 2.1).
        total_bits: Total bits carried over all edges in all rounds.
        total_messages: Message count.
        outputs: Return value of each node's generator.
        edge_bits: Bits per undirected edge (sorted pair) over the run.
        bits_per_edge: Bits per *directed* edge ``(src, dst)`` — the
            link-utilization view (an undirected edge is two links).
        max_edge_bits_per_round: The busiest link-round of the run: the
            largest number of bits any directed edge carried in a single
            round (at most the capacity ``B``; the ratio is the paper's
            per-round budget utilization).
        max_inflight_round: The last round in which a message was
            *delivered* (diagnostics).
    """

    rounds: int
    total_bits: int
    total_messages: int
    outputs: Dict[str, Any]
    edge_bits: Dict[Tuple[str, str], int] = field(default_factory=dict)
    bits_per_edge: Dict[Tuple[str, str], int] = field(default_factory=dict)
    max_edge_bits_per_round: int = 0
    max_inflight_round: int = 0

    def output_of(self, node: str) -> Any:
        return self.outputs.get(node)

    def link_utilization(self, capacity_bits: int) -> float:
        """Peak per-round link load as a fraction of the capacity ``B``."""
        if capacity_bits <= 0:
            return 0.0
        return self.max_edge_bits_per_round / capacity_bits


class Simulator:
    """Runs a set of per-node generators over a topology in lockstep.

    Args:
        topology: The communication graph ``G``.
        capacity_bits: Per-edge per-direction bits per round (``B``).
        max_rounds: Hard cap; exceeding it raises :class:`SimulationError`
            (a protocol bug or deadlock).
        tracer: Optional :class:`repro.obs.trace.Tracer`.  Disabled
            tracers (including ``None``) are normalized to ``None``
            up front, so tracing-off costs a single ``is not None``
            check per guard site and not one method call per event.
    """

    def __init__(
        self,
        topology: Topology,
        capacity_bits: int,
        max_rounds: int = 1_000_000,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if capacity_bits < 1:
            raise ValueError("capacity must be at least 1 bit per round")
        self.topology = topology
        self.capacity_bits = capacity_bits
        self.max_rounds = max_rounds
        self.tracer = _normalize_tracer(tracer)

    def run(self, processes: Dict[str, ProcessFactory]) -> SimulationResult:
        """Execute one protocol.

        Args:
            processes: One generator factory per participating node; nodes
                of ``G`` absent from the dict are passive (they never send;
                for relay roles, include them explicitly).

        Returns:
            A :class:`SimulationResult` with exact round/bit accounting.

        Raises:
            SimulationError: on deadlock (undelivered messages to finished
                nodes are tolerated, but live generators that never finish
                within ``max_rounds`` are not).
        """
        unknown = [n for n in processes if n not in self.topology]
        if unknown:
            raise ValueError(f"processes for nodes not in G: {unknown}")

        contexts = {
            node: NodeContext(node, self.topology, self.capacity_bits)
            for node in processes
        }
        generators: Dict[str, Generator] = {}
        outputs: Dict[str, Any] = {}
        for node, factory in processes.items():
            gen = factory(contexts[node])
            if not hasattr(gen, "send"):
                raise TypeError(
                    f"process for {node!r} must be a generator function"
                )
            generators[node] = gen

        pending: List[Message] = []
        total_bits = 0
        total_messages = 0
        last_send_round = 0
        last_delivery_round = 0
        edge_bits: Dict[Tuple[str, str], int] = {}
        bits_per_edge: Dict[Tuple[str, str], int] = {}
        max_edge_bits_per_round = 0

        tracer = self.tracer
        if tracer is not None:
            tracer.run_start(
                "generator", self.capacity_bits, list(self.topology.nodes)
            )

        round_no = 0
        while True:
            round_no += 1
            if tracer is not None:
                tracer.round_start(round_no)
            if round_no > self.max_rounds:
                blocked = {
                    node: sorted({m.tag for m in pending if m.dst == node})
                    for node in generators
                }
                raise SimulationError(
                    f"exceeded max_rounds={self.max_rounds}; blocked nodes: "
                    f"{_format_blocked(blocked)}",
                    blocked=blocked,
                )
            # Deliver messages sent last round.
            inboxes: Dict[str, List[Message]] = {n: [] for n in contexts}
            for msg in pending:
                if msg.dst in inboxes:
                    inboxes[msg.dst].append(msg)
                # Messages to passive/finished nodes are dropped silently —
                # a protocol bug surfaces as a deadlock or wrong output.
            if pending:
                last_delivery_round = round_no
            pending = []

            # Step every live generator once (deterministic order).
            finished: List[str] = []
            round_edge_bits: Dict[Tuple[str, str], int] = {}
            for node in sorted(generators):
                ctx = contexts[node]
                ctx._begin_round(round_no, inboxes[node])
                try:
                    next(generators[node])
                except StopIteration as stop:
                    outputs[node] = stop.value
                    finished.append(node)
                sent = ctx._collect()
                for msg in sent:
                    total_bits += msg.bits
                    total_messages += 1
                    key = tuple(sorted((msg.src, msg.dst)))
                    edge_bits[key] = edge_bits.get(key, 0) + msg.bits
                    link = (msg.src, msg.dst)
                    bits_per_edge[link] = bits_per_edge.get(link, 0) + msg.bits
                    round_edge_bits[link] = (
                        round_edge_bits.get(link, 0) + msg.bits
                    )
                    last_send_round = round_no
                pending.extend(sent)
            if round_edge_bits:
                busiest = max(round_edge_bits.values())
                if busiest > max_edge_bits_per_round:
                    max_edge_bits_per_round = busiest
            if tracer is not None:
                # Coalesce the round's per-tuple messages into one event
                # per (edge, tag) stream — replay needs edge/round bit
                # totals, not tuple granularity.
                streams: Dict[Tuple[str, str, str], List[int]] = {}
                for msg in pending:
                    acc = streams.setdefault((msg.src, msg.dst, msg.tag), [0, 0])
                    acc[0] += msg.bits
                    acc[1] += 1
                for (src, dst, tag), (bits, count) in streams.items():
                    tracer.send(
                        round_no, src, dst, bits, tag=tag, kind="msg",
                        count=count, messages=count,
                    )
                tracer.round_end(
                    round_no,
                    sum(m.bits for m in pending),
                    len(pending),
                )
            for node in finished:
                del generators[node]

            if not generators and not pending:
                break

        return SimulationResult(
            rounds=last_send_round,
            total_bits=total_bits,
            total_messages=total_messages,
            outputs=outputs,
            edge_bits=edge_bits,
            bits_per_edge=bits_per_edge,
            max_edge_bits_per_round=max_edge_bits_per_round,
            max_inflight_round=last_delivery_round,
        )

    def run_program(self, programs) -> SimulationResult:
        """Execute compiled :class:`~repro.network.program.NodeProgram`s.

        The batched fast path: same topology, capacity and round/bit
        accounting contract as :meth:`run`, but whole blocks move per
        edge per round instead of per-tuple messages.  See
        :mod:`repro.network.program`.
        """
        from .program import run_program

        return run_program(
            self.topology, self.capacity_bits, programs, self.max_rounds,
            tracer=self.tracer,
        )


def passive_relay(ctx: NodeContext) -> Generator[None, None, None]:
    """A process that never sends — a placeholder participant."""
    return
    yield  # pragma: no cover - makes this a generator function


def run_protocol(
    topology: Topology,
    processes: Dict[str, ProcessFactory],
    capacity_bits: int,
    max_rounds: int = 1_000_000,
    include_all_nodes: Iterable[str] = (),
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run once.

    Args:
        include_all_nodes: Extra nodes to register as passive relays so
            messages to them are not dropped (rarely needed; routing
            protocols register their own relay processes).
    """
    procs = dict(processes)
    for node in include_all_nodes:
        procs.setdefault(node, passive_relay)
    return Simulator(topology, capacity_bits, max_rounds).run(procs)
