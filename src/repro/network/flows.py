"""Multicommodity-flow routing bounds — Definition 3.12's ``τ_MCF``.

``τ_MCF(G, K, N')`` is the number of rounds needed to route
``N' * log2(N')`` bits from the players of ``K`` to one designated player
when ``log2(N')`` bits cross each edge per round.  Appendix D.1 shows this
is ``Θ̃(N'/MinCut(G, K))`` (plus a distance term) under worst-case
assignment, via Leighton–Rao sparsest-cut scheduling.  This module
provides that closed form; the *measured* counterpart is the
store-and-forward routing protocol in :mod:`repro.protocols.trivial`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

from .mincut import mincut
from .topology import Topology


def tau_mcf(
    topology: Topology,
    players: Sequence[str],
    n_prime: int,
    sink: Optional[str] = None,
) -> int:
    """The Definition 3.12 / Appendix D.1 round bound.

    Args:
        topology: The communication graph.
        players: The players ``K`` holding the data.
        n_prime: The ``N'`` of Definition 3.12 — ``N' log N'`` bits total
            are routed, ``log N'`` bits per edge per round.
        sink: The receiving player (defaults to the first of ``K``); only
            the distance term depends on it.

    Returns:
        ``ceil(N' / MinCut(G, K)) + max-distance(K, sink)`` rounds.
    """
    terminals = sorted(set(players))
    if n_prime <= 0:
        return 0
    sink = sink or terminals[0]
    if len(terminals) < 2:
        return 0 if sink in terminals else topology.distance(terminals[0], sink)
    cut = mincut(topology, terminals + [sink])
    distance = max(topology.distance(p, sink) for p in terminals)
    return math.ceil(n_prime / cut) + distance


def tau_mcf_bits(
    topology: Topology,
    players: Sequence[str],
    total_bits: int,
    bits_per_round: int,
    sink: Optional[str] = None,
) -> int:
    """``τ_MCF`` in raw bit units: route ``total_bits`` at ``bits_per_round``
    per edge per round — the form protocol planners use directly."""
    terminals = sorted(set(players))
    if total_bits <= 0:
        return 0
    sink = sink or terminals[0]
    others = [p for p in terminals if p != sink]
    if not others:
        return 0
    cut = mincut(topology, terminals if len(terminals) >= 2 else terminals + [sink])
    distance = max(topology.distance(p, sink) for p in others)
    return math.ceil(total_bits / (bits_per_round * cut)) + distance


def routing_demand(
    holdings_bits: Dict[str, int], sink: str
) -> int:
    """Total bits that must move: everything not already at the sink."""
    return sum(bits for player, bits in holdings_bits.items() if player != sink)


def sparsity_bound(
    topology: Topology,
    players: Sequence[str],
    total_bits: int,
    bits_per_round: int,
) -> float:
    """The Leighton–Rao style lower estimate used in Appendix D.1.

    ``total_bits / (bits_per_round * MinCut(G, K))`` — any routing schedule
    needs at least this many rounds when all demand crosses the min cut.
    """
    terminals = sorted(set(players))
    if len(terminals) < 2 or total_bits <= 0:
        return 0.0
    return total_bits / (bits_per_round * mincut(topology, terminals))
