"""Backend-dispatched hot kernels — the NumPy/JIT tier of the data plane.

The columnar data plane bottoms out in a handful of array kernels: the
stable-sort equi-join probe (:func:`match_indices`), the sort/reduceat
group-by behind ``fused_join_marginalize`` (:func:`sort_groups_key`,
:func:`grouped_reduce`), the sort-based dictionary union
(:func:`encode_unique`), and the compiled engine's per-round edge-bit
accumulation (:func:`round_accumulate`).  This package routes each of
them through a process-wide **kernel tier** selected the same way the
``engine``/``solver``/``backend`` axes are:

* ``"numpy"`` (default) — the pure-NumPy implementations, always
  available;
* ``"jit"`` — numba ``@njit`` versions compiled on first use when numba
  is importable (:data:`HAVE_NUMBA`), silently resolving back to the
  NumPy tier otherwise so the axis is runnable on every install
  (``pip install repro-pods[jit]`` adds numba).

Parity contract: both tiers must produce **byte-identical** outputs —
same values, same dtypes, same row order.  Everything order-sensitive
therefore uses *stable* sorts on both tiers (an unstable sort would let
the tiers disagree on tie order without either being wrong).  The lab
sweeps ``--kernels numpy|jit|both`` through the same differential gates
as the other three axes, so a tier that drifts fails parity, the cost
oracle and trace replay at once.

Dispatch is observable: every public kernel call increments the
deterministic counter ``kernels.numpy`` or ``kernels.jit`` for the tier
that actually ran (a ``"jit"`` request without numba counts as
``kernels.numpy`` — the honest record of what executed).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

import numpy as np

from ..obs.counters import COUNTERS

#: The kernel tiers the lab's ``--kernels`` axis accepts.
KERNEL_TIERS = ("numpy", "jit")

try:  # pragma: no cover - exercised only where numba is installed
    from . import _jit as _jit_impl

    HAVE_NUMBA = True
except ImportError:  # numba not installed: the NumPy tier serves "jit"
    _jit_impl = None
    HAVE_NUMBA = False

_active_tier = "numpy"


def active_tier() -> str:
    """The *requested* kernel tier (``"numpy"`` or ``"jit"``)."""
    return _active_tier


def resolved_tier() -> str:
    """The tier that will actually execute (``"jit"`` needs numba)."""
    if _active_tier == "jit" and HAVE_NUMBA:
        return "jit"
    return "numpy"


def set_tier(name: str) -> None:
    """Select the process-wide kernel tier."""
    if name not in KERNEL_TIERS:
        raise ValueError(f"unknown kernel tier {name!r}; known: {KERNEL_TIERS}")
    global _active_tier
    _active_tier = name


@contextmanager
def use_tier(name: str) -> Iterator[None]:
    """Scoped :func:`set_tier` — the lab wraps each scenario in this."""
    previous = _active_tier
    set_tier(name)
    try:
        yield
    finally:
        set_tier(previous)


def _dispatch() -> bool:
    """Count the dispatch; True when the JIT tier should run."""
    if _active_tier == "jit" and HAVE_NUMBA:
        COUNTERS.increment("kernels.jit")
        return True
    COUNTERS.increment("kernels.numpy")
    return False


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


def match_indices(
    left_key: np.ndarray, right_key: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-index pairs of the equi-join ``left_key = right_key``.

    Stable-sorts the right side and probes it with ``searchsorted``;
    match runs are expanded with ``repeat``/``arange`` arithmetic.
    Returns ``(left_idx, right_idx)`` such that ``left_key[left_idx[i]]
    == right_key[right_idx[i]]`` enumerates every matching pair, grouped
    by left row in left order with right ties in input order (the stable
    sort is what pins tie order identically across tiers).
    """
    if _dispatch():
        return _jit_impl.match_indices(left_key, right_key)
    order = np.argsort(right_key, kind="stable")
    right_sorted = right_key[order]
    lo = np.searchsorted(right_sorted, left_key, side="left")
    hi = np.searchsorted(right_sorted, left_key, side="right")
    counts = hi - lo
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(left_key), dtype=np.int64), counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    right_idx = order[np.repeat(lo, counts) + within]
    return left_idx, right_idx


def sort_groups_key(key: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster rows sharing a composite int64 key.

    Returns ``(order, starts)``: a stable permutation sorting rows into
    contiguous groups plus each group's start offset in that order — the
    composite-key fast path of the columnar group-by.
    """
    if _dispatch():
        return _jit_impl.sort_groups_key(key)
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    change = sorted_key[1:] != sorted_key[:-1]
    starts = np.flatnonzero(np.concatenate(([True], change))).astype(np.int64)
    return order, starts


#: ⊕ ufuncs the JIT tier lowers to explicit loops; any other reduction
#: runs the NumPy ``reduceat`` on both tiers (correct, just not jitted).
_JIT_REDUCERS = {"add", "logical_or", "minimum", "maximum", "multiply"}


def grouped_reduce(
    values: np.ndarray,
    order: np.ndarray,
    starts: np.ndarray,
    add_ufunc: np.ufunc,
) -> np.ndarray:
    """⊕-reduce ``values`` over the groups of a :func:`sort_groups_key`.

    Equivalent to ``add_ufunc.reduceat(values[order], starts)`` — the
    fused join+marginalize group-by reduction, one output per group.
    """
    name = getattr(add_ufunc, "__name__", "")
    if name in _JIT_REDUCERS and _dispatch():
        return _jit_impl.grouped_reduce(values, order, starts, name)
    if name not in _JIT_REDUCERS:
        # Unknown ⊕: no JIT lowering exists, so this is NumPy-tier work
        # regardless of the requested tier.
        COUNTERS.increment("kernels.numpy")
    return add_ufunc.reduceat(values[order], starts)


def encode_unique(concat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(uniq, inverse)`` of a concatenated column, stable-sort based.

    The dictionary-union kernel behind interning and columnar encoding:
    one stable argsort (radix for integer dtypes) plus mask arithmetic;
    the inverse doubles as the per-dictionary remap.
    """
    if len(concat) == 0:
        return concat, np.empty(0, dtype=np.int64)
    if concat.dtype.kind in "iuf" and _dispatch():
        return _jit_impl.encode_unique(concat)
    if concat.dtype.kind not in "iuf":
        # Object/string columns: no JIT lowering, NumPy tier by dtype.
        COUNTERS.increment("kernels.numpy")
    order = np.argsort(concat, kind="stable")
    ordered = concat[order]
    change = ordered[1:] != ordered[:-1]
    group = np.concatenate(([0], np.cumsum(change)))
    inverse = np.empty(len(concat), dtype=np.int64)
    inverse[order] = group
    uniq = ordered[np.concatenate(([True], change))]
    return uniq, inverse


def round_accumulate(
    totals: np.ndarray, edge_ids: np.ndarray, bits: np.ndarray
) -> None:
    """``totals[edge_ids] += bits`` with repeated ids — in place.

    The batched round ledger's scatter-add: one call accounts a whole
    lockstep round's sends into the per-edge bit totals.
    """
    if _dispatch():
        _jit_impl.round_accumulate(totals, edge_ids, bits)
        return
    np.add.at(totals, edge_ids, bits)


__all__ = [
    "HAVE_NUMBA",
    "KERNEL_TIERS",
    "active_tier",
    "resolved_tier",
    "set_tier",
    "use_tier",
    "match_indices",
    "sort_groups_key",
    "grouped_reduce",
    "encode_unique",
    "round_accumulate",
]
