"""numba ``@njit`` kernel implementations — imported only when numba is.

Every function here must be **byte-identical** to its NumPy twin in
:mod:`repro.kernels`: same values, same dtypes, same row order.  That is
why each sort below is numba's ``kind='mergesort'`` (stable) — matching
the ``kind='stable'`` NumPy calls — and why the expansion arithmetic
mirrors the NumPy formulations line for line.  The lab's ``--kernels
both`` axis diffs the two tiers through the full parity/cost/trace
gates, so any divergence is a caught bug, not drift.

This module import-fails cleanly when numba is absent; the package
``__init__`` catches that and serves the NumPy tier for ``"jit"``
requests (``HAVE_NUMBA`` records which happened).
"""

from __future__ import annotations

import numpy as np
from numba import njit  # noqa: F401 — gate: ImportError without numba


@njit(cache=True)
def _match_indices_jit(left_key, right_key):  # pragma: no cover - needs numba
    order = np.argsort(right_key, kind="mergesort")
    right_sorted = right_key[order]
    n = len(left_key)
    lo = np.searchsorted(right_sorted, left_key, side="left")
    hi = np.searchsorted(right_sorted, left_key, side="right")
    total = 0
    for i in range(n):
        total += hi[i] - lo[i]
    left_idx = np.empty(total, dtype=np.int64)
    right_idx = np.empty(total, dtype=np.int64)
    pos = 0
    for i in range(n):
        for j in range(lo[i], hi[i]):
            left_idx[pos] = i
            right_idx[pos] = order[j]
            pos += 1
    return left_idx, right_idx


def match_indices(left_key, right_key):  # pragma: no cover - needs numba
    return _match_indices_jit(
        np.ascontiguousarray(left_key), np.ascontiguousarray(right_key)
    )


@njit(cache=True)
def _sort_groups_key_jit(key):  # pragma: no cover - needs numba
    order = np.argsort(key, kind="mergesort")
    n = len(key)
    count = 1 if n else 0
    for i in range(1, n):
        if key[order[i]] != key[order[i - 1]]:
            count += 1
    starts = np.empty(count, dtype=np.int64)
    pos = 0
    for i in range(n):
        if i == 0 or key[order[i]] != key[order[i - 1]]:
            starts[pos] = i
            pos += 1
    return order, starts


def sort_groups_key(key):  # pragma: no cover - needs numba
    return _sort_groups_key_jit(np.ascontiguousarray(key))


def _make_reducer(op_name):  # pragma: no cover - needs numba
    if op_name == "add":
        combine = njit(cache=True)(lambda a, b: a + b)
    elif op_name == "logical_or":
        combine = njit(cache=True)(lambda a, b: a or b)
    elif op_name == "minimum":
        combine = njit(cache=True)(lambda a, b: a if a < b else b)
    elif op_name == "maximum":
        combine = njit(cache=True)(lambda a, b: a if a > b else b)
    else:  # multiply
        combine = njit(cache=True)(lambda a, b: a * b)

    @njit(cache=True)
    def reducer(values, order, starts):
        n = len(order)
        m = len(starts)
        out = np.empty(m, dtype=values.dtype)
        for g in range(m):
            begin = starts[g]
            end = starts[g + 1] if g + 1 < m else n
            acc = values[order[begin]]
            for i in range(begin + 1, end):
                acc = combine(acc, values[order[i]])
            out[g] = acc
        return out

    return reducer


_REDUCERS = {}


def grouped_reduce(values, order, starts, op_name):  # pragma: no cover
    reducer = _REDUCERS.get(op_name)
    if reducer is None:
        reducer = _REDUCERS[op_name] = _make_reducer(op_name)
    return reducer(
        np.ascontiguousarray(values),
        np.ascontiguousarray(order),
        np.ascontiguousarray(starts),
    )


@njit(cache=True)
def _encode_unique_jit(concat):  # pragma: no cover - needs numba
    order = np.argsort(concat, kind="mergesort")
    n = len(concat)
    uniques = 1
    for i in range(1, n):
        if concat[order[i]] != concat[order[i - 1]]:
            uniques += 1
    uniq = np.empty(uniques, dtype=concat.dtype)
    inverse = np.empty(n, dtype=np.int64)
    group = -1
    for i in range(n):
        if i == 0 or concat[order[i]] != concat[order[i - 1]]:
            group += 1
            uniq[group] = concat[order[i]]
        inverse[order[i]] = group
    return uniq, inverse


def encode_unique(concat):  # pragma: no cover - needs numba
    return _encode_unique_jit(np.ascontiguousarray(concat))


@njit(cache=True)
def _round_accumulate_jit(totals, edge_ids, bits):  # pragma: no cover
    for i in range(len(edge_ids)):
        totals[edge_ids[i]] += bits[i]


def round_accumulate(totals, edge_ids, bits):  # pragma: no cover - needs numba
    _round_accumulate_jit(
        totals,
        np.ascontiguousarray(edge_ids),
        np.ascontiguousarray(bits),
    )
