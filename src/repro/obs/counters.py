"""Process-wide tagged counters for the repository's fast paths.

The cost model predicts *what* a run costs; these counters record *which
machinery* produced it: did the plan cache hit, did dictionary interning
take the superset shortcut or pay the merge, did an operator dispatch to
the columnar kernel or fall back to the dict path, did the compiled
engine fast-forward.  Counting is a dict upsert per event — cheap enough
to stay always-on (unlike tracing, which is opt-in per run).

The registry is per-process (lab workers each count their own work); the
lab snapshots it around each scenario execution and stores the **delta**
on the result.  Two determinism classes:

* :data:`DETERMINISTIC_COUNTERS` — a pure function of the scenario
  (kernel dispatch, kernel-tier dispatch (``kernels.numpy`` /
  ``kernels.jit``), pooling strategy, fast-forward engagements, batched
  round accounting, plan-cache *lookups*).  These enter the
  deterministic result record and the BENCH artifact, so
  serial/parallel/batched runs stay byte-identical.  The
  ``batch.*`` group counters fire *outside* the per-scenario snapshot
  window (they describe the grouping, not any one scenario), so they
  never perturb per-scenario records.
* Everything else — notably ``plan_cache.hit`` / ``plan_cache.miss``,
  which depend on process warmth (which worker ran which scenario
  first) — is volatile: reported on stdout, never persisted.
"""

from __future__ import annotations

from typing import Dict, Mapping

#: Counters that are a pure function of one scenario execution —
#: identical whether the scenario ran serially, on a worker, first or
#: last.  Only these may enter deterministic records and artifacts.
DETERMINISTIC_COUNTERS = (
    "engine.fast_forward",
    "engine.fast_forward_rounds",
    "engine.batched_rounds",
    "dict_pool.superset",
    "dict_pool.merge",
    "dict_pool.generic",
    "kernel.columnar",
    "kernel.dict_fallback",
    "kernels.numpy",
    "kernels.jit",
    "solver.fused_vectorized",
    "solver.fused_fallback",
    "plan_cache.lookups",
    "plan_cache.uncacheable",
    "batch.groups",
    "batch.grouped_scenarios",
)


class CounterRegistry:
    """A flat name -> count map with snapshot/reset semantics."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def increment(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (creating it at 0)."""
        counts = self._counts
        counts[name] = counts.get(name, 0) + n

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """An immutable-by-copy view of every counter."""
        return dict(self._counts)

    def reset(self) -> None:
        """Zero every counter (tests and benchmarks isolate with this)."""
        self._counts.clear()


def counter_delta(
    before: Mapping[str, int], after: Mapping[str, int]
) -> Dict[str, int]:
    """Counters that advanced between two snapshots (positive deltas only)."""
    delta = {}
    for name, value in after.items():
        moved = value - before.get(name, 0)
        if moved:
            delta[name] = moved
    return delta


def deterministic_view(delta: Mapping[str, int]) -> Dict[str, int]:
    """The persistable subset of a delta, in canonical counter order."""
    return {
        name: delta[name]
        for name in DETERMINISTIC_COUNTERS
        if delta.get(name)
    }


#: The process-wide registry every hook site increments.
COUNTERS = CounterRegistry()
