"""The trace core: typed protocol events behind a zero-overhead interface.

A :class:`Tracer` is injected into the engines
(:meth:`repro.network.simulator.Simulator.run`,
:func:`repro.network.program.run_program`) and the planner
(:meth:`repro.core.planner.Planner.execute`) through a single optional
``tracer=`` parameter.  The contract that keeps the hot path fast:

* The base :class:`Tracer` is the **no-op**: ``enabled`` is False and
  every method does nothing.  Engines call :func:`normalize` once per
  run, which maps ``None`` *and* any disabled tracer to ``None`` — the
  per-round/per-message cost of tracing-off is therefore exactly one
  ``is not None`` check, never a method call.
* :class:`RecordingTracer` (``enabled`` True) appends one frozen
  dataclass per event to ``events``.  Event payloads are plain Python
  scalars/tuples, so traces serialize losslessly
  (:mod:`repro.obs.export`) and replay exactly
  (:mod:`repro.obs.verify`).

Event vocabulary (one dataclass each):

* ``RunStartEvent`` — engine name, capacity ``B``, participating nodes.
* ``RoundStartEvent`` / ``RoundEndEvent`` — round boundaries; the end
  event carries the round's total bits/messages.
* ``SendEvent`` — one stream's traffic on one directed edge in one
  round (the generator engine coalesces its per-tuple messages to one
  event per ``(edge, tag)`` per round; the compiled engine's blocks map
  one-to-one).  Replaying these events *is* the accounting.
* ``ComputeStepEvent`` — a free local computation (compiled engine).
* ``CycleFastForwardEvent`` — the compiled engine jumped ``repeats``
  whole cycles of ``period`` rounds; carries the cycle's per-round send
  signatures so replay can apply the jump arithmetically, exactly like
  the engine did.
* ``PhaseTimerEvent`` — wall-clock of one pipeline phase
  (``plan_compile`` / ``intern`` / ``solve`` / ``protocol``); volatile
  by nature, ignored by replay.

Deep layers without a ``tracer=`` parameter (the FAQ executor's
dictionary interning) read the module-level *active* tracer, which
:meth:`repro.core.planner.Planner.execute` binds for the duration of a
run via :func:`activate`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: The pipeline phases a :class:`PhaseTimerEvent` may name.
PHASES = ("plan_compile", "intern", "protocol", "solve")


@dataclass(frozen=True)
class RunStartEvent:
    """The run's static context: engine, capacity and participants."""

    engine: str
    capacity_bits: int
    nodes: Tuple[str, ...]


@dataclass(frozen=True)
class RoundStartEvent:
    round: int


@dataclass(frozen=True)
class RoundEndEvent:
    round: int
    bits: int
    messages: int


@dataclass(frozen=True)
class SendEvent:
    """One stream's traffic over one directed edge in one round.

    ``kind`` is the block vocabulary of the compiled engine (``hdr`` /
    ``hdrc`` / ``it`` / ``slot`` / ``run`` / ``eos``) or ``"msg"`` for
    generator-engine messages; ``count`` is the logical payload units,
    ``messages`` the generator-engine message equivalents.
    """

    round: int
    src: str
    dst: str
    bits: int
    tag: str = ""
    kind: str = "msg"
    count: int = 1
    messages: int = 1


@dataclass(frozen=True)
class ComputeStepEvent:
    round: int
    node: str
    label: str


@dataclass(frozen=True)
class CycleFastForwardEvent:
    """The compiled engine replayed ``repeats`` cycles arithmetically.

    ``cycle`` holds one tuple per cycle round, each a tuple of
    ``(src, dst, tag, kind, bits)`` send signatures — exactly the
    traffic each skipped round would have carried.  ``start_round`` is
    the last *stepped* round (the cycle's reference window ends there);
    ``end_round = start_round + repeats * period`` is the engine's
    post-jump round counter.  ``rounds_skipped == repeats * period``.
    """

    start_round: int
    period: int
    repeats: int
    rounds_skipped: int
    end_round: int
    cycle: Tuple[Tuple[Tuple[str, str, str, str, int], ...], ...]


@dataclass(frozen=True)
class PhaseTimerEvent:
    phase: str
    seconds: float


TraceEvent = Any  # any of the dataclasses above


def event_to_json_dict(event: TraceEvent) -> Dict[str, Any]:
    """A JSON-ready dict with a ``type`` discriminator."""
    payload = asdict(event)
    payload["type"] = type(event).__name__.replace("Event", "")
    return payload


class Tracer:
    """The no-op tracer — the default, and the cost model for "off".

    Every hook is a no-op and ``enabled`` is False; engines normalize
    disabled tracers to ``None`` before their round loop, so passing
    this class (or ``None``) costs one attribute check per guard site.
    Subclass and set ``enabled = True`` to receive events.
    """

    enabled = False

    def run_start(
        self, engine: str, capacity_bits: int, nodes: Sequence[str]
    ) -> None:
        """The run's static context, emitted once before round 1."""

    def round_start(self, round_no: int) -> None:
        """A synchronous round began."""

    def round_end(self, round_no: int, bits: int, messages: int) -> None:
        """The round's sends are final; ``bits``/``messages`` are its totals."""

    def send(
        self,
        round_no: int,
        src: str,
        dst: str,
        bits: int,
        tag: str = "",
        kind: str = "msg",
        count: int = 1,
        messages: int = 1,
    ) -> None:
        """Traffic on the directed edge ``src -> dst`` this round."""

    def compute_step(self, round_no: int, node: str, label: str) -> None:
        """A free local computation ran (compiled engine only)."""

    def cycle_fast_forward(
        self,
        start_round: int,
        period: int,
        repeats: int,
        end_round: int,
        cycle: Sequence[Tuple[Tuple[str, str, str, str, int], ...]],
    ) -> None:
        """The engine jumped ``repeats`` cycles of ``period`` rounds."""

    def phase_timer(self, phase: str, seconds: float) -> None:
        """One pipeline phase's wall-clock (volatile; never replayed)."""


class RecordingTracer(Tracer):
    """Records every event, in emission order, as typed dataclasses."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def run_start(
        self, engine: str, capacity_bits: int, nodes: Sequence[str]
    ) -> None:
        self.events.append(
            RunStartEvent(engine, int(capacity_bits), tuple(nodes))
        )

    def round_start(self, round_no: int) -> None:
        self.events.append(RoundStartEvent(round_no))

    def round_end(self, round_no: int, bits: int, messages: int) -> None:
        self.events.append(RoundEndEvent(round_no, bits, messages))

    def send(
        self,
        round_no: int,
        src: str,
        dst: str,
        bits: int,
        tag: str = "",
        kind: str = "msg",
        count: int = 1,
        messages: int = 1,
    ) -> None:
        self.events.append(
            SendEvent(round_no, src, dst, bits, tag, kind, count, messages)
        )

    def compute_step(self, round_no: int, node: str, label: str) -> None:
        self.events.append(ComputeStepEvent(round_no, node, label))

    def cycle_fast_forward(
        self,
        start_round: int,
        period: int,
        repeats: int,
        end_round: int,
        cycle: Sequence[Tuple[Tuple[str, str, str, str, int], ...]],
    ) -> None:
        self.events.append(
            CycleFastForwardEvent(
                start_round=start_round,
                period=period,
                repeats=repeats,
                rounds_skipped=repeats * period,
                end_round=end_round,
                cycle=tuple(tuple(r) for r in cycle),
            )
        )

    def phase_timer(self, phase: str, seconds: float) -> None:
        self.events.append(PhaseTimerEvent(phase, float(seconds)))


def normalize(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Map ``None`` and any disabled tracer to ``None``.

    Engines call this once per run so their loops guard with a single
    ``is not None`` — a disabled tracer is then *structurally* free, not
    just cheap (tests assert this is what makes the <2% overhead claim
    hold by construction).
    """
    if tracer is None or not getattr(tracer, "enabled", False):
        return None
    return tracer


# ---------------------------------------------------------------------------
# The active tracer (for layers without a tracer= parameter)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The tracer bound by the innermost :func:`activate`, or ``None``."""
    return _ACTIVE


@contextmanager
def activate(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Bind ``tracer`` as the process's active tracer for the block.

    Used by :meth:`repro.core.planner.Planner.execute` so deep layers
    (the FAQ executor's dictionary interning) can emit ``PhaseTimer``
    events without threading a parameter through every call site.
    Nested activations restore the previous binding on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = normalize(tracer)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
