"""Structured logging for the lab CLI and the suite runner.

One module-level configuration point (the SNIPPETS §3 pattern): every
``repro`` module logs through ``logging.getLogger("repro.<module>")``,
and :func:`configure` installs a single stdout handler on the ``repro``
root with a plain ``%(message)s`` format — log lines interleave with
the CLI's result tables exactly like the prints they replace, but are
level-filterable (``--log-level``) and capturable (the ProcessPool
workers attach a capture handler so parallel runs are as debuggable as
``--jobs 1``).
"""

from __future__ import annotations

import logging
import sys
from typing import List, Optional

#: The root logger name every repro module hangs under.
ROOT_LOGGER = "repro"

#: CLI-facing level names (``--log-level`` choices).
LOG_LEVELS = ("debug", "info", "warning", "error")


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` root logger, or a child (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure(level: str = "info", stream=None) -> logging.Logger:
    """Install the CLI logging setup (idempotent).

    A single ``%(message)s`` StreamHandler on stdout — progress lines
    keep their historical look — with the requested level on the
    ``repro`` root.  Re-invoking replaces the previous CLI handler
    instead of stacking duplicates.
    """
    if level not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; known: {', '.join(LOG_LEVELS)}"
        )
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(getattr(logging, level.upper()))
    stream = stream if stream is not None else sys.stdout
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter("%(message)s"))
    handler._repro_cli = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    # The CLI handler is the configured sink; don't double-print through
    # the root logger's handlers (pytest installs its own).
    logger.propagate = False
    return logger


class CaptureHandler(logging.Handler):
    """Buffers formatted records — the worker-side capture sink.

    ProcessPool workers attach one around each scenario execution so
    log records raised in the worker survive the process boundary as
    plain strings on the result (re-emitted by the coordinator).
    """

    def __init__(self, level: int = logging.DEBUG) -> None:
        super().__init__(level)
        self.lines: List[str] = []

    def emit(self, record: logging.LogRecord) -> None:
        try:
            message = record.getMessage()
        except Exception:  # pragma: no cover - malformed record args
            message = str(record.msg)
        self.lines.append(f"{record.levelname} {record.name}: {message}")
