"""Trace serialization: JSONL, Chrome trace-event JSON, terminal timeline.

Three views of one event stream:

* :func:`events_to_jsonl` — the lossless archival form, one JSON object
  per event with a ``type`` discriminator (loadable without this
  package).
* :func:`events_to_chrome_trace` — the Chrome trace-event format
  (https://ui.perfetto.dev loads it directly): one track per node under
  the ``nodes`` process, one per *directed* edge under ``links``, plus
  an ``engine`` track for fast-forward jumps.  One protocol round maps
  to 1 ms of trace time; a send's slice duration is its share of the
  per-round capacity ``B``, so a full link renders as a solid bar.
* :func:`format_timeline` — the paper's Model 2.1 picture in a
  terminal: per-round per-link bit loads, with fast-forwarded stretches
  compressed to one annotated line (exactly what the engine did).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .trace import (
    ComputeStepEvent,
    CycleFastForwardEvent,
    PhaseTimerEvent,
    RunStartEvent,
    SendEvent,
    TraceEvent,
    event_to_json_dict,
)

#: Trace-time microseconds one protocol round spans in Chrome traces.
ROUND_US = 1000


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """One canonical JSON object per line, emission order preserved."""
    return "".join(
        json.dumps(event_to_json_dict(e), sort_keys=True, separators=(",", ":"))
        + "\n"
        for e in events
    )


def _link_label(src: str, dst: str) -> str:
    return f"{src}->{dst}"


def _collect_links(events: Sequence[TraceEvent]) -> List[Tuple[str, str]]:
    """Every directed edge the trace touched, sorted."""
    links = set()
    for event in events:
        if isinstance(event, SendEvent):
            links.add((event.src, event.dst))
        elif isinstance(event, CycleFastForwardEvent):
            for round_sends in event.cycle:
                for src, dst, _tag, _kind, _bits in round_sends:
                    links.add((src, dst))
    return sorted(links)


def events_to_chrome_trace(events: Sequence[TraceEvent]) -> Dict[str, Any]:
    """The Chrome trace-event JSON payload (Perfetto-loadable).

    Shape contract (validated by the CI export smoke): a dict with a
    non-empty ``traceEvents`` list whose entries all carry ``ph``,
    ``pid``, ``tid`` and ``name``, plus ``displayTimeUnit``.
    """
    run: Optional[RunStartEvent] = next(
        (e for e in events if isinstance(e, RunStartEvent)), None
    )
    capacity = run.capacity_bits if run is not None else 0
    nodes = list(run.nodes) if run is not None else []
    links = _collect_links(events)
    node_tid = {node: i + 1 for i, node in enumerate(sorted(nodes))}
    link_tid = {link: i + 1 for i, link in enumerate(links)}

    trace: List[Dict[str, Any]] = [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": "nodes"}},
        {"ph": "M", "pid": 2, "tid": 0, "name": "process_name",
         "args": {"name": "links"}},
        {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
         "args": {"name": "engine"}},
    ]
    for node, tid in sorted(node_tid.items()):
        trace.append(
            {"ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
             "args": {"name": node}}
        )
    for link, tid in link_tid.items():
        trace.append(
            {"ph": "M", "pid": 2, "tid": tid, "name": "thread_name",
             "args": {"name": _link_label(*link)}}
        )

    def send_duration(bits: int) -> int:
        if capacity <= 0:
            return ROUND_US
        return max(1, round(ROUND_US * min(1.0, bits / capacity)))

    for event in events:
        if isinstance(event, SendEvent):
            trace.append(
                {
                    "ph": "X",
                    "pid": 2,
                    "tid": link_tid[(event.src, event.dst)],
                    "ts": event.round * ROUND_US,
                    "dur": send_duration(event.bits),
                    "name": f"{event.tag or event.kind} {event.bits}b",
                    "args": {
                        "round": event.round,
                        "bits": event.bits,
                        "tag": event.tag,
                        "kind": event.kind,
                        "count": event.count,
                        "messages": event.messages,
                    },
                }
            )
        elif isinstance(event, ComputeStepEvent):
            trace.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": node_tid.get(event.node, 0),
                    "ts": event.round * ROUND_US,
                    "dur": ROUND_US,
                    "name": event.label,
                    "args": {"round": event.round, "node": event.node},
                }
            )
        elif isinstance(event, CycleFastForwardEvent):
            trace.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": 0,
                    "ts": event.start_round * ROUND_US,
                    "dur": event.rounds_skipped * ROUND_US,
                    "name": (
                        f"fast-forward x{event.repeats} "
                        f"(period {event.period})"
                    ),
                    "args": {
                        "start_round": event.start_round,
                        "end_round": event.end_round,
                        "rounds_skipped": event.rounds_skipped,
                    },
                }
            )
        elif isinstance(event, PhaseTimerEvent):
            trace.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": 0,
                    "ts": 0,
                    "dur": max(1, round(event.seconds * 1_000_000)),
                    "name": f"phase:{event.phase}",
                    "args": {"seconds": event.seconds},
                }
            )

    payload: Dict[str, Any] = {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
    }
    if run is not None:
        payload["otherData"] = {
            "engine": run.engine,
            "capacity_bits": run.capacity_bits,
            "round_us": ROUND_US,
        }
    return payload


# ---------------------------------------------------------------------------
# Terminal timeline
# ---------------------------------------------------------------------------


def format_timeline(
    events: Sequence[TraceEvent],
    max_rounds: int = 24,
    max_links: int = 8,
) -> str:
    """A round-by-round link-utilization table for terminals.

    One row per *stepped* round (bits per directed link), fast-forwarded
    stretches compressed to one annotated line.  When more than
    ``max_rounds`` stepped rounds or ``max_links`` links exist, the
    middle rounds / the quietest links are elided with an explicit note
    — silence must never read as coverage.
    """
    run: Optional[RunStartEvent] = next(
        (e for e in events if isinstance(e, RunStartEvent)), None
    )
    per_round: Dict[int, Dict[Tuple[str, str], int]] = {}
    link_totals: Dict[Tuple[str, str], int] = {}
    jumps: Dict[int, CycleFastForwardEvent] = {}
    for event in events:
        if isinstance(event, SendEvent):
            link = (event.src, event.dst)
            row = per_round.setdefault(event.round, {})
            row[link] = row.get(link, 0) + event.bits
            link_totals[link] = link_totals.get(link, 0) + event.bits
        elif isinstance(event, CycleFastForwardEvent):
            jumps[event.start_round] = event

    header_bits = []
    if run is not None:
        header_bits.append(
            f"engine={run.engine} B={run.capacity_bits} bits/round"
        )
    if not per_round:
        prefix = f"({'; '.join(header_bits)}) " if header_bits else ""
        return f"{prefix}no traffic traced"

    links = sorted(link_totals, key=lambda l: (-link_totals[l], l))
    elided_links = 0
    if len(links) > max_links:
        elided_links = len(links) - max_links
        links = links[:max_links]
    links = sorted(links)

    labels = [_link_label(*link) for link in links]
    widths = [max(len(label), 6) for label in labels]
    lines = []
    if header_bits:
        lines.append("; ".join(header_bits))
    lines.append(
        "round | " + " | ".join(
            f"{label:>{w}}" for label, w in zip(labels, widths)
        )
    )
    lines.append("-" * len(lines[-1]))

    rounds = sorted(per_round)
    shown = rounds
    elided_note = None
    if len(rounds) > max_rounds:
        head = rounds[: max_rounds // 2]
        tail = rounds[-(max_rounds - len(head)):]
        elided_note = len(rounds) - len(head) - len(tail)
        shown = head + [None] + tail  # type: ignore[list-item]

    def row_line(round_no: int) -> str:
        row = per_round.get(round_no, {})
        cells = " | ".join(
            f"{row.get(link, 0) or '-':>{w}}"
            for link, w in zip(links, widths)
        )
        return f"{round_no:>5} | {cells}"

    for round_no in shown:
        if round_no is None:
            lines.append(f"  ... {elided_note} round(s) elided ...")
            continue
        lines.append(row_line(round_no))
        jump = jumps.get(round_no)
        if jump is not None:
            lines.append(
                f"  >> fast-forward x{jump.repeats} (period {jump.period}): "
                f"rounds {jump.start_round + 1}-{jump.end_round} replayed "
                f"arithmetically"
            )
    if elided_links:
        lines.append(
            f"  ({elided_links} quieter link(s) elided; "
            f"totals cover every link)"
        )
    busiest = max(link_totals, key=lambda l: (link_totals[l], l))
    lines.append(
        f"totals: {sum(link_totals.values())} bits over "
        f"{len(link_totals)} link(s); busiest {_link_label(*busiest)} "
        f"with {link_totals[busiest]} bits"
    )
    return "\n".join(lines)
