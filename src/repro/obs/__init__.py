"""Observability: protocol event tracing, kernel counters, exports.

The layer is deliberately dependency-free (stdlib only) so every other
subsystem — the network engines, the FAQ executor, the lab — can import
it without cycles.  Three planes:

* :mod:`repro.obs.trace` — typed per-round protocol events behind a
  ``Tracer`` interface whose disabled form costs one ``None`` check on
  the hot path (engines normalize a disabled tracer to ``None`` up
  front, so tracing off means *zero* calls per round).
* :mod:`repro.obs.counters` — process-wide tagged counters for the fast
  paths that are otherwise invisible (plan cache, dictionary-pool
  shortcut, columnar-vs-dict kernel dispatch, cycle fast-forward).
* :mod:`repro.obs.export` / :mod:`repro.obs.verify` — trace
  serialization (JSONL, Chrome trace-event JSON for Perfetto, a terminal
  timeline) and the self-verification contract: replaying a trace's
  ``Send`` events must reproduce the engine's accounting exactly.
"""

from .counters import COUNTERS, DETERMINISTIC_COUNTERS, CounterRegistry, counter_delta
from .trace import (
    ComputeStepEvent,
    CycleFastForwardEvent,
    PhaseTimerEvent,
    RecordingTracer,
    RoundEndEvent,
    RoundStartEvent,
    RunStartEvent,
    SendEvent,
    Tracer,
    activate,
    active_tracer,
)
from .verify import ReplayedTotals, TraceVerdict, replay_trace, verify_trace

__all__ = [
    "COUNTERS",
    "DETERMINISTIC_COUNTERS",
    "CounterRegistry",
    "counter_delta",
    "Tracer",
    "RecordingTracer",
    "activate",
    "active_tracer",
    "RunStartEvent",
    "RoundStartEvent",
    "RoundEndEvent",
    "SendEvent",
    "ComputeStepEvent",
    "CycleFastForwardEvent",
    "PhaseTimerEvent",
    "ReplayedTotals",
    "TraceVerdict",
    "replay_trace",
    "verify_trace",
]
