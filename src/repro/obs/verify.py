"""Trace self-verification: replay the Send events, match the engine.

Instrumentation is not trusted: a tracer that dropped or duplicated an
event would silently lie about where the bits went.  The contract that
keeps it honest is *replayability* — folding a trace's :class:`SendEvent`
and :class:`CycleFastForwardEvent` streams through plain arithmetic must
reproduce the engine's own accounting **exactly** on all four gated
metrics:

* ``rounds`` — the last round with any send (fast-forward jumps extend
  it to their ``end_round``, exactly like the engine's counter);
* ``total_bits`` — the sum of event bits plus ``repeats x cycle bits``
  per jump;
* ``bits_per_edge`` — the per-directed-link map, same fold;
* ``max_edge_bits_per_round`` — the busiest link-round among *stepped*
  rounds.  Jumps never contribute: the engine only fast-forwards a
  cycle it has already stepped (and traced) at least twice, so the
  skipped rounds repeat per-link loads that are already in the maximum.

Since the cost model independently predicts the same four metrics and
``repro.lab`` gates measured == predicted per covered run, a verified
trace closes the triangle: **measured = predicted = traced**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from .trace import CycleFastForwardEvent, SendEvent, TraceEvent


@dataclass
class ReplayedTotals:
    """The accounting a trace's send stream folds to."""

    rounds: int = 0
    total_bits: int = 0
    bits_per_edge: Dict[Tuple[str, str], int] = field(default_factory=dict)
    max_edge_bits_per_round: int = 0


@dataclass
class TraceVerdict:
    """One trace's replay-vs-measured comparison.

    ``ok`` is True iff all four metrics matched; ``mismatches`` carries
    one human-readable line per disagreement.
    """

    ok: bool
    mismatches: List[str]
    replayed: ReplayedTotals


def replay_trace(events: Iterable[TraceEvent]) -> ReplayedTotals:
    """Fold a trace's sends back into protocol accounting.

    Pure arithmetic over :class:`SendEvent` /
    :class:`CycleFastForwardEvent`; every other event type is ignored
    (round markers and phase timers carry no accounting).
    """
    totals = ReplayedTotals()
    edges = totals.bits_per_edge
    # Per-round per-link loads for the busiest-link metric.  Events
    # arrive round-ordered, so one running window suffices.
    window_round = 0
    window: Dict[Tuple[str, str], int] = {}

    def close_window() -> None:
        if window:
            busiest = max(window.values())
            if busiest > totals.max_edge_bits_per_round:
                totals.max_edge_bits_per_round = busiest
            window.clear()

    for event in events:
        if isinstance(event, SendEvent):
            if event.round != window_round:
                close_window()
                window_round = event.round
            link = (event.src, event.dst)
            edges[link] = edges.get(link, 0) + event.bits
            window[link] = window.get(link, 0) + event.bits
            totals.total_bits += event.bits
            if event.round > totals.rounds:
                totals.rounds = event.round
        elif isinstance(event, CycleFastForwardEvent):
            close_window()
            for round_sends in event.cycle:
                for _src, _dst, _tag, _kind, bits in round_sends:
                    totals.total_bits += event.repeats * bits
            for round_sends in event.cycle:
                for src, dst, _tag, _kind, bits in round_sends:
                    link = (src, dst)
                    edges[link] = edges.get(link, 0) + event.repeats * bits
            if event.end_round > totals.rounds:
                totals.rounds = event.end_round
    close_window()
    return totals


def verify_trace(events: Iterable[TraceEvent], simulation) -> TraceVerdict:
    """Replay ``events`` and compare against a ``SimulationResult``.

    Any mismatch is a bug — in an engine's accounting, in a trace hook,
    or in this replay — never a tolerable deviation.
    """
    replayed = replay_trace(events)
    mismatches: List[str] = []
    if replayed.rounds != simulation.rounds:
        mismatches.append(
            f"rounds replayed={replayed.rounds} measured={simulation.rounds}"
        )
    if replayed.total_bits != simulation.total_bits:
        mismatches.append(
            f"total_bits replayed={replayed.total_bits} "
            f"measured={simulation.total_bits}"
        )
    if replayed.max_edge_bits_per_round != simulation.max_edge_bits_per_round:
        mismatches.append(
            f"max_edge_bits_per_round "
            f"replayed={replayed.max_edge_bits_per_round} "
            f"measured={simulation.max_edge_bits_per_round}"
        )
    if replayed.bits_per_edge != simulation.bits_per_edge:
        theirs = simulation.bits_per_edge
        differing = sorted(
            link
            for link in set(replayed.bits_per_edge) | set(theirs)
            if replayed.bits_per_edge.get(link, 0) != theirs.get(link, 0)
        )
        sample = ", ".join(
            f"{src}->{dst} replayed={replayed.bits_per_edge.get((src, dst), 0)} "
            f"measured={theirs.get((src, dst), 0)}"
            for src, dst in differing[:3]
        )
        mismatches.append(
            f"bits_per_edge differs on {len(differing)} link(s): {sample}"
        )
    return TraceVerdict(ok=not mismatches, mismatches=mismatches, replayed=replayed)
